//! # transient-updates
//!
//! Facade crate for the *Towards Transiently Secure Updates in
//! Asynchronous SDNs* reproduction (Shukla et al., SIGCOMM 2016 demo).
//!
//! The workspace implements, from scratch:
//!
//! * the round-based consistent-update schedulers the demo shows —
//!   **WayUp** (transient waypoint enforcement, HotNets'14) and
//!   **Peacock** (relaxed loop freedom, PODC'15) — plus one-shot,
//!   strong-loop-freedom greedy and tag-based two-phase-commit
//!   baselines ([`core`]);
//! * exact and conservative verifiers for every transient state a
//!   round-based schedule can expose ([`core::checker`]);
//! * the substrate the demo ran on: an OpenFlow-style message layer
//!   with a binary codec ([`openflow`]), software switches with barrier
//!   semantics ([`switch`]), an asynchronous fault-injecting control
//!   channel ([`channel`]), a Ryu-style controller with the demo's REST
//!   request format and round executor ([`ctrl`]), and a deterministic
//!   discrete-event simulator ([`sim`]) over a topology model
//!   ([`topo`]).
//!
//! ## Quick start
//!
//! ```
//! use transient_updates::prelude::*;
//!
//! // The paper's Figure 1: 12 switches, h1@s1, h2@s12, waypoint s3.
//! let fig = sdn_topo::builders::figure1();
//! let inst = UpdateInstance::new(
//!     fig.old_route.clone(),
//!     fig.new_route.clone(),
//!     Some(fig.waypoint),
//! ).expect("valid instance");
//!
//! // Schedule the update with WayUp and verify every transient state.
//! let schedule = WayUp::default().schedule(&inst).expect("schedulable");
//! let report = verify_schedule(&inst, &schedule, PropertySet::transiently_secure());
//! assert!(report.is_ok(), "{report}");
//! ```

#![forbid(unsafe_code)]

pub use sdn_channel as channel;
pub use sdn_ctrl as ctrl;
pub use sdn_openflow as openflow;
pub use sdn_sim as sim;
pub use sdn_switch as switch;
pub use sdn_topo as topo;
pub use sdn_types as types;
pub use update_core as core;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use sdn_topo;
    pub use sdn_topo::route::RoutePath;
    pub use sdn_types::{DpId, FlowId, HostId, PortNo, SimDuration, SimTime};
    pub use update_core::algorithms::{
        OneShot, Peacock, SlfGreedy, TwoPhaseCommit, UpdateScheduler, WayUp,
    };
    pub use update_core::checker::verify_schedule;
    pub use update_core::model::UpdateInstance;
    pub use update_core::properties::{Property, PropertySet};
    pub use update_core::schedule::Schedule;
}
