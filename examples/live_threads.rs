//! Live mode: the round executor driving *real threads* — one per
//! switch — over the readiness-driven event-loop transport, with genuine
//! (scaled) channel delays. Same protocol, true concurrency instead of
//! simulated time.
//!
//! ```sh
//! cargo run --example live_threads
//! ```

use std::time::Duration;

use sdn_channel::config::ChannelConfig;
use sdn_channel::{EventLoopTransport, LiveTransport};
use sdn_ctrl::compile::{compile_schedule, initial_flowmods, FlowSpec};
use sdn_ctrl::executor::{ExecConfig, ExecState, RoundExecutor, XidAlloc};
use sdn_switch::SoftSwitch;
use sdn_topo::builders::figure1;
use sdn_types::{SimDuration, SimTime};
use transient_updates::prelude::*;

fn main() {
    let f = figure1();
    let inst = UpdateInstance::new(f.old_route.clone(), f.new_route.clone(), Some(f.waypoint))
        .expect("figure 1 instance");
    let spec = FlowSpec {
        src: f.h1,
        dst: f.h2,
    };

    // Boot one thread per switch, preloaded with the old policy.
    let mut switches: Vec<SoftSwitch> = f
        .topo
        .switches()
        .map(|s| SoftSwitch::new(s.dpid, 16))
        .collect();
    for (dp, msg) in initial_flowmods(&f.topo, &f.old_route, &spec).unwrap() {
        let sw = switches
            .iter_mut()
            .find(|s| s.dpid() == dp)
            .expect("switch exists");
        sw.handle_control(sdn_openflow::messages::Envelope::new(
            sdn_types::Xid(0),
            msg,
        ));
    }
    let transport = EventLoopTransport::spawn(
        switches,
        ChannelConfig::jittery(SimDuration::from_millis(3)),
        42,
        0.05, // compress 1 ms of simulated delay into 50 µs of wall time
    );

    // Schedule and execute round by round over the live transport.
    let schedule = WayUp::default().schedule(&inst).expect("schedulable");
    println!("{schedule}");
    let compiled = compile_schedule(&f.topo, &inst, &schedule, &spec).unwrap();
    let mut xids = XidAlloc::new();
    let mut executor = RoundExecutor::new(compiled, ExecConfig::default());

    let wall_start = std::time::Instant::now();
    let mut virtual_now = SimTime::ZERO;
    for (dp, env) in executor.start(virtual_now, &mut xids) {
        transport.send(dp, &env).unwrap();
    }
    while !matches!(executor.state(), ExecState::Done | ExecState::Failed) {
        virtual_now = SimTime(wall_start.elapsed().as_nanos() as u64);
        if let Some(reply) = transport.recv_timeout(Duration::from_millis(50)) {
            println!(
                "  [{:>9?}] {} from {}",
                wall_start.elapsed(),
                reply.env.msg.kind(),
                reply.dpid
            );
            for (dp, env) in executor.on_message(virtual_now, reply.dpid, &reply.env, &mut xids) {
                transport.send(dp, &env).unwrap();
            }
        }
        for (dp, env) in executor.on_tick(virtual_now, &mut xids) {
            transport.send(dp, &env).unwrap();
        }
    }
    println!(
        "\nexecutor state: {:?} after {:?} wall time",
        executor.state(),
        wall_start.elapsed()
    );

    // Shut the threads down and audit the final flow tables.
    let final_switches = transport.shutdown();
    let updated = final_switches
        .iter()
        .filter(|s| s.stats().flow_mods > 0)
        .count();
    println!("switches touched by the update: {updated}");
    assert_eq!(executor.state(), ExecState::Done);
}
