//! The paper's Figure 1, executed: 12 switches, h1 → h2 via the
//! firewall s3, old (solid) route migrated to the new (dashed) route
//! with WayUp over an asynchronous control channel while probe packets
//! flow.
//!
//! ```sh
//! cargo run --example figure1_waypoint
//! ```

use sdn_channel::config::ChannelConfig;
use sdn_ctrl::compile::{compile_schedule, initial_flowmods, FlowSpec};
use sdn_sim::world::{World, WorldConfig};
use sdn_topo::builders::figure1;
use sdn_types::{SimDuration, SimTime};
use transient_updates::prelude::*;

fn main() {
    let f = figure1();
    let inst = UpdateInstance::new(f.old_route.clone(), f.new_route.clone(), Some(f.waypoint))
        .expect("figure 1 instance");
    let spec = FlowSpec {
        src: f.h1,
        dst: f.h2,
    };

    let schedule = WayUp::default().schedule(&inst).expect("schedulable");
    println!("{schedule}");

    // Simulate with heavy control-plane jitter and live traffic: the
    // demo's point is that rounds + barriers keep every probe secure.
    let cfg = WorldConfig {
        channel: ChannelConfig::jittery(SimDuration::from_millis(5)),
        seed: 0xf1a,
        ..WorldConfig::default()
    };
    let mut world = World::new(f.topo.clone(), cfg);
    world.set_waypoint(Some(f.waypoint));
    world.install_initial(&initial_flowmods(&f.topo, &f.old_route, &spec).unwrap());
    world.enqueue_update(compile_schedule(&f.topo, &inst, &schedule, &spec).unwrap());
    world.plan_injection(
        f.h1,
        f.h2,
        SimDuration::from_micros(100),
        3000,
        SimTime::ZERO,
    );

    let report = world.run(SimTime::ZERO + SimDuration::from_secs(600));
    let update = &report.updates[0];
    println!(
        "update finished in {} over {} rounds",
        update.duration().expect("completed"),
        update.rounds.len()
    );
    for t in &update.rounds {
        println!(
            "  round {}: {} -> {} ({} attempt(s))",
            t.round + 1,
            t.started,
            t.completed.expect("completed"),
            t.attempts
        );
    }
    println!("\nprobe verdicts: {}", report.violations);
    assert!(
        !report.violations.any(),
        "WayUp must keep all probes secure"
    );

    // Show a couple of interesting probe paths: one before, one after.
    let first = &report.packets[0];
    let last = report.packets.last().expect("probes were injected");
    println!("\nfirst probe path: {:?}", first.path);
    println!("last probe path:  {:?}", last.path);
}
