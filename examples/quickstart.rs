//! Quickstart: schedule a transiently secure policy update and verify
//! every transient state.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use transient_updates::prelude::*;
use update_core::metrics::ScheduleStats;

fn main() {
    // A policy update: move the flow from the old route to the new
    // route, never bypassing the firewall at s3 — even transiently.
    let old = RoutePath::from_raw(&[1, 2, 3, 4, 5, 6, 12]).expect("valid route");
    let new = RoutePath::from_raw(&[1, 7, 3, 8, 9, 10, 11, 12]).expect("valid route");
    let inst = UpdateInstance::new(old, new, Some(DpId(3))).expect("valid instance");
    println!("update: {inst}\n");

    // WayUp: waypoint enforcement + weak loop freedom, in rounds.
    let schedule = WayUp::default().schedule(&inst).expect("schedulable");
    println!("{schedule}");
    println!("stats: {}\n", ScheduleStats::of(&schedule));

    // The checker walks every transient configuration a round can
    // expose (each round is closed by OpenFlow barriers, so only the
    // current round's subsets are reachable).
    let report = verify_schedule(&inst, &schedule, PropertySet::transiently_secure());
    println!("verification: {report}");
    assert!(report.is_ok());

    // Compare: the naive one-shot update fails verification.
    let naive = OneShot.schedule(&inst).expect("always schedules");
    let naive_report = verify_schedule(&inst, &naive, PropertySet::transiently_secure());
    println!("\none-shot verification:\n{naive_report}");
    assert!(!naive_report.is_ok());

    // Peacock handles waypoint-free updates in few rounds even when
    // strong loop freedom would need Θ(n).
    let reversal = sdn_topo::gen::reversal(32);
    let rev_inst = UpdateInstance::new(reversal.old, reversal.new, None).expect("valid");
    let peacock = Peacock::default().schedule(&rev_inst).expect("schedulable");
    let slf = SlfGreedy::default()
        .schedule(&rev_inst)
        .expect("schedulable");
    println!(
        "\nreversal n=32: peacock {} rounds vs slf-greedy {} rounds",
        peacock.round_count(),
        slf.round_count()
    );
}
