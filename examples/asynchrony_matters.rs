//! Why scheduling matters: the same update, dispatched naively in one
//! shot, drops and misroutes packets while the FlowMods race each
//! other; dispatched in WayUp rounds it stays clean.
//!
//! ```sh
//! cargo run --example asynchrony_matters
//! ```

use sdn_channel::config::ChannelConfig;
use sdn_sim::scenario::{run_scenario, AlgoChoice, Scenario};
use sdn_topo::gen::UpdatePair;
use sdn_types::SimDuration;

fn fig1_pair() -> UpdatePair {
    let f = sdn_topo::builders::figure1();
    UpdatePair {
        old: f.old_route,
        new: f.new_route,
        waypoint: Some(f.waypoint),
    }
}

fn main() {
    println!("The asynchronous control channel reorders FlowMod effects across");
    println!("switches. Watch the same policy change with and without rounds:\n");

    for algo in [AlgoChoice::OneShot, AlgoChoice::WayUp, AlgoChoice::TwoPhase] {
        let mut bypass = 0u64;
        let mut blackholes = 0u64;
        let mut loops = 0u64;
        let mut total = 0u64;
        for seed in 0..6u64 {
            let mut sc = Scenario::new(format!("{algo}"), fig1_pair(), algo)
                .with_channel(ChannelConfig::jittery(SimDuration::from_millis(10)))
                .with_seed(1000 + seed);
            sc.inject_interval = SimDuration::from_micros(100);
            sc.inject_count = 2000;
            sc.verify = false;
            let out = run_scenario(&sc).expect("scenario runs");
            let v = out.sim.violations;
            total += v.total;
            bypass += v.waypoint_bypasses;
            blackholes += v.blackholes;
            loops += v.loops;
        }
        println!(
            "{:>10}: {total} probes -> {bypass} bypassed the firewall, \
             {blackholes} blackholed, {loops} looped",
            algo.name()
        );
    }

    println!("\nThe one-shot row is the motivation for the paper; the scheduled");
    println!("rows are its contribution.");
}
