//! Drive the controller through the demo's REST interface: parse the
//! WayUp request format from the paper (§2), compile it against the
//! topology, and execute it round by round with barriers.
//!
//! ```sh
//! cargo run --example rest_controller
//! ```

use sdn_channel::config::ChannelConfig;
use sdn_ctrl::compile::{compile_schedule, initial_flowmods, FlowSpec};
use sdn_ctrl::rest::request::UpdateRequest;
use sdn_ctrl::rest::response::{error_response, submit_response};
use sdn_ctrl::rest::router::{dispatch, Endpoint};
use sdn_ctrl::rest::status::status_response;
use sdn_ctrl::runtime::RuntimeConfig;
use sdn_sim::scenario::AlgoChoice;
use sdn_sim::world::{World, WorldConfig};
use sdn_topo::builders::figure1;
use sdn_types::{HostId, SimDuration, SimTime};
use update_core::checker::verify_schedule;
use update_core::properties::PropertySet;

/// The REST document from the paper, §2 — header part with the WayUp
/// input parameters (old route, new route, waypoint, interval).
const REQUEST: &str = r#"{
    "oldpath":  [1, 2, 3, 4, 5, 6, 12],
    "newpath":  [1, 7, 3, 8, 9, 10, 11, 12],
    "wp":       3,
    "interval": 100,
    "algorithm": "wayup"
}"#;

fn main() {
    // the legacy path answers 308 with the v1 home; follow it
    let moved = dispatch("POST", "/stats/update").unwrap_err();
    println!("POST /stats/update -> {} {}", moved.status, moved.body);
    assert_eq!(dispatch("POST", "/v1/update"), Ok(Endpoint::Submit));
    println!("POST /v1/update\n{REQUEST}\n");

    // -- parse ---------------------------------------------------------
    let req = UpdateRequest::parse(REQUEST).expect("well-formed request");
    let inst = req.to_instance().expect("valid update instance");
    let algo = req
        .algorithm
        .as_deref()
        .and_then(AlgoChoice::from_name)
        .unwrap_or(AlgoChoice::WayUp);
    println!("parsed: {inst} via {algo}");

    // -- schedule + verify ----------------------------------------------
    let schedule = algo.scheduler().schedule(&inst).expect("schedulable");
    let check = verify_schedule(&inst, &schedule, PropertySet::transiently_secure());
    println!("\n{schedule}");
    println!("verification: {check}");
    assert!(check.is_ok());

    // -- execute against the Figure-1 topology --------------------------
    let f = figure1();
    let spec = FlowSpec {
        src: f.h1,
        dst: f.h2,
    };
    // the concurrent runtime: bounded admission, conflict-aware
    // dispatch, adaptive per-switch retransmission
    let mut world = World::builder(f.topo.clone())
        .config(WorldConfig {
            channel: ChannelConfig::lan(),
            seed: 7,
            ..WorldConfig::default()
        })
        .concurrent(RuntimeConfig::default())
        .build();
    world.set_waypoint(inst.waypoint());
    world.install_initial(&initial_flowmods(&f.topo, inst.old(), &spec).unwrap());
    let outcome = world.submit(
        req.to_submission(
            compile_schedule(&f.topo, &inst, &schedule, &spec).unwrap(),
            world.now(),
        )
        .high_priority(), // waypoint changes ride the priority lane
    );
    let resp = submit_response(&outcome);
    println!("\n{} Accepted\n{}", resp.status, resp.body);

    // the REST "interval" field paces the probe traffic (milliseconds)
    let interval = SimDuration::from_millis(req.interval_ms.unwrap_or(100));
    world.plan_injection(HostId(1), HostId(2), interval, 50, SimTime::ZERO);

    let report = world.run(SimTime::ZERO + SimDuration::from_secs(3600));
    println!(
        "\nexecuted: update took {}, probes: {}",
        report.updates[0].duration().expect("completed"),
        report.violations
    );
    assert!(!report.violations.any());

    // -- the response the REST endpoint would return --------------------
    println!("\n200 OK\n{}", req.to_json());

    // -- GET /status: the operator's live view ---------------------------
    let status = status_response(&world.status());
    println!("\nGET /v1/status -> {}\n{}", status.status, status.body);

    // -- what hostile or over-limit requests get back --------------------
    let bad = UpdateRequest::parse(r#"{"oldpath": "not-a-path"}"#).unwrap_err();
    let resp = error_response(&bad);
    println!("\nmalformed request -> {} {}", resp.status, resp.body);
    let deep = format!(
        r#"{{"oldpath":[1,2],"newpath":[1,2],"x":{}{}}}"#,
        "[".repeat(30),
        "]".repeat(30)
    );
    let limit = UpdateRequest::parse(&deep).unwrap_err();
    let resp = error_response(&limit);
    println!("over-limit request -> {} {}", resp.status, resp.body);
}
