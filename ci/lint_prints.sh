#!/usr/bin/env bash
# Fail CI if a library crate prints to stdout/stderr directly.
#
# PR 10 gives the stack a structured observability path (`sdn_obs`
# events, counters and the flight recorder); ad-hoc `println!` /
# `eprintln!` in library code bypasses it, breaks the zero-overhead
# promise of the disabled handle, and pollutes embedders' output.
#
# Scope: `crates/*/src/**` library sources only. Exempt by design:
#   - `crates/bench/src/bin/**` — experiment binaries are CLIs; their
#     tables and acceptance lines ARE the product.
#   - `#[cfg(test)]` code and `tests/` trees — prints in tests are
#     developer-facing.
#   - `examples/`, `shims/`, and doc comments (`//!`, `///`).
set -euo pipefail
cd "$(dirname "$0")/.."

# Strip doc/comment lines before matching so examples in rustdoc
# (```text blocks showing CLI output) don't trip the lint. Test code
# is excluded file-wise (tests/ trees) and by the #[cfg(test)] guard:
# we stop scanning a file at its `#[cfg(test)]` line, since the repo
# convention keeps unit tests in a trailing `mod tests`. The regex is
# POSIX ERE (mawk has no \b/\< word boundaries); the `!(` suffix is
# distinctive enough without one.
hits=""
while IFS= read -r -d '' f; do
    match=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        /^[[:space:]]*\/\// { next }
        /e?print(ln)?!\(/ { printf "%s:%d:%s\n", FILENAME, FNR, $0 }
    ' "$f" || true)
    [ -n "$match" ] && hits="${hits}${match}"$'\n'
done < <(find crates/*/src -name '*.rs' \
    -not -path 'crates/bench/src/bin/*' -print0)

if [ -n "${hits%$'\n'}" ]; then
    echo "error: library crates must not print directly — route it through sdn_obs:" >&2
    echo "$hits" >&2
    echo "Use Obs events/counters (or return the string to the caller) instead." >&2
    exit 1
fi
echo "lint_prints: no stray prints in library crates"
