#!/usr/bin/env bash
# Fail CI if the deprecated pre-fabric submission API gains new call
# sites. The shims exist for one PR of migration grace:
#
#   World::with_runtime        -> World::builder(..).{serial,concurrent,fabric,runtime_handle}
#   World::submit_update       -> World::submit(SubmitRequest::new(update))
#   World::runtime_stats       -> world.runtime().stats()
#   World::set_switch_channel  -> World::set_link_profile(dp, Some(profile))
#   World::clear_switch_channel-> World::set_link_profile(dp, None)
#   trait UpdateRuntime        -> trait RuntimeHandle
#
# Only the defining files (the shims themselves and the facade
# re-export) may mention these names; everything else must use the
# replacement API. Deletion is always allowed — this list only shrinks.
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN='\b(UpdateRuntime|with_runtime|submit_update|runtime_stats|set_switch_channel|clear_switch_channel)\b'
ALLOWED=(
    crates/sim/src/world.rs       # the deprecated World shims
    crates/ctrl/src/runtime/mod.rs # the deprecated UpdateRuntime marker
    crates/ctrl/src/lib.rs         # its deprecated facade re-export
)

exclude=()
for f in "${ALLOWED[@]}"; do
    exclude+=(-not -path "./$f")
done

hits=$(find . -name '*.rs' -not -path './target/*' -not -path './shims/*' \
    "${exclude[@]}" -print0 |
    xargs -0 grep -nE "$PATTERN" || true)

if [ -n "$hits" ]; then
    echo "error: new call sites of the deprecated pre-fabric submission API:" >&2
    echo "$hits" >&2
    echo >&2
    echo "Use the replacements documented in README.md (API migration)." >&2
    exit 1
fi
echo "lint_deprecated: no call sites of the deprecated submission API"
