#!/usr/bin/env bash
# Fail CI if the deleted pre-fabric submission API reappears anywhere.
# The one-PR migration grace is over: the shims are gone, and no file
# — not even their former defining sites — may mention these names:
#
#   World::with_runtime        -> World::builder(..).{serial,concurrent,fabric,runtime_handle}
#   World::submit_update       -> World::submit(SubmitRequest::new(update))
#   World::runtime_stats       -> world.runtime().stats()
#   World::set_switch_channel  -> World::set_link_profile(dp, Some(profile))
#   World::clear_switch_channel-> World::set_link_profile(dp, None)
#   trait UpdateRuntime        -> trait RuntimeHandle
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN='\b(UpdateRuntime|with_runtime|submit_update|runtime_stats|set_switch_channel|clear_switch_channel)\b'

hits=$(find . -name '*.rs' -not -path './target/*' -not -path './shims/*' -print0 |
    xargs -0 grep -nE "$PATTERN" || true)

if [ -n "$hits" ]; then
    echo "error: the deleted pre-fabric submission API must not come back:" >&2
    echo "$hits" >&2
    echo >&2
    echo "Use the replacements documented in README.md (API migration)." >&2
    exit 1
fi
echo "lint_deprecated: no trace of the deleted submission API"
