//! Stress the threaded live transport: hundreds of real switch
//! threads, loss + corruption + duplication enabled *simultaneously*,
//! duplicated replies racing reordered ones, and sub-RTT timeout
//! storms — the executor must converge through all of it.

use std::time::{Duration, Instant};

use sdn_channel::config::ChannelConfig;
use sdn_channel::{EventLoopTransport, LiveTransport};
use sdn_ctrl::compile::{CompiledRound, CompiledUpdate};
use sdn_ctrl::executor::{ExecConfig, ExecState, RoundExecutor, XidAlloc};
use sdn_openflow::flow::FlowMatch;
use sdn_openflow::messages::{FlowMod, FlowModCommand, OfMessage};
use sdn_switch::SoftSwitch;
use sdn_types::{DpId, HostId, SimDuration, SimTime};

fn flowmod() -> OfMessage {
    OfMessage::FlowMod(FlowMod {
        command: FlowModCommand::Add,
        priority: 100,
        matcher: FlowMatch::dst_host(HostId(2)),
        actions: vec![],
        cookie: 7,
    })
}

/// A compiled update of `rounds` rounds, each touching every switch.
fn wide_update(n: u64, rounds: usize) -> CompiledUpdate {
    CompiledUpdate {
        label: format!("wide-{n}x{rounds}"),
        rounds: (0..rounds)
            .map(|_| CompiledRound {
                msgs: (1..=n).map(|d| (DpId(d), flowmod())).collect(),
                pre_delay: SimDuration::ZERO,
            })
            .collect(),
    }
}

fn drive_to_completion(
    transport: &impl LiveTransport,
    executor: &mut RoundExecutor,
    xids: &mut XidAlloc,
    deadline: Duration,
) {
    let start = Instant::now();
    let now = || SimTime(start.elapsed().as_nanos() as u64);
    for (dp, env) in executor.start(now(), xids) {
        transport.send(dp, &env).unwrap();
    }
    while !matches!(executor.state(), ExecState::Done | ExecState::Failed) {
        assert!(
            start.elapsed() < deadline,
            "live execution did not converge within {deadline:?}"
        );
        if let Some(reply) = transport.recv_timeout(Duration::from_millis(2)) {
            for (dp, env) in executor.on_message(now(), reply.dpid, &reply.env, xids) {
                transport.send(dp, &env).unwrap();
            }
        }
        for (dp, env) in executor.on_tick(now(), xids) {
            transport.send(dp, &env).unwrap();
        }
    }
}

#[test]
fn hundreds_of_switches_converge_under_combined_faults() {
    // 300 switch threads; the channel drops, corrupts AND duplicates
    // at once. One wide round to all 300, then another: the barrier
    // retransmission machinery must still drain both rounds.
    let n = 300u64;
    let switches: Vec<SoftSwitch> = (1..=n).map(|i| SoftSwitch::new(DpId(i), 4)).collect();
    let cfg = ChannelConfig::lossy(0.05)
        .with_corruption(0.05)
        .with_duplication(0.2);
    let transport = EventLoopTransport::spawn(switches, cfg, 2024, 0.001);
    let mut xids = XidAlloc::new();
    let mut executor = RoundExecutor::new(
        wide_update(n, 2),
        ExecConfig {
            barrier_timeout: SimDuration::from_millis(60),
            max_attempts: 60,
            flowmod_acks: true,
        },
    );
    drive_to_completion(
        &transport,
        &mut executor,
        &mut xids,
        Duration::from_secs(120),
    );
    assert_eq!(executor.state(), ExecState::Done);
    let finals = transport.shutdown();
    assert_eq!(finals.len(), n as usize);
    // With payload acks on, EVERY switch ends with the intended rule:
    // a round only completes once each FlowMod's echo ack has
    // round-tripped its exact payload, so a dropped or corrupted
    // FlowMod can no longer hide behind a surviving barrier. (A
    // corrupted frame that still decodes may deposit a *spurious*
    // extra rule — that is a wire-integrity matter, not a delivery
    // one — so the assertion checks presence, not table size.)
    let intended = FlowMatch::dst_host(HostId(2));
    let installed = finals
        .iter()
        .filter(|s| {
            s.table()
                .iter()
                .any(|e| e.matcher == intended && e.priority == 100)
        })
        .count();
    assert!(
        installed == n as usize,
        "only {installed}/{n} switches ended with the rule"
    );
}

#[test]
fn reordering_under_duplication_converges() {
    // 100% duplication with jittery per-message delays: duplicate
    // barrier replies race each other out of order across threads; a
    // multi-round update must still advance exactly once per round.
    let n = 24u64;
    let switches: Vec<SoftSwitch> = (1..=n).map(|i| SoftSwitch::new(DpId(i), 4)).collect();
    let cfg = ChannelConfig::jittery(SimDuration::from_millis(4)).with_duplication(1.0);
    let transport = EventLoopTransport::spawn(switches, cfg, 99, 0.01);
    let mut xids = XidAlloc::new();
    let mut executor = RoundExecutor::new(wide_update(n, 4), ExecConfig::default());
    drive_to_completion(
        &transport,
        &mut executor,
        &mut xids,
        Duration::from_secs(60),
    );
    assert_eq!(executor.state(), ExecState::Done);
    assert_eq!(
        executor.timings().len(),
        4,
        "each round recorded exactly once despite duplicate replies"
    );
    transport.shutdown();
}

#[test]
fn timeout_storm_over_threads_converges() {
    // Barrier timeout inside the channel's jitter tail: rounds
    // routinely retransmit, and replies often answer barriers that
    // have already been re-sent. Convergence must survive it. (A
    // timeout far *below* the whole RTT distribution diverges on the
    // serial executor — each retransmission adds more switch work than
    // the timeout allows to drain, which is precisely why the
    // concurrent runtime adapts its RTO per switch instead.)
    let n = 40u64;
    let switches: Vec<SoftSwitch> = (1..=n).map(|i| SoftSwitch::new(DpId(i), 4)).collect();
    // exp(mean 100 ms) one-way scaled by 0.01 -> ~1 ms wall, long tail
    let cfg = ChannelConfig::jittery(SimDuration::from_millis(100));
    let transport = EventLoopTransport::spawn(switches, cfg, 5, 0.01);
    let mut xids = XidAlloc::new();
    let mut executor = RoundExecutor::new(
        wide_update(n, 3),
        ExecConfig {
            barrier_timeout: SimDuration::from_millis(4),
            max_attempts: 200,
            flowmod_acks: true,
        },
    );
    drive_to_completion(
        &transport,
        &mut executor,
        &mut xids,
        Duration::from_secs(60),
    );
    assert_eq!(executor.state(), ExecState::Done);
    assert!(
        executor.timings().iter().any(|t| t.attempts > 1),
        "sub-RTT timeout must force retransmissions"
    );
    transport.shutdown();
}
