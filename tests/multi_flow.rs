//! Multiple policies: two flows with independent routes updated by two
//! queued jobs while both flows carry traffic — the direction the demo
//! points to via Dudycz et al. (DSN'16) and Ludwig et al.
//! (SIGMETRICS'16). The controller processes the jobs sequentially
//! (the demo's message queue); both flows must stay consistent
//! throughout.

use sdn_channel::config::ChannelConfig;
use sdn_ctrl::compile::{compile_schedule, initial_flowmods, FlowSpec};
use sdn_sim::world::{World, WorldConfig};
use sdn_topo::builders::DEFAULT_LINK_LATENCY;
use sdn_topo::graph::Topology;
use sdn_topo::route::RoutePath;
use sdn_types::{DpId, HostId, SimDuration, SimTime};
use update_core::algorithms::{Peacock, UpdateScheduler, WayUp};
use update_core::checker::verify_schedule;
use update_core::model::UpdateInstance;
use update_core::properties::PropertySet;

/// Flow A: h1@s1 → h2@s5, old ⟨1,2,3,4,5⟩, new ⟨1,6,3,7,5⟩, firewall s3.
/// Flow B: h3@s2 → h4@s4, old ⟨2,3,4⟩, new ⟨2,8,4⟩ (no waypoint).
fn two_flow_world() -> (Topology, UpdateInstance, UpdateInstance, FlowSpec, FlowSpec) {
    let mut topo = Topology::new();
    topo.add_switches(8).unwrap();
    for (a, b) in [
        (1u64, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (1, 6),
        (6, 3),
        (3, 7),
        (7, 5),
        (2, 8),
        (8, 4),
    ] {
        topo.add_link(DpId(a), DpId(b), DEFAULT_LINK_LATENCY)
            .unwrap();
    }
    let lat = SimDuration::from_micros(100);
    topo.attach_host(HostId(1), DpId(1), lat).unwrap();
    topo.attach_host(HostId(2), DpId(5), lat).unwrap();
    topo.attach_host(HostId(3), DpId(2), lat).unwrap();
    topo.attach_host(HostId(4), DpId(4), lat).unwrap();

    let flow_a = UpdateInstance::new(
        RoutePath::from_raw(&[1, 2, 3, 4, 5]).unwrap(),
        RoutePath::from_raw(&[1, 6, 3, 7, 5]).unwrap(),
        Some(DpId(3)),
    )
    .unwrap();
    let flow_b = UpdateInstance::new(
        RoutePath::from_raw(&[2, 3, 4]).unwrap(),
        RoutePath::from_raw(&[2, 8, 4]).unwrap(),
        None,
    )
    .unwrap();
    let spec_a = FlowSpec {
        src: HostId(1),
        dst: HostId(2),
    };
    let spec_b = FlowSpec {
        src: HostId(3),
        dst: HostId(4),
    };
    (topo, flow_a, flow_b, spec_a, spec_b)
}

#[test]
fn two_flows_update_sequentially_without_violations() {
    let (topo, flow_a, flow_b, spec_a, spec_b) = two_flow_world();

    let sched_a = WayUp::default().schedule(&flow_a).unwrap();
    assert!(verify_schedule(&flow_a, &sched_a, PropertySet::transiently_secure()).is_ok());
    let sched_b = Peacock::default().schedule(&flow_b).unwrap();
    assert!(verify_schedule(&flow_b, &sched_b, PropertySet::loop_free_relaxed()).is_ok());

    let mut world = World::new(
        topo.clone(),
        WorldConfig {
            channel: ChannelConfig::jittery(SimDuration::from_millis(4)),
            seed: 1212,
            ..WorldConfig::default()
        },
    );
    // baseline rules for BOTH flows (separate dst-host matches)
    world.install_initial(&initial_flowmods(&topo, flow_a.old(), &spec_a).unwrap());
    world.install_initial(&initial_flowmods(&topo, flow_b.old(), &spec_b).unwrap());

    // queue both jobs
    world.enqueue_update(compile_schedule(&topo, &flow_a, &sched_a, &spec_a).unwrap());
    world.enqueue_update(compile_schedule(&topo, &flow_b, &sched_b, &spec_b).unwrap());

    // concurrent probe traffic on both flows; flow A judged against s3
    world.set_waypoint(Some(DpId(3)));
    world.plan_injection(
        HostId(1),
        HostId(2),
        SimDuration::from_micros(200),
        1500,
        SimTime::ZERO,
    );
    world.set_waypoint(None); // flow B has no waypoint
    world.plan_injection(
        HostId(3),
        HostId(4),
        SimDuration::from_micros(200),
        1500,
        SimTime::ZERO,
    );

    let report = world.run(SimTime::ZERO + SimDuration::from_secs(3600));

    // both jobs completed, in queue order, without overlap
    assert_eq!(report.updates.len(), 2);
    assert!(report.updates.iter().all(|u| u.completed.is_some()));
    assert!(report.updates[1].started >= report.updates[0].completed.unwrap());

    // no flow saw any transient violation
    assert_eq!(report.violations.total, 3000);
    assert!(
        !report.violations.any(),
        "multi-flow update must stay clean: {}",
        report.violations
    );
}

#[test]
fn flows_are_isolated_by_destination_match() {
    let (topo, flow_a, flow_b, spec_a, spec_b) = two_flow_world();
    let mut world = World::new(
        topo.clone(),
        WorldConfig {
            seed: 5,
            ..WorldConfig::default()
        },
    );
    world.install_initial(&initial_flowmods(&topo, flow_a.old(), &spec_a).unwrap());
    world.install_initial(&initial_flowmods(&topo, flow_b.old(), &spec_b).unwrap());

    // update ONLY flow B; flow A's traffic must keep its old route
    let sched_b = Peacock::default().schedule(&flow_b).unwrap();
    world.enqueue_update(compile_schedule(&topo, &flow_b, &sched_b, &spec_b).unwrap());
    world.plan_injection(
        HostId(1),
        HostId(2),
        SimDuration::from_millis(1),
        100,
        SimTime::ZERO,
    );
    world.plan_injection(
        HostId(3),
        HostId(4),
        SimDuration::from_millis(1),
        100,
        SimTime::ZERO,
    );
    let report = world.run(SimTime::ZERO + SimDuration::from_secs(3600));

    assert!(!report.violations.any(), "{}", report.violations);
    // flow A's probes (ids interleave with B's, identified by path
    // start) all follow the untouched old route 1-2-3-4-5
    let flow_a_paths: Vec<_> = report
        .packets
        .iter()
        .filter(|p| p.path.first() == Some(&DpId(1)))
        .collect();
    assert!(!flow_a_paths.is_empty());
    for p in flow_a_paths {
        assert_eq!(
            p.path,
            vec![DpId(1), DpId(2), DpId(3), DpId(4), DpId(5)],
            "flow A must be unaffected by flow B's update"
        );
    }
    // flow B's last probes follow the new route 2-8-4
    let last_b = report
        .packets
        .iter()
        .rfind(|p| p.path.first() == Some(&DpId(2)))
        .unwrap();
    assert_eq!(last_b.path, vec![DpId(2), DpId(8), DpId(4)]);
}
