//! The round executor over real threads: true concurrency, genuine
//! races on the reply channel, scaled wall-clock delays.

use std::time::{Duration, Instant};

use sdn_channel::config::ChannelConfig;
use sdn_channel::{EventLoopTransport, LiveTransport};
use sdn_ctrl::compile::{compile_schedule, initial_flowmods, FlowSpec};
use sdn_ctrl::executor::{ExecConfig, ExecState, RoundExecutor, XidAlloc};
use sdn_openflow::messages::Envelope;
use sdn_switch::SoftSwitch;
use sdn_topo::builders::figure1;
use sdn_types::{SimDuration, SimTime, Xid};
use update_core::algorithms::{UpdateScheduler, WayUp};
use update_core::model::UpdateInstance;

fn drive_to_completion(
    transport: &impl LiveTransport,
    executor: &mut RoundExecutor,
    xids: &mut XidAlloc,
    deadline: Duration,
) {
    let start = Instant::now();
    let now = || SimTime(start.elapsed().as_nanos() as u64);
    for (dp, env) in executor.start(now(), xids) {
        transport.send(dp, &env).unwrap();
    }
    while !matches!(executor.state(), ExecState::Done | ExecState::Failed) {
        assert!(
            start.elapsed() < deadline,
            "live execution did not converge within {deadline:?}"
        );
        if let Some(reply) = transport.recv_timeout(Duration::from_millis(20)) {
            for (dp, env) in executor.on_message(now(), reply.dpid, &reply.env, xids) {
                transport.send(dp, &env).unwrap();
            }
        }
        for (dp, env) in executor.on_tick(now(), xids) {
            transport.send(dp, &env).unwrap();
        }
    }
}

fn boot_figure1() -> (Vec<SoftSwitch>, UpdateInstance, FlowSpec) {
    let f = figure1();
    let inst =
        UpdateInstance::new(f.old_route.clone(), f.new_route.clone(), Some(f.waypoint)).unwrap();
    let spec = FlowSpec {
        src: f.h1,
        dst: f.h2,
    };
    let mut switches: Vec<SoftSwitch> = f
        .topo
        .switches()
        .map(|s| SoftSwitch::new(s.dpid, 16))
        .collect();
    for (dp, msg) in initial_flowmods(&f.topo, &f.old_route, &spec).unwrap() {
        switches
            .iter_mut()
            .find(|s| s.dpid() == dp)
            .unwrap()
            .handle_control(Envelope::new(Xid(0), msg));
    }
    (switches, inst, spec)
}

#[test]
fn wayup_rounds_complete_over_threads() {
    let (switches, inst, spec) = boot_figure1();
    let f = figure1();
    let transport = EventLoopTransport::spawn(
        switches,
        ChannelConfig::jittery(SimDuration::from_millis(2)),
        1234,
        0.01,
    );
    let schedule = WayUp::default().schedule(&inst).unwrap();
    let compiled = compile_schedule(&f.topo, &inst, &schedule, &spec).unwrap();
    let mut xids = XidAlloc::new();
    let mut executor = RoundExecutor::new(compiled, ExecConfig::default());

    drive_to_completion(
        &transport,
        &mut executor,
        &mut xids,
        Duration::from_secs(30),
    );
    assert_eq!(executor.state(), ExecState::Done);

    // Final flow tables: the new-route switches have rules, and they
    // route toward their new next hops.
    let finals = transport.shutdown();
    for dp in inst.new_route().hops() {
        let sw = finals.iter().find(|s| s.dpid() == *dp).unwrap();
        assert!(
            !sw.table().is_empty(),
            "{dp} has an empty table after the update"
        );
    }
}

#[test]
fn lossy_live_channel_retries_until_done() {
    let (switches, inst, spec) = boot_figure1();
    let f = figure1();
    let transport = EventLoopTransport::spawn(switches, ChannelConfig::lossy(0.25), 777, 0.01);
    let schedule = WayUp::default().schedule(&inst).unwrap();
    let compiled = compile_schedule(&f.topo, &inst, &schedule, &spec).unwrap();
    let mut xids = XidAlloc::new();
    // tight timeout so wall-clock retries kick in quickly
    let mut executor = RoundExecutor::new(
        compiled,
        ExecConfig {
            barrier_timeout: SimDuration::from_millis(40),
            max_attempts: 50,
            flowmod_acks: true,
        },
    );
    drive_to_completion(
        &transport,
        &mut executor,
        &mut xids,
        Duration::from_secs(60),
    );
    assert_eq!(executor.state(), ExecState::Done);
    assert!(
        executor.timings().iter().any(|t| t.attempts > 1),
        "25% loss should force at least one retransmission"
    );
    transport.shutdown();
}
