//! The demo's REST workflow, end to end: JSON request → validated
//! instance → schedule → FlowMods → simulated execution.

use sdn_channel::config::ChannelConfig;
use sdn_ctrl::compile::{compile_schedule, initial_flowmods, FlowSpec};
use sdn_ctrl::rest::json::{self, Json};
use sdn_ctrl::rest::request::UpdateRequest;
use sdn_ctrl::rest::status::status_response;
use sdn_ctrl::runtime::{RuntimeConfig, SubmitRequest};
use sdn_sim::scenario::AlgoChoice;
use sdn_sim::world::{World, WorldConfig};
use sdn_topo::builders::figure1;
use sdn_types::{DpId, HostId, SimDuration, SimTime};
use update_core::checker::verify_schedule;
use update_core::properties::PropertySet;

const PAPER_REQUEST: &str = r#"{
    "oldpath": [1, 2, 3, 4, 5, 6, 12],
    "newpath": [1, 7, 3, 8, 9, 10, 11, 12],
    "wp": 3,
    "interval": 100
}"#;

#[test]
fn paper_request_parses_to_figure1_instance() {
    let req = UpdateRequest::parse(PAPER_REQUEST).unwrap();
    let inst = req.to_instance().unwrap();
    let f = figure1();
    assert_eq!(inst.old(), &f.old_route);
    assert_eq!(inst.new_route(), &f.new_route);
    assert_eq!(inst.waypoint(), Some(f.waypoint));
}

#[test]
fn rest_to_execution_is_transiently_secure() {
    let req = UpdateRequest::parse(PAPER_REQUEST).unwrap();
    let inst = req.to_instance().unwrap();
    let algo = req
        .algorithm
        .as_deref()
        .and_then(AlgoChoice::from_name)
        .unwrap_or(AlgoChoice::WayUp);
    let schedule = algo.scheduler().schedule(&inst).unwrap();
    assert!(verify_schedule(&inst, &schedule, PropertySet::transiently_secure()).is_ok());

    let f = figure1();
    let spec = FlowSpec {
        src: f.h1,
        dst: f.h2,
    };
    let mut world = World::new(
        f.topo.clone(),
        WorldConfig {
            channel: ChannelConfig::jittery(SimDuration::from_millis(4)),
            seed: 17,
            ..WorldConfig::default()
        },
    );
    world.set_waypoint(inst.waypoint());
    world.install_initial(&initial_flowmods(&f.topo, inst.old(), &spec).unwrap());
    world.enqueue_update(compile_schedule(&f.topo, &inst, &schedule, &spec).unwrap());
    // probe at the REST interval
    let interval = SimDuration::from_millis(req.interval_ms.unwrap());
    world.plan_injection(HostId(1), HostId(2), interval, 30, SimTime::ZERO);
    let report = world.run(SimTime::ZERO + SimDuration::from_secs(3600));
    assert!(report.updates[0].completed.is_some());
    assert!(!report.violations.any(), "{}", report.violations);
}

#[test]
fn algorithm_field_selects_scheduler() {
    for (name, expect_rounds_at_most) in [("two-phase", 3), ("one-shot", 2)] {
        let doc = format!(
            r#"{{"oldpath":[1,2,3,4,5,6,12],"newpath":[1,7,3,8,9,10,11,12],"wp":3,"algorithm":"{name}"}}"#
        );
        let req = UpdateRequest::parse(&doc).unwrap();
        let inst = req.to_instance().unwrap();
        let algo = AlgoChoice::from_name(req.algorithm.as_deref().unwrap()).unwrap();
        let schedule = algo.scheduler().schedule(&inst).unwrap();
        assert!(
            schedule.round_count() <= expect_rounds_at_most,
            "{name}: {} rounds",
            schedule.round_count()
        );
    }
}

#[test]
fn rejected_requests_do_not_reach_the_controller() {
    // route through a switch that repeats
    let bad = r#"{"oldpath":[1,2,1],"newpath":[1,2]}"#;
    let req = UpdateRequest::parse(bad).unwrap();
    assert!(req.to_instance().is_err());

    // waypoint off the new route
    let bad2 = r#"{"oldpath":[1,2,3],"newpath":[1,4,3],"wp":2}"#;
    let req2 = UpdateRequest::parse(bad2).unwrap();
    assert!(req2.to_instance().is_err());
}

#[test]
fn status_endpoint_reflects_a_completed_update() {
    // End to end: run the paper's update over the concurrent runtime,
    // then GET /status — the JSON must carry the completion counter
    // and the per-switch RTO table the run populated, so operators
    // (and tests) no longer scrape internal accessors.
    let req = UpdateRequest::parse(PAPER_REQUEST).unwrap();
    let inst = req.to_instance().unwrap();
    let schedule = AlgoChoice::WayUp.scheduler().schedule(&inst).unwrap();
    let f = figure1();
    let spec = FlowSpec {
        src: f.h1,
        dst: f.h2,
    };
    let mut world = World::builder(f.topo.clone())
        .config(WorldConfig {
            channel: ChannelConfig::jittery(SimDuration::from_millis(4)),
            seed: 23,
            ..WorldConfig::default()
        })
        .concurrent(RuntimeConfig::default())
        .build();
    world.set_waypoint(inst.waypoint());
    world.install_initial(&initial_flowmods(&f.topo, inst.old(), &spec).unwrap());
    let outcome = world.submit(SubmitRequest::new(
        compile_schedule(&f.topo, &inst, &schedule, &spec).unwrap(),
    ));
    assert!(outcome.is_ok());
    world.run(SimTime::ZERO + SimDuration::from_secs(3600));

    let resp = status_response(&world.status());
    assert_eq!(resp.status, 200);
    let v = json::parse(&resp.body).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(v.get("queued").unwrap().as_u64(), Some(0));
    assert_eq!(v.get("active").unwrap().as_u64(), Some(0));
    assert_eq!(v.get("pending_acks").unwrap().as_u64(), Some(0));
    let stats = v.get("stats").unwrap();
    assert_eq!(stats.get("submitted").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("completed").unwrap().as_u64(), Some(1));
    let Json::Arr(switches) = v.get("switches").unwrap() else {
        panic!("switches must be an array");
    };
    assert!(
        !switches.is_empty(),
        "barrier RTT samples must populate the RTO table"
    );
    for s in switches {
        assert!(s.get("dp").unwrap().as_u64().is_some());
        assert!(s.get("rto_us").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(s.get("straggler").unwrap().as_bool(), Some(false));
    }
}

#[test]
fn compiled_flowmods_address_every_scheduled_switch() {
    let req = UpdateRequest::parse(PAPER_REQUEST).unwrap();
    let inst = req.to_instance().unwrap();
    let schedule = AlgoChoice::WayUp.scheduler().schedule(&inst).unwrap();
    let f = figure1();
    let spec = FlowSpec {
        src: f.h1,
        dst: f.h2,
    };
    let compiled = compile_schedule(&f.topo, &inst, &schedule, &spec).unwrap();
    assert_eq!(compiled.round_count(), schedule.round_count());
    // round 1 of WayUp on Figure 1 installs the five new-only switches
    let r1: Vec<DpId> = compiled.rounds[0].msgs.iter().map(|(dp, _)| *dp).collect();
    for dp in [7u64, 8, 9, 10, 11] {
        assert!(r1.contains(&DpId(dp)), "s{dp} missing from round 1");
    }
}
