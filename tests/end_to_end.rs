//! End-to-end integration: scheduler → compiler → controller → channel
//! → switches → packets, across workloads, algorithms and channel
//! behaviours.

use sdn_channel::config::ChannelConfig;
use sdn_sim::scenario::{run_scenario, AlgoChoice, Scenario};
use sdn_topo::gen::{self, UpdatePair};
use sdn_types::{DetRng, SimDuration};

fn fig1_pair() -> UpdatePair {
    let f = sdn_topo::builders::figure1();
    UpdatePair {
        old: f.old_route,
        new: f.new_route,
        waypoint: Some(f.waypoint),
    }
}

#[test]
fn every_scheduled_algorithm_is_clean_on_figure1() {
    for algo in [AlgoChoice::WayUp, AlgoChoice::TwoPhase] {
        for seed in 0..3u64 {
            let mut sc = Scenario::new(format!("{algo}"), fig1_pair(), algo)
                .with_channel(ChannelConfig::jittery(SimDuration::from_millis(8)))
                .with_seed(seed);
            sc.inject_interval = SimDuration::from_micros(200);
            sc.inject_count = 1000;
            let out = run_scenario(&sc).expect("runs");
            assert!(
                out.check.as_ref().unwrap().is_ok(),
                "{algo} static check failed: {}",
                out.check.unwrap()
            );
            assert!(
                !out.sim.violations.any(),
                "{algo} seed {seed}: {}",
                out.sim.violations
            );
            assert!(out.update_time().is_some(), "{algo} seed {seed} incomplete");
        }
    }
}

#[test]
fn peacock_and_slf_clean_on_waypoint_free_workloads() {
    let mut rng = DetRng::new(42);
    for trial in 0..4 {
        let pair = gen::random_permutation(8 + trial, &mut rng);
        for algo in [AlgoChoice::Peacock, AlgoChoice::SlfGreedy] {
            let mut sc = Scenario::new(format!("{algo}-{trial}"), pair.clone(), algo)
                .with_channel(ChannelConfig::jittery(SimDuration::from_millis(5)))
                .with_seed(trial);
            sc.inject_interval = SimDuration::from_micros(500);
            sc.inject_count = 400;
            let out = run_scenario(&sc).expect("runs");
            assert!(out.check.as_ref().unwrap().is_ok(), "{algo} trial {trial}");
            assert_eq!(
                out.sim.violations.loops + out.sim.violations.blackholes,
                0,
                "{algo} trial {trial}: {}",
                out.sim.violations
            );
        }
    }
}

#[test]
fn updates_survive_loss_duplication_and_corruption() {
    let channel = ChannelConfig::lossy(0.15)
        .with_duplication(0.1)
        .with_corruption(0.1);
    let mut sc = Scenario::new("hostile", fig1_pair(), AlgoChoice::WayUp)
        .with_channel(channel)
        .with_seed(5);
    sc.inject_count = 0;
    sc.verify = false;
    let out = run_scenario(&sc).expect("runs");
    assert!(
        out.update_time().is_some(),
        "update must complete under hostile channel"
    );
    assert!(out.sim.channel.dropped > 0, "losses should have occurred");
    assert!(out.sim.decode_errors > 0, "corruption should have occurred");
}

#[test]
fn barrier_rounds_are_strictly_ordered_in_time() {
    let mut sc = Scenario::new("ordering", fig1_pair(), AlgoChoice::WayUp)
        .with_channel(ChannelConfig::jittery(SimDuration::from_millis(10)))
        .with_seed(8);
    sc.inject_count = 0;
    sc.verify = false;
    let out = run_scenario(&sc).expect("runs");
    let rounds = &out.sim.updates[0].rounds;
    for w in rounds.windows(2) {
        let prev_done = w[0].completed.expect("completed");
        assert!(
            w[1].started >= prev_done,
            "round {} started before round {} completed",
            w[1].round + 1,
            w[0].round + 1
        );
    }
}

#[test]
fn identical_seeds_replay_identical_histories() {
    let run = |seed: u64| {
        let mut sc = Scenario::new("det", fig1_pair(), AlgoChoice::WayUp)
            .with_channel(ChannelConfig::jittery(SimDuration::from_millis(7)))
            .with_seed(seed);
        sc.inject_interval = SimDuration::from_micros(300);
        sc.inject_count = 300;
        sc.verify = false;
        let out = run_scenario(&sc).expect("runs");
        (
            out.update_time(),
            out.sim.violations,
            out.sim.packets.len(),
            out.sim.channel.delivered,
        )
    };
    assert_eq!(run(123), run(123));
    assert_ne!(run(123), run(124));
}

#[test]
fn crossing_workloads_complete_via_fallback() {
    let mut rng = DetRng::new(77);
    for trial in 0..3u64 {
        let pair = gen::waypointed(10, true, &mut rng);
        let mut sc = Scenario::new("crossing", pair, AlgoChoice::WayUp)
            .with_channel(ChannelConfig::lan())
            .with_seed(trial);
        sc.inject_interval = SimDuration::from_micros(200);
        sc.inject_count = 500;
        let out = run_scenario(&sc).expect("runs");
        assert!(
            out.schedule.fallback,
            "crossing must trigger the 2PC fallback"
        );
        assert!(out.check.as_ref().unwrap().is_ok());
        assert!(
            !out.sim.violations.any(),
            "trial {trial}: {}",
            out.sim.violations
        );
    }
}

#[test]
fn queued_updates_execute_sequentially() {
    use sdn_ctrl::compile::{compile_schedule, initial_flowmods, FlowSpec};
    use sdn_sim::world::{World, WorldConfig};
    use sdn_types::{HostId, SimTime};
    use update_core::algorithms::{TwoPhaseCommit, UpdateScheduler, WayUp};
    use update_core::model::UpdateInstance;

    let f = sdn_topo::builders::figure1();
    let spec = FlowSpec {
        src: f.h1,
        dst: f.h2,
    };
    let forward =
        UpdateInstance::new(f.old_route.clone(), f.new_route.clone(), Some(f.waypoint)).unwrap();
    // queue two jobs: migrate old -> new (WayUp), then new -> old (2PC,
    // since the reverse direction also crosses nothing but exercise the
    // other machinery)
    let backward =
        UpdateInstance::new(f.new_route.clone(), f.old_route.clone(), Some(f.waypoint)).unwrap();

    let mut world = World::new(
        f.topo.clone(),
        WorldConfig {
            channel: ChannelConfig::lan(),
            seed: 3,
            ..WorldConfig::default()
        },
    );
    world.set_waypoint(Some(f.waypoint));
    world.install_initial(&initial_flowmods(&f.topo, &f.old_route, &spec).unwrap());

    let s1 = WayUp::default().schedule(&forward).unwrap();
    world.enqueue_update(compile_schedule(&f.topo, &forward, &s1, &spec).unwrap());
    let s2 = TwoPhaseCommit.schedule(&backward).unwrap();
    world.enqueue_update(compile_schedule(&f.topo, &backward, &s2, &spec).unwrap());

    let report = world.run(SimTime::ZERO + SimDuration::from_secs(3600));
    assert_eq!(report.updates.len(), 2, "both jobs processed");
    assert!(report.updates.iter().all(|u| u.completed.is_some()));
    // jobs must not overlap
    assert!(report.updates[1].started >= report.updates[0].completed.unwrap());

    // after both, the flow is back on the old route
    world.plan_injection(
        HostId(1),
        HostId(2),
        SimDuration::from_millis(1),
        3,
        world.now(),
    );
    let r2 = world.run(SimTime::ZERO + SimDuration::from_secs(7200));
    let last = r2.packets.last().unwrap();
    assert_eq!(last.path, f.old_route.hops().to_vec());
}
