//! Property-based correctness net: every scheduler's output must pass
//! the exact transient checker on randomized instances, across the
//! whole workload space the generators cover.

use proptest::prelude::*;

use sdn_types::DetRng;
use update_core::algorithms::{Peacock, SlfGreedy, TwoPhaseCommit, UpdateScheduler, WayUp};
use update_core::checker::verify_schedule;
use update_core::contract::Contracted;
use update_core::metrics::ScheduleStats;
use update_core::model::UpdateInstance;
use update_core::properties::PropertySet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn peacock_always_verifies_on_permutations(n in 4u64..24, seed in 0u64..1_000_000) {
        let mut rng = DetRng::new(seed);
        let pair = sdn_topo::gen::random_permutation(n, &mut rng);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let s = Peacock::default().schedule(&inst).unwrap();
        let r = verify_schedule(&inst, &s, PropertySet::loop_free_relaxed());
        prop_assert!(r.is_ok(), "{inst}: {r}");
    }

    #[test]
    fn slf_greedy_always_verifies_strongly(n in 4u64..20, seed in 0u64..1_000_000) {
        let mut rng = DetRng::new(seed);
        let pair = sdn_topo::gen::random_permutation(n, &mut rng);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let s = SlfGreedy::default().schedule(&inst).unwrap();
        let r = verify_schedule(&inst, &s, PropertySet::loop_free_strong());
        prop_assert!(r.is_ok(), "{inst}: {r}");
    }

    #[test]
    fn wayup_always_transiently_secure(n in 5u64..20, seed in 0u64..1_000_000, crossing: bool) {
        let mut rng = DetRng::new(seed);
        let pair = sdn_topo::gen::waypointed(n, crossing, &mut rng);
        let inst = UpdateInstance::new(pair.old, pair.new, pair.waypoint).unwrap();
        let s = WayUp::default().schedule(&inst).unwrap();
        let r = verify_schedule(&inst, &s, PropertySet::transiently_secure());
        prop_assert!(r.is_ok(), "{inst}: {r}");
        // crossing-free instances must not pay the 2PC rule-space tax
        if inst.crossing_nodes().is_empty() {
            prop_assert!(!s.fallback, "{inst} fell back needlessly:\n{s}");
        }
    }

    #[test]
    fn two_phase_always_verifies_everything(n in 4u64..20, seed in 0u64..1_000_000) {
        let mut rng = DetRng::new(seed);
        let pair = sdn_topo::gen::random_permutation(n, &mut rng);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let s = TwoPhaseCommit.schedule(&inst).unwrap();
        let r = verify_schedule(&inst, &s, PropertySet::all());
        prop_assert!(r.is_ok(), "{inst}: {r}");
    }

    #[test]
    fn subsequence_workloads_are_single_round_for_peacock(
        n in 5u64..30, keep in 0.0f64..1.0, seed in 0u64..1_000_000
    ) {
        let mut rng = DetRng::new(seed);
        let pair = sdn_topo::gen::random_subsequence(n, keep, &mut rng);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let s = Peacock::default().schedule(&inst).unwrap();
        // order-preserving subsets have only forward jumps: one
        // activation round (+ optional cleanup)
        let stats = ScheduleStats::of(&s);
        prop_assert!(stats.rounds <= 2, "{inst} took {} rounds:\n{s}", stats.rounds);
        prop_assert!(verify_schedule(&inst, &s, PropertySet::loop_free_relaxed()).is_ok());
    }

    #[test]
    fn schedulers_cover_every_switch_exactly_once(n in 4u64..16, seed in 0u64..1_000_000) {
        use std::collections::BTreeSet;
        use update_core::schedule::RuleOp;
        let mut rng = DetRng::new(seed);
        let pair = sdn_topo::gen::random_permutation(n, &mut rng);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        for s in [
            Peacock::default().schedule(&inst).unwrap(),
            SlfGreedy::default().schedule(&inst).unwrap(),
        ] {
            let mut activated = BTreeSet::new();
            for (_, op) in s.all_ops() {
                if let RuleOp::Activate(v) = op {
                    prop_assert!(activated.insert(*v), "{v} activated twice in\n{s}");
                }
            }
            // every shared switch except dst must be activated
            let expected: BTreeSet<_> = inst
                .nodes_with_role(update_core::model::NodeRole::Shared)
                .into_iter()
                .filter(|&v| v != inst.dst())
                .collect();
            for v in expected {
                prop_assert!(activated.contains(&v), "{v} never activated in\n{s}");
            }
        }
    }

    #[test]
    fn contraction_preserves_jump_counts(n in 4u64..24, seed in 0u64..1_000_000) {
        let mut rng = DetRng::new(seed);
        let pair = sdn_topo::gen::random_permutation(n, &mut rng);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let c = Contracted::of(&inst);
        // jumps = |new path| - 1 (all switches shared in permutations)
        prop_assert_eq!(c.jumps.len(), inst.new_route().len() - 1);
        prop_assert_eq!(
            c.forward_count() + c.backward_count(),
            c.jumps.len()
        );
        prop_assert_eq!(c.old_len(), n as usize);
    }
}

/// Comb workloads interleave the interior halves so backward jumps
/// overlap; Peacock must still verify and finish in few rounds.
#[test]
fn peacock_handles_comb_workloads() {
    for n in [6u64, 12, 24, 48, 96] {
        let pair = sdn_topo::gen::comb(n);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let s = Peacock::default().schedule(&inst).unwrap();
        let r = verify_schedule(&inst, &s, PropertySet::loop_free_relaxed());
        assert!(r.is_ok(), "n={n}: {r}");
        let bound = 2 * (64 - n.leading_zeros() as usize) + 6;
        assert!(
            s.round_count() <= bound,
            "n={n}: {} rounds exceeds {bound}:\n{s}",
            s.round_count()
        );
    }
}

/// Schedules must also be *structurally* valid (no duplicate ops, role
/// mismatches, kind mixing) — checked by Schedule::validate inside the
/// verifier, exercised here on the fallback path explicitly.
#[test]
fn fallback_schedules_are_tagged_kind() {
    let mut rng = DetRng::new(99);
    for _ in 0..10 {
        let pair = sdn_topo::gen::waypointed(9, true, &mut rng);
        let inst = UpdateInstance::new(pair.old, pair.new, pair.waypoint).unwrap();
        let s = WayUp::default().schedule(&inst).unwrap();
        if s.fallback {
            assert_eq!(s.kind, update_core::schedule::ScheduleKind::Tagged);
            assert!(s.validate(&inst).is_ok());
        }
    }
}
