//! Workspace smoke test: the facade `prelude` quickstart promised by
//! the `src/lib.rs` rustdoc must compile and run as written. The same
//! snippet also runs as a doctest; this copy keeps the guarantee even
//! when doctests are filtered out, and asserts a little more about the
//! result.

use transient_updates::prelude::*;

#[test]
fn quickstart_from_lib_rustdoc_runs() {
    // The paper's Figure 1: 12 switches, h1@s1, h2@s12, waypoint s3.
    let fig = sdn_topo::builders::figure1();
    let inst = UpdateInstance::new(
        fig.old_route.clone(),
        fig.new_route.clone(),
        Some(fig.waypoint),
    )
    .expect("valid instance");

    // Schedule the update with WayUp and verify every transient state.
    let schedule = WayUp::default().schedule(&inst).expect("schedulable");
    let report = verify_schedule(&inst, &schedule, PropertySet::transiently_secure());
    assert!(report.is_ok(), "{report}");

    // The facade re-exports must expose a usable schedule.
    assert!(schedule.round_count() >= 1);
}

#[test]
fn prelude_reexports_cover_all_schedulers() {
    let fig = sdn_topo::builders::figure1();
    let inst = UpdateInstance::new(fig.old_route.clone(), fig.new_route.clone(), None)
        .expect("valid instance");

    // Every scheduler the prelude exports produces a verifiable
    // schedule for its own target property set.
    let peacock = Peacock::default().schedule(&inst).expect("peacock");
    assert!(verify_schedule(&inst, &peacock, PropertySet::loop_free_relaxed()).is_ok());

    let slf = SlfGreedy::default().schedule(&inst).expect("slf");
    assert!(verify_schedule(&inst, &slf, PropertySet::loop_free_strong()).is_ok());

    let two_phase = TwoPhaseCommit.schedule(&inst).expect("two-phase");
    assert!(verify_schedule(&inst, &two_phase, PropertySet::all()).is_ok());

    let one_shot = OneShot.schedule(&inst).expect("one-shot");
    assert!(!one_shot.fallback);
}
