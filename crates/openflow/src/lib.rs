//! # sdn-openflow
//!
//! An OpenFlow-1.0-style control protocol for the transient-updates
//! workspace: typed messages ([`messages`]), a match/action model
//! ([`flow`]), a binary wire codec with the classic
//! version/type/length/xid header ([`codec`]) and incremental framing
//! over byte streams ([`framing`]).
//!
//! The subset mirrors what the demo's controller actually uses —
//! FlowMod (add/modify/delete), BarrierRequest/BarrierReply for round
//! synchronization, Echo for liveness, PacketIn/PacketOut and Error —
//! while the codec exercises the real failure modes of a control
//! channel: truncated frames, unknown types, corrupted lengths. Fault
//! injection in `sdn-channel` flips bytes on the wire; every such
//! corruption must surface as a typed [`codec::CodecError`], never a
//! panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod flow;
pub mod framing;
pub mod messages;
pub mod wire;

pub use codec::{decode, encode, try_encode, CodecError, OFP_VERSION};
pub use flow::{Action, FlowMatch, PacketMeta};
pub use framing::FrameCodec;
pub use messages::{Envelope, FlowMod, FlowModCommand, OfMessage};
