//! Control messages.
//!
//! The subset of OpenFlow 1.0 the demo controller uses, as typed Rust
//! values. An [`Envelope`] pairs a message with its transaction id
//! ([`sdn_types::Xid`]); barrier replies echo the xid of their request,
//! which is how the round executor attributes acknowledgements.

use sdn_types::{DpId, PortNo, Xid};

use crate::flow::{Action, FlowMatch};

/// FlowMod sub-command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowModCommand {
    /// Insert a new flow entry (replaces an identical match+priority).
    Add,
    /// Modify the actions of matching entries (falls back to add when
    /// nothing matches, like OVS).
    Modify,
    /// Remove matching entries (exact match + priority).
    Delete,
}

/// A flow table modification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowMod {
    /// What to do.
    pub command: FlowModCommand,
    /// Entry priority (higher wins).
    pub priority: u16,
    /// The match.
    pub matcher: FlowMatch,
    /// Action list (empty = drop).
    pub actions: Vec<Action>,
    /// Opaque controller cookie (used to tag rule generations).
    pub cookie: u64,
}

/// A control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfMessage {
    /// Version negotiation greeting.
    Hello,
    /// Liveness probe.
    EchoRequest(Vec<u8>),
    /// Liveness response (echoes the request payload).
    EchoReply(Vec<u8>),
    /// Ask the switch for its identity.
    FeaturesRequest,
    /// Switch identity answer.
    FeaturesReply {
        /// Datapath id of the switch.
        dpid: DpId,
        /// Number of physical ports.
        n_ports: u32,
    },
    /// Flow table modification.
    FlowMod(FlowMod),
    /// Fence: the switch must finish all earlier messages of this
    /// connection before answering.
    BarrierRequest,
    /// Fence acknowledgement (echoes the request xid).
    BarrierReply,
    /// Data packet punted to the controller.
    PacketIn {
        /// Switch buffer reference.
        buffer_id: u32,
        /// Port the packet arrived on.
        in_port: PortNo,
        /// Raw packet bytes.
        data: Vec<u8>,
    },
    /// Controller-originated packet emission.
    PacketOut {
        /// Switch buffer reference (`u32::MAX` = data carried inline).
        buffer_id: u32,
        /// Port to emit on.
        out_port: PortNo,
        /// Raw packet bytes.
        data: Vec<u8>,
    },
    /// Error report.
    ErrorMsg {
        /// Error type (OpenFlow-style numeric class).
        etype: u16,
        /// Error code within the class.
        code: u16,
        /// Offending message prefix.
        data: Vec<u8>,
    },
    /// Request aggregate flow statistics.
    FlowStatsRequest,
    /// Aggregate flow statistics.
    FlowStatsReply {
        /// Number of table entries.
        entries: u32,
        /// Packets matched by all entries.
        packets: u64,
    },
}

impl OfMessage {
    /// Short human-readable name (for traces and logs).
    pub fn kind(&self) -> &'static str {
        match self {
            OfMessage::Hello => "hello",
            OfMessage::EchoRequest(_) => "echo-request",
            OfMessage::EchoReply(_) => "echo-reply",
            OfMessage::FeaturesRequest => "features-request",
            OfMessage::FeaturesReply { .. } => "features-reply",
            OfMessage::FlowMod(_) => "flow-mod",
            OfMessage::BarrierRequest => "barrier-request",
            OfMessage::BarrierReply => "barrier-reply",
            OfMessage::PacketIn { .. } => "packet-in",
            OfMessage::PacketOut { .. } => "packet-out",
            OfMessage::ErrorMsg { .. } => "error",
            OfMessage::FlowStatsRequest => "flow-stats-request",
            OfMessage::FlowStatsReply { .. } => "flow-stats-reply",
        }
    }
}

/// A message paired with its transaction id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Transaction id; replies echo the request's.
    pub xid: Xid,
    /// The message.
    pub msg: OfMessage,
}

impl Envelope {
    /// Convenience constructor.
    pub fn new(xid: Xid, msg: OfMessage) -> Self {
        Envelope { xid, msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let msgs = [
            OfMessage::Hello,
            OfMessage::BarrierRequest,
            OfMessage::BarrierReply,
            OfMessage::FeaturesRequest,
        ];
        let kinds: Vec<_> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "hello",
                "barrier-request",
                "barrier-reply",
                "features-request"
            ]
        );
    }

    #[test]
    fn envelope_carries_xid() {
        let e = Envelope::new(Xid(7), OfMessage::BarrierRequest);
        assert_eq!(e.xid, Xid(7));
        assert_eq!(e.msg.kind(), "barrier-request");
    }
}
