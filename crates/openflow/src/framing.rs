//! Incremental framing over a byte stream.
//!
//! Control connections deliver bytes, not messages. [`FrameCodec`]
//! accumulates incoming bytes and yields complete frames — the pattern
//! the async-networking guides teach for length-delimited protocols —
//! while bounding memory and surfacing corrupted length fields early.
//!
//! Errors are *not* sticky: a malformed frame is rejected and reported,
//! but the connection stays usable.
//!
//! * A frame whose header is valid but whose body fails to decode is
//!   consumed exactly (the declared length is trusted), so the stream
//!   stays in sync and the next frame parses normally.
//! * A garbage header (wrong version byte, absurd length) means the
//!   stream position itself is suspect; the codec *resyncs* by scanning
//!   forward for the next plausible frame start instead of tearing the
//!   connection down. Each such scan is counted in
//!   [`FrameCodec::resyncs`].
//!
//! This keeps one corrupted message — the common case under the
//! fault-injecting channel — from killing a connection that is
//! otherwise carrying thousands of healthy frames.

use bytes::BytesMut;

use crate::codec::{decode, CodecError, HEADER_LEN, MAX_FRAME_LEN, OFP_VERSION};
use crate::messages::Envelope;

/// Incremental decoder for a stream of frames.
#[derive(Debug, Default)]
pub struct FrameCodec {
    buf: BytesMut,
    errors: u64,
    resyncs: u64,
}

impl FrameCodec {
    /// Fresh codec.
    pub fn new() -> Self {
        FrameCodec::default()
    }

    /// Feed received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Malformed frames rejected so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Times the codec had to scan for a new frame boundary after a
    /// garbage header.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Whether a framing error poisoned the stream.
    #[deprecated(
        since = "0.1.0",
        note = "framing errors no longer poison the stream; always false"
    )]
    pub fn is_poisoned(&self) -> bool {
        false
    }

    /// Drop all buffered state (reconnect).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.errors = 0;
        self.resyncs = 0;
    }

    /// Whether the first buffered bytes look like a frame start: right
    /// version byte and, once visible, a sane declared length.
    fn head_is_plausible(buf: &[u8], at: usize) -> bool {
        if buf[at] != OFP_VERSION {
            return false;
        }
        if at + 4 <= buf.len() {
            let declared = u16::from_be_bytes([buf[at + 2], buf[at + 3]]) as usize;
            (HEADER_LEN..=MAX_FRAME_LEN).contains(&declared)
        } else {
            true // length not visible yet; give it the benefit of the doubt
        }
    }

    /// Discard bytes until the next frame start. Prefers an offset
    /// where a complete frame actually decodes (unambiguous); falls
    /// back to the first merely-plausible header, and drops the whole
    /// buffer when nothing looks like a frame at all.
    fn resync(&mut self) {
        self.resyncs += 1;
        let buf = &self.buf;
        let mut fallback = None;
        let mut skip = buf.len();
        for i in 1..buf.len() {
            if !Self::head_is_plausible(buf, i) {
                continue;
            }
            if fallback.is_none() {
                fallback = Some(i);
            }
            if i + 4 <= buf.len() {
                let declared = u16::from_be_bytes([buf[i + 2], buf[i + 3]]) as usize;
                if i + declared <= buf.len() && decode(&buf[i..i + declared]).is_ok() {
                    skip = i; // verified frame boundary
                    break;
                }
            }
        }
        if skip == buf.len() {
            skip = fallback.unwrap_or(buf.len());
        }
        let _ = self.buf.split_to(skip);
    }

    /// Try to extract the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed and `Ok(Some(env))`
    /// for each complete frame. `Err` reports one rejected frame; the
    /// codec stays usable and the *next* call resumes at the following
    /// frame boundary (exactly, for a body error under a valid header;
    /// after a resync scan, for a garbage header).
    pub fn next_frame(&mut self) -> Result<Option<Envelope>, CodecError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let version = self.buf[0];
        if version != OFP_VERSION {
            self.errors += 1;
            self.resync();
            return Err(CodecError::BadVersion(version));
        }
        let declared = u16::from_be_bytes([self.buf[2], self.buf[3]]) as usize;
        if !(HEADER_LEN..=MAX_FRAME_LEN).contains(&declared) {
            self.errors += 1;
            self.resync();
            return Err(CodecError::BadLength(declared));
        }
        if self.buf.len() < declared {
            return Ok(None);
        }
        let frame = self.buf.split_to(declared);
        match decode(&frame) {
            Ok(env) => Ok(Some(env)),
            Err(e) => {
                // The declared length was valid, so exactly this frame
                // was consumed: the stream is still in sync.
                self.errors += 1;
                Err(e)
            }
        }
    }

    /// Drain every complete frame currently buffered, stopping at the
    /// first malformed one (which is consumed; calling again yields the
    /// frames after it).
    pub fn drain(&mut self) -> Result<Vec<Envelope>, CodecError> {
        let mut out = Vec::new();
        while let Some(env) = self.next_frame()? {
            out.push(env);
        }
        Ok(out)
    }

    /// Drain every complete frame currently buffered, skipping
    /// malformed ones. Returns the good frames and how many were
    /// rejected — the shape the event-loop transport wants, where a
    /// corrupted frame must cost exactly one message, not the
    /// connection.
    pub fn drain_lossy(&mut self) -> (Vec<Envelope>, u64) {
        let mut out = Vec::new();
        let mut rejected = 0;
        loop {
            match self.next_frame() {
                Ok(Some(env)) => out.push(env),
                Ok(None) => break,
                Err(_) => rejected += 1,
            }
        }
        (out, rejected)
    }
}

/// Encode an envelope and append it to an outgoing buffer.
pub fn encode_to(env: &Envelope, out: &mut BytesMut) {
    let frame = crate::codec::encode(env);
    out.extend_from_slice(&frame);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::OfMessage;
    use sdn_types::Xid;

    fn env(x: u32, msg: OfMessage) -> Envelope {
        Envelope::new(Xid(x), msg)
    }

    #[test]
    fn single_frame_roundtrip() {
        let mut c = FrameCodec::new();
        let e = env(1, OfMessage::BarrierRequest);
        c.feed(&crate::codec::encode(&e));
        assert_eq!(c.next_frame().unwrap(), Some(e));
        assert_eq!(c.next_frame().unwrap(), None);
    }

    #[test]
    fn partial_delivery_boundaries() {
        let mut c = FrameCodec::new();
        let e = env(2, OfMessage::EchoRequest(vec![9; 20]));
        let bytes = crate::codec::encode(&e);
        // feed one byte at a time
        for (i, b) in bytes.iter().enumerate() {
            c.feed(&[*b]);
            let got = c.next_frame().unwrap();
            if i + 1 == bytes.len() {
                assert_eq!(got, Some(e.clone()));
            } else {
                assert_eq!(got, None, "premature frame at byte {i}");
            }
        }
    }

    #[test]
    fn coalesced_frames_split_correctly() {
        let mut c = FrameCodec::new();
        let e1 = env(1, OfMessage::Hello);
        let e2 = env(2, OfMessage::BarrierRequest);
        let e3 = env(3, OfMessage::EchoReply(vec![1, 2]));
        let mut all = Vec::new();
        for e in [&e1, &e2, &e3] {
            all.extend_from_slice(&crate::codec::encode(e));
        }
        c.feed(&all);
        assert_eq!(c.drain().unwrap(), vec![e1, e2, e3]);
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn corrupted_version_does_not_poison() {
        let mut c = FrameCodec::new();
        let good = env(2, OfMessage::BarrierRequest);
        let mut bytes = crate::codec::encode(&env(1, OfMessage::Hello)).to_vec();
        bytes[0] = 0xff;
        bytes.extend_from_slice(&crate::codec::encode(&good));
        c.feed(&bytes);
        assert!(matches!(c.next_frame(), Err(CodecError::BadVersion(0xff))));
        // the stream resynced onto the next valid frame
        assert_eq!(c.next_frame().unwrap(), Some(good));
        assert_eq!(c.errors(), 1);
        assert_eq!(c.resyncs(), 1);
    }

    #[test]
    fn corrupted_length_does_not_poison() {
        let mut c = FrameCodec::new();
        let good = env(3, OfMessage::Hello);
        let mut bytes = crate::codec::encode(&env(1, OfMessage::Hello)).to_vec();
        bytes[2] = 0xff;
        bytes[3] = 0xff; // declared 65535 > MAX_FRAME_LEN
        bytes.extend_from_slice(&crate::codec::encode(&good));
        c.feed(&bytes);
        assert!(matches!(c.next_frame(), Err(CodecError::BadLength(_))));
        assert_eq!(c.next_frame().unwrap(), Some(good));
    }

    #[test]
    fn body_error_consumes_exactly_one_frame() {
        let mut c = FrameCodec::new();
        // valid header, unknown type code: consumed as one frame
        let mut bad = crate::codec::encode(&env(1, OfMessage::Hello)).to_vec();
        bad[1] = 250;
        let good = env(2, OfMessage::BarrierReply);
        c.feed(&bad);
        c.feed(&crate::codec::encode(&good));
        assert!(matches!(c.next_frame(), Err(CodecError::UnknownType(250))));
        assert_eq!(c.next_frame().unwrap(), Some(good));
        assert_eq!(c.resyncs(), 0, "in-sync rejection needs no resync scan");
    }

    #[test]
    fn garbage_then_truncated_then_good_stream_survives() {
        let mut c = FrameCodec::new();
        let good = env(9, OfMessage::EchoReply(vec![5, 6]));
        c.feed(&[0x47, 0x41, 0x52, 0x42]); // pure garbage
        c.feed(&crate::codec::encode(&good));
        let (frames, rejected) = c.drain_lossy();
        assert_eq!(frames, vec![good]);
        assert!(rejected >= 1);
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = FrameCodec::new();
        c.feed(&[0xff; 16]);
        let _ = c.next_frame();
        c.reset();
        assert_eq!(c.buffered(), 0);
        assert_eq!(c.errors(), 0);
        c.feed(&crate::codec::encode(&env(2, OfMessage::Hello)));
        assert!(c.next_frame().unwrap().is_some());
    }

    #[test]
    fn encode_to_appends() {
        let mut out = BytesMut::new();
        encode_to(&env(1, OfMessage::Hello), &mut out);
        encode_to(&env(2, OfMessage::BarrierRequest), &mut out);
        let mut c = FrameCodec::new();
        c.feed(&out);
        assert_eq!(c.drain().unwrap().len(), 2);
    }
}
