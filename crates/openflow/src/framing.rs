//! Incremental framing over a byte stream.
//!
//! Control connections deliver bytes, not messages. [`FrameCodec`]
//! accumulates incoming bytes and yields complete frames — the pattern
//! the async-networking guides teach for length-delimited protocols —
//! while bounding memory and surfacing corrupted length fields early.
//!
//! Errors are *sticky*: a stream that mis-framed once cannot be trusted
//! again (we no longer know where frames begin) and must be reset,
//! mirroring how a real controller would drop and re-establish the
//! connection.

use bytes::BytesMut;

use crate::codec::{decode, CodecError, HEADER_LEN, MAX_FRAME_LEN, OFP_VERSION};
use crate::messages::Envelope;

/// Incremental decoder for a stream of frames.
#[derive(Debug, Default)]
pub struct FrameCodec {
    buf: BytesMut,
    poisoned: bool,
}

impl FrameCodec {
    /// Fresh codec.
    pub fn new() -> Self {
        FrameCodec::default()
    }

    /// Feed received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether a framing error poisoned the stream.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Drop all buffered state (reconnect).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.poisoned = false;
    }

    /// Try to extract the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed, `Ok(Some(env))`
    /// for each complete frame, and `Err` on malformed input, after
    /// which the codec is poisoned until [`FrameCodec::reset`].
    pub fn next_frame(&mut self) -> Result<Option<Envelope>, CodecError> {
        if self.poisoned {
            return Err(CodecError::BadLength(0));
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let version = self.buf[0];
        if version != OFP_VERSION {
            self.poisoned = true;
            return Err(CodecError::BadVersion(version));
        }
        let declared = u16::from_be_bytes([self.buf[2], self.buf[3]]) as usize;
        if !(HEADER_LEN..=MAX_FRAME_LEN).contains(&declared) {
            self.poisoned = true;
            return Err(CodecError::BadLength(declared));
        }
        if self.buf.len() < declared {
            return Ok(None);
        }
        let frame = self.buf.split_to(declared);
        match decode(&frame) {
            Ok(env) => Ok(Some(env)),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Drain every complete frame currently buffered.
    pub fn drain(&mut self) -> Result<Vec<Envelope>, CodecError> {
        let mut out = Vec::new();
        while let Some(env) = self.next_frame()? {
            out.push(env);
        }
        Ok(out)
    }
}

/// Encode an envelope and append it to an outgoing buffer.
pub fn encode_to(env: &Envelope, out: &mut BytesMut) {
    let frame = crate::codec::encode(env);
    out.extend_from_slice(&frame);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::OfMessage;
    use sdn_types::Xid;

    fn env(x: u32, msg: OfMessage) -> Envelope {
        Envelope::new(Xid(x), msg)
    }

    #[test]
    fn single_frame_roundtrip() {
        let mut c = FrameCodec::new();
        let e = env(1, OfMessage::BarrierRequest);
        c.feed(&crate::codec::encode(&e));
        assert_eq!(c.next_frame().unwrap(), Some(e));
        assert_eq!(c.next_frame().unwrap(), None);
    }

    #[test]
    fn partial_delivery_boundaries() {
        let mut c = FrameCodec::new();
        let e = env(2, OfMessage::EchoRequest(vec![9; 20]));
        let bytes = crate::codec::encode(&e);
        // feed one byte at a time
        for (i, b) in bytes.iter().enumerate() {
            c.feed(&[*b]);
            let got = c.next_frame().unwrap();
            if i + 1 == bytes.len() {
                assert_eq!(got, Some(e.clone()));
            } else {
                assert_eq!(got, None, "premature frame at byte {i}");
            }
        }
    }

    #[test]
    fn coalesced_frames_split_correctly() {
        let mut c = FrameCodec::new();
        let e1 = env(1, OfMessage::Hello);
        let e2 = env(2, OfMessage::BarrierRequest);
        let e3 = env(3, OfMessage::EchoReply(vec![1, 2]));
        let mut all = Vec::new();
        for e in [&e1, &e2, &e3] {
            all.extend_from_slice(&crate::codec::encode(e));
        }
        c.feed(&all);
        assert_eq!(c.drain().unwrap(), vec![e1, e2, e3]);
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn corrupted_version_poisons() {
        let mut c = FrameCodec::new();
        let mut bytes = crate::codec::encode(&env(1, OfMessage::Hello)).to_vec();
        bytes[0] = 0xff;
        c.feed(&bytes);
        assert!(c.next_frame().is_err());
        assert!(c.is_poisoned());
        // stays poisoned
        assert!(c.next_frame().is_err());
        c.reset();
        assert!(!c.is_poisoned());
        assert_eq!(c.buffered(), 0);
        // works again after reset
        c.feed(&crate::codec::encode(&env(2, OfMessage::Hello)));
        assert!(c.next_frame().unwrap().is_some());
    }

    #[test]
    fn corrupted_length_poisons() {
        let mut c = FrameCodec::new();
        let mut bytes = crate::codec::encode(&env(1, OfMessage::Hello)).to_vec();
        bytes[2] = 0xff;
        bytes[3] = 0xff; // declared 65535 > MAX_FRAME_LEN
        c.feed(&bytes);
        assert!(matches!(c.next_frame(), Err(CodecError::BadLength(_))));
    }

    #[test]
    fn encode_to_appends() {
        let mut out = BytesMut::new();
        encode_to(&env(1, OfMessage::Hello), &mut out);
        encode_to(&env(2, OfMessage::BarrierRequest), &mut out);
        let mut c = FrameCodec::new();
        c.feed(&out);
        assert_eq!(c.drain().unwrap().len(), 2);
    }
}
