//! Exact OpenFlow 1.0 wire layouts.
//!
//! This module holds the wire-facing types — structs whose fields map
//! one-to-one onto the byte layouts of `ofp_header`, `ofp_match`,
//! `ofp_flow_mod`, the action TLVs and the rest of the OpenFlow 1.0
//! messages the stack uses — plus explicit [`TryFrom`] conversions
//! between them and the internal model in [`crate::messages`]. The
//! codec in [`crate::codec`] is a thin composition of the two: encode
//! is `model → wire → bytes`, decode is `bytes → wire → model`.
//!
//! All integers are big-endian (network order), lengths include the
//! 8-byte header, and the layouts mirror `ofp_header.rs` /
//! `openflow0x01.rs` of the reference Rust implementation:
//!
//! ```text
//! ofp_header (8):    version u8 | type u8 | length u16 | xid u32
//! ofp_match (40):    wildcards u32 | in_port u16 | dl_src [6] |
//!                    dl_dst [6] | dl_vlan u16 | dl_vlan_pcp u8 |
//!                    pad u8 | dl_type u16 | nw_tos u8 | nw_proto u8 |
//!                    pad [2] | nw_src u32 | nw_dst u32 | tp_src u16 |
//!                    tp_dst u16
//! ofp_flow_mod (72): header | match | cookie u64 | command u16 |
//!                    idle_timeout u16 | hard_timeout u16 |
//!                    priority u16 | buffer_id u32 | out_port u16 |
//!                    flags u16 | actions ...
//! ofp_action (8n):   type u16 | len u16 | body (8-byte aligned)
//! ```
//!
//! ## Model ↔ wire mapping
//!
//! The internal model is a semantic subset; the conversions pin down
//! how its fields ride on real OpenFlow 1.0:
//!
//! * `FlowMatch.in_port` → `ofp_match.in_port` (wildcard bit
//!   `OFPFW_IN_PORT` when absent);
//! * `FlowMatch.src`/`dst` (host ids) → `nw_src`/`nw_dst` with the
//!   corresponding CIDR wildcard bits;
//! * `FlowMatch.tag` (version tag) → `dl_vlan` with `OFPFW_DL_VLAN`;
//! * `Action::Output(p)` → `OFPAT_OUTPUT{port: p}`;
//!   `Action::ToController` → `OFPAT_OUTPUT{port: OFPP_CONTROLLER}`;
//! * `Action::SetTag` → `OFPAT_SET_VLAN_VID`; `Action::StripTag` →
//!   `OFPAT_STRIP_VLAN`;
//! * `Action::Drop` → a vendor action (`OFPAT_VENDOR`, vendor id
//!   [`VENDOR_ID`], subtype 0). Real OpenFlow 1.0 expresses "drop" as
//!   an empty action list; the explicit marker keeps model round-trips
//!   lossless when `Drop` appears alongside other actions.
//! * `FlowModCommand::{Add, Modify, Delete}` →
//!   `OFPFC_{ADD, MODIFY, DELETE_STRICT}` (the model's delete is
//!   exact-match + priority, i.e. strict).
//!
//! Ports are `u16` on the 1.0 wire while the model uses 32-bit
//! [`PortNo`]; physical ports below [`OFPP_MAX`] pass through, the
//! `CONTROLLER`/`LOCAL` pseudo-ports map onto their 16-bit codes, and
//! anything else is a conversion error (never a panic).

use bytes::{BufMut, BytesMut};

use sdn_types::{DpId, HostId, PortNo, VersionTag, Xid};

use crate::codec::CodecError;
use crate::flow::{Action, FlowMatch};
use crate::messages::{Envelope, FlowMod, FlowModCommand, OfMessage};

/// Protocol version byte of OpenFlow 1.0.
pub const OFP_VERSION: u8 = 0x01;

/// `ofp_header` size in bytes.
pub const HEADER_LEN: usize = 8;

/// `ofp_match` size in bytes.
pub const MATCH_LEN: usize = 40;

/// `ofp_phy_port` size in bytes (features-reply port descriptor).
pub const PHY_PORT_LEN: usize = 48;

/// Maximum valid physical port number (`OFPP_MAX`).
pub const OFPP_MAX: u16 = 0xff00;
/// The `OFPP_CONTROLLER` pseudo-port.
pub const OFPP_CONTROLLER: u16 = 0xfffd;
/// The `OFPP_LOCAL` pseudo-port.
pub const OFPP_LOCAL: u16 = 0xfffe;
/// The `OFPP_NONE` pseudo-port.
pub const OFPP_NONE: u16 = 0xffff;

/// Vendor id used for the drop-marker vendor action.
pub const VENDOR_ID: u32 = 0x5eed_0f10;

/// `ofp_type` codes (OpenFlow 1.0 numbering).
pub mod type_code {
    /// OFPT_HELLO
    pub const HELLO: u8 = 0;
    /// OFPT_ERROR
    pub const ERROR: u8 = 1;
    /// OFPT_ECHO_REQUEST
    pub const ECHO_REQUEST: u8 = 2;
    /// OFPT_ECHO_REPLY
    pub const ECHO_REPLY: u8 = 3;
    /// OFPT_FEATURES_REQUEST
    pub const FEATURES_REQUEST: u8 = 5;
    /// OFPT_FEATURES_REPLY
    pub const FEATURES_REPLY: u8 = 6;
    /// OFPT_PACKET_IN
    pub const PACKET_IN: u8 = 10;
    /// OFPT_PACKET_OUT
    pub const PACKET_OUT: u8 = 13;
    /// OFPT_FLOW_MOD
    pub const FLOW_MOD: u8 = 14;
    /// OFPT_STATS_REQUEST
    pub const STATS_REQUEST: u8 = 16;
    /// OFPT_STATS_REPLY
    pub const STATS_REPLY: u8 = 17;
    /// OFPT_BARRIER_REQUEST
    pub const BARRIER_REQUEST: u8 = 18;
    /// OFPT_BARRIER_REPLY
    pub const BARRIER_REPLY: u8 = 19;
}

/// `ofp_flow_wildcards` bits.
pub mod wildcards {
    /// Wildcard the ingress port.
    pub const IN_PORT: u32 = 1 << 0;
    /// Wildcard the VLAN id.
    pub const DL_VLAN: u32 = 1 << 1;
    /// Wildcard the Ethernet source.
    pub const DL_SRC: u32 = 1 << 2;
    /// Wildcard the Ethernet destination.
    pub const DL_DST: u32 = 1 << 3;
    /// Wildcard the Ethernet type.
    pub const DL_TYPE: u32 = 1 << 4;
    /// Wildcard the IP protocol.
    pub const NW_PROTO: u32 = 1 << 5;
    /// Wildcard the transport source port.
    pub const TP_SRC: u32 = 1 << 6;
    /// Wildcard the transport destination port.
    pub const TP_DST: u32 = 1 << 7;
    /// Bit offset of the nw_src CIDR wildcard count.
    pub const NW_SRC_SHIFT: u32 = 8;
    /// Fully-wildcarded nw_src (≥ 32 ignored bits).
    pub const NW_SRC_ALL: u32 = 32 << NW_SRC_SHIFT;
    /// Mask of the nw_src CIDR field.
    pub const NW_SRC_MASK: u32 = 0x3f << NW_SRC_SHIFT;
    /// Bit offset of the nw_dst CIDR wildcard count.
    pub const NW_DST_SHIFT: u32 = 14;
    /// Fully-wildcarded nw_dst.
    pub const NW_DST_ALL: u32 = 32 << NW_DST_SHIFT;
    /// Mask of the nw_dst CIDR field.
    pub const NW_DST_MASK: u32 = 0x3f << NW_DST_SHIFT;
    /// Wildcard the VLAN priority.
    pub const DL_VLAN_PCP: u32 = 1 << 20;
    /// Wildcard the IP ToS bits.
    pub const NW_TOS: u32 = 1 << 21;
    /// Everything wildcarded.
    pub const ALL: u32 = (1 << 22) - 1;
}

/// `ofp_flow_mod_command` codes.
pub mod fm_command {
    /// OFPFC_ADD
    pub const ADD: u16 = 0;
    /// OFPFC_MODIFY
    pub const MODIFY: u16 = 1;
    /// OFPFC_MODIFY_STRICT
    pub const MODIFY_STRICT: u16 = 2;
    /// OFPFC_DELETE
    pub const DELETE: u16 = 3;
    /// OFPFC_DELETE_STRICT
    pub const DELETE_STRICT: u16 = 4;
}

/// `ofp_action_type` codes.
pub mod action_type {
    /// OFPAT_OUTPUT
    pub const OUTPUT: u16 = 0;
    /// OFPAT_SET_VLAN_VID
    pub const SET_VLAN_VID: u16 = 1;
    /// OFPAT_STRIP_VLAN
    pub const STRIP_VLAN: u16 = 3;
    /// OFPAT_VENDOR
    pub const VENDOR: u16 = 0xffff;
}

/// `ofp_stats_types` codes.
pub mod stats_type {
    /// OFPST_AGGREGATE
    pub const AGGREGATE: u16 = 2;
}

/// The classic 8-byte `ofp_header`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Protocol version (0x01).
    pub version: u8,
    /// Message type code.
    pub typ: u8,
    /// Total frame length including this header.
    pub length: u16,
    /// Transaction id.
    pub xid: u32,
}

impl Header {
    /// Serialize in network order.
    pub fn marshal(&self, buf: &mut BytesMut) {
        buf.put_u8(self.version);
        buf.put_u8(self.typ);
        buf.put_u16(self.length);
        buf.put_u32(self.xid);
    }

    /// Parse from the first [`HEADER_LEN`] bytes (caller guarantees
    /// length).
    pub fn parse(bytes: &[u8]) -> Header {
        Header {
            version: bytes[0],
            typ: bytes[1],
            length: u16::from_be_bytes([bytes[2], bytes[3]]),
            xid: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        }
    }
}

/// Cursor over a body slice; every read is bounds-checked and yields a
/// typed [`CodecError`] on underflow.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.pos + n > self.buf.len() {
            Err(CodecError::Truncated {
                expected: self.pos + n,
                got: self.buf.len(),
            })
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        self.need(2)?;
        let v = u16::from_be_bytes([self.buf[self.pos], self.buf[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(u32::from_be_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_be_bytes(b))
    }

    fn skip(&mut self, n: usize) -> Result<(), CodecError> {
        self.need(n)?;
        self.pos += n;
        Ok(())
    }

    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, CodecError> {
        self.need(n)?;
        let v = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(v)
    }

    fn rest(&mut self) -> Vec<u8> {
        let v = self.buf[self.pos..].to_vec();
        self.pos = self.buf.len();
        v
    }

    fn finish(&self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }
}

fn port_to_wire(p: PortNo) -> Result<u16, CodecError> {
    match p {
        PortNo::CONTROLLER => Ok(OFPP_CONTROLLER),
        PortNo::LOCAL => Ok(OFPP_LOCAL),
        PortNo(n) if n < OFPP_MAX as u32 => Ok(n as u16),
        PortNo(n) => Err(CodecError::PortOutOfRange(n)),
    }
}

fn port_from_wire(p: u16) -> PortNo {
    match p {
        OFPP_CONTROLLER => PortNo::CONTROLLER,
        OFPP_LOCAL => PortNo::LOCAL,
        n => PortNo(n as u32),
    }
}

/// The 40-byte `ofp_match`, fields exactly as on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireMatch {
    /// Wildcard bitmap ([`wildcards`]).
    pub wildcards: u32,
    /// Ingress port.
    pub in_port: u16,
    /// Ethernet source address.
    pub dl_src: [u8; 6],
    /// Ethernet destination address.
    pub dl_dst: [u8; 6],
    /// VLAN id (carries the model's version tag).
    pub dl_vlan: u16,
    /// VLAN priority.
    pub dl_vlan_pcp: u8,
    /// Ethernet frame type.
    pub dl_type: u16,
    /// IP ToS bits.
    pub nw_tos: u8,
    /// IP protocol.
    pub nw_proto: u8,
    /// IP source (carries the model's source host id).
    pub nw_src: u32,
    /// IP destination (carries the model's destination host id).
    pub nw_dst: u32,
    /// Transport source port.
    pub tp_src: u16,
    /// Transport destination port.
    pub tp_dst: u16,
}

impl WireMatch {
    /// Everything-wildcarded match.
    pub const ALL: WireMatch = WireMatch {
        wildcards: wildcards::ALL,
        in_port: 0,
        dl_src: [0; 6],
        dl_dst: [0; 6],
        dl_vlan: 0,
        dl_vlan_pcp: 0,
        dl_type: 0,
        nw_tos: 0,
        nw_proto: 0,
        nw_src: 0,
        nw_dst: 0,
        tp_src: 0,
        tp_dst: 0,
    };

    /// Serialize the 40-byte layout.
    pub fn marshal(&self, buf: &mut BytesMut) {
        buf.put_u32(self.wildcards);
        buf.put_u16(self.in_port);
        buf.put_slice(&self.dl_src);
        buf.put_slice(&self.dl_dst);
        buf.put_u16(self.dl_vlan);
        buf.put_u8(self.dl_vlan_pcp);
        buf.put_u8(0); // pad
        buf.put_u16(self.dl_type);
        buf.put_u8(self.nw_tos);
        buf.put_u8(self.nw_proto);
        buf.put_slice(&[0u8; 2]); // pad
        buf.put_u32(self.nw_src);
        buf.put_u32(self.nw_dst);
        buf.put_u16(self.tp_src);
        buf.put_u16(self.tp_dst);
    }

    fn parse(r: &mut Reader<'_>) -> Result<WireMatch, CodecError> {
        let wc = r.u32()?;
        let in_port = r.u16()?;
        let mut dl_src = [0u8; 6];
        dl_src.copy_from_slice(&r.bytes(6)?);
        let mut dl_dst = [0u8; 6];
        dl_dst.copy_from_slice(&r.bytes(6)?);
        let dl_vlan = r.u16()?;
        let dl_vlan_pcp = r.u8()?;
        r.skip(1)?;
        let dl_type = r.u16()?;
        let nw_tos = r.u8()?;
        let nw_proto = r.u8()?;
        r.skip(2)?;
        let nw_src = r.u32()?;
        let nw_dst = r.u32()?;
        let tp_src = r.u16()?;
        let tp_dst = r.u16()?;
        Ok(WireMatch {
            wildcards: wc,
            in_port,
            dl_src,
            dl_dst,
            dl_vlan,
            dl_vlan_pcp,
            dl_type,
            nw_tos,
            nw_proto,
            nw_src,
            nw_dst,
            tp_src,
            tp_dst,
        })
    }
}

impl TryFrom<&FlowMatch> for WireMatch {
    type Error = CodecError;

    fn try_from(m: &FlowMatch) -> Result<WireMatch, CodecError> {
        let mut w = WireMatch::ALL;
        if let Some(p) = m.in_port {
            w.wildcards &= !wildcards::IN_PORT;
            w.in_port = port_to_wire(p)?;
        }
        if let Some(s) = m.src {
            w.wildcards &= !wildcards::NW_SRC_MASK;
            w.nw_src = s.0;
        }
        if let Some(d) = m.dst {
            w.wildcards &= !wildcards::NW_DST_MASK;
            w.nw_dst = d.0;
        }
        if let Some(t) = m.tag {
            w.wildcards &= !wildcards::DL_VLAN;
            w.dl_vlan = t.0;
        }
        Ok(w)
    }
}

impl TryFrom<&WireMatch> for FlowMatch {
    type Error = CodecError;

    fn try_from(w: &WireMatch) -> Result<FlowMatch, CodecError> {
        let mut m = FlowMatch::ANY;
        if w.wildcards & wildcards::IN_PORT == 0 {
            m.in_port = Some(port_from_wire(w.in_port));
        }
        if (w.wildcards & wildcards::NW_SRC_MASK) >> wildcards::NW_SRC_SHIFT < 32 {
            m.src = Some(HostId(w.nw_src));
        }
        if (w.wildcards & wildcards::NW_DST_MASK) >> wildcards::NW_DST_SHIFT < 32 {
            m.dst = Some(HostId(w.nw_dst));
        }
        if w.wildcards & wildcards::DL_VLAN == 0 {
            m.tag = Some(VersionTag(w.dl_vlan));
        }
        Ok(m)
    }
}

/// An OpenFlow 1.0 action TLV (8-byte aligned structs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireAction {
    /// `ofp_action_output`: type 0, len 8, port u16, max_len u16.
    Output {
        /// Output port (u16 on the 1.0 wire).
        port: u16,
        /// Bytes to send to the controller when `port` is
        /// `OFPP_CONTROLLER`.
        max_len: u16,
    },
    /// `ofp_action_vlan_vid`: type 1, len 8, vlan_vid u16, pad\[2\].
    SetVlanVid(u16),
    /// `ofp_action_header`: type 3, len 8, pad\[4\].
    StripVlan,
    /// `ofp_action_vendor_header`: type 0xffff, len 16, vendor u32,
    /// subtype u32, pad\[4\]. Subtype 0 under [`VENDOR_ID`] is the
    /// explicit drop marker.
    Vendor {
        /// Vendor id.
        vendor: u32,
        /// Vendor-defined subtype.
        subtype: u32,
    },
}

impl WireAction {
    /// Encoded length in bytes (always a multiple of 8).
    pub fn len(&self) -> usize {
        match self {
            WireAction::Output { .. } | WireAction::SetVlanVid(_) | WireAction::StripVlan => 8,
            WireAction::Vendor { .. } => 16,
        }
    }

    /// Whether the TLV is zero-sized — never true; present to satisfy
    /// the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serialize the TLV.
    pub fn marshal(&self, buf: &mut BytesMut) {
        match *self {
            WireAction::Output { port, max_len } => {
                buf.put_u16(action_type::OUTPUT);
                buf.put_u16(8);
                buf.put_u16(port);
                buf.put_u16(max_len);
            }
            WireAction::SetVlanVid(vid) => {
                buf.put_u16(action_type::SET_VLAN_VID);
                buf.put_u16(8);
                buf.put_u16(vid);
                buf.put_slice(&[0u8; 2]);
            }
            WireAction::StripVlan => {
                buf.put_u16(action_type::STRIP_VLAN);
                buf.put_u16(8);
                buf.put_slice(&[0u8; 4]);
            }
            WireAction::Vendor { vendor, subtype } => {
                buf.put_u16(action_type::VENDOR);
                buf.put_u16(16);
                buf.put_u32(vendor);
                buf.put_u32(subtype);
                buf.put_slice(&[0u8; 4]);
            }
        }
    }

    fn parse(r: &mut Reader<'_>) -> Result<WireAction, CodecError> {
        let typ = r.u16()?;
        let len = r.u16()? as usize;
        if len < 8 || !len.is_multiple_of(8) {
            return Err(CodecError::BadActionLength(len));
        }
        match typ {
            action_type::OUTPUT => {
                if len != 8 {
                    return Err(CodecError::BadActionLength(len));
                }
                let port = r.u16()?;
                let max_len = r.u16()?;
                Ok(WireAction::Output { port, max_len })
            }
            action_type::SET_VLAN_VID => {
                if len != 8 {
                    return Err(CodecError::BadActionLength(len));
                }
                let vid = r.u16()?;
                r.skip(2)?;
                Ok(WireAction::SetVlanVid(vid))
            }
            action_type::STRIP_VLAN => {
                if len != 8 {
                    return Err(CodecError::BadActionLength(len));
                }
                r.skip(4)?;
                Ok(WireAction::StripVlan)
            }
            action_type::VENDOR => {
                if len != 16 {
                    return Err(CodecError::BadActionLength(len));
                }
                let vendor = r.u32()?;
                let subtype = r.u32()?;
                r.skip(4)?;
                Ok(WireAction::Vendor { vendor, subtype })
            }
            t => Err(CodecError::UnknownAction(t)),
        }
    }
}

impl TryFrom<&Action> for WireAction {
    type Error = CodecError;

    fn try_from(a: &Action) -> Result<WireAction, CodecError> {
        Ok(match a {
            Action::Output(p) => WireAction::Output {
                port: port_to_wire(*p)?,
                max_len: 0,
            },
            Action::ToController => WireAction::Output {
                port: OFPP_CONTROLLER,
                max_len: 0xffff,
            },
            Action::SetTag(t) => WireAction::SetVlanVid(t.0),
            Action::StripTag => WireAction::StripVlan,
            Action::Drop => WireAction::Vendor {
                vendor: VENDOR_ID,
                subtype: 0,
            },
        })
    }
}

impl TryFrom<&WireAction> for Action {
    type Error = CodecError;

    fn try_from(w: &WireAction) -> Result<Action, CodecError> {
        Ok(match *w {
            WireAction::Output {
                port: OFPP_CONTROLLER,
                ..
            } => Action::ToController,
            WireAction::Output { port, .. } => Action::Output(port_from_wire(port)),
            WireAction::SetVlanVid(vid) => Action::SetTag(VersionTag(vid)),
            WireAction::StripVlan => Action::StripTag,
            WireAction::Vendor {
                vendor: VENDOR_ID,
                subtype: 0,
            } => Action::Drop,
            WireAction::Vendor { vendor, .. } => return Err(CodecError::UnknownVendor(vendor)),
        })
    }
}

/// `ofp_flow_mod` minus the header: 64 fixed bytes plus action TLVs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFlowMod {
    /// The 40-byte match.
    pub matcher: WireMatch,
    /// Opaque controller cookie.
    pub cookie: u64,
    /// [`fm_command`] code.
    pub command: u16,
    /// Idle timeout in seconds (0 = permanent).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = permanent).
    pub hard_timeout: u16,
    /// Entry priority.
    pub priority: u16,
    /// Buffered-packet id (`0xffff_ffff` = none).
    pub buffer_id: u32,
    /// Output-port filter for delete commands (`OFPP_NONE` = any).
    pub out_port: u16,
    /// `ofp_flow_mod_flags` bitmap.
    pub flags: u16,
    /// Action TLVs.
    pub actions: Vec<WireAction>,
}

impl WireFlowMod {
    fn body_len(&self) -> usize {
        MATCH_LEN + 24 + self.actions.iter().map(WireAction::len).sum::<usize>()
    }

    fn marshal(&self, buf: &mut BytesMut) {
        self.matcher.marshal(buf);
        buf.put_u64(self.cookie);
        buf.put_u16(self.command);
        buf.put_u16(self.idle_timeout);
        buf.put_u16(self.hard_timeout);
        buf.put_u16(self.priority);
        buf.put_u32(self.buffer_id);
        buf.put_u16(self.out_port);
        buf.put_u16(self.flags);
        for a in &self.actions {
            a.marshal(buf);
        }
    }

    fn parse(r: &mut Reader<'_>) -> Result<WireFlowMod, CodecError> {
        let matcher = WireMatch::parse(r)?;
        let cookie = r.u64()?;
        let command = r.u16()?;
        let idle_timeout = r.u16()?;
        let hard_timeout = r.u16()?;
        let priority = r.u16()?;
        let buffer_id = r.u32()?;
        let out_port = r.u16()?;
        let flags = r.u16()?;
        let mut actions = Vec::new();
        while r.remaining() > 0 {
            actions.push(WireAction::parse(r)?);
        }
        Ok(WireFlowMod {
            matcher,
            cookie,
            command,
            idle_timeout,
            hard_timeout,
            priority,
            buffer_id,
            out_port,
            flags,
            actions,
        })
    }
}

impl TryFrom<&FlowMod> for WireFlowMod {
    type Error = CodecError;

    fn try_from(fm: &FlowMod) -> Result<WireFlowMod, CodecError> {
        Ok(WireFlowMod {
            matcher: WireMatch::try_from(&fm.matcher)?,
            cookie: fm.cookie,
            command: match fm.command {
                FlowModCommand::Add => fm_command::ADD,
                FlowModCommand::Modify => fm_command::MODIFY,
                FlowModCommand::Delete => fm_command::DELETE_STRICT,
            },
            idle_timeout: 0,
            hard_timeout: 0,
            priority: fm.priority,
            buffer_id: u32::MAX,
            out_port: OFPP_NONE,
            flags: 0,
            actions: fm
                .actions
                .iter()
                .map(WireAction::try_from)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl TryFrom<&WireFlowMod> for FlowMod {
    type Error = CodecError;

    fn try_from(w: &WireFlowMod) -> Result<FlowMod, CodecError> {
        Ok(FlowMod {
            command: match w.command {
                fm_command::ADD => FlowModCommand::Add,
                fm_command::MODIFY | fm_command::MODIFY_STRICT => FlowModCommand::Modify,
                fm_command::DELETE | fm_command::DELETE_STRICT => FlowModCommand::Delete,
                c => return Err(CodecError::UnknownCommand(c)),
            },
            priority: w.priority,
            matcher: FlowMatch::try_from(&w.matcher)?,
            actions: w
                .actions
                .iter()
                .map(Action::try_from)
                .collect::<Result<_, _>>()?,
            cookie: w.cookie,
        })
    }
}

/// `ofp_phy_port` (48 bytes): one physical-port descriptor inside a
/// features reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePhyPort {
    /// Port number.
    pub port_no: u16,
    /// MAC address.
    pub hw_addr: [u8; 6],
    /// Null-padded interface name (16 bytes).
    pub name: [u8; 16],
    /// `ofp_port_config` bitmap.
    pub config: u32,
    /// `ofp_port_state` bitmap.
    pub state: u32,
    /// Current features bitmap.
    pub curr: u32,
    /// Advertised features bitmap.
    pub advertised: u32,
    /// Supported features bitmap.
    pub supported: u32,
    /// Peer-advertised features bitmap.
    pub peer: u32,
}

impl WirePhyPort {
    /// A stub descriptor for simulated port `n` (1-based).
    pub fn stub(n: u16) -> WirePhyPort {
        let mut name = [0u8; 16];
        let label = format!("port{n}");
        name[..label.len().min(16)].copy_from_slice(&label.as_bytes()[..label.len().min(16)]);
        WirePhyPort {
            port_no: n,
            hw_addr: [0x02, 0, 0, 0, (n >> 8) as u8, n as u8],
            name,
            config: 0,
            state: 0,
            curr: 0,
            advertised: 0,
            supported: 0,
            peer: 0,
        }
    }

    fn marshal(&self, buf: &mut BytesMut) {
        buf.put_u16(self.port_no);
        buf.put_slice(&self.hw_addr);
        buf.put_slice(&self.name);
        buf.put_u32(self.config);
        buf.put_u32(self.state);
        buf.put_u32(self.curr);
        buf.put_u32(self.advertised);
        buf.put_u32(self.supported);
        buf.put_u32(self.peer);
    }

    fn parse(r: &mut Reader<'_>) -> Result<WirePhyPort, CodecError> {
        let port_no = r.u16()?;
        let mut hw_addr = [0u8; 6];
        hw_addr.copy_from_slice(&r.bytes(6)?);
        let mut name = [0u8; 16];
        name.copy_from_slice(&r.bytes(16)?);
        Ok(WirePhyPort {
            port_no,
            hw_addr,
            name,
            config: r.u32()?,
            state: r.u32()?,
            curr: r.u32()?,
            advertised: r.u32()?,
            supported: r.u32()?,
            peer: r.u32()?,
        })
    }
}

/// `ofp_switch_features` (features reply body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSwitchFeatures {
    /// Datapath id.
    pub datapath_id: u64,
    /// Packets the switch can buffer.
    pub n_buffers: u32,
    /// Number of flow tables.
    pub n_tables: u8,
    /// `ofp_capabilities` bitmap.
    pub capabilities: u32,
    /// Supported-actions bitmap.
    pub actions: u32,
    /// Port descriptors.
    pub ports: Vec<WirePhyPort>,
}

impl WireSwitchFeatures {
    fn body_len(&self) -> usize {
        24 + self.ports.len() * PHY_PORT_LEN
    }

    fn marshal(&self, buf: &mut BytesMut) {
        buf.put_u64(self.datapath_id);
        buf.put_u32(self.n_buffers);
        buf.put_u8(self.n_tables);
        buf.put_slice(&[0u8; 3]); // pad
        buf.put_u32(self.capabilities);
        buf.put_u32(self.actions);
        for p in &self.ports {
            p.marshal(buf);
        }
    }

    fn parse(r: &mut Reader<'_>) -> Result<WireSwitchFeatures, CodecError> {
        let datapath_id = r.u64()?;
        let n_buffers = r.u32()?;
        let n_tables = r.u8()?;
        r.skip(3)?;
        let capabilities = r.u32()?;
        let actions = r.u32()?;
        let mut ports = Vec::new();
        while r.remaining() > 0 {
            ports.push(WirePhyPort::parse(r)?);
        }
        Ok(WireSwitchFeatures {
            datapath_id,
            n_buffers,
            n_tables,
            capabilities,
            actions,
            ports,
        })
    }
}

/// A parsed OpenFlow 1.0 message body, one variant per supported
/// `ofp_type`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// OFPT_HELLO (header only).
    Hello,
    /// OFPT_ERROR: type u16, code u16, data.
    Error {
        /// `ofp_error_type` class.
        etype: u16,
        /// Code within the class.
        code: u16,
        /// Offending-message prefix.
        data: Vec<u8>,
    },
    /// OFPT_ECHO_REQUEST with opaque payload.
    EchoRequest(Vec<u8>),
    /// OFPT_ECHO_REPLY echoing the request payload.
    EchoReply(Vec<u8>),
    /// OFPT_FEATURES_REQUEST (header only).
    FeaturesRequest,
    /// OFPT_FEATURES_REPLY.
    FeaturesReply(WireSwitchFeatures),
    /// OFPT_PACKET_IN: buffer_id u32, total_len u16, in_port u16,
    /// reason u8, pad, data.
    PacketIn {
        /// Switch buffer reference.
        buffer_id: u32,
        /// Ingress port.
        in_port: u16,
        /// `ofp_packet_in_reason` code.
        reason: u8,
        /// Raw packet bytes.
        data: Vec<u8>,
    },
    /// OFPT_PACKET_OUT: buffer_id u32, in_port u16, actions_len u16,
    /// actions, data.
    PacketOut {
        /// Switch buffer reference (`0xffff_ffff` = data inline).
        buffer_id: u32,
        /// Nominal ingress port (`OFPP_NONE` when controller-sourced).
        in_port: u16,
        /// Actions applied to the packet.
        actions: Vec<WireAction>,
        /// Raw packet bytes.
        data: Vec<u8>,
    },
    /// OFPT_FLOW_MOD.
    FlowMod(WireFlowMod),
    /// OFPT_STATS_REQUEST carrying an OFPST_AGGREGATE body:
    /// match(40) + table_id u8 + pad + out_port u16.
    AggregateStatsRequest {
        /// Flows to aggregate over.
        matcher: WireMatch,
        /// Table to read (0xff = all).
        table_id: u8,
        /// Output-port filter (`OFPP_NONE` = any).
        out_port: u16,
    },
    /// OFPT_STATS_REPLY carrying an OFPST_AGGREGATE body:
    /// packet_count u64 + byte_count u64 + flow_count u32 + pad\[4\].
    AggregateStatsReply {
        /// Packets matched by the aggregated flows.
        packet_count: u64,
        /// Bytes matched.
        byte_count: u64,
        /// Number of flows aggregated.
        flow_count: u32,
    },
    /// OFPT_BARRIER_REQUEST (header only).
    BarrierRequest,
    /// OFPT_BARRIER_REPLY (header only).
    BarrierReply,
}

impl WireMessage {
    /// The `ofp_type` code of this message.
    pub fn type_code(&self) -> u8 {
        match self {
            WireMessage::Hello => type_code::HELLO,
            WireMessage::Error { .. } => type_code::ERROR,
            WireMessage::EchoRequest(_) => type_code::ECHO_REQUEST,
            WireMessage::EchoReply(_) => type_code::ECHO_REPLY,
            WireMessage::FeaturesRequest => type_code::FEATURES_REQUEST,
            WireMessage::FeaturesReply(_) => type_code::FEATURES_REPLY,
            WireMessage::PacketIn { .. } => type_code::PACKET_IN,
            WireMessage::PacketOut { .. } => type_code::PACKET_OUT,
            WireMessage::FlowMod(_) => type_code::FLOW_MOD,
            WireMessage::AggregateStatsRequest { .. } => type_code::STATS_REQUEST,
            WireMessage::AggregateStatsReply { .. } => type_code::STATS_REPLY,
            WireMessage::BarrierRequest => type_code::BARRIER_REQUEST,
            WireMessage::BarrierReply => type_code::BARRIER_REPLY,
        }
    }

    /// Body length in bytes (frame length minus the header).
    pub fn body_len(&self) -> usize {
        match self {
            WireMessage::Hello
            | WireMessage::FeaturesRequest
            | WireMessage::BarrierRequest
            | WireMessage::BarrierReply => 0,
            WireMessage::Error { data, .. } => 4 + data.len(),
            WireMessage::EchoRequest(p) | WireMessage::EchoReply(p) => p.len(),
            WireMessage::FeaturesReply(f) => f.body_len(),
            WireMessage::PacketIn { data, .. } => 10 + data.len(),
            WireMessage::PacketOut { actions, data, .. } => {
                8 + actions.iter().map(WireAction::len).sum::<usize>() + data.len()
            }
            WireMessage::FlowMod(fm) => fm.body_len(),
            WireMessage::AggregateStatsRequest { .. } => 4 + MATCH_LEN + 4,
            WireMessage::AggregateStatsReply { .. } => 4 + 24,
        }
    }

    /// Serialize the body (everything after the header).
    pub fn marshal_body(&self, buf: &mut BytesMut) {
        match self {
            WireMessage::Hello
            | WireMessage::FeaturesRequest
            | WireMessage::BarrierRequest
            | WireMessage::BarrierReply => {}
            WireMessage::Error { etype, code, data } => {
                buf.put_u16(*etype);
                buf.put_u16(*code);
                buf.put_slice(data);
            }
            WireMessage::EchoRequest(p) | WireMessage::EchoReply(p) => buf.put_slice(p),
            WireMessage::FeaturesReply(f) => f.marshal(buf),
            WireMessage::PacketIn {
                buffer_id,
                in_port,
                reason,
                data,
            } => {
                buf.put_u32(*buffer_id);
                buf.put_u16(data.len() as u16);
                buf.put_u16(*in_port);
                buf.put_u8(*reason);
                buf.put_u8(0); // pad
                buf.put_slice(data);
            }
            WireMessage::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            } => {
                buf.put_u32(*buffer_id);
                buf.put_u16(*in_port);
                buf.put_u16(actions.iter().map(WireAction::len).sum::<usize>() as u16);
                for a in actions {
                    a.marshal(buf);
                }
                buf.put_slice(data);
            }
            WireMessage::FlowMod(fm) => fm.marshal(buf),
            WireMessage::AggregateStatsRequest {
                matcher,
                table_id,
                out_port,
            } => {
                buf.put_u16(stats_type::AGGREGATE);
                buf.put_u16(0); // flags
                matcher.marshal(buf);
                buf.put_u8(*table_id);
                buf.put_u8(0); // pad
                buf.put_u16(*out_port);
            }
            WireMessage::AggregateStatsReply {
                packet_count,
                byte_count,
                flow_count,
            } => {
                buf.put_u16(stats_type::AGGREGATE);
                buf.put_u16(0); // flags
                buf.put_u64(*packet_count);
                buf.put_u64(*byte_count);
                buf.put_u32(*flow_count);
                buf.put_slice(&[0u8; 4]); // pad
            }
        }
    }

    /// Parse a body given its `ofp_type` code.
    pub fn parse_body(tcode: u8, body: &[u8]) -> Result<WireMessage, CodecError> {
        let mut r = Reader::new(body);
        let msg = match tcode {
            type_code::HELLO => WireMessage::Hello,
            type_code::FEATURES_REQUEST => WireMessage::FeaturesRequest,
            type_code::BARRIER_REQUEST => WireMessage::BarrierRequest,
            type_code::BARRIER_REPLY => WireMessage::BarrierReply,
            type_code::ECHO_REQUEST => WireMessage::EchoRequest(r.rest()),
            type_code::ECHO_REPLY => WireMessage::EchoReply(r.rest()),
            type_code::ERROR => {
                let etype = r.u16()?;
                let code = r.u16()?;
                WireMessage::Error {
                    etype,
                    code,
                    data: r.rest(),
                }
            }
            type_code::FEATURES_REPLY => {
                WireMessage::FeaturesReply(WireSwitchFeatures::parse(&mut r)?)
            }
            type_code::PACKET_IN => {
                let buffer_id = r.u32()?;
                let total_len = r.u16()? as usize;
                let in_port = r.u16()?;
                let reason = r.u8()?;
                r.skip(1)?;
                let data = r.bytes(total_len)?;
                WireMessage::PacketIn {
                    buffer_id,
                    in_port,
                    reason,
                    data,
                }
            }
            type_code::PACKET_OUT => {
                let buffer_id = r.u32()?;
                let in_port = r.u16()?;
                let actions_len = r.u16()? as usize;
                let action_bytes = r.bytes(actions_len)?;
                let mut ar = Reader::new(&action_bytes);
                let mut actions = Vec::new();
                while ar.remaining() > 0 {
                    actions.push(WireAction::parse(&mut ar)?);
                }
                WireMessage::PacketOut {
                    buffer_id,
                    in_port,
                    actions,
                    data: r.rest(),
                }
            }
            type_code::FLOW_MOD => WireMessage::FlowMod(WireFlowMod::parse(&mut r)?),
            type_code::STATS_REQUEST => {
                let st = r.u16()?;
                if st != stats_type::AGGREGATE {
                    return Err(CodecError::UnknownStatsType(st));
                }
                r.skip(2)?; // flags
                let matcher = WireMatch::parse(&mut r)?;
                let table_id = r.u8()?;
                r.skip(1)?;
                let out_port = r.u16()?;
                WireMessage::AggregateStatsRequest {
                    matcher,
                    table_id,
                    out_port,
                }
            }
            type_code::STATS_REPLY => {
                let st = r.u16()?;
                if st != stats_type::AGGREGATE {
                    return Err(CodecError::UnknownStatsType(st));
                }
                r.skip(2)?; // flags
                let packet_count = r.u64()?;
                let byte_count = r.u64()?;
                let flow_count = r.u32()?;
                r.skip(4)?;
                WireMessage::AggregateStatsReply {
                    packet_count,
                    byte_count,
                    flow_count,
                }
            }
            t => return Err(CodecError::UnknownType(t)),
        };
        r.finish()?;
        Ok(msg)
    }
}

impl TryFrom<&OfMessage> for WireMessage {
    type Error = CodecError;

    fn try_from(msg: &OfMessage) -> Result<WireMessage, CodecError> {
        Ok(match msg {
            OfMessage::Hello => WireMessage::Hello,
            OfMessage::EchoRequest(p) => WireMessage::EchoRequest(p.clone()),
            OfMessage::EchoReply(p) => WireMessage::EchoReply(p.clone()),
            OfMessage::FeaturesRequest => WireMessage::FeaturesRequest,
            OfMessage::FeaturesReply { dpid, n_ports } => {
                if *n_ports > 255 {
                    return Err(CodecError::TooManyPorts(*n_ports));
                }
                WireMessage::FeaturesReply(WireSwitchFeatures {
                    datapath_id: dpid.raw(),
                    n_buffers: 256,
                    n_tables: 1,
                    capabilities: 1, // OFPC_FLOW_STATS
                    actions: (1 << action_type::OUTPUT)
                        | (1 << action_type::SET_VLAN_VID)
                        | (1 << action_type::STRIP_VLAN),
                    ports: (1..=*n_ports as u16).map(WirePhyPort::stub).collect(),
                })
            }
            OfMessage::FlowMod(fm) => WireMessage::FlowMod(WireFlowMod::try_from(fm)?),
            OfMessage::BarrierRequest => WireMessage::BarrierRequest,
            OfMessage::BarrierReply => WireMessage::BarrierReply,
            OfMessage::PacketIn {
                buffer_id,
                in_port,
                data,
            } => WireMessage::PacketIn {
                buffer_id: *buffer_id,
                in_port: port_to_wire(*in_port)?,
                reason: 0, // OFPR_NO_MATCH
                data: data.clone(),
            },
            OfMessage::PacketOut {
                buffer_id,
                out_port,
                data,
            } => WireMessage::PacketOut {
                buffer_id: *buffer_id,
                in_port: OFPP_NONE,
                actions: vec![WireAction::Output {
                    port: port_to_wire(*out_port)?,
                    max_len: 0,
                }],
                data: data.clone(),
            },
            OfMessage::ErrorMsg { etype, code, data } => WireMessage::Error {
                etype: *etype,
                code: *code,
                data: data.clone(),
            },
            OfMessage::FlowStatsRequest => WireMessage::AggregateStatsRequest {
                matcher: WireMatch::ALL,
                table_id: 0xff,
                out_port: OFPP_NONE,
            },
            OfMessage::FlowStatsReply { entries, packets } => WireMessage::AggregateStatsReply {
                packet_count: *packets,
                byte_count: 0,
                flow_count: *entries,
            },
        })
    }
}

impl TryFrom<&WireMessage> for OfMessage {
    type Error = CodecError;

    fn try_from(w: &WireMessage) -> Result<OfMessage, CodecError> {
        Ok(match w {
            WireMessage::Hello => OfMessage::Hello,
            WireMessage::EchoRequest(p) => OfMessage::EchoRequest(p.clone()),
            WireMessage::EchoReply(p) => OfMessage::EchoReply(p.clone()),
            WireMessage::FeaturesRequest => OfMessage::FeaturesRequest,
            WireMessage::FeaturesReply(f) => OfMessage::FeaturesReply {
                dpid: DpId(f.datapath_id),
                n_ports: f.ports.len() as u32,
            },
            WireMessage::FlowMod(fm) => OfMessage::FlowMod(FlowMod::try_from(fm)?),
            WireMessage::BarrierRequest => OfMessage::BarrierRequest,
            WireMessage::BarrierReply => OfMessage::BarrierReply,
            WireMessage::PacketIn {
                buffer_id,
                in_port,
                data,
                ..
            } => OfMessage::PacketIn {
                buffer_id: *buffer_id,
                in_port: port_from_wire(*in_port),
                data: data.clone(),
            },
            WireMessage::PacketOut {
                buffer_id,
                actions,
                data,
                ..
            } => match actions.as_slice() {
                [WireAction::Output { port, .. }] => OfMessage::PacketOut {
                    buffer_id: *buffer_id,
                    out_port: port_from_wire(*port),
                    data: data.clone(),
                },
                _ => return Err(CodecError::BadPacketOutActions(actions.len())),
            },
            WireMessage::Error { etype, code, data } => OfMessage::ErrorMsg {
                etype: *etype,
                code: *code,
                data: data.clone(),
            },
            WireMessage::AggregateStatsRequest { .. } => OfMessage::FlowStatsRequest,
            WireMessage::AggregateStatsReply {
                packet_count,
                flow_count,
                ..
            } => OfMessage::FlowStatsReply {
                entries: *flow_count,
                packets: *packet_count,
            },
        })
    }
}

/// A fully-parsed frame: header plus typed body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// The 8-byte header (length is authoritative at parse time and
    /// recomputed at marshal time).
    pub header: Header,
    /// The typed body.
    pub message: WireMessage,
}

impl WireFrame {
    /// Build a frame for `message` with the given xid; the header's
    /// version/type/length fields are derived.
    pub fn new(xid: Xid, message: WireMessage) -> WireFrame {
        let length = (HEADER_LEN + message.body_len()) as u16;
        WireFrame {
            header: Header {
                version: OFP_VERSION,
                typ: message.type_code(),
                length,
                xid: xid.0,
            },
            message,
        }
    }

    /// Serialize header + body into `buf`.
    pub fn marshal(&self, buf: &mut BytesMut) {
        self.header.marshal(buf);
        self.message.marshal_body(buf);
    }
}

impl TryFrom<&Envelope> for WireFrame {
    type Error = CodecError;

    fn try_from(env: &Envelope) -> Result<WireFrame, CodecError> {
        Ok(WireFrame::new(env.xid, WireMessage::try_from(&env.msg)?))
    }
}

impl TryFrom<&WireFrame> for Envelope {
    type Error = CodecError;

    fn try_from(f: &WireFrame) -> Result<Envelope, CodecError> {
        Ok(Envelope::new(
            Xid(f.header.xid),
            OfMessage::try_from(&f.message)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode;

    /// Fixed vectors mirroring rust_ofp's `ofp_header` marshaling:
    /// version 0x01, type, big-endian length and xid.
    #[test]
    fn header_only_vectors() {
        let cases = [
            (OfMessage::Hello, 0x00u8),
            (OfMessage::FeaturesRequest, 0x05),
            (OfMessage::BarrierRequest, 0x12),
            (OfMessage::BarrierReply, 0x13),
        ];
        for (msg, code) in cases {
            let bytes = encode(&Envelope::new(Xid(0x0102_0304), msg));
            assert_eq!(
                &bytes[..],
                &[0x01, code, 0x00, 0x08, 0x01, 0x02, 0x03, 0x04],
                "type {code:#x}"
            );
        }
    }

    #[test]
    fn echo_vectors() {
        let bytes = encode(&Envelope::new(
            Xid(7),
            OfMessage::EchoRequest(vec![0xaa, 0xbb]),
        ));
        assert_eq!(
            &bytes[..],
            &[0x01, 0x02, 0x00, 0x0a, 0x00, 0x00, 0x00, 0x07, 0xaa, 0xbb]
        );
        let bytes = encode(&Envelope::new(Xid(7), OfMessage::EchoReply(vec![0xcc])));
        assert_eq!(
            &bytes[..],
            &[0x01, 0x03, 0x00, 0x09, 0x00, 0x00, 0x00, 0x07, 0xcc]
        );
    }

    #[test]
    fn error_vector() {
        let bytes = encode(&Envelope::new(
            Xid(1),
            OfMessage::ErrorMsg {
                etype: 0x0003,
                code: 0x0009,
                data: vec![0xde],
            },
        ));
        assert_eq!(
            &bytes[..],
            &[0x01, 0x01, 0x00, 0x0d, 0x00, 0x00, 0x00, 0x01, 0x00, 0x03, 0x00, 0x09, 0xde]
        );
    }

    #[test]
    fn flow_mod_vector_is_72_bytes_with_exact_layout() {
        use sdn_types::HostId;
        // FlowMod{Add, prio 100, dst=h2 + tag v1, [Output(3)], cookie 7}
        let env = Envelope::new(
            Xid(0x10),
            OfMessage::FlowMod(FlowMod {
                command: FlowModCommand::Add,
                priority: 100,
                matcher: FlowMatch::dst_host_tagged(HostId(2), VersionTag::NEW),
                actions: vec![Action::Output(PortNo(3))],
                cookie: 7,
            }),
        );
        let bytes = encode(&env);
        assert_eq!(bytes.len(), 80, "72-byte flow_mod + one 8-byte action");
        // header
        assert_eq!(&bytes[..8], &[0x01, 0x0e, 0x00, 0x50, 0, 0, 0, 0x10]);
        // wildcards: ALL (0x3fffff) minus DL_VLAN (bit 1) minus the
        // nw_dst CIDR field (bits 14-19) => 0x00303ffd
        assert_eq!(&bytes[8..12], &[0x00, 0x30, 0x3f, 0xfd]);
        // dl_vlan at offset 8 (header) + 4 (wildcards) + 2 (in_port)
        // + 12 (dl_src/dl_dst) = 26
        assert_eq!(&bytes[26..28], &[0x00, 0x01]);
        // nw_dst at 8 + 4+2+12+2+1+1+2+1+1+2+4 = 40
        assert_eq!(&bytes[40..44], &[0x00, 0x00, 0x00, 0x02]);
        // cookie at 48, command at 56, priority at 62
        assert_eq!(&bytes[48..56], &[0, 0, 0, 0, 0, 0, 0, 7]);
        assert_eq!(&bytes[56..58], &[0x00, 0x00]); // OFPFC_ADD
        assert_eq!(&bytes[62..64], &[0x00, 0x64]); // priority 100
        assert_eq!(&bytes[64..68], &[0xff, 0xff, 0xff, 0xff]); // buffer_id
        assert_eq!(&bytes[68..70], &[0xff, 0xff]); // out_port NONE
        assert_eq!(&bytes[70..72], &[0x00, 0x00]); // flags
                                                   // OFPAT_OUTPUT{port 3, max_len 0}
        assert_eq!(&bytes[72..80], &[0, 0, 0, 8, 0, 3, 0, 0]);
    }

    #[test]
    fn action_tlvs_are_eight_byte_aligned() {
        for a in [
            Action::Output(PortNo(1)),
            Action::SetTag(VersionTag::NEW),
            Action::StripTag,
            Action::Drop,
            Action::ToController,
        ] {
            let w = WireAction::try_from(&a).unwrap();
            assert_eq!(w.len() % 8, 0, "{a:?}");
            let mut buf = BytesMut::new();
            w.marshal(&mut buf);
            assert_eq!(buf.len(), w.len(), "{a:?}");
        }
    }

    #[test]
    fn to_controller_maps_to_controller_pseudo_port() {
        let w = WireAction::try_from(&Action::ToController).unwrap();
        assert_eq!(
            w,
            WireAction::Output {
                port: OFPP_CONTROLLER,
                max_len: 0xffff
            }
        );
        assert_eq!(Action::try_from(&w).unwrap(), Action::ToController);
    }

    #[test]
    fn oversized_ports_are_errors_not_panics() {
        let bad = FlowMatch {
            in_port: Some(PortNo(0x12345)),
            ..FlowMatch::ANY
        };
        assert!(matches!(
            WireMatch::try_from(&bad),
            Err(CodecError::PortOutOfRange(0x12345))
        ));
    }

    #[test]
    fn foreign_vendor_action_is_rejected() {
        let w = WireAction::Vendor {
            vendor: 0xdead_beef,
            subtype: 0,
        };
        assert!(matches!(
            Action::try_from(&w),
            Err(CodecError::UnknownVendor(0xdead_beef))
        ));
    }

    #[test]
    fn match_roundtrips_through_wire_layout() {
        let cases = [
            FlowMatch::ANY,
            FlowMatch::dst_host(HostId(9)),
            FlowMatch::dst_host_tagged(HostId(2), VersionTag(0x0fff)),
            FlowMatch {
                in_port: Some(PortNo(48)),
                src: Some(HostId(1)),
                dst: Some(HostId(2)),
                tag: Some(VersionTag::OLD),
            },
        ];
        for m in cases {
            let w = WireMatch::try_from(&m).unwrap();
            let mut buf = BytesMut::new();
            w.marshal(&mut buf);
            assert_eq!(buf.len(), MATCH_LEN);
            let parsed = WireMatch::parse(&mut Reader::new(&buf)).unwrap();
            assert_eq!(parsed, w);
            assert_eq!(FlowMatch::try_from(&parsed).unwrap(), m);
        }
    }

    #[test]
    fn features_reply_carries_ports_as_phy_port_blocks() {
        let env = Envelope::new(
            Xid(5),
            OfMessage::FeaturesReply {
                dpid: DpId(0x1122),
                n_ports: 3,
            },
        );
        let bytes = encode(&env);
        assert_eq!(bytes.len(), HEADER_LEN + 24 + 3 * PHY_PORT_LEN);
        // datapath_id immediately after the header
        assert_eq!(
            &bytes[8..16],
            &[0, 0, 0, 0, 0, 0, 0x11, 0x22],
            "dpid big-endian"
        );
        let back = crate::codec::decode(&bytes).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn aggregate_stats_bodies_have_spec_sizes() {
        let req = encode(&Envelope::new(Xid(1), OfMessage::FlowStatsRequest));
        assert_eq!(req.len(), HEADER_LEN + 4 + MATCH_LEN + 4);
        let rep = encode(&Envelope::new(
            Xid(1),
            OfMessage::FlowStatsReply {
                entries: 4,
                packets: 10,
            },
        ));
        assert_eq!(rep.len(), HEADER_LEN + 4 + 24);
    }
}
