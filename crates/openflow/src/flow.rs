//! Flow matching and actions.
//!
//! A [`FlowMatch`] is a conjunction of optional fields (absent =
//! wildcard) over the packet metadata the simulator carries; an
//! [`Action`] list says what a matching switch does. The demo's rules
//! match on destination host (plus a version tag for two-phase-commit
//! rules) and output toward the next hop.

use sdn_types::{HostId, PortNo, VersionTag};

/// Metadata of a packet as seen by a switch pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// Ingress port at the current switch.
    pub in_port: PortNo,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Version tag carried by the packet, if any.
    pub tag: Option<VersionTag>,
}

/// A match over [`PacketMeta`]; `None` fields are wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowMatch {
    /// Match on ingress port.
    pub in_port: Option<PortNo>,
    /// Match on source host.
    pub src: Option<HostId>,
    /// Match on destination host.
    pub dst: Option<HostId>,
    /// Match on version tag. `Some(tag)` requires the packet to carry
    /// exactly that tag; `None` is a wildcard (matches tagged and
    /// untagged packets alike).
    pub tag: Option<VersionTag>,
}

impl FlowMatch {
    /// Wildcard-everything match.
    pub const ANY: FlowMatch = FlowMatch {
        in_port: None,
        src: None,
        dst: None,
        tag: None,
    };

    /// Match on destination host only (the demo's basic routing rule).
    pub fn dst_host(dst: HostId) -> Self {
        FlowMatch {
            dst: Some(dst),
            ..FlowMatch::ANY
        }
    }

    /// Match on destination host and version tag (two-phase-commit
    /// rule).
    pub fn dst_host_tagged(dst: HostId, tag: VersionTag) -> Self {
        FlowMatch {
            dst: Some(dst),
            tag: Some(tag),
            ..FlowMatch::ANY
        }
    }

    /// Whether the packet satisfies every present field.
    pub fn matches(&self, pkt: &PacketMeta) -> bool {
        self.in_port.is_none_or(|p| p == pkt.in_port)
            && self.src.is_none_or(|s| s == pkt.src)
            && self.dst.is_none_or(|d| d == pkt.dst)
            && self.tag.is_none_or(|t| pkt.tag == Some(t))
    }

    /// Number of concrete (non-wildcard) fields; used as a specificity
    /// tie-breaker among equal priorities.
    pub fn specificity(&self) -> u32 {
        self.in_port.is_some() as u32
            + self.src.is_some() as u32
            + self.dst.is_some() as u32
            + self.tag.is_some() as u32
    }
}

/// A forwarding action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Emit on the given port.
    Output(PortNo),
    /// Stamp the packet with a version tag (ingress of two-phase
    /// commit).
    SetTag(VersionTag),
    /// Remove the version tag (egress of two-phase commit).
    StripTag,
    /// Drop the packet.
    Drop,
    /// Punt to the controller as a PacketIn.
    ToController,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(tag: Option<VersionTag>) -> PacketMeta {
        PacketMeta {
            in_port: PortNo(1),
            src: HostId(1),
            dst: HostId(2),
            tag,
        }
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(FlowMatch::ANY.matches(&pkt(None)));
        assert!(FlowMatch::ANY.matches(&pkt(Some(VersionTag::NEW))));
        assert_eq!(FlowMatch::ANY.specificity(), 0);
    }

    #[test]
    fn dst_match() {
        let m = FlowMatch::dst_host(HostId(2));
        assert!(m.matches(&pkt(None)));
        let other = PacketMeta {
            dst: HostId(9),
            ..pkt(None)
        };
        assert!(!m.matches(&other));
        assert_eq!(m.specificity(), 1);
    }

    #[test]
    fn tag_match_requires_exact_tag() {
        let m = FlowMatch::dst_host_tagged(HostId(2), VersionTag::NEW);
        assert!(m.matches(&pkt(Some(VersionTag::NEW))));
        assert!(!m.matches(&pkt(None)), "untagged packet must not match");
        assert!(!m.matches(&pkt(Some(VersionTag(7)))));
        assert_eq!(m.specificity(), 2);
    }

    #[test]
    fn untagged_wildcard_matches_tagged_packets() {
        // An untagged (wildcard-tag) rule still matches tagged packets
        // — which is why 2PC tagged rules need higher priority.
        let m = FlowMatch::dst_host(HostId(2));
        assert!(m.matches(&pkt(Some(VersionTag::NEW))));
    }

    #[test]
    fn in_port_and_src_fields() {
        let m = FlowMatch {
            in_port: Some(PortNo(1)),
            src: Some(HostId(1)),
            ..FlowMatch::ANY
        };
        assert!(m.matches(&pkt(None)));
        let wrong_port = PacketMeta {
            in_port: PortNo(2),
            ..pkt(None)
        };
        assert!(!m.matches(&wrong_port));
    }
}
