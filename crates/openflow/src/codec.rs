//! Binary wire codec — real OpenFlow 1.0 framing.
//!
//! Every message is framed with the classic OpenFlow header:
//!
//! ```text
//! +---------+---------+------------------+------------------+
//! | version |  type   |      length      |       xid        |
//! |  u8     |  u8     |  u16 big-endian  |  u32 big-endian  |
//! +---------+---------+------------------+------------------+
//! |                 type-specific body ...                  |
//! ```
//!
//! `length` covers the whole frame including the 8-byte header, and the
//! bodies use the exact OpenFlow 1.0 struct layouts defined in
//! [`crate::wire`] — a 40-byte `ofp_match`, a 72-byte `ofp_flow_mod`,
//! 8-byte-aligned action TLVs. Encoding is `model → wire → bytes` and
//! decoding is `bytes → wire → model`, both through the explicit
//! `TryFrom` conversions in [`crate::wire`].
//!
//! Decoding is strict: unknown types, bad versions, truncated bodies
//! and trailing bytes all yield a typed [`CodecError`] — corrupted
//! frames injected by the fault-injecting channel must never panic or
//! be silently misparsed.

use bytes::{Bytes, BytesMut};
use std::fmt;

use crate::messages::Envelope;
use crate::wire::{Header, WireFrame, WireMessage};

/// Protocol version byte (OpenFlow 1.0 uses 0x01).
pub const OFP_VERSION: u8 = crate::wire::OFP_VERSION;

/// Frame header length in bytes.
pub const HEADER_LEN: usize = crate::wire::HEADER_LEN;

/// Upper bound on a frame (guards the framer against corrupted
/// lengths). Deliberately below `u16::MAX` so flipped high bits in the
/// length field are detectable.
pub const MAX_FRAME_LEN: usize = 16 * 1024;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Frame shorter than its declared body.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes available.
        got: usize,
    },
    /// Unsupported protocol version byte.
    BadVersion(u8),
    /// Unknown message type code.
    UnknownType(u8),
    /// Unknown FlowMod command code.
    UnknownCommand(u16),
    /// Unknown action type code.
    UnknownAction(u16),
    /// Action TLV with an invalid declared length.
    BadActionLength(usize),
    /// Vendor action from a vendor id we do not speak.
    UnknownVendor(u32),
    /// Stats request/reply of a type other than OFPST_AGGREGATE.
    UnknownStatsType(u16),
    /// A 32-bit model port that does not fit the 16-bit 1.0 wire.
    PortOutOfRange(u32),
    /// Features reply with more ports than a frame can carry.
    TooManyPorts(u32),
    /// Packet-out whose action list is not a single output.
    BadPacketOutActions(usize),
    /// Declared length smaller than the header or larger than
    /// [`MAX_FRAME_LEN`].
    BadLength(usize),
    /// Body bytes left over after parsing.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            CodecError::BadVersion(v) => write!(f, "unsupported protocol version {v:#x}"),
            CodecError::UnknownType(t) => write!(f, "unknown message type {t}"),
            CodecError::UnknownCommand(c) => write!(f, "unknown flow-mod command {c}"),
            CodecError::UnknownAction(a) => write!(f, "unknown action type {a}"),
            CodecError::BadActionLength(l) => write!(f, "invalid action length {l}"),
            CodecError::UnknownVendor(v) => write!(f, "unknown vendor id {v:#x}"),
            CodecError::UnknownStatsType(s) => write!(f, "unsupported stats type {s}"),
            CodecError::PortOutOfRange(p) => {
                write!(f, "port {p} not representable on the 1.0 wire")
            }
            CodecError::TooManyPorts(n) => write!(f, "{n} ports exceed a features-reply frame"),
            CodecError::BadPacketOutActions(n) => {
                write!(f, "packet-out with {n} actions (expected one output)")
            }
            CodecError::BadLength(l) => write!(f, "invalid frame length {l}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after body"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode an envelope into a self-contained OpenFlow 1.0 frame.
///
/// # Panics
///
/// Panics if the model value is not representable on the wire (a port
/// above `OFPP_MAX`, or a features reply with more ports than a frame
/// holds). Every value the stack produces is representable; use
/// [`try_encode`] when handling untrusted model values.
pub fn encode(env: &Envelope) -> Bytes {
    try_encode(env).expect("model value not representable in OpenFlow 1.0")
}

/// Encode an envelope, surfacing non-representable values as errors.
pub fn try_encode(env: &Envelope) -> Result<Bytes, CodecError> {
    let frame = WireFrame::try_from(env)?;
    let len = frame.header.length as usize;
    if len > MAX_FRAME_LEN {
        return Err(CodecError::BadLength(len));
    }
    let mut buf = BytesMut::with_capacity(len);
    frame.marshal(&mut buf);
    debug_assert_eq!(buf.len(), len, "header length must match marshaled size");
    Ok(buf.freeze())
}

/// Decode one complete frame (header + body, exactly).
pub fn decode(frame: &[u8]) -> Result<Envelope, CodecError> {
    if frame.len() < HEADER_LEN {
        return Err(CodecError::Truncated {
            expected: HEADER_LEN,
            got: frame.len(),
        });
    }
    let header = Header::parse(frame);
    if header.version != OFP_VERSION {
        return Err(CodecError::BadVersion(header.version));
    }
    let declared = header.length as usize;
    if !(HEADER_LEN..=MAX_FRAME_LEN).contains(&declared) {
        return Err(CodecError::BadLength(declared));
    }
    if declared != frame.len() {
        return Err(CodecError::Truncated {
            expected: declared,
            got: frame.len(),
        });
    }
    let message = WireMessage::parse_body(header.typ, &frame[HEADER_LEN..])?;
    Envelope::try_from(&WireFrame { header, message })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{Action, FlowMatch};
    use crate::messages::{FlowMod, FlowModCommand, OfMessage};
    use sdn_types::{DpId, HostId, PortNo, VersionTag, Xid};

    fn roundtrip(env: Envelope) {
        let bytes = encode(&env);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(back, env);
    }

    #[test]
    fn roundtrip_simple_messages() {
        for msg in [
            OfMessage::Hello,
            OfMessage::FeaturesRequest,
            OfMessage::BarrierRequest,
            OfMessage::BarrierReply,
            OfMessage::FlowStatsRequest,
        ] {
            roundtrip(Envelope::new(Xid(42), msg));
        }
    }

    #[test]
    fn roundtrip_payload_messages() {
        roundtrip(Envelope::new(Xid(1), OfMessage::EchoRequest(vec![1, 2, 3])));
        roundtrip(Envelope::new(Xid(2), OfMessage::EchoReply(vec![])));
        roundtrip(Envelope::new(
            Xid(3),
            OfMessage::FeaturesReply {
                dpid: DpId(12),
                n_ports: 48,
            },
        ));
        roundtrip(Envelope::new(
            Xid(4),
            OfMessage::PacketIn {
                buffer_id: 7,
                in_port: PortNo(3),
                data: vec![0xde, 0xad],
            },
        ));
        roundtrip(Envelope::new(
            Xid(5),
            OfMessage::PacketOut {
                buffer_id: u32::MAX,
                out_port: PortNo(1),
                data: vec![0xbe, 0xef, 0x00],
            },
        ));
        roundtrip(Envelope::new(
            Xid(6),
            OfMessage::ErrorMsg {
                etype: 3,
                code: 9,
                data: vec![1, 2, 3, 4],
            },
        ));
        roundtrip(Envelope::new(
            Xid(7),
            OfMessage::FlowStatsReply {
                entries: 10,
                packets: 12345678901,
            },
        ));
    }

    #[test]
    fn roundtrip_flow_mod_full() {
        roundtrip(Envelope::new(
            Xid(9),
            OfMessage::FlowMod(FlowMod {
                command: FlowModCommand::Add,
                priority: 100,
                matcher: FlowMatch {
                    in_port: Some(PortNo(2)),
                    src: Some(HostId(1)),
                    dst: Some(HostId(2)),
                    tag: Some(VersionTag::NEW),
                },
                actions: vec![
                    Action::SetTag(VersionTag::NEW),
                    Action::Output(PortNo(3)),
                    Action::StripTag,
                    Action::Drop,
                    Action::ToController,
                ],
                cookie: 0xdead_beef,
            }),
        ));
    }

    #[test]
    fn roundtrip_flow_mod_wildcards() {
        for command in [
            FlowModCommand::Add,
            FlowModCommand::Modify,
            FlowModCommand::Delete,
        ] {
            roundtrip(Envelope::new(
                Xid(10),
                OfMessage::FlowMod(FlowMod {
                    command,
                    priority: 0,
                    matcher: FlowMatch::ANY,
                    actions: vec![],
                    cookie: 0,
                }),
            ));
        }
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&Envelope::new(Xid(1), OfMessage::Hello)).to_vec();
        bytes[0] = 0x04;
        assert_eq!(decode(&bytes), Err(CodecError::BadVersion(0x04)));
    }

    #[test]
    fn rejects_unknown_type() {
        let mut bytes = encode(&Envelope::new(Xid(1), OfMessage::Hello)).to_vec();
        bytes[1] = 250;
        assert_eq!(decode(&bytes), Err(CodecError::UnknownType(250)));
    }

    #[test]
    fn rejects_truncated_body() {
        let bytes = encode(&Envelope::new(
            Xid(1),
            OfMessage::FeaturesReply {
                dpid: DpId(1),
                n_ports: 4,
            },
        ));
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(decode(cut), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn rejects_length_mismatch() {
        let mut bytes = encode(&Envelope::new(Xid(1), OfMessage::Hello)).to_vec();
        bytes.push(0); // actual frame longer than declared
        assert!(matches!(decode(&bytes), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn rejects_bad_declared_length() {
        let mut bytes = encode(&Envelope::new(Xid(1), OfMessage::Hello)).to_vec();
        bytes[2] = 0;
        bytes[3] = 3; // declared length 3 < header
        assert_eq!(decode(&bytes), Err(CodecError::BadLength(3)));
    }

    #[test]
    fn rejects_unknown_action() {
        let env = Envelope::new(
            Xid(2),
            OfMessage::FlowMod(FlowMod {
                command: FlowModCommand::Add,
                priority: 1,
                matcher: FlowMatch::ANY,
                actions: vec![Action::StripTag],
                cookie: 0,
            }),
        );
        let mut bytes = encode(&env).to_vec();
        // the action TLV starts 64 bytes into the flow_mod body; flip
        // its type field (u16 at offset 72) to an unknown code
        bytes[72] = 0x00;
        bytes[73] = 99;
        assert_eq!(decode(&bytes), Err(CodecError::UnknownAction(99)));
    }

    #[test]
    fn rejects_unknown_flowmod_command() {
        let env = Envelope::new(
            Xid(2),
            OfMessage::FlowMod(FlowMod {
                command: FlowModCommand::Add,
                priority: 1,
                matcher: FlowMatch::ANY,
                actions: vec![],
                cookie: 0,
            }),
        );
        let mut bytes = encode(&env).to_vec();
        // command is the u16 right after match(40)+cookie(8):
        // offset 8 + 40 + 8 = 56
        bytes[56] = 0;
        bytes[57] = 77;
        assert_eq!(decode(&bytes), Err(CodecError::UnknownCommand(77)));
    }

    #[test]
    fn try_encode_surfaces_unrepresentable_values() {
        let env = Envelope::new(
            Xid(1),
            OfMessage::PacketOut {
                buffer_id: 0,
                out_port: PortNo(0x1_0000),
                data: vec![],
            },
        );
        assert_eq!(try_encode(&env), Err(CodecError::PortOutOfRange(0x10000)));
    }

    #[test]
    fn pseudo_ports_roundtrip() {
        roundtrip(Envelope::new(
            Xid(4),
            OfMessage::PacketIn {
                buffer_id: 1,
                in_port: PortNo::LOCAL,
                data: vec![],
            },
        ));
        roundtrip(Envelope::new(
            Xid(4),
            OfMessage::PacketOut {
                buffer_id: 1,
                out_port: PortNo::CONTROLLER,
                data: vec![1],
            },
        ));
    }

    #[test]
    fn error_display_strings() {
        assert!(CodecError::BadVersion(4).to_string().contains("0x4"));
        assert!(CodecError::TrailingBytes(3).to_string().contains("3"));
        assert!(CodecError::PortOutOfRange(70000)
            .to_string()
            .contains("70000"));
    }
}
