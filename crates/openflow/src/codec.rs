//! Binary wire codec.
//!
//! Every message is framed with the classic OpenFlow header:
//!
//! ```text
//! +---------+---------+------------------+------------------+
//! | version |  type   |      length      |       xid        |
//! |  u8     |  u8     |  u16 big-endian  |  u32 big-endian  |
//! +---------+---------+------------------+------------------+
//! |                 type-specific body ...                  |
//! ```
//!
//! `length` covers the whole frame including the 8-byte header.
//! Decoding is strict: unknown types, bad versions, truncated bodies
//! and trailing bytes all yield a typed [`CodecError`] — corrupted
//! frames injected by the fault-injecting channel must never panic or
//! be silently misparsed.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

use sdn_types::{DpId, HostId, PortNo, VersionTag, Xid};

use crate::flow::{Action, FlowMatch};
use crate::messages::{Envelope, FlowMod, FlowModCommand, OfMessage};

/// Protocol version byte (OpenFlow 1.0 uses 0x01).
pub const OFP_VERSION: u8 = 0x01;

/// Frame header length in bytes.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a frame (guards the framer against corrupted
/// lengths). Deliberately below `u16::MAX` so flipped high bits in the
/// length field are detectable.
pub const MAX_FRAME_LEN: usize = 16 * 1024;

/// Message type codes on the wire.
mod type_code {
    pub const HELLO: u8 = 0;
    pub const ERROR: u8 = 1;
    pub const ECHO_REQUEST: u8 = 2;
    pub const ECHO_REPLY: u8 = 3;
    pub const FEATURES_REQUEST: u8 = 5;
    pub const FEATURES_REPLY: u8 = 6;
    pub const PACKET_IN: u8 = 10;
    pub const PACKET_OUT: u8 = 13;
    pub const FLOW_MOD: u8 = 14;
    pub const BARRIER_REQUEST: u8 = 18;
    pub const BARRIER_REPLY: u8 = 19;
    pub const FLOW_STATS_REQUEST: u8 = 16;
    pub const FLOW_STATS_REPLY: u8 = 17;
}

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Frame shorter than its declared body.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes available.
        got: usize,
    },
    /// Unsupported protocol version byte.
    BadVersion(u8),
    /// Unknown message type code.
    UnknownType(u8),
    /// Unknown FlowMod command code.
    UnknownCommand(u8),
    /// Unknown action type code.
    UnknownAction(u8),
    /// Declared length smaller than the header or larger than
    /// [`MAX_FRAME_LEN`].
    BadLength(usize),
    /// Body bytes left over after parsing.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            CodecError::BadVersion(v) => write!(f, "unsupported protocol version {v:#x}"),
            CodecError::UnknownType(t) => write!(f, "unknown message type {t}"),
            CodecError::UnknownCommand(c) => write!(f, "unknown flow-mod command {c}"),
            CodecError::UnknownAction(a) => write!(f, "unknown action type {a}"),
            CodecError::BadLength(l) => write!(f, "invalid frame length {l}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after body"),
        }
    }
}

impl std::error::Error for CodecError {}

fn type_of(msg: &OfMessage) -> u8 {
    match msg {
        OfMessage::Hello => type_code::HELLO,
        OfMessage::ErrorMsg { .. } => type_code::ERROR,
        OfMessage::EchoRequest(_) => type_code::ECHO_REQUEST,
        OfMessage::EchoReply(_) => type_code::ECHO_REPLY,
        OfMessage::FeaturesRequest => type_code::FEATURES_REQUEST,
        OfMessage::FeaturesReply { .. } => type_code::FEATURES_REPLY,
        OfMessage::PacketIn { .. } => type_code::PACKET_IN,
        OfMessage::PacketOut { .. } => type_code::PACKET_OUT,
        OfMessage::FlowMod(_) => type_code::FLOW_MOD,
        OfMessage::BarrierRequest => type_code::BARRIER_REQUEST,
        OfMessage::BarrierReply => type_code::BARRIER_REPLY,
        OfMessage::FlowStatsRequest => type_code::FLOW_STATS_REQUEST,
        OfMessage::FlowStatsReply { .. } => type_code::FLOW_STATS_REPLY,
    }
}

fn put_match(buf: &mut BytesMut, m: &FlowMatch) {
    let mut bitmap = 0u8;
    if m.in_port.is_some() {
        bitmap |= 1;
    }
    if m.src.is_some() {
        bitmap |= 2;
    }
    if m.dst.is_some() {
        bitmap |= 4;
    }
    if m.tag.is_some() {
        bitmap |= 8;
    }
    buf.put_u8(bitmap);
    if let Some(p) = m.in_port {
        buf.put_u32(p.raw());
    }
    if let Some(s) = m.src {
        buf.put_u32(s.0);
    }
    if let Some(d) = m.dst {
        buf.put_u32(d.0);
    }
    if let Some(t) = m.tag {
        buf.put_u16(t.0);
    }
}

fn put_action(buf: &mut BytesMut, a: &Action) {
    match a {
        Action::Output(p) => {
            buf.put_u8(0);
            buf.put_u32(p.raw());
        }
        Action::SetTag(t) => {
            buf.put_u8(1);
            buf.put_u16(t.0);
        }
        Action::StripTag => buf.put_u8(2),
        Action::Drop => buf.put_u8(3),
        Action::ToController => buf.put_u8(4),
    }
}

fn put_body(buf: &mut BytesMut, msg: &OfMessage) {
    match msg {
        OfMessage::Hello
        | OfMessage::FeaturesRequest
        | OfMessage::BarrierRequest
        | OfMessage::BarrierReply
        | OfMessage::FlowStatsRequest => {}
        OfMessage::EchoRequest(p) | OfMessage::EchoReply(p) => buf.put_slice(p),
        OfMessage::FeaturesReply { dpid, n_ports } => {
            buf.put_u64(dpid.raw());
            buf.put_u32(*n_ports);
        }
        OfMessage::FlowMod(fm) => {
            buf.put_u8(match fm.command {
                FlowModCommand::Add => 0,
                FlowModCommand::Modify => 1,
                FlowModCommand::Delete => 2,
            });
            buf.put_u16(fm.priority);
            buf.put_u64(fm.cookie);
            put_match(buf, &fm.matcher);
            buf.put_u8(fm.actions.len() as u8);
            for a in &fm.actions {
                put_action(buf, a);
            }
        }
        OfMessage::PacketIn {
            buffer_id,
            in_port,
            data,
        } => {
            buf.put_u32(*buffer_id);
            buf.put_u32(in_port.raw());
            buf.put_u16(data.len() as u16);
            buf.put_slice(data);
        }
        OfMessage::PacketOut {
            buffer_id,
            out_port,
            data,
        } => {
            buf.put_u32(*buffer_id);
            buf.put_u32(out_port.raw());
            buf.put_u16(data.len() as u16);
            buf.put_slice(data);
        }
        OfMessage::ErrorMsg { etype, code, data } => {
            buf.put_u16(*etype);
            buf.put_u16(*code);
            buf.put_slice(data);
        }
        OfMessage::FlowStatsReply { entries, packets } => {
            buf.put_u32(*entries);
            buf.put_u64(*packets);
        }
    }
}

/// Encode an envelope into a self-contained frame.
pub fn encode(env: &Envelope) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    put_body(&mut body, &env.msg);
    let len = HEADER_LEN + body.len();
    debug_assert!(len <= MAX_FRAME_LEN, "oversized frame");
    let mut frame = BytesMut::with_capacity(len);
    frame.put_u8(OFP_VERSION);
    frame.put_u8(type_of(&env.msg));
    frame.put_u16(len as u16);
    frame.put_u32(env.xid.0);
    frame.extend_from_slice(&body);
    frame.freeze()
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.pos + n > self.buf.len() {
            Err(CodecError::Truncated {
                expected: self.pos + n,
                got: self.buf.len(),
            })
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        self.need(2)?;
        let v = u16::from_be_bytes([self.buf[self.pos], self.buf[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(u32::from_be_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_be_bytes(b))
    }

    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, CodecError> {
        self.need(n)?;
        let v = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(v)
    }

    fn rest(&mut self) -> Vec<u8> {
        let v = self.buf[self.pos..].to_vec();
        self.pos = self.buf.len();
        v
    }

    fn finish(&self) -> Result<(), CodecError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(left))
        }
    }
}

fn get_match(r: &mut Reader<'_>) -> Result<FlowMatch, CodecError> {
    let bitmap = r.u8()?;
    let mut m = FlowMatch::ANY;
    if bitmap & 1 != 0 {
        m.in_port = Some(PortNo(r.u32()?));
    }
    if bitmap & 2 != 0 {
        m.src = Some(HostId(r.u32()?));
    }
    if bitmap & 4 != 0 {
        m.dst = Some(HostId(r.u32()?));
    }
    if bitmap & 8 != 0 {
        m.tag = Some(VersionTag(r.u16()?));
    }
    Ok(m)
}

fn get_action(r: &mut Reader<'_>) -> Result<Action, CodecError> {
    match r.u8()? {
        0 => Ok(Action::Output(PortNo(r.u32()?))),
        1 => Ok(Action::SetTag(VersionTag(r.u16()?))),
        2 => Ok(Action::StripTag),
        3 => Ok(Action::Drop),
        4 => Ok(Action::ToController),
        t => Err(CodecError::UnknownAction(t)),
    }
}

/// Decode one complete frame (header + body, exactly).
pub fn decode(frame: &[u8]) -> Result<Envelope, CodecError> {
    if frame.len() < HEADER_LEN {
        return Err(CodecError::Truncated {
            expected: HEADER_LEN,
            got: frame.len(),
        });
    }
    let version = frame[0];
    if version != OFP_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let tcode = frame[1];
    let declared = u16::from_be_bytes([frame[2], frame[3]]) as usize;
    if !(HEADER_LEN..=MAX_FRAME_LEN).contains(&declared) {
        return Err(CodecError::BadLength(declared));
    }
    if declared != frame.len() {
        return Err(CodecError::Truncated {
            expected: declared,
            got: frame.len(),
        });
    }
    let xid = Xid(u32::from_be_bytes([frame[4], frame[5], frame[6], frame[7]]));
    let mut r = Reader::new(&frame[HEADER_LEN..]);
    let msg = match tcode {
        type_code::HELLO => OfMessage::Hello,
        type_code::FEATURES_REQUEST => OfMessage::FeaturesRequest,
        type_code::BARRIER_REQUEST => OfMessage::BarrierRequest,
        type_code::BARRIER_REPLY => OfMessage::BarrierReply,
        type_code::FLOW_STATS_REQUEST => OfMessage::FlowStatsRequest,
        type_code::ECHO_REQUEST => OfMessage::EchoRequest(r.rest()),
        type_code::ECHO_REPLY => OfMessage::EchoReply(r.rest()),
        type_code::FEATURES_REPLY => {
            let dpid = DpId(r.u64()?);
            let n_ports = r.u32()?;
            OfMessage::FeaturesReply { dpid, n_ports }
        }
        type_code::FLOW_MOD => {
            let command = match r.u8()? {
                0 => FlowModCommand::Add,
                1 => FlowModCommand::Modify,
                2 => FlowModCommand::Delete,
                c => return Err(CodecError::UnknownCommand(c)),
            };
            let priority = r.u16()?;
            let cookie = r.u64()?;
            let matcher = get_match(&mut r)?;
            let n_actions = r.u8()? as usize;
            let mut actions = Vec::with_capacity(n_actions);
            for _ in 0..n_actions {
                actions.push(get_action(&mut r)?);
            }
            OfMessage::FlowMod(FlowMod {
                command,
                priority,
                matcher,
                actions,
                cookie,
            })
        }
        type_code::PACKET_IN => {
            let buffer_id = r.u32()?;
            let in_port = PortNo(r.u32()?);
            let n = r.u16()? as usize;
            let data = r.bytes(n)?;
            OfMessage::PacketIn {
                buffer_id,
                in_port,
                data,
            }
        }
        type_code::PACKET_OUT => {
            let buffer_id = r.u32()?;
            let out_port = PortNo(r.u32()?);
            let n = r.u16()? as usize;
            let data = r.bytes(n)?;
            OfMessage::PacketOut {
                buffer_id,
                out_port,
                data,
            }
        }
        type_code::ERROR => {
            let etype = r.u16()?;
            let code = r.u16()?;
            let data = r.rest();
            OfMessage::ErrorMsg { etype, code, data }
        }
        type_code::FLOW_STATS_REPLY => {
            let entries = r.u32()?;
            let packets = r.u64()?;
            OfMessage::FlowStatsReply { entries, packets }
        }
        t => return Err(CodecError::UnknownType(t)),
    };
    r.finish()?;
    Ok(Envelope::new(xid, msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(env: Envelope) {
        let bytes = encode(&env);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(back, env);
    }

    #[test]
    fn roundtrip_simple_messages() {
        for msg in [
            OfMessage::Hello,
            OfMessage::FeaturesRequest,
            OfMessage::BarrierRequest,
            OfMessage::BarrierReply,
            OfMessage::FlowStatsRequest,
        ] {
            roundtrip(Envelope::new(Xid(42), msg));
        }
    }

    #[test]
    fn roundtrip_payload_messages() {
        roundtrip(Envelope::new(Xid(1), OfMessage::EchoRequest(vec![1, 2, 3])));
        roundtrip(Envelope::new(Xid(2), OfMessage::EchoReply(vec![])));
        roundtrip(Envelope::new(
            Xid(3),
            OfMessage::FeaturesReply {
                dpid: DpId(12),
                n_ports: 48,
            },
        ));
        roundtrip(Envelope::new(
            Xid(4),
            OfMessage::PacketIn {
                buffer_id: 7,
                in_port: PortNo(3),
                data: vec![0xde, 0xad],
            },
        ));
        roundtrip(Envelope::new(
            Xid(5),
            OfMessage::PacketOut {
                buffer_id: u32::MAX,
                out_port: PortNo(1),
                data: vec![0xbe, 0xef, 0x00],
            },
        ));
        roundtrip(Envelope::new(
            Xid(6),
            OfMessage::ErrorMsg {
                etype: 3,
                code: 9,
                data: vec![1, 2, 3, 4],
            },
        ));
        roundtrip(Envelope::new(
            Xid(7),
            OfMessage::FlowStatsReply {
                entries: 10,
                packets: 12345678901,
            },
        ));
    }

    #[test]
    fn roundtrip_flow_mod_full() {
        roundtrip(Envelope::new(
            Xid(9),
            OfMessage::FlowMod(FlowMod {
                command: FlowModCommand::Add,
                priority: 100,
                matcher: FlowMatch {
                    in_port: Some(PortNo(2)),
                    src: Some(HostId(1)),
                    dst: Some(HostId(2)),
                    tag: Some(VersionTag::NEW),
                },
                actions: vec![
                    Action::SetTag(VersionTag::NEW),
                    Action::Output(PortNo(3)),
                    Action::StripTag,
                    Action::Drop,
                    Action::ToController,
                ],
                cookie: 0xdead_beef,
            }),
        ));
    }

    #[test]
    fn roundtrip_flow_mod_wildcards() {
        for command in [
            FlowModCommand::Add,
            FlowModCommand::Modify,
            FlowModCommand::Delete,
        ] {
            roundtrip(Envelope::new(
                Xid(10),
                OfMessage::FlowMod(FlowMod {
                    command,
                    priority: 0,
                    matcher: FlowMatch::ANY,
                    actions: vec![],
                    cookie: 0,
                }),
            ));
        }
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&Envelope::new(Xid(1), OfMessage::Hello)).to_vec();
        bytes[0] = 0x04;
        assert_eq!(decode(&bytes), Err(CodecError::BadVersion(0x04)));
    }

    #[test]
    fn rejects_unknown_type() {
        let mut bytes = encode(&Envelope::new(Xid(1), OfMessage::Hello)).to_vec();
        bytes[1] = 250;
        assert_eq!(decode(&bytes), Err(CodecError::UnknownType(250)));
    }

    #[test]
    fn rejects_truncated_body() {
        let bytes = encode(&Envelope::new(
            Xid(1),
            OfMessage::FeaturesReply {
                dpid: DpId(1),
                n_ports: 4,
            },
        ));
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(decode(cut), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn rejects_length_mismatch() {
        let mut bytes = encode(&Envelope::new(Xid(1), OfMessage::Hello)).to_vec();
        bytes.push(0); // actual frame longer than declared
        assert!(matches!(decode(&bytes), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn rejects_bad_declared_length() {
        let mut bytes = encode(&Envelope::new(Xid(1), OfMessage::Hello)).to_vec();
        bytes[2] = 0;
        bytes[3] = 3; // declared length 3 < header
        assert_eq!(decode(&bytes), Err(CodecError::BadLength(3)));
    }

    #[test]
    fn rejects_unknown_action() {
        let env = Envelope::new(
            Xid(2),
            OfMessage::FlowMod(FlowMod {
                command: FlowModCommand::Add,
                priority: 1,
                matcher: FlowMatch::ANY,
                actions: vec![Action::Drop],
                cookie: 0,
            }),
        );
        let mut bytes = encode(&env).to_vec();
        // action type byte is the last-but-nothing byte: Drop encodes
        // as a single trailing 0x03
        let last = bytes.len() - 1;
        bytes[last] = 99;
        assert_eq!(decode(&bytes), Err(CodecError::UnknownAction(99)));
    }

    #[test]
    fn rejects_unknown_flowmod_command() {
        let env = Envelope::new(
            Xid(2),
            OfMessage::FlowMod(FlowMod {
                command: FlowModCommand::Add,
                priority: 1,
                matcher: FlowMatch::ANY,
                actions: vec![],
                cookie: 0,
            }),
        );
        let mut bytes = encode(&env).to_vec();
        bytes[HEADER_LEN] = 7; // command byte
        assert_eq!(decode(&bytes), Err(CodecError::UnknownCommand(7)));
    }

    #[test]
    fn error_display_strings() {
        assert!(CodecError::BadVersion(4).to_string().contains("0x4"));
        assert!(CodecError::TrailingBytes(3).to_string().contains("3"));
    }
}
