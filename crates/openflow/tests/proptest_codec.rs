//! Property-based tests: the OpenFlow 1.0 wire codec round-trips every
//! representable message (`wire-encode → decode ≡ id` per message
//! type), arbitrary byte soup never panics the decoder, and malformed
//! frames never poison the framer's connection.
//!
//! Strategies generate values from the OpenFlow 1.0 wire domain: ports
//! are 16-bit on the 1.0 wire (`OFPP_MAX` bounds physical ports), and a
//! features reply carries one 48-byte descriptor per port, so port
//! counts stay small enough to fit a frame.

use proptest::prelude::*;

use sdn_openflow::codec::{decode, encode};
use sdn_openflow::flow::{Action, FlowMatch};
use sdn_openflow::framing::FrameCodec;
use sdn_openflow::messages::{Envelope, FlowMod, FlowModCommand, OfMessage};
use sdn_types::{DpId, HostId, PortNo, VersionTag, Xid};

/// Physical ports representable on the 1.0 wire (`< OFPP_MAX`), plus
/// the two pseudo-ports the model names.
fn arb_port() -> impl Strategy<Value = PortNo> {
    prop_oneof![
        (0u32..0xff00).prop_map(PortNo),
        (0u32..0xff00).prop_map(PortNo),
        Just(PortNo::CONTROLLER),
        Just(PortNo::LOCAL),
    ]
}

fn arb_action() -> impl Strategy<Value = Action> {
    // `Output(CONTROLLER)` canonicalizes to `ToController` on decode,
    // so Output sticks to physical ports here.
    prop_oneof![
        (0u32..0xff00).prop_map(|p| Action::Output(PortNo(p))),
        any::<u16>().prop_map(|t| Action::SetTag(VersionTag(t))),
        Just(Action::StripTag),
        Just(Action::Drop),
        Just(Action::ToController),
    ]
}

fn arb_match() -> impl Strategy<Value = FlowMatch> {
    (
        proptest::option::of(0u32..0xff00),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u16>()),
    )
        .prop_map(|(p, s, d, t)| FlowMatch {
            in_port: p.map(PortNo),
            src: s.map(HostId),
            dst: d.map(HostId),
            tag: t.map(VersionTag),
        })
}

fn arb_message() -> impl Strategy<Value = OfMessage> {
    prop_oneof![
        Just(OfMessage::Hello),
        Just(OfMessage::FeaturesRequest),
        Just(OfMessage::BarrierRequest),
        Just(OfMessage::BarrierReply),
        Just(OfMessage::FlowStatsRequest),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(OfMessage::EchoRequest),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(OfMessage::EchoReply),
        (any::<u64>(), 0u32..=64).prop_map(|(d, n)| OfMessage::FeaturesReply {
            dpid: DpId(d),
            n_ports: n
        }),
        (
            prop_oneof![
                Just(FlowModCommand::Add),
                Just(FlowModCommand::Modify),
                Just(FlowModCommand::Delete)
            ],
            any::<u16>(),
            arb_match(),
            proptest::collection::vec(arb_action(), 0..8),
            any::<u64>(),
        )
            .prop_map(|(command, priority, matcher, actions, cookie)| {
                OfMessage::FlowMod(FlowMod {
                    command,
                    priority,
                    matcher,
                    actions,
                    cookie,
                })
            }),
        (
            any::<u32>(),
            arb_port(),
            proptest::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(b, p, data)| OfMessage::PacketIn {
                buffer_id: b,
                in_port: p,
                data
            }),
        (
            any::<u32>(),
            arb_port(),
            proptest::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(b, p, data)| OfMessage::PacketOut {
                buffer_id: b,
                out_port: p,
                data
            }),
        (
            any::<u16>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(t, c, data)| OfMessage::ErrorMsg {
                etype: t,
                code: c,
                data
            }),
        (any::<u32>(), any::<u64>()).prop_map(|(e, p)| OfMessage::FlowStatsReply {
            entries: e,
            packets: p
        }),
    ]
}

proptest! {
    #[test]
    fn codec_roundtrips(xid in any::<u32>(), msg in arb_message()) {
        let env = Envelope::new(Xid(xid), msg);
        let bytes = encode(&env);
        let back = decode(&bytes).expect("well-formed frame decodes");
        prop_assert_eq!(back, env);
    }

    #[test]
    fn frames_carry_big_endian_ofp_headers(xid in any::<u32>(), msg in arb_message()) {
        let env = Envelope::new(Xid(xid), msg);
        let bytes = encode(&env);
        // version / length / xid exactly as ofp_header prescribes
        prop_assert_eq!(bytes[0], 0x01);
        let declared = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        prop_assert_eq!(declared, bytes.len());
        let wire_xid = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        prop_assert_eq!(wire_xid, xid);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes); // must return, never panic
    }

    #[test]
    fn framer_never_panics_on_garbage(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 0..8)
    ) {
        let mut c = FrameCodec::new();
        for chunk in &chunks {
            c.feed(chunk);
            // may reject frames but must neither panic nor poison
            let _ = c.next_frame();
        }
    }

    #[test]
    fn framer_handles_arbitrary_chunking(
        msgs in proptest::collection::vec(arb_message(), 1..6),
        cuts in proptest::collection::vec(1usize..32, 0..12),
    ) {
        let envs: Vec<Envelope> = msgs
            .into_iter()
            .enumerate()
            .map(|(i, m)| Envelope::new(Xid(i as u32), m))
            .collect();
        let mut stream = Vec::new();
        for e in &envs {
            stream.extend_from_slice(&encode(e));
        }
        // split at arbitrary boundaries derived from `cuts`
        let mut c = FrameCodec::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        let mut cut_iter = cuts.into_iter().cycle();
        while pos < stream.len() {
            let step = cut_iter.next().unwrap_or(7).min(stream.len() - pos);
            c.feed(&stream[pos..pos + step]);
            pos += step;
            while let Some(env) = c.next_frame().expect("valid stream") {
                got.push(env);
            }
        }
        prop_assert_eq!(got, envs);
    }

    #[test]
    fn framer_survives_garbage_between_frames(
        msg in arb_message(),
        garbage in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        // garbage, then a healthy frame: the framer may report errors
        // for the garbage but must still deliver the healthy frame —
        // rejection never poisons the connection.
        let env = Envelope::new(Xid(7), msg);
        let mut c = FrameCodec::new();
        c.feed(&garbage);
        let bytes = encode(&env);
        // A garbage prefix may look like a header declaring up to
        // MAX_FRAME_LEN bytes, which the framer legitimately buffers
        // toward before it can reject and resync — so keep the traffic
        // flowing. On a live connection that is exactly what happens;
        // the guarantee is that the stream *recovers*, never that the
        // first frame after noise survives.
        let mut delivered = false;
        for _ in 0..4096 {
            c.feed(&bytes);
            let (frames, _rejected) = c.drain_lossy();
            if frames.contains(&env) {
                delivered = true;
                break;
            }
        }
        prop_assert!(delivered, "stream never recovered after garbage");
    }
}
