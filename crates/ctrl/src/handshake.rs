//! Switch discovery handshake.
//!
//! Before the controller trusts a datapath with updates it performs the
//! OpenFlow session setup: exchange `Hello`, then ask for features and
//! match the `FeaturesReply` datapath id against the expected one — the
//! step where Ryu learns "the switches ... are identified by integer
//! values called datapaths" (§2). The round executor only targets
//! switches that completed the handshake; experiments that model switch
//! churn use [`Handshake::reset`].

use std::collections::{BTreeMap, BTreeSet};

use sdn_openflow::messages::{Envelope, OfMessage};
use sdn_types::{DpId, Xid};

use crate::executor::XidAlloc;

/// Discovery state for one controller.
#[derive(Debug, Clone, Default)]
pub struct Handshake {
    /// Switches greeted, waiting for their Hello back.
    awaiting_hello: BTreeSet<DpId>,
    /// FeaturesRequest xid → switch it was sent to.
    awaiting_features: BTreeMap<Xid, DpId>,
    /// Fully discovered switches and their port counts.
    ready: BTreeMap<DpId, u32>,
    /// Switches whose FeaturesReply contradicted the expected dpid.
    mismatched: BTreeSet<DpId>,
}

impl Handshake {
    /// Fresh, empty state.
    pub fn new() -> Self {
        Handshake::default()
    }

    /// Greet a set of switches: send `Hello` followed by
    /// `FeaturesRequest` on each connection.
    pub fn start(
        &mut self,
        switches: impl IntoIterator<Item = DpId>,
        xids: &mut XidAlloc,
    ) -> Vec<(DpId, Envelope)> {
        let mut out = Vec::new();
        for dp in switches {
            self.awaiting_hello.insert(dp);
            out.push((dp, Envelope::new(xids.alloc(), OfMessage::Hello)));
            let xid = xids.alloc();
            self.awaiting_features.insert(xid, dp);
            out.push((dp, Envelope::new(xid, OfMessage::FeaturesRequest)));
        }
        out
    }

    /// Feed a reply from a switch. Returns `true` when the message was
    /// consumed by the handshake.
    pub fn on_message(&mut self, from: DpId, env: &Envelope) -> bool {
        match &env.msg {
            OfMessage::Hello => self.awaiting_hello.remove(&from),
            OfMessage::FeaturesReply { dpid, n_ports } => {
                let Some(expected) = self.awaiting_features.remove(&env.xid) else {
                    return false;
                };
                if expected != from || *dpid != from {
                    // the connection answered with a different datapath
                    // id: refuse to mark it ready
                    self.mismatched.insert(from);
                } else {
                    self.ready.insert(from, *n_ports);
                }
                true
            }
            _ => false,
        }
    }

    /// Whether a switch finished the handshake cleanly.
    pub fn is_ready(&self, dp: DpId) -> bool {
        self.ready.contains_key(&dp)
    }

    /// Whether every greeted switch is ready.
    pub fn all_ready(&self) -> bool {
        self.awaiting_hello.is_empty()
            && self.awaiting_features.is_empty()
            && self.mismatched.is_empty()
    }

    /// Discovered switches with their port counts.
    pub fn discovered(&self) -> impl Iterator<Item = (DpId, u32)> + '_ {
        self.ready.iter().map(|(&d, &n)| (d, n))
    }

    /// Switches whose identity did not match.
    pub fn mismatched(&self) -> impl Iterator<Item = DpId> + '_ {
        self.mismatched.iter().copied()
    }

    /// Forget a switch entirely (connection loss / churn).
    pub fn reset(&mut self, dp: DpId) {
        self.awaiting_hello.remove(&dp);
        self.awaiting_features.retain(|_, v| *v != dp);
        self.ready.remove(&dp);
        self.mismatched.remove(&dp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_switch::SoftSwitch;

    fn drive(hs: &mut Handshake, sw: &mut SoftSwitch, cmds: &[(DpId, Envelope)]) {
        for (dp, env) in cmds {
            if *dp != sw.dpid() {
                continue;
            }
            for reply in sw.handle_control(env.clone()) {
                hs.on_message(sw.dpid(), &reply);
            }
        }
    }

    #[test]
    fn full_handshake_with_real_switch() {
        let mut hs = Handshake::new();
        let mut xids = XidAlloc::new();
        let mut sw = SoftSwitch::new(DpId(3), 8);
        let cmds = hs.start([DpId(3)], &mut xids);
        assert_eq!(cmds.len(), 2);
        assert!(!hs.is_ready(DpId(3)));
        drive(&mut hs, &mut sw, &cmds);
        assert!(hs.is_ready(DpId(3)));
        assert!(hs.all_ready());
        assert_eq!(hs.discovered().collect::<Vec<_>>(), vec![(DpId(3), 8)]);
    }

    #[test]
    fn multiple_switches() {
        let mut hs = Handshake::new();
        let mut xids = XidAlloc::new();
        let mut s1 = SoftSwitch::new(DpId(1), 4);
        let mut s2 = SoftSwitch::new(DpId(2), 4);
        let cmds = hs.start([DpId(1), DpId(2)], &mut xids);
        drive(&mut hs, &mut s1, &cmds);
        assert!(hs.is_ready(DpId(1)));
        assert!(!hs.all_ready(), "s2 still pending");
        drive(&mut hs, &mut s2, &cmds);
        assert!(hs.all_ready());
    }

    #[test]
    fn dpid_mismatch_is_flagged() {
        let mut hs = Handshake::new();
        let mut xids = XidAlloc::new();
        let cmds = hs.start([DpId(7)], &mut xids);
        // an imposter switch with dpid 9 answers on s7's connection
        let features_xid = cmds
            .iter()
            .find(|(_, e)| e.msg == OfMessage::FeaturesRequest)
            .map(|(_, e)| e.xid)
            .unwrap();
        hs.on_message(DpId(7), &Envelope::new(features_xid, OfMessage::Hello));
        hs.on_message(
            DpId(7),
            &Envelope::new(
                features_xid,
                OfMessage::FeaturesReply {
                    dpid: DpId(9),
                    n_ports: 4,
                },
            ),
        );
        assert!(!hs.is_ready(DpId(7)));
        assert!(!hs.all_ready());
        assert_eq!(hs.mismatched().collect::<Vec<_>>(), vec![DpId(7)]);
    }

    #[test]
    fn unsolicited_features_reply_ignored() {
        let mut hs = Handshake::new();
        let consumed = hs.on_message(
            DpId(1),
            &Envelope::new(
                Xid(999),
                OfMessage::FeaturesReply {
                    dpid: DpId(1),
                    n_ports: 4,
                },
            ),
        );
        assert!(!consumed);
        assert!(!hs.is_ready(DpId(1)));
    }

    #[test]
    fn non_handshake_messages_pass_through() {
        let mut hs = Handshake::new();
        let consumed = hs.on_message(DpId(1), &Envelope::new(Xid(1), OfMessage::BarrierReply));
        assert!(!consumed, "barrier replies belong to the executor");
    }

    #[test]
    fn reset_forgets_switch() {
        let mut hs = Handshake::new();
        let mut xids = XidAlloc::new();
        let mut sw = SoftSwitch::new(DpId(3), 8);
        let cmds = hs.start([DpId(3)], &mut xids);
        drive(&mut hs, &mut sw, &cmds);
        assert!(hs.is_ready(DpId(3)));
        hs.reset(DpId(3));
        assert!(!hs.is_ready(DpId(3)));
        assert!(hs.all_ready(), "no pending state after reset");
    }
}
