//! Bounded admission with explicit shedding policies.
//!
//! The serial controller queued updates without limit — under heavy
//! offered load that is an unbounded-memory denial of service and an
//! unbounded-latency guarantee for every request behind the backlog.
//! The runtime instead admits through a bounded two-lane queue
//! ([`AdmissionQueue`]) whose behaviour when full is an explicit
//! [`AdmissionPolicy`]:
//!
//! * **reject-new** — the arriving job is refused (the REST layer
//!   answers `503`-style backpressure; the client retries with its own
//!   policy);
//! * **drop-oldest** — the oldest *lowest-priority* waiting job is
//!   shed to make room, so fresh intent wins over stale intent.
//!
//! Two priority lanes exist in either policy: `High` jobs (e.g.
//! security-critical waypoint changes) dispatch before `Normal` ones
//! and are shed last.

use std::collections::VecDeque;
use std::fmt;

use sdn_types::SimTime;

use crate::compile::CompiledUpdate;
use crate::runtime::conflict::{ConflictGraph, Footprint, JobId};
use crate::runtime::submit::TenantId;

/// What the queue does when it is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Refuse the arriving job (backpressure to the client).
    #[default]
    RejectNew,
    /// Shed the oldest waiting job of the lowest populated priority
    /// lane to make room; refuse only when the arrival itself is the
    /// lowest priority and every queued job outranks it.
    DropOldest,
}

/// Dispatch priority lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Default lane.
    #[default]
    Normal,
    /// Served first, shed last.
    High,
}

/// Why a submission was not queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue is at capacity (reject-new, or drop-oldest with no
    /// lower-priority job to shed).
    QueueFull,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull => f.write_str("queue full"),
        }
    }
}

/// Outcome of a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Queued (and will start once its conflict set clears).
    Queued {
        /// The id assigned to the job.
        id: JobId,
    },
    /// Queued after shedding an older waiting job (drop-oldest).
    QueuedDisplacing {
        /// The id assigned to the job.
        id: JobId,
        /// The shed job's id and label.
        dropped: (JobId, String),
    },
    /// Refused.
    Rejected(RejectReason),
}

impl AdmitOutcome {
    /// The assigned job id, when the job was accepted.
    pub fn id(&self) -> Option<JobId> {
        match self {
            AdmitOutcome::Queued { id } | AdmitOutcome::QueuedDisplacing { id, .. } => Some(*id),
            AdmitOutcome::Rejected(_) => None,
        }
    }

    /// Whether the job entered the queue.
    pub fn accepted(&self) -> bool {
        self.id().is_some()
    }
}

/// A job waiting for dispatch.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Runtime-assigned id.
    pub id: JobId,
    /// The compiled update.
    pub update: CompiledUpdate,
    /// Its precomputed footprint.
    pub footprint: Footprint,
    /// Submission time (queue wait counts toward completion latency).
    pub submitted: SimTime,
    /// Dispatch lane.
    pub priority: Priority,
    /// The submitting tenant (quota accounting).
    pub tenant: TenantId,
    /// Latest useful launch time; a job still waiting past it fails
    /// fast instead of dispatching stale intent.
    pub deadline: Option<SimTime>,
    /// First round to execute. 0 for fresh jobs; crash recovery
    /// re-queues in-flight jobs with the round after their last
    /// journalled commit, so launch skips the fenced prefix.
    pub resume_round: usize,
}

/// The bounded two-lane admission queue.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: usize,
    policy: AdmissionPolicy,
    high: VecDeque<QueuedJob>,
    normal: VecDeque<QueuedJob>,
}

impl AdmissionQueue {
    /// A queue holding at most `capacity` waiting jobs.
    pub fn new(capacity: usize, policy: AdmissionPolicy) -> Self {
        AdmissionQueue {
            capacity,
            policy,
            high: VecDeque::new(),
            normal: VecDeque::new(),
        }
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    /// Whether no job waits.
    pub fn is_empty(&self) -> bool {
        self.high.is_empty() && self.normal.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer a job. `id` is pre-allocated by the runtime so rejected
    /// submissions burn an id but never alias an accepted one.
    pub fn offer(&mut self, job: QueuedJob) -> AdmitOutcome {
        let id = job.id;
        if self.len() >= self.capacity {
            match self.policy {
                AdmissionPolicy::RejectNew => {
                    return AdmitOutcome::Rejected(RejectReason::QueueFull)
                }
                AdmissionPolicy::DropOldest => {
                    // Shed from the normal lane first; a Normal arrival
                    // may not displace waiting High jobs.
                    let victim = if let Some(v) = self.normal.pop_front() {
                        Some(v)
                    } else if job.priority == Priority::High {
                        self.high.pop_front()
                    } else {
                        None
                    };
                    match victim {
                        Some(v) => {
                            self.lane(job.priority).push_back(job);
                            return AdmitOutcome::QueuedDisplacing {
                                id,
                                dropped: (v.id, v.update.label),
                            };
                        }
                        None => return AdmitOutcome::Rejected(RejectReason::QueueFull),
                    }
                }
            }
        }
        self.lane(job.priority).push_back(job);
        AdmitOutcome::Queued { id }
    }

    fn lane(&mut self, p: Priority) -> &mut VecDeque<QueuedJob> {
        match p {
            Priority::High => &mut self.high,
            Priority::Normal => &mut self.normal,
        }
    }

    /// Take the next dispatchable job: the first (High lane first,
    /// FIFO within a lane) whose footprint conflicts neither with the
    /// active set nor with any *earlier* waiting job. The second
    /// condition keeps dispatch starvation-free: a blocked job reserves
    /// its conflict set, so a stream of later disjoint-to-active but
    /// conflicting-to-it arrivals cannot overtake it forever.
    pub fn pop_dispatchable(&mut self, active: &ConflictGraph) -> Option<QueuedJob> {
        let pick = {
            let mut reserved: Vec<&Footprint> = Vec::new();
            let mut pick: Option<(Priority, usize)> = None;
            'scan: for (lane_p, lane) in [
                (Priority::High, &self.high),
                (Priority::Normal, &self.normal),
            ] {
                for (i, job) in lane.iter().enumerate() {
                    let blocked_by_waiting = reserved.iter().any(|fp| job.footprint.conflicts(fp));
                    if !blocked_by_waiting && active.admits(&job.footprint) {
                        pick = Some((lane_p, i));
                        break 'scan;
                    }
                    reserved.push(&job.footprint);
                }
            }
            pick
        };
        let (lane_p, i) = pick?;
        self.lane(lane_p).remove(i)
    }

    /// Iterate waiting jobs (diagnostics), High lane first.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedJob> {
        self.high.iter().chain(self.normal.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, priority: Priority) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            update: CompiledUpdate {
                label: format!("u{id}"),
                rounds: vec![],
            },
            footprint: Footprint::default(),
            submitted: SimTime::ZERO,
            priority,
            tenant: TenantId(0),
            deadline: None,
            resume_round: 0,
        }
    }

    #[test]
    fn reject_new_when_full() {
        let mut q = AdmissionQueue::new(2, AdmissionPolicy::RejectNew);
        assert!(q.offer(job(1, Priority::Normal)).accepted());
        assert!(q.offer(job(2, Priority::Normal)).accepted());
        assert_eq!(
            q.offer(job(3, Priority::Normal)),
            AdmitOutcome::Rejected(RejectReason::QueueFull)
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drop_oldest_sheds_normal_first() {
        let mut q = AdmissionQueue::new(2, AdmissionPolicy::DropOldest);
        q.offer(job(1, Priority::Normal));
        q.offer(job(2, Priority::High));
        let out = q.offer(job(3, Priority::Normal));
        match out {
            AdmitOutcome::QueuedDisplacing { id, dropped } => {
                assert_eq!(id, JobId(3));
                assert_eq!(dropped.0, JobId(1));
            }
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn normal_cannot_displace_high() {
        let mut q = AdmissionQueue::new(1, AdmissionPolicy::DropOldest);
        q.offer(job(1, Priority::High));
        assert_eq!(
            q.offer(job(2, Priority::Normal)),
            AdmitOutcome::Rejected(RejectReason::QueueFull)
        );
        // but High displaces High when only High remain
        let out = q.offer(job(3, Priority::High));
        assert!(matches!(out, AdmitOutcome::QueuedDisplacing { .. }));
    }

    #[test]
    fn high_lane_dispatches_first() {
        let mut q = AdmissionQueue::new(4, AdmissionPolicy::RejectNew);
        q.offer(job(1, Priority::Normal));
        q.offer(job(2, Priority::High));
        let g = ConflictGraph::new();
        assert_eq!(q.pop_dispatchable(&g).unwrap().id, JobId(2));
        assert_eq!(q.pop_dispatchable(&g).unwrap().id, JobId(1));
        assert!(q.pop_dispatchable(&g).is_none());
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut q = AdmissionQueue::new(0, AdmissionPolicy::DropOldest);
        assert!(!q.offer(job(1, Priority::High)).accepted());
    }
}
