//! The portable per-switch state bundle.
//!
//! Historically every layer of the runtime kept its own `dpid`-keyed
//! map — the resync shadow table, the RTO estimator, the quarantine
//! set, the strike counter — all pinned inside one shard's
//! [`ConcurrentRuntime`](crate::runtime::ConcurrentRuntime). Moving a
//! switch between shards therefore meant a restart. [`SwitchSeat`]
//! detaches that state into one value with a single extract/install
//! interface ([`ConcurrentRuntime::extract_seat`] /
//! [`ConcurrentRuntime::install_seat`]), so the fabric can migrate a
//! switch online: fence it on the source shard, carry the seat across,
//! and resume on the destination with nothing dropped or duplicated
//! (ez-Segway's insight that per-switch execution state decoupled from
//! the scheduler makes handoffs cheap).
//!
//! A seat deliberately carries **no in-flight work**: queued jobs,
//! active executors and fabric reservations must drain before
//! extraction (the migration fence,
//! [`ConcurrentRuntime::seat_quiescent`]). What remains is exactly the
//! switch-lifetime state that must survive the move.
//!
//! [`ConcurrentRuntime::extract_seat`]: crate::runtime::ConcurrentRuntime::extract_seat
//! [`ConcurrentRuntime::install_seat`]: crate::runtime::ConcurrentRuntime::install_seat
//! [`ConcurrentRuntime::seat_quiescent`]: crate::runtime::ConcurrentRuntime::seat_quiescent

use sdn_switch::flow_table::FlowTable;
use sdn_types::DpId;

/// Everything one runtime knows about one switch, detached and
/// portable: the resync shadow, the learned RTO estimator, and the
/// quarantine record. Produced by
/// [`ConcurrentRuntime::extract_seat`](crate::runtime::ConcurrentRuntime::extract_seat),
/// consumed by
/// [`ConcurrentRuntime::install_seat`](crate::runtime::ConcurrentRuntime::install_seat).
#[derive(Debug, Clone)]
pub struct SwitchSeat {
    /// The switch this seat belongs to.
    pub dp: DpId,
    /// The resync shadow table — every rule the controller intends the
    /// switch to hold. `None` when nothing was ever sent to it.
    pub shadow: Option<FlowTable>,
    /// Raw RTO estimator state `(srtt, rttvar)` in nanoseconds, when
    /// at least one barrier sample exists.
    pub rto: Option<(u64, u64)>,
    /// Whether the switch was quarantined at extraction time.
    pub quarantined: bool,
    /// Failure strikes accumulated toward quarantine.
    pub strikes: u32,
}

impl SwitchSeat {
    /// Whether the seat carries any state at all (a seat for a switch
    /// the controller never interacted with is empty).
    pub fn is_empty(&self) -> bool {
        self.shadow.is_none() && self.rto.is_none() && !self.quarantined && self.strikes == 0
    }
}
