//! The concurrent multi-update runtime.
//!
//! The paper's controller processes one REST update at a time; this
//! subsystem removes that last single-lane bottleneck. It is built
//! from four parts:
//!
//! * [`conflict`] — footprint extraction from compiled updates and the
//!   dynamic conflict graph: footprint-disjoint updates commute, so
//!   they execute concurrently; overlapping ones queue behind their
//!   conflict set (ez-Segway's independence insight at flow
//!   granularity);
//! * [`admission`] — a bounded two-lane queue with explicit shedding
//!   policies (reject-new / drop-oldest, High/Normal priority lanes),
//!   surfaced through the REST layer as structured backpressure;
//! * [`rto`] — per-switch adaptive retransmission timeouts (EWMA
//!   RTT + variance, exponential backoff, straggler detection),
//!   replacing the serial executor's fixed round timer;
//! * [`dispatch`] — the multi-executor scheduler driving many
//!   [`RoundExecutor`](crate::executor::RoundExecutor)s over the
//!   shared channel, routing barrier replies by `(switch, xid)`.
//!
//! [`RuntimeHandle`] abstracts over the serial
//! [`Controller`](crate::controller::Controller), the concurrent
//! [`ConcurrentRuntime`], and the sharded
//! [`FabricCoordinator`],
//! so the simulator and the experiments flip between them with a
//! constructor argument. Submissions go through the [`submit`] module's
//! [`SubmitRequest`] → [`SubmitTicket`] surface; the positional
//! `submit(update, now, priority)` form survives as a convenience
//! wrapper.

pub mod admission;
pub mod conflict;
pub mod dispatch;
pub mod fabric;
pub mod journal;
pub mod rto;
pub mod seat;
pub mod submit;

pub use admission::{AdmissionPolicy, AdmitOutcome, Priority, RejectReason};
pub use conflict::{ConflictGraph, FlowClass, Footprint, JobId};
pub use dispatch::{ConcurrentRuntime, RetransMode, RuntimeConfig};
pub use fabric::{FabricConfig, FabricCoordinator, MigrateError, RebalanceReport, ShardId};
pub use journal::{Journal, JournalRecord};
pub use rto::{RtoConfig, RtoTable};
pub use seat::SwitchSeat;
pub use submit::{SubmitError, SubmitOutcome, SubmitRequest, SubmitTicket, TenantId};

use sdn_obs::Obs;
use sdn_openflow::messages::{Envelope, OfMessage};
use sdn_types::{DpId, SimDuration, SimTime};

use crate::compile::CompiledUpdate;
use crate::controller::{CtrlOutput, UpdateReport};

/// Aggregate runtime counters (monotone; snapshot via
/// [`RuntimeHandle::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Updates offered through [`RuntimeHandle::submit`].
    pub submitted: u64,
    /// Updates that entered the queue.
    pub accepted: u64,
    /// Updates refused (backpressure).
    pub rejected: u64,
    /// Queued updates shed by the drop-oldest policy.
    pub displaced: u64,
    /// Updates that completed every round.
    pub completed: u64,
    /// Updates that exhausted a retransmission budget.
    pub failed: u64,
    /// Barrier retransmissions across all updates.
    pub retransmissions: u64,
    /// Switches flagged as stragglers (slow while the rest of their
    /// round had acknowledged).
    pub stragglers: u64,
    /// Highest number of simultaneously executing updates observed.
    pub peak_active: u64,
    /// Switch reconnects observed (via [`RuntimeHandle::on_reconnect`]).
    pub reconnects: u64,
    /// Resynchronization audits that converged.
    pub resyncs: u64,
    /// Missing rules replayed by resynchronization.
    pub resynced_rules: u64,
    /// Switches quarantined after repeated failures.
    pub quarantined: u64,
    /// Crash recoveries this runtime instance was rebuilt through.
    pub recoveries: u64,
    /// Online seat migrations committed (fabric runtimes only).
    pub migrations: u64,
    /// Online seat migrations unwound — rejected at apply time or
    /// rolled back to the source by crash recovery.
    pub migration_aborts: u64,
}

impl RuntimeStats {
    /// Fraction of submissions refused.
    pub fn rejection_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.rejected as f64 / self.submitted as f64
        }
    }
}

/// Per-switch retransmission state for [`StatusReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchStatus {
    /// The switch.
    pub dp: DpId,
    /// Smoothed RTT, when at least one barrier sample exists.
    pub srtt: Option<SimDuration>,
    /// Current base retransmission timeout.
    pub rto: SimDuration,
    /// Flagged slow while the rest of its round had acknowledged.
    pub straggler: bool,
}

/// Per-shard depth figures for [`StatusReport`] (fabric runtimes only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatus {
    /// The shard.
    pub shard: u32,
    /// Jobs waiting in the shard's admission queue.
    pub queued: usize,
    /// Jobs the shard is executing.
    pub active: usize,
    /// Switches the shard owns.
    pub switches: usize,
}

/// Per-tenant budget usage for [`StatusReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStatus {
    /// The tenant.
    pub tenant: submit::TenantId,
    /// Jobs it has queued or executing.
    pub in_flight: u32,
    /// Its configured budget (`None` = unlimited).
    pub quota: Option<u32>,
}

/// A live snapshot of the runtime for `GET /status` — the operator's
/// view that experiments and tests previously scraped from internal
/// accessors. Rendered to JSON by
/// [`status_response`](crate::rest::status::status_response).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatusReport {
    /// Jobs waiting for dispatch (admission-queue depth).
    pub queued: usize,
    /// Jobs currently executing.
    pub active: usize,
    /// Outstanding per-payload acknowledgements across active jobs
    /// (0 when [`ExecConfig::flowmod_acks`](crate::executor::ExecConfig)
    /// is off).
    pub pending_acks: usize,
    /// Aggregate counters.
    pub stats: RuntimeStats,
    /// Per-switch RTO estimates and straggler flags. Empty for
    /// runtimes without adaptive retransmission (the serial
    /// controller).
    pub switches: Vec<SwitchStatus>,
    /// Records in the write-ahead journal (0 when journalling is
    /// disabled or the runtime has none).
    pub journal_len: usize,
    /// Switches currently quarantined, in dpid order.
    pub quarantined: Vec<DpId>,
    /// Per-shard queue and active depths (empty for single-runtime
    /// controllers).
    pub shards: Vec<ShardStatus>,
    /// Per-tenant in-flight counts against their budgets (empty when
    /// no tenant has work in flight).
    pub tenants: Vec<TenantStatus>,
    /// Cross-shard jobs waiting for their two-phase prepare.
    pub xshard_queued: usize,
    /// Cross-shard jobs currently executing under the coordinator.
    pub xshard_active: usize,
    /// Switches mid-migration (seat still fenced on its source shard),
    /// in dpid order. Empty for single-runtime controllers.
    pub migrating: Vec<DpId>,
}

/// A controller core that accepts compiled updates and drives them to
/// completion over a message transport. Implemented by the serial
/// [`Controller`](crate::controller::Controller) (the paper's
/// one-at-a-time queue), by [`ConcurrentRuntime`], and by the sharded
/// [`FabricCoordinator`].
pub trait RuntimeHandle {
    /// Offer an update for execution. Admission may refuse it (bounded
    /// queue, tenant quota, expired deadline); an accepted request
    /// yields a [`SubmitTicket`] carrying the assigned job id.
    fn submit_request(&mut self, req: submit::SubmitRequest, now: SimTime)
        -> submit::SubmitOutcome;

    /// Positional convenience over [`RuntimeHandle::submit_request`]:
    /// default tenant, no deadline.
    fn submit(
        &mut self,
        update: CompiledUpdate,
        now: SimTime,
        priority: Priority,
    ) -> submit::SubmitOutcome {
        self.submit_request(submit::SubmitRequest::new(update).priority(priority), now)
    }

    /// Drive timers and dispatch: start queued jobs, retransmit, end
    /// grace waits. Call regularly (each simulator step or timer
    /// tick). Returns transport commands.
    fn poll(&mut self, now: SimTime) -> Vec<CtrlOutput>;

    /// Feed a message arriving from a switch.
    fn on_message(&mut self, now: SimTime, from: DpId, env: &Envelope) -> Vec<CtrlOutput>;

    /// Whether nothing is executing or waiting.
    fn is_idle(&self) -> bool;

    /// Completed (or failed) job reports, in completion order.
    fn reports(&self) -> &[UpdateReport];

    /// Jobs waiting for dispatch.
    fn queued(&self) -> usize;

    /// Jobs currently executing.
    fn active_count(&self) -> usize;

    /// Counter snapshot.
    fn stats(&self) -> RuntimeStats;

    /// Live snapshot for the `GET /status` endpoint. The default
    /// covers every runtime from the trait's own accessors; runtimes
    /// with richer diagnostics (per-switch RTOs, straggler flags,
    /// payload acks) override it.
    fn status_report(&self) -> StatusReport {
        StatusReport {
            queued: self.queued(),
            active: self.active_count(),
            pending_acks: 0,
            stats: self.stats(),
            switches: Vec::new(),
            journal_len: 0,
            quarantined: Vec::new(),
            shards: Vec::new(),
            tenants: Vec::new(),
            xshard_queued: 0,
            xshard_active: 0,
            migrating: Vec::new(),
        }
    }

    /// The transport reports `dp`'s connection died. In-flight
    /// messages to and from it are gone; a resync-capable runtime
    /// aborts any audit in progress. Default: ignore (retransmission
    /// timers already cover lost messages).
    fn on_disconnect(&mut self, _dp: DpId, _now: SimTime) {}

    /// The transport reports `dp` reconnected (same datapath id,
    /// fresh connection — possibly a reboot with an empty table).
    /// A resync-capable runtime starts the audit-and-repair handshake
    /// and lifts any quarantine; the commands returned open the audit.
    /// Default: do nothing.
    fn on_reconnect(&mut self, _dp: DpId, _now: SimTime) -> Vec<CtrlOutput> {
        Vec::new()
    }

    /// A rule was installed at `dp` outside any update job (initial
    /// table population). Runtimes that keep shadow tables record it
    /// so a later audit knows the baseline. Default: ignore.
    fn note_installed(&mut self, _dp: DpId, _msg: &OfMessage) {}

    /// The intended rule-hash list for `dp` (ascending), when this
    /// runtime tracks one — what the switch must converge to. The
    /// simulator's auditor compares tables against this. Default:
    /// unknown.
    fn intended_hashes(&self, _dp: DpId) -> Option<Vec<u64>> {
        None
    }

    /// Rebuild state after a controller crash, from whatever durable
    /// log the runtime keeps. Returns whether a recovery happened
    /// (`false` for runtimes without a journal — their in-flight work
    /// is simply lost, the paper's baseline behaviour).
    fn recover_from_crash(&mut self, _now: SimTime) -> bool {
        false
    }

    /// Attach an observability sink: lifecycle events, metrics and
    /// flight-recorder rings flow into `obs` from here on. Runtimes
    /// without instrumentation ignore it (the serial controller — the
    /// paper's baseline — stays unmeasured on purpose).
    fn attach_obs(&mut self, _obs: Obs) {}

    /// Start moving the per-switch seat of `dp` to shard `to`, when
    /// this runtime is a sharded fabric. Returns whether a migration
    /// actually began; runtimes without shards (and fabrics that
    /// refuse the move — unknown switch, same shard, already
    /// migrating) answer `false`. Default: not supported.
    fn begin_seat_migration(&mut self, _dp: DpId, _to: u32, _now: SimTime) -> bool {
        false
    }
}
