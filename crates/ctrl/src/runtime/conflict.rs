//! Conflict analysis for concurrent updates.
//!
//! Two compiled updates may execute concurrently iff their
//! **footprints** are disjoint: no switch exists where both install,
//! replace or delete rules for an overlapping flow class. Rule
//! operations of footprint-disjoint updates commute — every
//! interleaving of their per-round FlowMods drives each switch's flow
//! table through exactly the states some serial order would, so the
//! per-update transient guarantees proved by the static checker carry
//! over to the merged execution unchanged (ez-Segway's segment
//!-independence argument, applied at flow granularity). Overlapping
//! updates must instead queue behind their conflict set.
//!
//! A flow class is the destination host a FlowMod matches on
//! ([`FlowClass`]); tagged and untagged rules of the same destination
//! share a class, because the two-phase ingress flip shadows the
//! untagged rule by priority — they do *not* commute with a concurrent
//! replacement of that rule. A wildcard match conflicts with every
//! class at that switch.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use sdn_openflow::messages::OfMessage;
use sdn_types::{DpId, HostId};

use crate::compile::CompiledUpdate;

/// Identifier of an update job inside the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// The flow-table slice a FlowMod touches at one switch: the
/// destination host it matches, or `Wildcard` for matches that cover
/// every flow (and therefore conflict with everything at that switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlowClass {
    /// Rules matching a specific destination host (tagged or not).
    Dst(HostId),
    /// A match without a destination — overlaps every class.
    Wildcard,
}

/// Per-switch flow classes an update touches.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Footprint {
    classes: BTreeMap<DpId, BTreeSet<FlowClass>>,
}

impl Footprint {
    /// Extract the footprint of a compiled update: every switch any
    /// round sends a message to, with the flow classes those messages
    /// touch. Non-FlowMod control messages (none are compiled today)
    /// count as wildcard, conservatively.
    pub fn of(update: &CompiledUpdate) -> Footprint {
        let mut classes: BTreeMap<DpId, BTreeSet<FlowClass>> = BTreeMap::new();
        for round in &update.rounds {
            for (dp, msg) in &round.msgs {
                let class = match msg {
                    OfMessage::FlowMod(fm) => match fm.matcher.dst {
                        Some(h) => FlowClass::Dst(h),
                        None => FlowClass::Wildcard,
                    },
                    _ => FlowClass::Wildcard,
                };
                classes.entry(*dp).or_default().insert(class);
            }
        }
        Footprint { classes }
    }

    /// Switches this footprint touches, in dpid order.
    pub fn switches(&self) -> impl Iterator<Item = DpId> + '_ {
        self.classes.keys().copied()
    }

    /// Number of switches touched.
    pub fn switch_count(&self) -> usize {
        self.classes.len()
    }

    /// Whether the footprint touches no switch (empty update).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Whether two footprints overlap at `dp`.
    fn overlaps_at(&self, other: &Footprint, dp: DpId) -> bool {
        match (self.classes.get(&dp), other.classes.get(&dp)) {
            (Some(a), Some(b)) => {
                if a.contains(&FlowClass::Wildcard) || b.contains(&FlowClass::Wildcard) {
                    return true;
                }
                let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                small.iter().any(|c| large.contains(c))
            }
            _ => false,
        }
    }

    /// Whether the two updates conflict: some switch carries an
    /// overlapping flow class in both.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        let (small, large) = if self.classes.len() <= other.classes.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.switches().any(|dp| small.overlaps_at(large, dp))
    }

    /// Disjointness — the commuting condition.
    pub fn disjoint(&self, other: &Footprint) -> bool {
        !self.conflicts(other)
    }

    /// The sub-footprint covering only the switches `keep` accepts —
    /// the fabric slices a cross-shard footprint into one reservation
    /// per owning shard with this.
    pub fn slice(&self, mut keep: impl FnMut(DpId) -> bool) -> Footprint {
        Footprint {
            classes: self
                .classes
                .iter()
                .filter(|(dp, _)| keep(**dp))
                .map(|(dp, cs)| (*dp, cs.clone()))
                .collect(),
        }
    }
}

/// The dynamic conflict graph over *active* jobs.
///
/// Nodes are executing updates; an implicit edge joins every pair of
/// conflicting footprints. The runtime never materializes edges — it
/// only ever asks "which active jobs conflict with this candidate?",
/// answered through a per-switch index so a candidate pays for the
/// switches it touches, not for every active job.
#[derive(Debug, Clone, Default)]
pub struct ConflictGraph {
    active: BTreeMap<JobId, Footprint>,
    by_switch: BTreeMap<DpId, BTreeSet<JobId>>,
}

impl ConflictGraph {
    /// An empty graph.
    pub fn new() -> Self {
        ConflictGraph::default()
    }

    /// Number of active jobs.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Whether no job is active.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Insert an active job. Panics on id reuse (runtime ids are
    /// allocated monotonically).
    pub fn insert(&mut self, id: JobId, footprint: Footprint) {
        for dp in footprint.switches() {
            self.by_switch.entry(dp).or_default().insert(id);
        }
        let prev = self.active.insert(id, footprint);
        assert!(prev.is_none(), "job id {id} inserted twice");
    }

    /// Remove a completed/failed job.
    pub fn remove(&mut self, id: JobId) {
        if let Some(fp) = self.active.remove(&id) {
            for dp in fp.switches() {
                if let Some(set) = self.by_switch.get_mut(&dp) {
                    set.remove(&id);
                    if set.is_empty() {
                        self.by_switch.remove(&dp);
                    }
                }
            }
        }
    }

    /// Active jobs whose footprint conflicts with the candidate.
    pub fn conflicts_with(&self, candidate: &Footprint) -> BTreeSet<JobId> {
        let mut out = BTreeSet::new();
        for dp in candidate.switches() {
            if let Some(ids) = self.by_switch.get(&dp) {
                for &id in ids {
                    if !out.contains(&id) {
                        let fp = &self.active[&id];
                        if candidate.overlaps_at(fp, dp) {
                            out.insert(id);
                        }
                    }
                }
            }
        }
        out
    }

    /// Whether any active job's footprint covers `dp` — the migration
    /// fence asks this before a seat may leave its shard.
    pub fn touches(&self, dp: DpId) -> bool {
        self.by_switch.contains_key(&dp)
    }

    /// Whether the candidate can start now (conflict-free against all
    /// active jobs).
    pub fn admits(&self, candidate: &Footprint) -> bool {
        candidate.switches().all(|dp| {
            self.by_switch.get(&dp).is_none_or(|ids| {
                ids.iter()
                    .all(|id| !candidate.overlaps_at(&self.active[id], dp))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_openflow::flow::{Action, FlowMatch};
    use sdn_openflow::messages::{FlowMod, FlowModCommand};
    use sdn_types::PortNo;

    use crate::compile::CompiledRound;

    fn update(switch_dst: &[(u64, Option<u32>)]) -> CompiledUpdate {
        CompiledUpdate {
            label: "t".into(),
            rounds: vec![CompiledRound {
                msgs: switch_dst
                    .iter()
                    .map(|&(dp, dst)| {
                        (
                            DpId(dp),
                            OfMessage::FlowMod(FlowMod {
                                command: FlowModCommand::Add,
                                priority: 100,
                                matcher: match dst {
                                    Some(h) => FlowMatch::dst_host(HostId(h)),
                                    None => FlowMatch::ANY,
                                },
                                actions: vec![Action::Output(PortNo(1))],
                                cookie: 0,
                            }),
                        )
                    })
                    .collect(),
                pre_delay: sdn_types::SimDuration::ZERO,
            }],
        }
    }

    #[test]
    fn disjoint_switches_do_not_conflict() {
        let a = Footprint::of(&update(&[(1, Some(2)), (2, Some(2))]));
        let b = Footprint::of(&update(&[(3, Some(2)), (4, Some(2))]));
        assert!(a.disjoint(&b));
        assert!(b.disjoint(&a));
    }

    #[test]
    fn shared_switch_same_flow_conflicts() {
        let a = Footprint::of(&update(&[(1, Some(2)), (2, Some(2))]));
        let b = Footprint::of(&update(&[(2, Some(2)), (3, Some(2))]));
        assert!(a.conflicts(&b));
    }

    #[test]
    fn shared_switch_distinct_flows_commute() {
        let a = Footprint::of(&update(&[(1, Some(2)), (2, Some(2))]));
        let b = Footprint::of(&update(&[(2, Some(4)), (3, Some(4))]));
        assert!(a.disjoint(&b), "distinct dst hosts on a shared switch");
    }

    #[test]
    fn wildcard_conflicts_with_everything_at_that_switch() {
        let a = Footprint::of(&update(&[(2, None)]));
        let b = Footprint::of(&update(&[(2, Some(9))]));
        let c = Footprint::of(&update(&[(3, Some(9))]));
        assert!(a.conflicts(&b));
        assert!(a.disjoint(&c));
    }

    #[test]
    fn footprint_covers_all_rounds() {
        let mut u = update(&[(1, Some(2))]);
        u.rounds.push(CompiledRound {
            msgs: vec![(
                DpId(7),
                OfMessage::FlowMod(FlowMod {
                    command: FlowModCommand::Delete,
                    priority: 100,
                    matcher: FlowMatch::dst_host(HostId(2)),
                    actions: vec![],
                    cookie: 0,
                }),
            )],
            pre_delay: sdn_types::SimDuration::ZERO,
        });
        let fp = Footprint::of(&u);
        assert_eq!(fp.switch_count(), 2);
        assert_eq!(fp.switches().collect::<Vec<_>>(), vec![DpId(1), DpId(7)]);
    }

    #[test]
    fn graph_tracks_inserts_and_removes() {
        let mut g = ConflictGraph::new();
        let a = Footprint::of(&update(&[(1, Some(2)), (2, Some(2))]));
        let b = Footprint::of(&update(&[(2, Some(2)), (3, Some(2))]));
        let c = Footprint::of(&update(&[(9, Some(2))]));
        g.insert(JobId(1), a);
        assert!(!g.admits(&b));
        assert_eq!(g.conflicts_with(&b), [JobId(1)].into());
        assert!(g.admits(&c));
        g.insert(JobId(2), c);
        assert_eq!(g.len(), 2);
        assert!(g.touches(DpId(1)) && g.touches(DpId(9)));
        assert!(!g.touches(DpId(4)));
        g.remove(JobId(1));
        assert!(g.admits(&b));
        assert!(!g.touches(DpId(1)), "released switches untouched");
        g.remove(JobId(2));
        assert!(g.is_empty());
    }

    #[test]
    fn empty_footprint_always_admitted() {
        let mut g = ConflictGraph::new();
        g.insert(JobId(1), Footprint::of(&update(&[(1, Some(2))])));
        let empty = Footprint::default();
        assert!(empty.is_empty());
        assert!(g.admits(&empty));
    }
}
