//! Shard-rebalancing advice from the footprint touch index.
//!
//! Every submission's footprint increments a per-switch touch counter;
//! aggregating those counters per shard shows whether the static
//! assignment still matches the offered load. [`RebalanceReport`]
//! summarises the skew and proposes a bounded list of switch moves
//! (hottest switch of the hottest shard → the coolest shard, while the
//! move still narrows the spread). The report can be applied two ways:
//! **offline**, constructing a fresh assignment with
//! [`ShardAssignment::with_overrides`] for the next boot, or **live**,
//! handing it to
//! [`FabricCoordinator::apply_rebalance`](super::FabricCoordinator::apply_rebalance),
//! which drains each switch behind a migration fence and carries its
//! [`SwitchSeat`](crate::runtime::SwitchSeat) to the destination shard
//! without dropping in-flight work.

use std::collections::BTreeMap;

use sdn_types::DpId;
use update_core::partition::ShardAssignment;

use super::ShardId;

/// Observed load of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// The shard.
    pub shard: ShardId,
    /// Distinct switches of this shard seen in any footprint.
    pub switches: usize,
    /// Total footprint touches over those switches.
    pub touches: u64,
}

/// One proposed migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuggestedMove {
    /// The switch to move.
    pub dp: DpId,
    /// Its current owner.
    pub from: ShardId,
    /// Its proposed owner.
    pub to: ShardId,
    /// The load that moves with it.
    pub touches: u64,
}

/// Load skew summary plus a bounded migration plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceReport {
    /// Per-shard load, in shard order (every shard listed, even idle
    /// ones).
    pub loads: Vec<ShardLoad>,
    /// Hottest shard's touches over the per-shard mean (1.0 = level,
    /// 0.0 = no load anywhere).
    pub imbalance: f64,
    /// Greedy moves, hottest first, each strictly narrowing the
    /// hot–cold spread at the time it was chosen.
    pub moves: Vec<SuggestedMove>,
}

impl RebalanceReport {
    /// Build the report from the touch index under `assign`, proposing
    /// at most `max_moves` migrations.
    pub fn compute(
        touch: &BTreeMap<DpId, u64>,
        assign: &ShardAssignment,
        max_moves: usize,
    ) -> Self {
        let n = assign.shards() as usize;
        let mut touches = vec![0u64; n];
        let mut switches = vec![0usize; n];
        // per-shard switch lists, hottest last (stable: BTreeMap order)
        let mut owned: Vec<Vec<(DpId, u64)>> = vec![Vec::new(); n];
        for (&dp, &t) in touch {
            let s = assign.shard_of(dp) as usize;
            touches[s] += t;
            switches[s] += 1;
            owned[s].push((dp, t));
        }
        for list in &mut owned {
            list.sort_by_key(|&(dp, t)| (t, std::cmp::Reverse(dp.0)));
        }
        let total: u64 = touches.iter().sum();
        let mean = total as f64 / n as f64;
        let imbalance = if total == 0 {
            0.0
        } else {
            touches.iter().copied().max().unwrap_or(0) as f64 / mean
        };
        let loads = (0..n)
            .map(|i| ShardLoad {
                shard: ShardId(i as u32),
                switches: switches[i],
                touches: touches[i],
            })
            .collect();

        let mut moves = Vec::new();
        let mut load = touches.clone();
        for _ in 0..max_moves {
            let hot = (0..n).max_by_key(|&i| (load[i], i)).unwrap_or(0);
            let cold = (0..n).min_by_key(|&i| (load[i], i)).unwrap_or(0);
            let spread = load[hot] - load[cold];
            // the hottest switch still narrowing the spread: moving t
            // flips the gap to |spread - 2t|, an improvement iff t > 0
            // and t < spread
            let pick = owned[hot].iter().rposition(|&(_, t)| t > 0 && t < spread);
            let Some(i) = pick else { break };
            let (dp, t) = owned[hot].remove(i);
            load[hot] -= t;
            load[cold] += t;
            owned[cold].push((dp, t));
            moves.push(SuggestedMove {
                dp,
                from: ShardId(hot as u32),
                to: ShardId(cold as u32),
                touches: t,
            });
        }
        RebalanceReport {
            loads,
            imbalance,
            moves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(entries: &[(u64, u64)]) -> BTreeMap<DpId, u64> {
        entries.iter().map(|&(dp, t)| (DpId(dp), t)).collect()
    }

    #[test]
    fn level_load_proposes_nothing() {
        let assign = ShardAssignment::modulo(2);
        let r = RebalanceReport::compute(&touch(&[(1, 10), (2, 10)]), &assign, 4);
        assert!((r.imbalance - 1.0).abs() < 1e-9);
        assert!(r.moves.is_empty());
    }

    #[test]
    fn skewed_load_moves_hot_switch_to_cool_shard() {
        // shard 0 owns dp 2 (load 30) and dp 4 (load 10); shard 1 owns
        // dp 1 (load 2)
        let assign = ShardAssignment::modulo(2);
        let r = RebalanceReport::compute(&touch(&[(2, 30), (4, 10), (1, 2)]), &assign, 4);
        assert!(r.imbalance > 1.5);
        let m = r.moves.first().expect("a move");
        assert_eq!(m.from, ShardId(0));
        assert_eq!(m.to, ShardId(1));
        // the hottest mover still under the 38-point spread: dp2 (30)
        assert_eq!(m.dp, DpId(2));
    }

    #[test]
    fn no_load_is_reported_level() {
        let assign = ShardAssignment::modulo(3);
        let r = RebalanceReport::compute(&BTreeMap::new(), &assign, 4);
        assert_eq!(r.imbalance, 0.0);
        assert_eq!(r.loads.len(), 3);
        assert!(r.moves.is_empty());
    }

    #[test]
    fn moves_are_bounded() {
        let assign = ShardAssignment::modulo(2);
        let t = touch(&[(2, 9), (4, 9), (6, 9), (8, 9), (1, 1)]);
        let r = RebalanceReport::compute(&t, &assign, 1);
        assert_eq!(r.moves.len(), 1);
    }
}
