//! The fabric coordinator: shard routing plus the two-phase protocol.
//!
//! Single-shard updates forward straight into the owning shard's
//! runtime and never synchronise with anything else. Cross-shard
//! updates go through **prepare** — reserve the per-shard slice of the
//! footprint in every involved shard's conflict graph, all-or-nothing —
//! and **commit** — hand the update to a coordinator-owned runtime
//! that executes it with the usual global round fencing. While the
//! reservations are held, conflicting shard-local work queues behind
//! them exactly as it would behind an active local job, which is what
//! makes the shard-local serialisation argument compose: every
//! runtime's conflict graph sees *some* owner for every flow class a
//! cross-shard update touches.
//!
//! A refused reservation releases everything already taken (no
//! hold-and-wait, hence no deadlock) and parks the update in a bounded
//! prepare queue retried each [`poll`](RuntimeHandle::poll). The
//! fabric's own write-ahead journal records `Admitted` → `Prepared` →
//! `XCommitted` (or `Aborted`); recovery replays it to re-queue
//! unprepared updates, abort updates caught between prepare and
//! commit, and re-establish reservations for updates the recovered
//! coordinator runtime still has in flight.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use sdn_obs::{Ctr, DumpReason, Event, EventKind, HistId, Obs};
use sdn_openflow::messages::{Envelope, OfMessage};
use sdn_types::{DpId, SimTime};
use update_core::partition::ShardAssignment;

use crate::compile::CompiledUpdate;
use crate::controller::{CtrlOutput, FailReason, UpdateReport};
use crate::runtime::admission::Priority;
use crate::runtime::conflict::{Footprint, JobId};
use crate::runtime::dispatch::{ConcurrentRuntime, RuntimeConfig};
use crate::runtime::journal::{Journal, JournalRecord};
use crate::runtime::submit::{SubmitError, SubmitOutcome, SubmitRequest, SubmitTicket, TenantId};
use crate::runtime::{RuntimeHandle, RuntimeStats, ShardStatus, StatusReport, TenantStatus};

use super::rebalance::RebalanceReport;
use super::tenant::TenantPolicy;
use super::ShardId;

/// Shard `i` allocates xids from `(i + 1) << 24`.
const SHARD_XID_STRIDE: u32 = 1 << 24;
/// The coordinator runtime allocates xids from here.
const COORD_XID_BASE: u32 = 0xF000_0000;
/// Shard `i` assigns job ids from `(i + 1) << 32`.
const SHARD_JOB_STRIDE: u64 = 1 << 32;
/// Fabric tickets for cross-shard updates start here.
const TICKET_BASE: u64 = 1 << 56;
/// The coordinator runtime assigns job ids from here.
const COORD_JOB_BASE: u64 = 1 << 57;
/// Reservations appear in shard conflict graphs as `RESERVE_BASE | ticket`.
const RESERVE_BASE: u64 = 1 << 62;
/// Hard cap on shard count (keeps the xid ranges disjoint).
const MAX_SHARDS: u32 = 128;

fn reserve_id(ticket: JobId) -> JobId {
    JobId(RESERVE_BASE | ticket.0)
}

/// Why a requested seat migration was refused at apply time.
///
/// Refusals are synchronous and leave the fabric untouched: no journal
/// record is written for the switch and ownership does not change. The
/// REST layer maps these to structured `409 Conflict` bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateError {
    /// The switch has never been seen by the fabric (no footprint
    /// touch, no shadow state): there is no seat to move.
    UnknownSwitch(DpId),
    /// The requested destination is the shard that already owns the
    /// switch — a no-op, refused so callers notice stale reports.
    SameShard {
        /// The switch.
        dp: DpId,
        /// The shard that both owns it and was named as destination.
        shard: ShardId,
    },
    /// A migration for this switch is already in flight; wait for it
    /// to commit before moving the switch again.
    AlreadyMigrating(DpId),
    /// The destination shard index is outside the fabric.
    BadShard(ShardId),
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::UnknownSwitch(dp) => write!(f, "unknown switch dp{}", dp.0),
            MigrateError::SameShard { dp, shard } => {
                write!(f, "dp{} already lives on {shard}", dp.0)
            }
            MigrateError::AlreadyMigrating(dp) => write!(f, "dp{} is already migrating", dp.0),
            MigrateError::BadShard(s) => write!(f, "no such shard: {s}"),
        }
    }
}

/// Fabric construction parameters.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Shard count (clamped to `1..=128`).
    pub shards: u32,
    /// Template runtime tuning applied to every shard and to the
    /// coordinator runtime (xid and job-id bases are overridden per
    /// runtime; `tenant_quota` is ignored — the fabric enforces
    /// budgets itself via `tenants`).
    pub runtime: RuntimeConfig,
    /// Per-tenant budgets and priority boosts.
    pub tenants: TenantPolicy,
    /// Journal everything (per-shard WALs, the coordinator runtime's
    /// WAL, and the fabric's own two-phase log) in memory, enabling
    /// [`RuntimeHandle::recover_from_crash`].
    pub journal: bool,
    /// Bound on cross-shard updates waiting for a successful prepare.
    pub xqueue_capacity: usize,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            shards: 4,
            runtime: RuntimeConfig::default(),
            tenants: TenantPolicy::default(),
            journal: false,
            xqueue_capacity: 64,
        }
    }
}

/// A cross-shard update waiting for its prepare to succeed.
#[derive(Debug, Clone)]
struct XPending {
    id: JobId,
    update: CompiledUpdate,
    footprint: Footprint,
    /// Involved shards, ascending.
    involved: Vec<u32>,
    priority: Priority,
    tenant: TenantId,
    deadline: Option<SimTime>,
    submitted: SimTime,
    /// Prepare attempts so far (observability: the prepare-rounds
    /// histogram records this at commit).
    attempts: u32,
}

/// A committed cross-shard update: reservations held until the
/// coordinator runtime finishes the job.
#[derive(Debug, Clone)]
struct XActive {
    coord: JobId,
    involved: Vec<u32>,
}

/// Outcome of one prepare-and-commit attempt.
enum Attempt {
    /// Reservations held, update handed to the coordinator runtime.
    Committed,
    /// Some reservation refused; everything taken was released.
    Blocked,
    /// Reservations succeeded but the coordinator runtime refused the
    /// job — reservations released, `Aborted` journalled, terminal.
    Refused,
}

/// The sharded controller fabric (see the [module docs](super)).
#[derive(Debug, Clone)]
pub struct FabricCoordinator {
    assign: ShardAssignment,
    tenants: TenantPolicy,
    shards: Vec<ConcurrentRuntime>,
    /// Executes cross-shard updates under global round fencing.
    coord: ConcurrentRuntime,
    /// The fabric's own write-ahead log (two-phase records).
    journal: Journal,
    next_ticket: u64,
    xqueue: VecDeque<XPending>,
    xqueue_capacity: usize,
    xactive: BTreeMap<JobId, XActive>,
    /// Merged completion reports, fabric order; `harvested[i]` is the
    /// copy cursor into shard `i`'s report log (last slot: coordinator).
    reports: Vec<UpdateReport>,
    harvested: Vec<usize>,
    /// Per-switch footprint touches since boot (rebalance advice).
    touch: BTreeMap<DpId, u64>,
    /// Seat migrations in flight: `dp → (from, to, begun)`. A switch
    /// stays here from `MigrateBegin` until its source shard fences
    /// quiescent and the seat moves (`MigrateCommitted`).
    migrations: BTreeMap<DpId, (u32, u32, SimTime)>,
    /// Fabric-level counters for work no sub-runtime has on its books
    /// (quota/deadline rejections, queued prepares, fabric aborts).
    overlay: RuntimeStats,
    /// Observability sink, stamped with the coordinator's own shard
    /// tag (one past the last shard); shards carry per-shard clones.
    obs: Obs,
}

impl FabricCoordinator {
    /// A fabric with modulo switch assignment over `config.shards`.
    pub fn new(config: FabricConfig) -> Self {
        let shards = config.shards.clamp(1, MAX_SHARDS);
        Self::with_assignment(config, ShardAssignment::modulo(shards))
    }

    /// A fabric over an explicit switch assignment (e.g. one applying
    /// a [`RebalanceReport`]'s moves via
    /// [`ShardAssignment::with_overrides`]).
    pub fn with_assignment(config: FabricConfig, assign: ShardAssignment) -> Self {
        let n = assign.shards().min(MAX_SHARDS);
        let journal_of = |on: bool| {
            if on {
                Journal::mem()
            } else {
                Journal::Disabled
            }
        };
        let mut shards = Vec::with_capacity(n as usize);
        for i in 0..n {
            let mut rc = config.runtime;
            rc.xid_base = (i + 1) * SHARD_XID_STRIDE;
            rc.job_id_base = (i as u64 + 1) * SHARD_JOB_STRIDE;
            rc.tenant_quota = None;
            shards.push(ConcurrentRuntime::with_journal(
                rc,
                journal_of(config.journal),
            ));
        }
        let mut cc = config.runtime;
        cc.xid_base = COORD_XID_BASE;
        cc.job_id_base = COORD_JOB_BASE;
        cc.tenant_quota = None;
        FabricCoordinator {
            assign,
            tenants: config.tenants,
            coord: ConcurrentRuntime::with_journal(cc, journal_of(config.journal)),
            journal: journal_of(config.journal),
            next_ticket: TICKET_BASE,
            xqueue: VecDeque::new(),
            xqueue_capacity: config.xqueue_capacity,
            xactive: BTreeMap::new(),
            reports: Vec::new(),
            harvested: vec![0; n as usize + 1],
            touch: BTreeMap::new(),
            migrations: BTreeMap::new(),
            overlay: RuntimeStats::default(),
            obs: Obs::disabled(),
            shards,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard owning `dp`.
    pub fn shard_of(&self, dp: DpId) -> ShardId {
        ShardId(self.assign.shard_of(dp))
    }

    /// The switch assignment in force.
    pub fn assignment(&self) -> &ShardAssignment {
        &self.assign
    }

    /// Shard `i`'s runtime (diagnostics).
    pub fn shard(&self, i: u32) -> Option<&ConcurrentRuntime> {
        self.shards.get(i as usize)
    }

    /// Rebalancing advice from the footprint touch index, proposing at
    /// most `max_moves` switch migrations.
    pub fn rebalance_report(&self, max_moves: usize) -> RebalanceReport {
        RebalanceReport::compute(&self.touch, &self.assign, max_moves)
    }

    /// Start moving `dp`'s seat to shard `to`. The move is journalled
    /// (`MigrateBegin`) and completes asynchronously: new work touching
    /// `dp` parks fabric-side, the source shard drains, and the next
    /// [`poll`](RuntimeHandle::poll) after the fence closes extracts
    /// the seat, installs it on `to`, swaps the assignment override,
    /// and journals `MigrateCommitted`. Refusals (see [`MigrateError`])
    /// are synchronous and leave everything untouched.
    pub fn begin_migration(
        &mut self,
        dp: DpId,
        to: ShardId,
        now: SimTime,
    ) -> Result<(), MigrateError> {
        if to.0 >= self.shard_count() {
            self.overlay.migration_aborts += 1;
            self.obs.inc(Ctr::MigrationsAborted);
            return Err(MigrateError::BadShard(to));
        }
        if self.migrations.contains_key(&dp) {
            self.overlay.migration_aborts += 1;
            self.obs.inc(Ctr::MigrationsAborted);
            return Err(MigrateError::AlreadyMigrating(dp));
        }
        let from = self.assign.shard_of(dp);
        if !self.touch.contains_key(&dp) && self.shards[from as usize].intended_hashes(dp).is_none()
        {
            self.overlay.migration_aborts += 1;
            self.obs.inc(Ctr::MigrationsAborted);
            return Err(MigrateError::UnknownSwitch(dp));
        }
        if from == to.0 {
            self.overlay.migration_aborts += 1;
            self.obs.inc(Ctr::MigrationsAborted);
            return Err(MigrateError::SameShard {
                dp,
                shard: ShardId(from),
            });
        }
        self.journal.append(&JournalRecord::MigrateBegin {
            dp,
            from,
            to: to.0,
            at: now,
        });
        self.migrations.insert(dp, (from, to.0, now));
        self.obs.emit(
            Event::new(now, EventKind::MigrateFence)
                .dp(dp.0)
                .aux(to.0 as u64),
        );
        Ok(())
    }

    /// Apply a [`RebalanceReport`]'s suggested moves as live
    /// migrations, in report order. Stops at the first refusal
    /// (returning it); moves already begun stay in flight and commit
    /// normally. Returns the switches now migrating.
    pub fn apply_rebalance(
        &mut self,
        report: &RebalanceReport,
        now: SimTime,
    ) -> Result<Vec<DpId>, MigrateError> {
        let mut started = Vec::with_capacity(report.moves.len());
        for m in &report.moves {
            self.begin_migration(m.dp, m.to, now)?;
            started.push(m.dp);
        }
        Ok(started)
    }

    /// Commit every pending migration whose source shard has drained:
    /// extract the seat behind the fence, install it on the
    /// destination, swap the assignment override, journal the commit.
    fn drive_migrations(&mut self, now: SimTime) {
        let pending: Vec<(DpId, (u32, u32, SimTime))> =
            self.migrations.iter().map(|(&dp, &m)| (dp, m)).collect();
        for (dp, (from, to, begun)) in pending {
            if !self.shards[from as usize].seat_quiescent(dp) {
                continue;
            }
            let seat = self.shards[from as usize].extract_seat(dp);
            self.shards[to as usize].install_seat(seat);
            self.assign.set_override(dp, to);
            self.journal.append(&JournalRecord::MigrateCommitted {
                dp,
                from,
                to,
                at: now,
            });
            self.migrations.remove(&dp);
            self.overlay.migrations += 1;
            let pause = now.saturating_since(begun);
            self.obs.inc(Ctr::MigrationsCommitted);
            self.obs.observe(HistId::MigrationPauseNs, pause.as_nanos());
            self.obs.emit(
                Event::new(now, EventKind::MigrateCommit)
                    .dp(dp.0)
                    .aux(pause.as_nanos()),
            );
        }
    }

    /// In-flight jobs charged to `tenant`, fabric-wide.
    pub fn tenant_usage(&self, tenant: TenantId) -> u32 {
        let queued = self.xqueue.iter().filter(|x| x.tenant == tenant).count() as u32;
        self.shards
            .iter()
            .chain(std::iter::once(&self.coord))
            .map(|r| r.tenant_usage(tenant))
            .sum::<u32>()
            + queued
    }

    /// One prepare-and-commit attempt for `x`.
    fn attempt(&mut self, x: &XPending, now: SimTime) -> Attempt {
        // the migration fence: work touching a migrating switch parks
        // until the seat lands on its new owner
        if x.footprint
            .switches()
            .any(|dp| self.migrations.contains_key(&dp))
        {
            return Attempt::Blocked;
        }
        let rid = reserve_id(x.id);
        self.obs.inc(Ctr::PreparesSent);
        self.obs.emit(
            Event::new(now, EventKind::XPrepare)
                .span(x.id.0)
                .aux(x.involved.len() as u64),
        );
        let mut taken: Vec<u32> = Vec::new();
        for &s in &x.involved {
            let slice = x.footprint.slice(|dp| self.assign.shard_of(dp) == s);
            if self.shards[s as usize].reserve(rid, &slice) {
                taken.push(s);
            } else {
                // all-or-nothing: unwind immediately, retry later
                for &t in &taken {
                    self.shards[t as usize].release(rid);
                }
                self.obs
                    .emit(Event::new(now, EventKind::XPrepareAck).span(x.id.0).aux(0));
                return Attempt::Blocked;
            }
        }
        self.obs
            .emit(Event::new(now, EventKind::XPrepareAck).span(x.id.0).aux(1));
        self.journal.append(&JournalRecord::Prepared {
            id: x.id,
            shards: x.involved.clone(),
            at: now,
        });
        let mut req = SubmitRequest::new(x.update.clone())
            .tenant(x.tenant)
            .priority(x.priority);
        if let Some(d) = x.deadline {
            req = req.deadline(d);
        }
        match self.coord.submit_request(req, now) {
            Ok(t) => {
                self.journal.append(&JournalRecord::XCommitted {
                    id: x.id,
                    coord: t.job,
                    at: now,
                });
                self.xactive.insert(
                    x.id,
                    XActive {
                        coord: t.job,
                        involved: x.involved.clone(),
                    },
                );
                self.obs
                    .observe(HistId::PrepareRounds, x.attempts.max(1) as u64);
                self.obs.emit(
                    Event::new(now, EventKind::XCommit)
                        .span(x.id.0)
                        .aux(t.job.0),
                );
                Attempt::Committed
            }
            Err(_) => {
                for &s in &x.involved {
                    self.shards[s as usize].release(rid);
                }
                self.journal
                    .append(&JournalRecord::Aborted { id: x.id, at: now });
                Attempt::Refused
            }
        }
    }

    /// Mirror coordinator-sent FlowMods into the owning shard's shadow
    /// table, so per-switch intent (audits, resync) stays with the
    /// shard that owns the switch. FlowMods are idempotent, so
    /// re-mirroring a retransmission is harmless.
    fn mirror(&mut self, cmds: &[CtrlOutput]) {
        for CtrlOutput::Send(dp, env) in cmds {
            if matches!(env.msg, OfMessage::FlowMod(_)) {
                let s = self.assign.shard_of(*dp) as usize;
                self.shards[s].note_installed(*dp, &env.msg);
            }
        }
    }

    /// Release reservations of finished coordinator jobs and pull
    /// freshly completed reports into the merged log.
    fn settle(&mut self) {
        let done: Vec<JobId> = self
            .xactive
            .iter()
            .filter(|(_, a)| !self.coord.job_in_flight(a.coord))
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            if let Some(a) = self.xactive.remove(&id) {
                for &s in &a.involved {
                    self.shards[s as usize].release(reserve_id(id));
                }
            }
        }
        self.harvest();
    }

    fn harvest(&mut self) {
        let n = self.shards.len();
        for i in 0..=n {
            let src = if i < n { &self.shards[i] } else { &self.coord };
            let fresh: Vec<UpdateReport> = src.reports()[self.harvested[i]..].to_vec();
            self.harvested[i] += fresh.len();
            self.reports.extend(fresh);
        }
    }

    fn push_failed(&mut self, label: String, submitted: SimTime, failure: Option<FailReason>) {
        self.overlay.failed += 1;
        self.reports.push(UpdateReport {
            label,
            submitted,
            started: submitted,
            completed: None,
            failure,
            rounds: Vec::new(),
        });
    }
}

impl RuntimeHandle for FabricCoordinator {
    fn submit_request(&mut self, req: SubmitRequest, now: SimTime) -> SubmitOutcome {
        if req.deadline.is_some_and(|d| now > d) {
            self.overlay.submitted += 1;
            self.overlay.rejected += 1;
            self.obs.inc(Ctr::Submitted);
            self.obs.inc(Ctr::Rejected);
            self.obs.emit(Event::new(now, EventKind::Reject).aux(1));
            return Err(SubmitError::DeadlineExpired);
        }
        if let Some(limit) = self.tenants.quota_for(req.tenant) {
            let in_flight = self.tenant_usage(req.tenant);
            if in_flight >= limit {
                self.overlay.submitted += 1;
                self.overlay.rejected += 1;
                self.obs.inc(Ctr::Submitted);
                self.obs.inc(Ctr::Rejected);
                self.obs.emit(Event::new(now, EventKind::Reject).aux(2));
                return Err(SubmitError::QuotaExceeded {
                    tenant: req.tenant,
                    limit,
                    in_flight,
                });
            }
        }
        let priority = self.tenants.priority_for(req.tenant, req.priority);
        let footprint = Footprint::of(&req.update);
        for dp in footprint.switches() {
            *self.touch.entry(dp).or_insert(0) += 1;
        }
        let involved: Vec<u32> = footprint
            .switches()
            .map(|dp| self.assign.shard_of(dp))
            .collect::<BTreeSet<u32>>()
            .into_iter()
            .collect();
        let migrating = footprint
            .switches()
            .any(|dp| self.migrations.contains_key(&dp));
        if involved.len() <= 1 && !migrating {
            // single-shard (or empty): the owning shard handles it
            // alone — this is the scaling path. Work touching a
            // migrating switch is diverted into the ticketed path
            // instead, where the fence parks it until the seat lands.
            let s = involved.first().copied().unwrap_or(0);
            let fwd = SubmitRequest { priority, ..req };
            return self.shards[s as usize]
                .submit_request(fwd, now)
                .map(|t| SubmitTicket {
                    shard: Some(s),
                    ..t
                });
        }
        let id = JobId(self.next_ticket);
        self.next_ticket += 1;
        self.journal.append(&JournalRecord::Admitted {
            id,
            update: req.update.clone(),
            priority,
            tenant: req.tenant,
            deadline: req.deadline,
            at: now,
        });
        self.obs.emit(
            Event::new(now, EventKind::Submit)
                .span(id.0)
                .aux(self.xqueue.len() as u64),
        );
        let x = XPending {
            id,
            update: req.update,
            footprint,
            involved,
            priority,
            tenant: req.tenant,
            deadline: req.deadline,
            submitted: now,
            attempts: 1,
        };
        match self.attempt(&x, now) {
            Attempt::Committed => Ok(SubmitTicket {
                job: id,
                shard: None,
                queued: 0,
                displaced: None,
                cross_shard: true,
            }),
            Attempt::Blocked => {
                if self.xqueue.len() >= self.xqueue_capacity {
                    self.journal.append(&JournalRecord::Aborted { id, at: now });
                    self.overlay.submitted += 1;
                    self.overlay.rejected += 1;
                    return Err(SubmitError::QueueFull);
                }
                self.overlay.submitted += 1;
                self.overlay.accepted += 1;
                self.xqueue.push_back(x);
                Ok(SubmitTicket {
                    job: id,
                    shard: None,
                    queued: self.xqueue.len(),
                    displaced: None,
                    cross_shard: true,
                })
            }
            // the coordinator runtime's own books carry the rejection
            Attempt::Refused => Err(SubmitError::QueueFull),
        }
    }

    fn poll(&mut self, now: SimTime) -> Vec<CtrlOutput> {
        let mut out = Vec::new();
        for s in &mut self.shards {
            out.extend(s.poll(now));
        }
        // commit any migration whose source shard just drained, so the
        // retries below land on the new owner
        self.drive_migrations(now);
        // retry parked prepares (and expire stale ones)
        let parked = std::mem::take(&mut self.xqueue);
        for mut x in parked {
            // a committed migration may have rehomed part of the
            // footprint while this update was parked
            x.involved = x
                .footprint
                .switches()
                .map(|dp| self.assign.shard_of(dp))
                .collect::<BTreeSet<u32>>()
                .into_iter()
                .collect();
            if x.deadline.is_some_and(|d| now > d) {
                self.journal
                    .append(&JournalRecord::Aborted { id: x.id, at: now });
                self.overlay.submitted = self.overlay.submitted.saturating_sub(1);
                self.overlay.accepted = self.overlay.accepted.saturating_sub(1);
                self.push_failed(
                    x.update.label.clone(),
                    x.submitted,
                    Some(FailReason::DeadlineExpired),
                );
                continue;
            }
            x.attempts += 1;
            match self.attempt(&x, now) {
                Attempt::Committed | Attempt::Refused => {
                    // either way the coordinator runtime's books carry
                    // it now; the fabric overlay lets go
                    self.overlay.submitted = self.overlay.submitted.saturating_sub(1);
                    self.overlay.accepted = self.overlay.accepted.saturating_sub(1);
                }
                Attempt::Blocked => self.xqueue.push_back(x),
            }
        }
        let coord_out = self.coord.poll(now);
        self.mirror(&coord_out);
        out.extend(coord_out);
        self.settle();
        out
    }

    fn on_message(&mut self, now: SimTime, from: DpId, env: &Envelope) -> Vec<CtrlOutput> {
        // xids name their owning runtime by range
        let xid = env.xid.0;
        let out = if xid >= COORD_XID_BASE {
            let o = self.coord.on_message(now, from, env);
            self.mirror(&o);
            o
        } else {
            let idx = (xid / SHARD_XID_STRIDE) as usize;
            let i = if idx >= 1 && idx - 1 < self.shards.len() {
                idx - 1
            } else {
                // out-of-range xid (e.g. pre-crash traffic): the owner
                // of the sending switch decides what to do with it
                self.assign.shard_of(from) as usize
            };
            self.shards[i].on_message(now, from, env)
        };
        self.settle();
        out
    }

    fn is_idle(&self) -> bool {
        self.xqueue.is_empty()
            && self.xactive.is_empty()
            && self.coord.is_idle()
            && self.shards.iter().all(|s| s.is_idle())
    }

    fn reports(&self) -> &[UpdateReport] {
        &self.reports
    }

    fn queued(&self) -> usize {
        self.shards.iter().map(|s| s.queued()).sum::<usize>()
            + self.coord.queued()
            + self.xqueue.len()
    }

    fn active_count(&self) -> usize {
        self.shards.iter().map(|s| s.active_count()).sum::<usize>() + self.coord.active_count()
    }

    fn stats(&self) -> RuntimeStats {
        let mut s = self.overlay;
        for sub in self.shards.iter().chain(std::iter::once(&self.coord)) {
            let t = sub.stats();
            s.submitted += t.submitted;
            s.accepted += t.accepted;
            s.rejected += t.rejected;
            s.displaced += t.displaced;
            s.completed += t.completed;
            s.failed += t.failed;
            s.retransmissions += t.retransmissions;
            s.stragglers += t.stragglers;
            s.peak_active += t.peak_active;
            s.reconnects += t.reconnects;
            s.resyncs += t.resyncs;
            s.resynced_rules += t.resynced_rules;
            s.quarantined += t.quarantined;
        }
        // one crash = one recovery, however many runtimes rebuilt
        s.recoveries = self.coord.stats().recoveries;
        s
    }

    fn status_report(&self) -> StatusReport {
        let mut switches = BTreeMap::new();
        let mut quarantined = BTreeSet::new();
        let mut pending_acks = 0;
        let mut journal_len = self.journal.len();
        let mut shard_rows = Vec::with_capacity(self.shards.len());
        for (i, sub) in self.shards.iter().enumerate() {
            let r = sub.status_report();
            pending_acks += r.pending_acks;
            journal_len += r.journal_len;
            quarantined.extend(r.quarantined.iter().copied());
            for sw in r.switches {
                switches.entry(sw.dp).or_insert(sw);
            }
            let owned = self
                .touch
                .keys()
                .filter(|&&dp| self.assign.shard_of(dp) as usize == i)
                .count();
            shard_rows.push(ShardStatus {
                shard: i as u32,
                queued: r.queued,
                active: r.active,
                switches: owned,
            });
        }
        let rc = self.coord.status_report();
        pending_acks += rc.pending_acks;
        journal_len += rc.journal_len;
        quarantined.extend(rc.quarantined.iter().copied());
        for sw in rc.switches {
            switches.entry(sw.dp).or_insert(sw);
        }
        let mut usage: BTreeMap<TenantId, u32> = BTreeMap::new();
        for sub in self.shards.iter().chain(std::iter::once(&self.coord)) {
            for (t, n) in sub.tenants_in_flight() {
                *usage.entry(t).or_insert(0) += n;
            }
        }
        for x in &self.xqueue {
            *usage.entry(x.tenant).or_insert(0) += 1;
        }
        let tenants = usage
            .into_iter()
            .map(|(tenant, in_flight)| TenantStatus {
                tenant,
                in_flight,
                quota: self.tenants.quota_for(tenant),
            })
            .collect();
        StatusReport {
            queued: self.queued(),
            active: self.active_count(),
            pending_acks,
            stats: self.stats(),
            switches: switches.into_values().collect(),
            journal_len,
            quarantined: quarantined.into_iter().collect(),
            shards: shard_rows,
            tenants,
            xshard_queued: self.xqueue.len(),
            xshard_active: self.xactive.len(),
            migrating: self.migrations.keys().copied().collect(),
        }
    }

    fn on_disconnect(&mut self, dp: DpId, now: SimTime) {
        let s = self.assign.shard_of(dp) as usize;
        self.shards[s].on_disconnect(dp, now);
        // the coordinator holds no shadow for dp, but any audit-free
        // cleanup it keeps (aborting probes) is still correct
        self.coord.on_disconnect(dp, now);
    }

    fn on_reconnect(&mut self, dp: DpId, now: SimTime) -> Vec<CtrlOutput> {
        // only the owning shard audits: its shadow holds the merged
        // per-switch intent (local jobs + mirrored cross-shard rules)
        let s = self.assign.shard_of(dp) as usize;
        self.shards[s].on_reconnect(dp, now)
    }

    fn note_installed(&mut self, dp: DpId, msg: &OfMessage) {
        let s = self.assign.shard_of(dp) as usize;
        self.shards[s].note_installed(dp, msg);
    }

    fn intended_hashes(&self, dp: DpId) -> Option<Vec<u64>> {
        self.shards[self.assign.shard_of(dp) as usize].intended_hashes(dp)
    }

    fn begin_seat_migration(&mut self, dp: DpId, to: u32, now: SimTime) -> bool {
        self.begin_migration(dp, ShardId(to), now).is_ok()
    }

    fn attach_obs(&mut self, obs: Obs) {
        for (i, s) in self.shards.iter_mut().enumerate() {
            s.attach_obs(obs.for_shard(i as u32));
        }
        // the coordinator runtime and the fabric itself share the tag
        // one past the last shard, keeping their rings separate from
        // shard-local traffic
        let coord_tag = self.shards.len() as u32;
        self.coord.attach_obs(obs.for_shard(coord_tag));
        self.obs = obs.for_shard(coord_tag);
    }

    fn recover_from_crash(&mut self, now: SimTime) -> bool {
        if !self.journal.is_enabled() {
            return false;
        }
        let replayed = self.journal.len() as u64;
        for s in &mut self.shards {
            s.recover_from_crash(now);
        }
        self.coord.recover_from_crash(now);
        // volatile fabric state died with the process
        self.xqueue.clear();
        self.xactive.clear();
        self.reports.clear();
        self.harvested.iter_mut().for_each(|c| *c = 0);
        self.touch.clear();
        self.migrations.clear();
        self.overlay = RuntimeStats::default();

        #[derive(Default)]
        struct XRec {
            update: Option<CompiledUpdate>,
            priority: Priority,
            tenant: TenantId,
            deadline: Option<SimTime>,
            submitted: SimTime,
            prepared: bool,
            coord: Option<JobId>,
            aborted: bool,
        }
        let mut xjobs: BTreeMap<u64, XRec> = BTreeMap::new();
        let mut torn_migrations: BTreeMap<DpId, (u32, u32)> = BTreeMap::new();
        for rec in self.journal.records() {
            match rec {
                JournalRecord::MigrateBegin { dp, from, to, .. } => {
                    torn_migrations.insert(dp, (from, to));
                }
                JournalRecord::MigrateCommitted { dp, from, to, .. } => {
                    // the seat moved before the crash: replay exactly
                    // the ownership swap, and drop the stale source
                    // copy the source shard's own journal rebuilt
                    torn_migrations.remove(&dp);
                    self.assign.set_override(dp, to);
                    if (from as usize) < self.shards.len() {
                        let _ = self.shards[from as usize].extract_seat(dp);
                    }
                    self.overlay.migrations += 1;
                }
                JournalRecord::MigrateAborted { dp, .. } => {
                    torn_migrations.remove(&dp);
                }
                JournalRecord::Admitted {
                    id,
                    update,
                    priority,
                    tenant,
                    deadline,
                    at,
                } => {
                    let x = xjobs.entry(id.0).or_default();
                    x.update = Some(update);
                    x.priority = priority;
                    x.tenant = tenant;
                    x.deadline = deadline;
                    x.submitted = at;
                }
                JournalRecord::Prepared { id, .. } => {
                    xjobs.entry(id.0).or_default().prepared = true;
                }
                JournalRecord::XCommitted { id, coord, .. } => {
                    xjobs.entry(id.0).or_default().coord = Some(coord);
                }
                JournalRecord::Aborted { id, .. } => {
                    xjobs.entry(id.0).or_default().aborted = true;
                }
                _ => {}
            }
        }
        let mut aborts: Vec<JobId> = Vec::new();
        for (&idu, x) in &xjobs {
            self.next_ticket = self.next_ticket.max(idu + 1);
            let id = JobId(idu);
            let Some(update) = x.update.clone() else {
                continue;
            };
            if x.aborted {
                // terminal before the crash; keep the books consistent
                self.push_failed(update.label, x.submitted, None);
                continue;
            }
            let footprint = Footprint::of(&update);
            let involved: Vec<u32> = footprint
                .switches()
                .map(|dp| self.assign.shard_of(dp))
                .collect::<BTreeSet<u32>>()
                .into_iter()
                .collect();
            match x.coord {
                Some(cid) => {
                    if self.coord.job_in_flight(cid) {
                        // the recovered coordinator will re-run it:
                        // put its reservations back before anything
                        // shard-local can launch into the gap
                        let rid = reserve_id(id);
                        for &s in &involved {
                            let slice = footprint.slice(|dp| self.assign.shard_of(dp) == s);
                            let ok = self.shards[s as usize].reserve(rid, &slice);
                            debug_assert!(ok, "recovered reservation conflicts");
                        }
                        self.xactive.insert(
                            id,
                            XActive {
                                coord: cid,
                                involved,
                            },
                        );
                    }
                }
                None if x.prepared => {
                    // caught between prepare and commit: the protocol's
                    // answer is abort — reservations died with the
                    // process, nothing executed, the client retries
                    aborts.push(id);
                    self.push_failed(update.label, x.submitted, None);
                }
                None => {
                    // still waiting for a successful prepare: re-queue
                    self.overlay.submitted += 1;
                    self.overlay.accepted += 1;
                    self.xqueue.push_back(XPending {
                        id,
                        update,
                        footprint,
                        involved,
                        priority: x.priority,
                        tenant: x.tenant,
                        deadline: x.deadline,
                        submitted: x.submitted,
                        attempts: 0,
                    });
                }
            }
        }
        for id in aborts {
            self.journal.append(&JournalRecord::Aborted { id, at: now });
        }
        // a migration caught between begin and commit rolls back to
        // the source: the seat only ever moves at commit, so the
        // source shard (rebuilt from its own journal) is still the one
        // and only owner — journal the abort so a second recovery
        // agrees
        for (dp, _) in torn_migrations {
            self.journal
                .append(&JournalRecord::MigrateAborted { dp, at: now });
            self.overlay.migration_aborts += 1;
            self.obs.inc(Ctr::MigrationsAborted);
            self.obs
                .emit(Event::new(now, EventKind::MigrateAbort).dp(dp.0));
        }
        self.harvest();
        self.obs.inc(Ctr::JournalReplays);
        self.obs.inc(Ctr::CrashRecoveries);
        self.obs
            .emit(Event::new(now, EventKind::JournalReplay).aux(replayed));
        self.obs.emit(Event::new(now, EventKind::CrashRecover));
        self.obs.dump(DumpReason::CrashRecovery, now);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledRound;
    use sdn_openflow::flow::FlowMatch;
    use sdn_openflow::messages::{FlowMod, FlowModCommand};
    use sdn_types::{HostId, SimDuration, Xid};

    fn flowmod(dst: u32) -> OfMessage {
        OfMessage::FlowMod(FlowMod {
            command: FlowModCommand::Add,
            priority: 100,
            matcher: FlowMatch::dst_host(HostId(dst)),
            actions: vec![],
            cookie: 0,
        })
    }

    fn job(label: &str, dst: u32, rounds: Vec<Vec<u64>>) -> CompiledUpdate {
        CompiledUpdate {
            label: label.into(),
            rounds: rounds
                .into_iter()
                .map(|dps| CompiledRound {
                    msgs: dps.into_iter().map(|d| (DpId(d), flowmod(dst))).collect(),
                    pre_delay: SimDuration::ZERO,
                })
                .collect(),
        }
    }

    fn barriers_of(cmds: &[CtrlOutput]) -> Vec<(DpId, Xid)> {
        cmds.iter()
            .filter_map(|CtrlOutput::Send(dp, env)| {
                (env.msg == OfMessage::BarrierRequest).then_some((*dp, env.xid))
            })
            .collect()
    }

    /// Answer every outstanding barrier until the fabric goes idle.
    fn drain(fab: &mut FabricCoordinator, mut cmds: Vec<CtrlOutput>, mut t: u64) -> u64 {
        for _ in 0..64 {
            let mut next = Vec::new();
            for (dp, xid) in barriers_of(&cmds) {
                t += 1;
                next.extend(fab.on_message(
                    SimTime(t),
                    dp,
                    &Envelope::new(xid, OfMessage::BarrierReply),
                ));
            }
            t += 1;
            next.extend(fab.poll(SimTime(t)));
            if fab.is_idle() && barriers_of(&next).is_empty() {
                return t;
            }
            cmds = next;
        }
        panic!("fabric did not drain");
    }

    fn fabric(shards: u32) -> FabricCoordinator {
        FabricCoordinator::new(FabricConfig {
            shards,
            ..FabricConfig::default()
        })
    }

    #[test]
    fn single_shard_update_routes_directly() {
        let mut fab = fabric(2);
        // dp2 and dp4 are both shard 0 under modulo 2
        let t = fab
            .submit(
                job("local", 2, vec![vec![2], vec![4]]),
                SimTime(0),
                Priority::Normal,
            )
            .expect("admitted");
        assert_eq!(t.shard, Some(0));
        assert!(!t.cross_shard);
        let cmds = fab.poll(SimTime(0));
        let b = barriers_of(&cmds);
        assert_eq!(b.len(), 1);
        // shard 0 xids live in [1<<24, 2<<24)
        assert!(b[0].1 .0 >= 1 << 24 && b[0].1 .0 < 2 << 24);
        drain(&mut fab, cmds, 0);
        assert_eq!(fab.reports().len(), 1);
        assert!(fab.reports()[0].completed.is_some());
        assert_eq!(fab.stats().completed, 1);
    }

    #[test]
    fn cross_shard_update_commits_and_blocks_local_conflicts() {
        let mut fab = fabric(2);
        // dp1 is shard 1, dp2 is shard 0 → cross-shard
        let t = fab
            .submit(job("xs", 7, vec![vec![1, 2]]), SimTime(0), Priority::Normal)
            .expect("admitted");
        assert!(t.cross_shard);
        assert_eq!(t.shard, None);
        assert_eq!(fab.status_report().xshard_active, 1);
        // a conflicting local update on dp1 queues behind the reservation
        let _ = fab.submit(job("local", 7, vec![vec![1]]), SimTime(0), Priority::Normal);
        let cmds = fab.poll(SimTime(0));
        let b = barriers_of(&cmds);
        assert_eq!(b.len(), 2, "only the coordinator's round is out");
        assert!(b.iter().all(|(_, x)| x.0 >= COORD_XID_BASE));
        assert_eq!(fab.shard(1).unwrap().queued(), 1);
        drain(&mut fab, cmds, 0);
        assert_eq!(fab.reports().len(), 2);
        assert!(fab.reports().iter().all(|r| r.completed.is_some()));
        assert_eq!(fab.status_report().xshard_active, 0);
    }

    #[test]
    fn blocked_prepare_parks_and_retries() {
        let mut fab = fabric(2);
        // occupy dp2 with an active local job
        let _ = fab.submit(job("hold", 7, vec![vec![2]]), SimTime(0), Priority::Normal);
        let held = fab.poll(SimTime(0));
        assert_eq!(barriers_of(&held).len(), 1);
        // the cross-shard update cannot prepare while dp2 is busy
        let t = fab
            .submit(job("xs", 7, vec![vec![1, 2]]), SimTime(1), Priority::Normal)
            .expect("parked");
        assert!(t.cross_shard);
        assert_eq!(fab.status_report().xshard_queued, 1);
        // finish the holder; the retry then commits and completes
        let t_end = drain(&mut fab, held, 1);
        assert_eq!(fab.status_report().xshard_queued, 0);
        let _ = t_end;
        assert_eq!(fab.reports().len(), 2);
        assert!(fab.reports().iter().all(|r| r.completed.is_some()));
    }

    #[test]
    fn tenant_quota_enforced_fabric_wide() {
        let mut fab = FabricCoordinator::new(FabricConfig {
            shards: 2,
            tenants: TenantPolicy::with_quota(1),
            ..FabricConfig::default()
        });
        let alice = TenantId(1);
        let bob = TenantId(2);
        let ok = fab.submit_request(
            SubmitRequest::new(job("a1", 2, vec![vec![2]])).tenant(alice),
            SimTime(0),
        );
        assert!(ok.is_ok());
        let over = fab.submit_request(
            SubmitRequest::new(job("a2", 3, vec![vec![4]])).tenant(alice),
            SimTime(0),
        );
        assert_eq!(
            over,
            Err(SubmitError::QuotaExceeded {
                tenant: alice,
                limit: 1,
                in_flight: 1
            })
        );
        // another tenant is unaffected
        assert!(fab
            .submit_request(
                SubmitRequest::new(job("b1", 4, vec![vec![4]])).tenant(bob),
                SimTime(0),
            )
            .is_ok());
        let s = fab.status_report();
        assert_eq!(s.tenants.len(), 2);
        assert!(s
            .tenants
            .iter()
            .all(|t| t.in_flight == 1 && t.quota == Some(1)));
        // draining frees the budget
        let cmds = fab.poll(SimTime(0));
        drain(&mut fab, cmds, 0);
        assert!(fab
            .submit_request(
                SubmitRequest::new(job("a3", 5, vec![vec![2]])).tenant(alice),
                SimTime(9),
            )
            .is_ok());
    }

    #[test]
    fn parked_cross_shard_update_expires_at_deadline() {
        let mut fab = fabric(2);
        let _ = fab.submit(job("hold", 7, vec![vec![2]]), SimTime(0), Priority::Normal);
        let _held = fab.poll(SimTime(0));
        let t = fab.submit_request(
            SubmitRequest::new(job("xs", 7, vec![vec![1, 2]])).deadline(SimTime(5)),
            SimTime(1),
        );
        assert!(t.is_ok());
        // deadline passes while parked; the next poll aborts it
        let _ = fab.poll(SimTime(10));
        let r = fab
            .reports()
            .iter()
            .find(|r| r.label == "xs")
            .expect("abort report");
        assert_eq!(r.failure, Some(FailReason::DeadlineExpired));
        assert_eq!(fab.status_report().xshard_queued, 0);
        assert_eq!(fab.stats().failed, 1);
    }

    #[test]
    fn recovery_requeues_parked_and_rereserves_committed() {
        let mut fab = FabricCoordinator::new(FabricConfig {
            shards: 2,
            journal: true,
            ..FabricConfig::default()
        });
        // committed cross-shard job (in flight at the coordinator)
        let _ = fab.submit(job("xs", 7, vec![vec![1, 2]]), SimTime(0), Priority::Normal);
        let _ = fab.poll(SimTime(0));
        // parked cross-shard job (conflicts with the first)
        let parked = fab
            .submit(
                job("xs2", 7, vec![vec![1, 4]]),
                SimTime(1),
                Priority::Normal,
            )
            .expect("parked");
        assert!(parked.cross_shard);
        assert_eq!(fab.status_report().xshard_queued, 1);

        assert!(fab.recover_from_crash(SimTime(2)));
        // the committed job kept its reservation, the parked one its slot
        assert_eq!(fab.status_report().xshard_active, 1);
        assert_eq!(fab.status_report().xshard_queued, 1);
        assert_eq!(fab.stats().recoveries, 1);
        // a conflicting local job still cannot jump the fence
        let _ = fab.submit(job("local", 7, vec![vec![1]]), SimTime(3), Priority::Normal);
        let cmds = fab.poll(SimTime(3));
        assert!(barriers_of(&cmds)
            .iter()
            .all(|(_, x)| x.0 >= COORD_XID_BASE));
        // everything still drains to completion
        drain(&mut fab, cmds, 3);
        assert_eq!(fab.reports().len(), 3);
        assert!(fab.reports().iter().all(|r| r.completed.is_some()));
    }

    #[test]
    fn crash_between_prepare_and_commit_aborts_on_recovery() {
        let mut fab = FabricCoordinator::new(FabricConfig {
            shards: 2,
            journal: true,
            ..FabricConfig::default()
        });
        // forge the torn window the in-process path can never produce:
        // Admitted + Prepared with no XCommitted
        let update = job("torn", 7, vec![vec![1, 2]]);
        fab.journal.append(&JournalRecord::Admitted {
            id: JobId(TICKET_BASE),
            update,
            priority: Priority::Normal,
            tenant: TenantId(3),
            deadline: None,
            at: SimTime(0),
        });
        fab.journal.append(&JournalRecord::Prepared {
            id: JobId(TICKET_BASE),
            shards: vec![0, 1],
            at: SimTime(0),
        });
        assert!(fab.recover_from_crash(SimTime(1)));
        // aborted: a failure report, no reservations, journal says so
        assert_eq!(fab.status_report().xshard_active, 0);
        assert_eq!(fab.status_report().xshard_queued, 0);
        let r = fab.reports().iter().find(|r| r.label == "torn").unwrap();
        assert!(r.completed.is_none());
        assert!(fab
            .journal
            .records()
            .iter()
            .any(|rec| matches!(rec, JournalRecord::Aborted { id, .. } if id.0 == TICKET_BASE)));
        // the shards are untouched: a local job on dp1 launches freely
        let _ = fab.submit(job("local", 7, vec![vec![1]]), SimTime(2), Priority::Normal);
        let cmds = fab.poll(SimTime(2));
        assert_eq!(barriers_of(&cmds).len(), 1);
        drain(&mut fab, cmds, 2);
    }

    #[test]
    fn live_migration_moves_seat_and_rehomes_traffic() {
        let mut fab = FabricCoordinator::new(FabricConfig {
            shards: 2,
            journal: true,
            ..FabricConfig::default()
        });
        // dp2 lives on shard 0; give it a shadow by completing a job
        let _ = fab.submit(job("warm", 7, vec![vec![2]]), SimTime(0), Priority::Normal);
        let cmds = fab.poll(SimTime(0));
        let t = drain(&mut fab, cmds, 0);
        assert!(fab.shard(0).unwrap().intended_hashes(DpId(2)).is_some());

        fab.begin_migration(DpId(2), ShardId(1), SimTime(t))
            .expect("migration admitted");
        assert_eq!(fab.status_report().migrating, vec![DpId(2)]);
        // idle source: the next poll commits the move
        let _ = fab.poll(SimTime(t + 1));
        assert!(fab.status_report().migrating.is_empty());
        assert_eq!(fab.shard_of(DpId(2)), ShardId(1));
        assert!(fab.shard(0).unwrap().intended_hashes(DpId(2)).is_none());
        assert!(fab.shard(1).unwrap().intended_hashes(DpId(2)).is_some());
        assert_eq!(fab.stats().migrations, 1);
        assert!(fab
            .journal
            .records()
            .iter()
            .any(|r| matches!(r, JournalRecord::MigrateCommitted { dp, from: 0, to: 1, .. } if *dp == DpId(2))));
        // new single-shard work on dp2 routes to the new owner
        let ticket = fab
            .submit(
                job("after", 8, vec![vec![2]]),
                SimTime(t + 2),
                Priority::Normal,
            )
            .expect("admitted");
        assert_eq!(ticket.shard, Some(1));
        let cmds = fab.poll(SimTime(t + 2));
        drain(&mut fab, cmds, t + 2);
        assert_eq!(fab.stats().completed, 2);
    }

    #[test]
    fn migration_fences_in_flight_work_and_parks_new_submissions() {
        let mut fab = fabric(2);
        // an active job on dp2 holds the fence open
        let _ = fab.submit(job("hold", 7, vec![vec![2]]), SimTime(0), Priority::Normal);
        let held = fab.poll(SimTime(0));
        assert_eq!(barriers_of(&held).len(), 1);
        fab.begin_migration(DpId(2), ShardId(1), SimTime(1))
            .expect("migration admitted");
        // still fenced: the seat may not move under an active job
        let _ = fab.poll(SimTime(1));
        assert_eq!(fab.status_report().migrating, vec![DpId(2)]);
        assert_eq!(fab.shard_of(DpId(2)), ShardId(0));
        // new work touching dp2 parks fabric-side instead of landing
        // on either shard
        let parked = fab
            .submit(
                job("parked", 8, vec![vec![2]]),
                SimTime(1),
                Priority::Normal,
            )
            .expect("parked");
        assert!(parked.cross_shard);
        assert_eq!(fab.status_report().xshard_queued, 1);
        // draining the holder closes the fence; the parked job then
        // commits against the new owner and completes
        drain(&mut fab, held, 1);
        assert!(fab.status_report().migrating.is_empty());
        assert_eq!(fab.shard_of(DpId(2)), ShardId(1));
        assert_eq!(fab.status_report().xshard_queued, 0);
        assert_eq!(fab.stats().migrations, 1);
        assert_eq!(fab.stats().completed, 2);
        assert!(fab.reports().iter().all(|r| r.completed.is_some()));
    }

    #[test]
    fn migration_refusals_are_synchronous_and_counted() {
        let mut fab = fabric(2);
        let _ = fab.submit(job("warm", 7, vec![vec![2]]), SimTime(0), Priority::Normal);
        let cmds = fab.poll(SimTime(0));
        let t = drain(&mut fab, cmds, 0);
        assert_eq!(
            fab.begin_migration(DpId(99), ShardId(1), SimTime(t)),
            Err(MigrateError::UnknownSwitch(DpId(99)))
        );
        assert_eq!(
            fab.begin_migration(DpId(2), ShardId(0), SimTime(t)),
            Err(MigrateError::SameShard {
                dp: DpId(2),
                shard: ShardId(0)
            })
        );
        assert_eq!(
            fab.begin_migration(DpId(2), ShardId(5), SimTime(t)),
            Err(MigrateError::BadShard(ShardId(5)))
        );
        fab.begin_migration(DpId(2), ShardId(1), SimTime(t))
            .expect("first begin");
        assert_eq!(
            fab.begin_migration(DpId(2), ShardId(1), SimTime(t)),
            Err(MigrateError::AlreadyMigrating(DpId(2)))
        );
        assert_eq!(fab.stats().migration_aborts, 4);
        // the one admitted migration still commits
        let _ = fab.poll(SimTime(t + 1));
        assert_eq!(fab.stats().migrations, 1);
    }

    #[test]
    fn apply_rebalance_executes_the_advice_moves() {
        let mut fab = fabric(2);
        // load shard 0 heavily (dp2 and dp4) and shard 1 lightly (dp1)
        for i in 0..4 {
            let _ = fab.submit(
                job(&format!("u{i}"), 9, vec![vec![2]]),
                SimTime(i),
                Priority::Normal,
            );
        }
        for i in 0..3 {
            let _ = fab.submit(
                job(&format!("v{i}"), 10, vec![vec![4]]),
                SimTime(4 + i),
                Priority::Normal,
            );
        }
        let _ = fab.submit(job("odd", 9, vec![vec![1]]), SimTime(8), Priority::Normal);
        let cmds = fab.poll(SimTime(8));
        let t = drain(&mut fab, cmds, 8);
        let report = fab.rebalance_report(1);
        assert_eq!(report.moves.len(), 1);
        let mv = report.moves[0];
        let started = fab
            .apply_rebalance(&report, SimTime(t))
            .expect("moves admitted");
        assert_eq!(started, vec![mv.dp]);
        let _ = fab.poll(SimTime(t + 1));
        assert_eq!(fab.shard_of(mv.dp), mv.to);
        assert_eq!(fab.stats().migrations, 1);
    }

    #[test]
    fn crash_mid_migration_rolls_back_to_the_source() {
        let mut fab = FabricCoordinator::new(FabricConfig {
            shards: 2,
            journal: true,
            ..FabricConfig::default()
        });
        let _ = fab.submit(job("hold", 7, vec![vec![2]]), SimTime(0), Priority::Normal);
        let _held = fab.poll(SimTime(0));
        fab.begin_migration(DpId(2), ShardId(1), SimTime(1))
            .expect("migration admitted");
        assert!(fab.recover_from_crash(SimTime(2)));
        // torn: rolled back, source still the one and only owner
        assert!(fab.status_report().migrating.is_empty());
        assert_eq!(fab.shard_of(DpId(2)), ShardId(0));
        assert!(fab.shard(1).unwrap().intended_hashes(DpId(2)).is_none());
        assert_eq!(fab.stats().migration_aborts, 1);
        assert!(fab
            .journal
            .records()
            .iter()
            .any(|r| matches!(r, JournalRecord::MigrateAborted { dp, .. } if *dp == DpId(2))));
        // a second recovery agrees (the abort is durable)
        assert!(fab.recover_from_crash(SimTime(3)));
        assert_eq!(fab.shard_of(DpId(2)), ShardId(0));
    }

    #[test]
    fn crash_after_commit_keeps_exactly_one_owner() {
        let mut fab = FabricCoordinator::new(FabricConfig {
            shards: 2,
            journal: true,
            ..FabricConfig::default()
        });
        let _ = fab.submit(job("warm", 7, vec![vec![2]]), SimTime(0), Priority::Normal);
        let cmds = fab.poll(SimTime(0));
        let t = drain(&mut fab, cmds, 0);
        fab.begin_migration(DpId(2), ShardId(1), SimTime(t))
            .expect("migration admitted");
        let _ = fab.poll(SimTime(t + 1));
        assert_eq!(fab.shard_of(DpId(2)), ShardId(1));
        assert!(fab.recover_from_crash(SimTime(t + 2)));
        // the committed move replays: destination owns the seat, the
        // stale copy the source rebuilt from its own journal is gone
        assert_eq!(fab.shard_of(DpId(2)), ShardId(1));
        assert!(fab.shard(0).unwrap().intended_hashes(DpId(2)).is_none());
        assert!(fab.shard(1).unwrap().intended_hashes(DpId(2)).is_some());
        assert_eq!(fab.stats().migrations, 1);
        assert_eq!(fab.stats().migration_aborts, 0);
    }

    #[test]
    fn rebalance_report_tracks_touches() {
        let mut fab = fabric(2);
        for i in 0..4 {
            let _ = fab.submit(
                job(&format!("u{i}"), 9, vec![vec![2]]),
                SimTime(i),
                Priority::Normal,
            );
        }
        let _ = fab.submit(job("odd", 9, vec![vec![1]]), SimTime(9), Priority::Normal);
        let r = fab.rebalance_report(4);
        assert_eq!(r.loads[0].touches, 4);
        assert_eq!(r.loads[1].touches, 1);
        assert!(r.imbalance > 1.0);
    }
}
