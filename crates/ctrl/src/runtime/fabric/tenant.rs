//! Per-tenant admission policy: budgets and priority boosts.
//!
//! The fabric meters tenants, not requests: a tenant's budget bounds
//! its **in-flight** jobs (queued + executing, across every shard, the
//! coordinator, and the cross-shard prepare queue), so one noisy
//! tenant cannot monopolise the fabric no matter how fast it submits.
//! Budgets are checked before any shard is consulted; an over-budget
//! submission is refused with
//! [`SubmitError::QuotaExceeded`](crate::runtime::SubmitError) and
//! surfaced by the REST layer as a structured `429`.
//!
//! A *boosted* tenant's jobs ride the High admission lane regardless
//! of the per-request priority — the fabric-level counterpart of
//! marking a tenant's traffic security-critical.

use std::collections::{BTreeMap, BTreeSet};

use crate::runtime::admission::Priority;
use crate::runtime::submit::TenantId;

/// Fabric-wide tenant budgets and priorities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Budget for tenants without an override (`None` = unlimited).
    pub default_quota: Option<u32>,
    overrides: BTreeMap<TenantId, u32>,
    boosted: BTreeSet<TenantId>,
}

impl TenantPolicy {
    /// No budgets, no boosts — every tenant unlimited.
    pub fn new() -> Self {
        TenantPolicy::default()
    }

    /// A uniform budget for every tenant (overridable per tenant).
    pub fn with_quota(quota: u32) -> Self {
        TenantPolicy {
            default_quota: Some(quota),
            ..TenantPolicy::default()
        }
    }

    /// Give `tenant` its own budget in place of the default.
    pub fn override_quota(mut self, tenant: TenantId, quota: u32) -> Self {
        self.overrides.insert(tenant, quota);
        self
    }

    /// Ride `tenant`'s jobs on the High admission lane.
    pub fn boost(mut self, tenant: TenantId) -> Self {
        self.boosted.insert(tenant);
        self
    }

    /// The budget applying to `tenant` (`None` = unlimited).
    pub fn quota_for(&self, tenant: TenantId) -> Option<u32> {
        self.overrides.get(&tenant).copied().or(self.default_quota)
    }

    /// The effective lane for `tenant` requesting `requested`: boosts
    /// only ever raise, never lower.
    pub fn priority_for(&self, tenant: TenantId, requested: Priority) -> Priority {
        if self.boosted.contains(&tenant) {
            Priority::High
        } else {
            requested
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_replaces_default() {
        let p = TenantPolicy::with_quota(2).override_quota(TenantId(7), 5);
        assert_eq!(p.quota_for(TenantId(1)), Some(2));
        assert_eq!(p.quota_for(TenantId(7)), Some(5));
    }

    #[test]
    fn unlimited_without_default() {
        let p = TenantPolicy::new().override_quota(TenantId(3), 1);
        assert_eq!(p.quota_for(TenantId(9)), None);
        assert_eq!(p.quota_for(TenantId(3)), Some(1));
    }

    #[test]
    fn boost_raises_but_never_lowers() {
        let p = TenantPolicy::new().boost(TenantId(2));
        assert_eq!(
            p.priority_for(TenantId(2), Priority::Normal),
            Priority::High
        );
        assert_eq!(p.priority_for(TenantId(2), Priority::High), Priority::High);
        assert_eq!(
            p.priority_for(TenantId(1), Priority::Normal),
            Priority::Normal
        );
    }
}
