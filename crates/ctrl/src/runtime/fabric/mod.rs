//! The sharded multi-tenant controller fabric.
//!
//! One [`ConcurrentRuntime`](crate::runtime::ConcurrentRuntime) scales
//! until its single admission queue, conflict graph, and journal become
//! the bottleneck. The fabric partitions the switch space into
//! **shards** — each shard owns a full runtime (conflict graph,
//! two-lane admission queue, RTO table, write-ahead journal) — behind
//! one [`FabricCoordinator`] implementing the same
//! [`RuntimeHandle`](crate::runtime::RuntimeHandle) trait, so the
//! simulator and experiments swap it in with a constructor argument.
//!
//! * Updates whose footprint stays inside one shard route **directly**
//!   to that shard's runtime — no cross-shard coordination, which is
//!   where the throughput scaling comes from (shards admit and execute
//!   independently, bounded only by their own `max_active`).
//! * Updates spanning shards run a **two-phase protocol**: *prepare*
//!   reserves the per-shard slice of the footprint in every involved
//!   shard's conflict graph (all-or-nothing; a refused slice releases
//!   everything already taken), then *commit* hands the whole update
//!   to a coordinator-owned runtime that executes it with global round
//!   fencing. Abort — refused prepare, expired deadline, crash caught
//!   between prepare and commit — releases every reservation.
//! * Per-tenant budgets ([`TenantPolicy`]) gate admission fabric-wide
//!   before any shard is consulted; the REST layer surfaces a
//!   [`SubmitError::QuotaExceeded`](crate::runtime::SubmitError) as a
//!   structured `429`.
//! * A footprint touch index feeds [`RebalanceReport`] — which
//!   switches to move where to level shard load — and
//!   [`FabricCoordinator::apply_rebalance`] executes those moves
//!   **online**: new work touching a migrating switch parks
//!   fabric-side, the source shard drains behind a fence, and the
//!   switch's portable [`SwitchSeat`](crate::runtime::SwitchSeat)
//!   (shadow table, RTO estimator, quarantine record) moves to the
//!   destination in one step, journalled `MigrateBegin` →
//!   `MigrateCommitted` so a crash mid-migration recovers to exactly
//!   one owner.
//!
//! Identifier spaces are carved statically so that a value alone names
//! its owner — nothing to translate, nothing to lose in a crash: shard
//! `i` allocates xids from `(i+1) << 24` and job ids from
//! `(i+1) << 32`; the coordinator runtime allocates xids from
//! `0xF000_0000` and job ids from `1 << 57`; fabric tickets for
//! cross-shard updates start at `1 << 56`; reservations use
//! `(1 << 62) | ticket`.

pub mod coordinator;
pub mod rebalance;
pub mod tenant;

pub use coordinator::{FabricConfig, FabricCoordinator, MigrateError};
pub use rebalance::{RebalanceReport, ShardLoad, SuggestedMove};
pub use tenant::TenantPolicy;

use std::fmt;

/// A shard of the fabric (an index into its runtime vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}
