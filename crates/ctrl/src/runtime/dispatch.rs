//! The multi-executor dispatcher.
//!
//! [`ConcurrentRuntime`] replaces the serial controller's one-job loop:
//! every footprint-disjoint update in the admission queue executes
//! **concurrently**, each behind its own [`RoundExecutor`], over the
//! shared control channel. Conflicting updates wait in the bounded
//! [`AdmissionQueue`] until their conflict set drains. Barrier replies
//! are routed to the owning executor through a `(switch, xid)` table —
//! no broadcast — and every reply doubles as an RTT sample for the
//! per-switch adaptive retransmission timers ([`RtoTable`]).
//!
//! The runtime and the serial [`Controller`](crate::controller) both
//! implement [`RuntimeHandle`], so the
//! simulator, the experiments and the REST layer switch between them
//! with one constructor argument.

use std::collections::{BTreeMap, BTreeSet};

use sdn_obs::{Ctr, DumpReason, Event, EventKind, HistId, Obs};
use sdn_openflow::codec;
use sdn_openflow::messages::{Envelope, OfMessage};
use sdn_types::{DpId, SimDuration, SimTime, Xid};

use crate::compile::CompiledUpdate;
use crate::controller::{CtrlOutput, FailReason, UpdateReport};
use crate::executor::{ExecConfig, ExecState, RoundExecutor, XidAlloc};
use crate::resync::ResyncManager;
use crate::runtime::admission::{
    AdmissionPolicy, AdmissionQueue, AdmitOutcome, Priority, QueuedJob,
};
use crate::runtime::conflict::{ConflictGraph, Footprint, JobId};
use crate::runtime::journal::{Journal, JournalRecord};
use crate::runtime::rto::{RtoConfig, RtoTable};
use crate::runtime::seat::SwitchSeat;
use crate::runtime::submit::{SubmitError, SubmitOutcome, SubmitRequest, SubmitTicket, TenantId};
use crate::runtime::{RuntimeHandle, RuntimeStats, StatusReport, SwitchStatus, TenantStatus};

/// How the runtime times retransmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetransMode {
    /// One fixed per-switch timeout ([`ExecConfig::barrier_timeout`])
    /// per transmission — the serial executor's policy, kept as the
    /// comparison baseline.
    Fixed,
    /// Per-switch EWMA RTT + variance with exponential backoff.
    Adaptive(RtoConfig),
}

impl Default for RetransMode {
    fn default() -> Self {
        RetransMode::Adaptive(RtoConfig::default())
    }
}

/// Runtime tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Per-executor settings. `max_attempts` is the per-switch
    /// transmission budget; `barrier_timeout` is only consulted in
    /// [`RetransMode::Fixed`].
    pub exec: ExecConfig,
    /// Waiting-queue capacity (jobs beyond this are shed per policy).
    pub queue_capacity: usize,
    /// Maximum concurrently executing updates.
    pub max_active: usize,
    /// Full-queue behaviour.
    pub policy: AdmissionPolicy,
    /// Retransmission timing.
    pub retrans: RetransMode,
    /// Job failures attributed to one switch before it is
    /// quarantined (0 disables quarantine).
    pub quarantine_strikes: u32,
    /// Deadline before an unanswered digest probe is re-sent.
    pub resync_probe_timeout: SimDuration,
    /// Probe transmissions per audit before the switch is abandoned
    /// to quarantine.
    pub resync_attempts: u32,
    /// Per-tenant in-flight (queued + active) budget; `None` disables
    /// quota enforcement. The fabric layers per-tenant overrides on
    /// top of this uniform cap.
    pub tenant_quota: Option<u32>,
    /// First transaction id this runtime allocates. Runtimes sharing a
    /// transport (fabric shards + coordinator) carve disjoint ranges
    /// so replies route to their owner by xid value alone.
    pub xid_base: u32,
    /// First job id this runtime assigns. Fabric shards carve disjoint
    /// ranges so a ticket's job id is unique fabric-wide and names its
    /// owning runtime by value alone — no translation table to lose in
    /// a crash.
    pub job_id_base: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            exec: ExecConfig::default(),
            queue_capacity: 64,
            max_active: 16,
            policy: AdmissionPolicy::RejectNew,
            retrans: RetransMode::default(),
            quarantine_strikes: 2,
            resync_probe_timeout: SimDuration::from_millis(200),
            resync_attempts: 8,
            tenant_quota: None,
            xid_base: 1,
            job_id_base: 1,
        }
    }
}

/// Outstanding barrier transmissions for one pending switch of one
/// round. *Every* transmission stays valid until the switch answers:
/// retransmissions resend identical FlowMods, so a reply to an older
/// barrier still proves the round's content is fenced at that switch
/// (and, because retransmissions re-key, identifies its exact
/// transmission — a clean RTT sample with no Karn ambiguity). Without
/// this, a fixed timeout shorter than a straggler's RTT would livelock:
/// each reply would arrive already superseded.
#[derive(Debug, Clone)]
struct BarrierTimer {
    /// The newest barrier xid (the one the executor tracks).
    latest: Xid,
    /// When the newest transmission went out (timer base).
    latest_sent: SimTime,
    /// Transmissions so far (1 = no retransmissions).
    attempts: u32,
    /// Flagged slow while the rest of its round had acknowledged.
    straggler: bool,
    /// All in-flight (xid, sent-at) transmissions, oldest first.
    outstanding: Vec<(Xid, SimTime)>,
}

/// One executing update.
#[derive(Debug, Clone)]
struct ActiveJob {
    ex: RoundExecutor,
    submitted: SimTime,
    started: SimTime,
    /// Whose budget this job occupies until reaped.
    tenant: TenantId,
    /// Outstanding barrier per pending switch of the current round.
    barriers: BTreeMap<DpId, BarrierTimer>,
    /// Every payload-ack (echo) route this job has registered, so the
    /// reaper can retire them without scanning the whole route table.
    ack_routes: Vec<(DpId, Xid)>,
    /// Why the job was force-failed, when it was.
    failure: Option<FailReason>,
}

/// The concurrent update runtime.
#[derive(Debug, Clone)]
pub struct ConcurrentRuntime {
    config: RuntimeConfig,
    queue: AdmissionQueue,
    graph: ConflictGraph,
    active: BTreeMap<JobId, ActiveJob>,
    /// Latest outstanding barrier (switch, xid) → owning job.
    routes: BTreeMap<(DpId, Xid), JobId>,
    xids: XidAlloc,
    rto: RtoTable,
    reports: Vec<UpdateReport>,
    stats: RuntimeStats,
    next_id: u64,
    /// Shadow tables + the audit-and-repair state machine.
    resync: ResyncManager,
    /// Write-ahead log for crash recovery.
    journal: Journal,
    /// Switches withdrawn from service after repeated failures.
    quarantined: BTreeSet<DpId>,
    /// Per-switch failure count feeding quarantine.
    strikes: BTreeMap<DpId, u32>,
    /// Observability sink (disabled by default; see
    /// [`RuntimeHandle::attach_obs`]).
    obs: Obs,
}

impl ConcurrentRuntime {
    /// A runtime with the given configuration and no journal.
    pub fn new(config: RuntimeConfig) -> Self {
        Self::with_journal(config, Journal::Disabled)
    }

    /// A runtime logging admission and progress to `journal` so
    /// [`ConcurrentRuntime::recover`] can rebuild it after a crash.
    pub fn with_journal(config: RuntimeConfig, journal: Journal) -> Self {
        let rto = match config.retrans {
            RetransMode::Adaptive(cfg) => RtoTable::new(cfg),
            RetransMode::Fixed => RtoTable::default(),
        };
        ConcurrentRuntime {
            queue: AdmissionQueue::new(config.queue_capacity, config.policy),
            graph: ConflictGraph::new(),
            active: BTreeMap::new(),
            routes: BTreeMap::new(),
            xids: XidAlloc::with_base(config.xid_base),
            rto,
            reports: Vec::new(),
            stats: RuntimeStats::default(),
            next_id: config.job_id_base.max(1),
            resync: ResyncManager::new(),
            journal,
            quarantined: BTreeSet::new(),
            strikes: BTreeMap::new(),
            obs: Obs::disabled(),
            config,
        }
    }

    /// Rebuild a runtime from its journal after a crash.
    ///
    /// Terminal jobs re-enter the report log; every unfinished job is
    /// re-queued in its original admission order with a `resume_round`
    /// pointing past its last journalled commit, so the next
    /// [`poll`](RuntimeHandle::poll) re-dispatches from there through
    /// the normal launch machinery. Rounds at or before the commit
    /// cursor are known fenced network-wide and are replayed into the
    /// resync shadow (not the network); a round the journal
    /// under-reported is simply re-sent — FlowMods are idempotent, so
    /// over-sending is correct and only costs messages. Xids restart
    /// from 1: replies to pre-crash transmissions no longer route and
    /// are ignored, and the retransmission timers re-drive anything
    /// lost in the gap.
    pub fn recover(config: RuntimeConfig, journal: Journal) -> Self {
        struct Recovered {
            update: CompiledUpdate,
            priority: Priority,
            tenant: TenantId,
            deadline: Option<SimTime>,
            submitted: SimTime,
            started: Option<SimTime>,
            committed: Option<usize>,
            terminal: bool,
        }
        let mut rt = Self::new(config);
        let mut jobs: BTreeMap<u64, Recovered> = BTreeMap::new();
        for rec in journal.records() {
            match rec {
                JournalRecord::Baseline { dp, frame } => {
                    if let Ok(env) = codec::decode(&frame) {
                        if let OfMessage::FlowMod(fm) = &env.msg {
                            rt.resync.record(dp, fm);
                        }
                    }
                }
                JournalRecord::Admitted {
                    id,
                    update,
                    priority,
                    tenant,
                    deadline,
                    at,
                } => {
                    jobs.insert(
                        id.0,
                        Recovered {
                            update,
                            priority,
                            tenant,
                            deadline,
                            submitted: at,
                            started: None,
                            committed: None,
                            terminal: false,
                        },
                    );
                }
                JournalRecord::Started { id, at } => {
                    if let Some(j) = jobs.get_mut(&id.0) {
                        j.started = Some(at);
                    }
                }
                JournalRecord::RoundCommitted { id, round, .. } => {
                    if let Some(j) = jobs.get_mut(&id.0) {
                        j.committed = Some(j.committed.map_or(round, |c| c.max(round)));
                    }
                }
                JournalRecord::Completed { id, at } => {
                    if let Some(j) = jobs.get_mut(&id.0) {
                        j.terminal = true;
                        j.committed = Some(j.update.rounds.len().saturating_sub(1));
                        rt.stats.completed += 1;
                        rt.reports.push(UpdateReport {
                            label: j.update.label.clone(),
                            submitted: j.submitted,
                            started: j.started.unwrap_or(j.submitted),
                            completed: Some(at),
                            failure: None,
                            rounds: Vec::new(),
                        });
                    }
                }
                JournalRecord::Failed { id, .. } => {
                    if let Some(j) = jobs.get_mut(&id.0) {
                        j.terminal = true;
                        rt.stats.failed += 1;
                        rt.reports.push(UpdateReport {
                            label: j.update.label.clone(),
                            submitted: j.submitted,
                            started: j.started.unwrap_or(j.submitted),
                            completed: None,
                            failure: None,
                            rounds: Vec::new(),
                        });
                    }
                }
                JournalRecord::Shed { id, .. } => {
                    if let Some(j) = jobs.get_mut(&id.0) {
                        j.terminal = true;
                        rt.stats.displaced += 1;
                    }
                }
                // Two-phase and migration records live in the fabric's
                // own journal; a runtime journal never carries them,
                // but tolerate them like any other foreign line.
                JournalRecord::Prepared { .. }
                | JournalRecord::XCommitted { .. }
                | JournalRecord::Aborted { .. }
                | JournalRecord::MigrateBegin { .. }
                | JournalRecord::MigrateCommitted { .. }
                | JournalRecord::MigrateAborted { .. } => {}
            }
        }
        for (&id, job) in &jobs {
            rt.stats.submitted += 1;
            rt.stats.accepted += 1;
            rt.next_id = rt.next_id.max(id + 1);
            if job.terminal {
                continue;
            }
            // Rounds up to the commit cursor are fenced: their rules
            // are on the switches, so the shadow must know them.
            let resume_round = job.committed.map_or(0, |c| c + 1);
            for round in job.update.rounds.iter().take(resume_round) {
                for (dp, msg) in &round.msgs {
                    if let OfMessage::FlowMod(fm) = msg {
                        rt.resync.record(*dp, fm);
                    }
                }
            }
            let footprint = Footprint::of(&job.update);
            rt.queue.offer(QueuedJob {
                id: JobId(id),
                update: job.update.clone(),
                footprint,
                submitted: job.submitted,
                priority: job.priority,
                tenant: job.tenant,
                deadline: job.deadline,
                resume_round,
            });
        }
        // Completed jobs' rules are on the switches too.
        for job in jobs.values().filter(|j| j.terminal) {
            for round in job
                .update
                .rounds
                .iter()
                .take(job.committed.map_or(0, |c| c + 1))
            {
                for (dp, msg) in &round.msgs {
                    if let OfMessage::FlowMod(fm) = msg {
                        rt.resync.record(*dp, fm);
                    }
                }
            }
        }
        rt.stats.recoveries = 1;
        rt.journal = journal;
        rt
    }

    /// The per-switch RTO table (diagnostics).
    pub fn rto_table(&self) -> &RtoTable {
        &self.rto
    }

    /// Jobs currently executing, with their current round (diagnostics).
    pub fn active_jobs(&self) -> impl Iterator<Item = (JobId, &str, usize)> + '_ {
        self.active
            .iter()
            .map(|(&id, j)| (id, j.ex.label(), j.ex.current_round()))
    }

    /// In-flight (queued + active) job counts per tenant. The fabric
    /// reads this after a crash recovery to rebuild its quota ledger
    /// without re-parsing shard journals.
    pub fn tenants_in_flight(&self) -> BTreeMap<TenantId, u32> {
        let mut usage: BTreeMap<TenantId, u32> = BTreeMap::new();
        for job in self.queue.iter() {
            *usage.entry(job.tenant).or_insert(0) += 1;
        }
        for job in self.active.values() {
            *usage.entry(job.tenant).or_insert(0) += 1;
        }
        usage
    }

    /// In-flight job count for one tenant.
    pub fn tenant_usage(&self, tenant: TenantId) -> u32 {
        self.queue.iter().filter(|j| j.tenant == tenant).count() as u32
            + self.active.values().filter(|j| j.tenant == tenant).count() as u32
    }

    /// Whether `footprint` conflicts with no active job or reservation
    /// (a dry-run of [`ConcurrentRuntime::reserve`]).
    pub fn admits_footprint(&self, footprint: &Footprint) -> bool {
        self.graph.admits(footprint)
    }

    /// Reserve a footprint slice in this runtime's conflict graph on
    /// behalf of an external owner (the fabric's two-phase prepare).
    /// While held, conflicting local jobs wait in the admission queue
    /// exactly as they would behind an active job. Returns `false` —
    /// reserving nothing — when the slice conflicts with an active job
    /// or an earlier reservation, or touches a quarantined switch.
    pub fn reserve(&mut self, id: JobId, footprint: &Footprint) -> bool {
        if !self.graph.admits(footprint)
            || footprint
                .switches()
                .any(|dp| self.quarantined.contains(&dp))
        {
            return false;
        }
        self.graph.insert(id, footprint.clone());
        true
    }

    /// Release a reservation taken by [`ConcurrentRuntime::reserve`]
    /// (two-phase commit or abort). Unknown ids are ignored, so a
    /// coordinator may release unconditionally while unwinding.
    pub fn release(&mut self, id: JobId) {
        self.graph.remove(id);
    }

    /// Whether `dp` is currently quarantined.
    pub fn is_quarantined(&self, dp: DpId) -> bool {
        self.quarantined.contains(&dp)
    }

    /// Whether `id` is still queued or executing here. The fabric
    /// polls this to learn when a committed cross-shard job reached a
    /// terminal state and its shard reservations can be released.
    pub fn job_in_flight(&self, id: JobId) -> bool {
        self.active.contains_key(&id) || self.queue.iter().any(|j| j.id == id)
    }

    /// Whether `dp` has no work in flight here: no active job or
    /// fabric reservation touches it, no queued job names it in its
    /// footprint, and no resync audit is mid-handshake. The migration
    /// fence holds a seat on its source shard until this returns true.
    pub fn seat_quiescent(&self, dp: DpId) -> bool {
        !self.graph.touches(dp)
            && !self
                .queue
                .iter()
                .any(|j| j.footprint.switches().any(|d| d == dp))
            && !self.resync.audit_in_flight(dp)
    }

    /// Detach everything this runtime knows about `dp` into a portable
    /// [`SwitchSeat`]. The caller must have fenced the switch first
    /// ([`ConcurrentRuntime::seat_quiescent`]) — extraction removes
    /// switch-lifetime state only and cannot carry in-flight work.
    /// Extraction itself writes nothing to the journal; the
    /// destination's [`ConcurrentRuntime::install_seat`] re-journals
    /// the shadow so each runtime's log stays self-contained.
    pub fn extract_seat(&mut self, dp: DpId) -> SwitchSeat {
        SwitchSeat {
            dp,
            shadow: self.resync.take_shadow(dp),
            rto: self.rto.take(dp),
            quarantined: self.quarantined.remove(&dp),
            strikes: self.strikes.remove(&dp).unwrap_or(0),
        }
    }

    /// Install a seat extracted from another runtime. The shadow is
    /// re-journalled here as baseline records so this runtime's own
    /// crash recovery rebuilds the migrated state from its own log;
    /// quarantine membership moves without re-counting (the source
    /// already counted it).
    pub fn install_seat(&mut self, seat: SwitchSeat) {
        let SwitchSeat {
            dp,
            shadow,
            rto,
            quarantined,
            strikes,
        } = seat;
        if let Some(table) = shadow {
            if self.journal.is_enabled() {
                for entry in table.iter() {
                    let msg = OfMessage::FlowMod(entry.as_add());
                    self.journal.append(&JournalRecord::Baseline {
                        dp,
                        frame: codec::encode(&Envelope::new(Xid(0), msg)).to_vec(),
                    });
                }
            }
            self.resync.install_shadow(dp, table);
        }
        if let Some((srtt, rttvar)) = rto {
            self.rto.restore(dp, srtt, rttvar);
        }
        if quarantined {
            self.quarantined.insert(dp);
        }
        if strikes > 0 {
            self.strikes.insert(dp, strikes);
        }
    }

    fn straggler_attempts(&self) -> u32 {
        match self.config.retrans {
            RetransMode::Adaptive(cfg) => cfg.straggler_attempts,
            RetransMode::Fixed => RtoConfig::default().straggler_attempts,
        }
    }

    /// Record the barrier and payload-ack requests of freshly produced
    /// commands into the routing and timer tables. Barriers key the
    /// per-switch timers; echo (payload-ack) requests are routed too,
    /// and a payload-only retransmission still re-arms its switch's
    /// timer so the RTO machinery keeps driving payloads, not just
    /// barriers.
    fn register(
        routes: &mut BTreeMap<(DpId, Xid), JobId>,
        stats: &mut RuntimeStats,
        obs: &Obs,
        job_id: JobId,
        job: &mut ActiveJob,
        now: SimTime,
        cmds: &[(DpId, Envelope)],
    ) {
        let round = job.ex.current_round();
        // Per switch: the barrier xid (if one went out) and whether
        // any ack-tracked payload went out.
        let mut per_dp: BTreeMap<DpId, Option<Xid>> = BTreeMap::new();
        for (dp, env) in cmds {
            match &env.msg {
                OfMessage::BarrierRequest => {
                    routes.insert((*dp, env.xid), job_id);
                    per_dp.insert(*dp, Some(env.xid));
                }
                OfMessage::EchoRequest(_) => {
                    routes.insert((*dp, env.xid), job_id);
                    job.ack_routes.push((*dp, env.xid));
                    per_dp.entry(*dp).or_insert(None);
                }
                OfMessage::FlowMod(_) => {
                    obs.inc(Ctr::FlowModsSent);
                    obs.emit(
                        Event::new(now, EventKind::FlowModSend)
                            .span(job_id.0)
                            .dp(dp.0)
                            .round(round),
                    );
                }
                _ => {}
            }
        }
        for (dp, barrier) in per_dp {
            match job.barriers.get_mut(&dp) {
                Some(timer) => {
                    // A retransmission: the older transmissions stay
                    // outstanding (see [`BarrierTimer`]).
                    stats.retransmissions += 1;
                    timer.attempts += 1;
                    timer.latest_sent = now;
                    if let Some(xid) = barrier {
                        timer.latest = xid;
                        timer.outstanding.push((xid, now));
                    }
                }
                None => {
                    // A fresh round dispatch always fences with a
                    // barrier; payload-only commands cannot start a
                    // timer.
                    let Some(xid) = barrier else { continue };
                    job.barriers.insert(
                        dp,
                        BarrierTimer {
                            latest: xid,
                            latest_sent: now,
                            attempts: 1,
                            straggler: false,
                            outstanding: vec![(xid, now)],
                        },
                    );
                }
            }
        }
    }

    fn outputs(cmds: Vec<(DpId, Envelope)>, out: &mut Vec<CtrlOutput>) {
        out.extend(cmds.into_iter().map(|(dp, env)| CtrlOutput::Send(dp, env)));
    }

    /// Mirror outgoing FlowMods into the resync shadow, keeping the
    /// controller's picture of every switch in lock-step with what it
    /// sent. Called at every send site (retransmissions included —
    /// recording an identical rule twice is a no-op).
    fn record_sent(resync: &mut ResyncManager, cmds: &[(DpId, Envelope)]) {
        for (dp, env) in cmds {
            if let OfMessage::FlowMod(fm) = &env.msg {
                resync.record(*dp, fm);
            }
        }
    }

    /// Withdraw `dp` from service: new jobs touching it fail fast at
    /// launch, and the next poll aborts active jobs still waiting on
    /// it. Reconnection lifts the quarantine.
    fn quarantine(&mut self, dp: DpId, now: SimTime) {
        if self.quarantined.insert(dp) {
            self.stats.quarantined += 1;
            self.obs.inc(Ctr::Quarantines);
            self.obs
                .emit(Event::new(now, EventKind::Quarantine).dp(dp.0));
            self.obs.dump(DumpReason::Quarantine, now);
        }
    }

    /// Move finished/failed jobs to the report log and release their
    /// conflict-graph slots and routes.
    fn reap(&mut self, now: SimTime) {
        let done: Vec<JobId> = self
            .active
            .iter()
            .filter(|(_, j)| matches!(j.ex.state(), ExecState::Done | ExecState::Failed))
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            let job = self.active.remove(&id).expect("collected above");
            for (dp, t) in &job.barriers {
                for (xid, _) in &t.outstanding {
                    self.routes.remove(&(*dp, *xid));
                }
            }
            for (dp, xid) in &job.ack_routes {
                self.routes.remove(&(*dp, *xid));
            }
            self.graph.remove(id);
            let completed = match job.ex.state() {
                ExecState::Done => {
                    self.stats.completed += 1;
                    Some(
                        job.ex
                            .timings()
                            .last()
                            .and_then(|t| t.completed)
                            .unwrap_or(now),
                    )
                }
                _ => {
                    self.stats.failed += 1;
                    None
                }
            };
            match completed {
                Some(at) => {
                    self.journal.append(&JournalRecord::Completed { id, at });
                    let latency = at.saturating_since(job.submitted);
                    self.obs.inc(Ctr::Commits);
                    self.obs
                        .observe(HistId::SubmitToCommitNs, latency.as_nanos());
                    self.obs.emit(
                        Event::new(at, EventKind::Commit)
                            .span(id.0)
                            .aux(latency.as_nanos()),
                    );
                }
                None => {
                    self.journal.append(&JournalRecord::Failed { id, at: now });
                    self.obs.inc(Ctr::Aborts);
                    self.obs.emit(Event::new(now, EventKind::Abort).span(id.0));
                    // A budget exhausted against one switch is a strike
                    // against it; enough strikes quarantine the switch
                    // so later jobs fail fast instead of burning their
                    // budgets against a peer known dead.
                    if let Some(FailReason::Exhausted(Some(dp))) = job.failure {
                        let strikes = self.strikes.entry(dp).or_insert(0);
                        *strikes += 1;
                        if self.config.quarantine_strikes > 0
                            && *strikes >= self.config.quarantine_strikes
                        {
                            self.quarantine(dp, now);
                        }
                    }
                }
            }
            self.reports.push(UpdateReport {
                label: job.ex.label().to_string(),
                submitted: job.submitted,
                started: job.started,
                completed,
                failure: completed
                    .is_none()
                    .then(|| job.failure.unwrap_or(FailReason::Exhausted(None))),
                rounds: job.ex.timings().to_vec(),
            });
        }
    }

    /// Launch queued jobs whose conflict sets are clear, up to the
    /// parallelism cap. Jobs touching a quarantined switch fail fast
    /// with a typed reason instead of burning a retransmission budget.
    fn launch(&mut self, now: SimTime, out: &mut Vec<CtrlOutput>) {
        while self.active.len() < self.config.max_active {
            let Some(qj) = self.queue.pop_dispatchable(&self.graph) else {
                break;
            };
            let QueuedJob {
                id,
                update,
                footprint,
                submitted,
                tenant,
                deadline,
                resume_round,
                ..
            } = qj;
            // a deadline that lapsed while queued: stale intent is not
            // worth the network churn
            if deadline.is_some_and(|d| now > d) {
                self.stats.failed += 1;
                self.journal.append(&JournalRecord::Failed { id, at: now });
                self.obs.inc(Ctr::Aborts);
                self.obs.emit(Event::new(now, EventKind::Abort).span(id.0));
                self.reports.push(UpdateReport {
                    label: update.label,
                    submitted,
                    started: now,
                    completed: None,
                    failure: Some(FailReason::DeadlineExpired),
                    rounds: Vec::new(),
                });
                continue;
            }
            if let Some(dp) = footprint
                .switches()
                .find(|dp| self.quarantined.contains(dp))
            {
                self.stats.failed += 1;
                self.journal.append(&JournalRecord::Failed { id, at: now });
                self.obs.inc(Ctr::Aborts);
                self.obs
                    .emit(Event::new(now, EventKind::Abort).span(id.0).dp(dp.0));
                self.reports.push(UpdateReport {
                    label: update.label,
                    submitted,
                    started: now,
                    completed: None,
                    failure: Some(FailReason::Quarantined(dp)),
                    rounds: Vec::new(),
                });
                continue;
            }
            let mut ex = RoundExecutor::resume(update, self.config.exec, resume_round);
            let cmds = ex.start(now, &mut self.xids);
            self.graph.insert(id, footprint);
            let mut job = ActiveJob {
                ex,
                submitted,
                started: now,
                tenant,
                barriers: BTreeMap::new(),
                ack_routes: Vec::new(),
                failure: None,
            };
            self.journal.append(&JournalRecord::Started { id, at: now });
            self.obs.inc(Ctr::RoundsDispatched);
            self.obs.emit(
                Event::new(now, EventKind::RoundDispatch)
                    .span(id.0)
                    .round(job.ex.current_round())
                    .aux(job.ex.current_round_width() as u64),
            );
            Self::register(
                &mut self.routes,
                &mut self.stats,
                &self.obs,
                id,
                &mut job,
                now,
                &cmds,
            );
            Self::record_sent(&mut self.resync, &cmds);
            Self::outputs(cmds, out);
            self.active.insert(id, job);
            self.stats.peak_active = self.stats.peak_active.max(self.active.len() as u64);
        }
        // instantly-done (empty) updates release their slots right away
        self.reap(now);
    }
}

impl RuntimeHandle for ConcurrentRuntime {
    fn submit_request(&mut self, req: SubmitRequest, now: SimTime) -> SubmitOutcome {
        self.stats.submitted += 1;
        self.obs.inc(Ctr::Submitted);
        // refuse before burning an id: an expired deadline or a spent
        // tenant budget is the caller's problem, not queue pressure
        if req.deadline.is_some_and(|d| now > d) {
            self.stats.rejected += 1;
            self.obs.inc(Ctr::Rejected);
            self.obs.emit(Event::new(now, EventKind::Reject).aux(1));
            return Err(SubmitError::DeadlineExpired);
        }
        if let Some(limit) = self.config.tenant_quota {
            let in_flight = self.tenant_usage(req.tenant);
            if in_flight >= limit {
                self.stats.rejected += 1;
                self.obs.inc(Ctr::Rejected);
                self.obs.emit(Event::new(now, EventKind::Reject).aux(2));
                return Err(SubmitError::QuotaExceeded {
                    tenant: req.tenant,
                    limit,
                    in_flight,
                });
            }
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.obs.emit(
            Event::new(now, EventKind::Submit)
                .span(id.0)
                .aux(self.queue.len() as u64),
        );
        self.obs
            .observe(HistId::QueueDepthAtSubmit, self.queue.len() as u64);
        let footprint = Footprint::of(&req.update);
        // the record clones the whole update: build it only when a
        // journal is actually attached
        let admitted = self.journal.is_enabled().then(|| JournalRecord::Admitted {
            id,
            update: req.update.clone(),
            priority: req.priority,
            tenant: req.tenant,
            deadline: req.deadline,
            at: now,
        });
        let outcome = self.queue.offer(QueuedJob {
            id,
            update: req.update,
            footprint,
            submitted: now,
            priority: req.priority,
            tenant: req.tenant,
            deadline: req.deadline,
            resume_round: 0,
        });
        match outcome {
            AdmitOutcome::Queued { .. } => {
                self.stats.accepted += 1;
                self.obs.inc(Ctr::Admitted);
                self.obs.emit(Event::new(now, EventKind::Admit).span(id.0));
                if let Some(rec) = &admitted {
                    self.journal.append(rec);
                }
                Ok(SubmitTicket::local(id, self.queue.len()))
            }
            AdmitOutcome::QueuedDisplacing { dropped, .. } => {
                self.stats.accepted += 1;
                self.stats.displaced += 1;
                self.obs.inc(Ctr::Admitted);
                self.obs.emit(Event::new(now, EventKind::Admit).span(id.0));
                if let Some(rec) = &admitted {
                    self.journal.append(rec);
                }
                // the shed job is terminal: recovery must not revive it
                self.journal.append(&JournalRecord::Shed {
                    id: dropped.0,
                    at: now,
                });
                Ok(SubmitTicket {
                    displaced: Some(dropped),
                    ..SubmitTicket::local(id, self.queue.len())
                })
            }
            AdmitOutcome::Rejected(_) => {
                self.stats.rejected += 1;
                self.obs.inc(Ctr::Rejected);
                self.obs
                    .emit(Event::new(now, EventKind::Reject).span(id.0).aux(3));
                Err(SubmitError::QueueFull)
            }
        }
    }

    fn poll(&mut self, now: SimTime) -> Vec<CtrlOutput> {
        let mut out = Vec::new();
        let straggler_attempts = self.straggler_attempts();
        // Abort active jobs still waiting on a switch that was
        // quarantined since their dispatch: fail fast with a typed
        // reason, releasing their conflict reservations.
        if !self.quarantined.is_empty() {
            for job in self.active.values_mut() {
                if job.failure.is_some() {
                    continue;
                }
                let dead = job
                    .ex
                    .pending_switches()
                    .find(|dp| self.quarantined.contains(dp));
                if let Some(dp) = dead {
                    job.failure = Some(FailReason::Quarantined(dp));
                    job.ex.force_fail();
                }
            }
        }
        // Drive every active executor: grace transitions and per-switch
        // retransmission timers.
        for (&id, job) in self.active.iter_mut() {
            match job.ex.state() {
                ExecState::WaitingGrace => {
                    let cmds = job.ex.on_tick(now, &mut self.xids);
                    Self::register(
                        &mut self.routes,
                        &mut self.stats,
                        &self.obs,
                        id,
                        job,
                        now,
                        &cmds,
                    );
                    Self::record_sent(&mut self.resync, &cmds);
                    Self::outputs(cmds, &mut out);
                }
                ExecState::AwaitingBarriers => {
                    let width = job.ex.current_round_width();
                    let pending = job.ex.pending_count();
                    let mut due: Vec<DpId> = Vec::new();
                    let mut exhausted: Option<DpId> = None;
                    for (&dp, timer) in job.barriers.iter_mut() {
                        let deadline = match self.config.retrans {
                            RetransMode::Fixed => {
                                timer.latest_sent + self.config.exec.barrier_timeout
                            }
                            RetransMode::Adaptive(_) => {
                                timer.latest_sent + self.rto.backoff(dp, timer.attempts)
                            }
                        };
                        if now < deadline {
                            continue;
                        }
                        if timer.attempts >= self.config.exec.max_attempts {
                            exhausted = Some(dp);
                            break;
                        }
                        if !timer.straggler
                            && timer.attempts + 1 >= straggler_attempts
                            && pending * 2 <= width
                        {
                            timer.straggler = true;
                            self.stats.stragglers += 1;
                        }
                        due.push(dp);
                    }
                    if let Some(dp) = exhausted {
                        job.failure = Some(FailReason::Exhausted(Some(dp)));
                        job.ex.force_fail();
                    } else if !due.is_empty() {
                        let cmds = job.ex.retransmit(&mut self.xids, &due);
                        Self::register(
                            &mut self.routes,
                            &mut self.stats,
                            &self.obs,
                            id,
                            job,
                            now,
                            &cmds,
                        );
                        Self::record_sent(&mut self.resync, &cmds);
                        Self::outputs(cmds, &mut out);
                    }
                }
                _ => {}
            }
        }
        // Re-probe unanswered audits; switches that exhaust the probe
        // budget are quarantined (reconnect lifts it and re-audits).
        let (reprobes, give_up) = self.resync.on_tick(
            now,
            self.config.resync_probe_timeout,
            self.config.resync_attempts,
            &mut self.xids,
        );
        for (dp, env) in reprobes {
            out.push(CtrlOutput::Send(dp, env));
        }
        for dp in give_up {
            self.quarantine(dp, now);
        }
        self.reap(now);
        self.launch(now, &mut out);
        out
    }

    fn on_message(&mut self, now: SimTime, from: DpId, env: &Envelope) -> Vec<CtrlOutput> {
        let mut out = Vec::new();
        let is_barrier = env.msg == OfMessage::BarrierReply;
        let is_ack = matches!(env.msg, OfMessage::EchoReply(_));
        if !is_barrier && !is_ack {
            return out; // errors, stats: not routed
        }
        // Digest-probe replies belong to the resync state machine, not
        // to any job. The repair FlowMods come straight from the shadow
        // (recording them again would be a no-op).
        if let OfMessage::EchoReply(payload) = &env.msg {
            if self.resync.owns(from, env.xid) {
                let repairs = self.resync.on_report(from, payload, now, &mut self.xids);
                out.extend(repairs.into_iter().map(|e| CtrlOutput::Send(from, e)));
                if !self.resync.audit_in_flight(from) {
                    self.obs.inc(Ctr::Resyncs);
                    self.obs.emit(
                        Event::new(now, EventKind::ResyncDone)
                            .dp(from.0)
                            .aux(self.resync.stats().rules_replayed),
                    );
                }
                return out;
            }
        }
        let Some(&job_id) = self.routes.get(&(from, env.xid)) else {
            return out; // stale xid (superseded transmission) or unknown
        };
        let Some(job) = self.active.get_mut(&job_id) else {
            return out;
        };
        let prev_round = job.ex.current_round();
        let cmds = if is_barrier {
            let Some(timer) = job.barriers.get(&from) else {
                return out;
            };
            // The (switch, xid) pair identifies the exact transmission,
            // so this difference is always a clean RTT sample (no Karn
            // ambiguity — retransmissions re-key).
            if let Some(&(_, sent)) = timer.outstanding.iter().find(|(x, _)| *x == env.xid) {
                let rtt = now.saturating_since(sent);
                self.rto.observe(from, rtt);
                self.obs.observe(HistId::BarrierRttNs, rtt.as_nanos());
                self.obs.emit(
                    Event::new(now, EventKind::BarrierFence)
                        .span(job_id.0)
                        .dp(from.0)
                        .round(prev_round)
                        .aux(rtt.as_nanos()),
                );
            }
            self.obs.inc(Ctr::BarrierFences);
            // A reply to ANY outstanding transmission fences the round's
            // content at this switch (identical FlowMods precede every
            // barrier); translate older xids to the one the executor
            // tracks.
            let translated = Envelope::new(timer.latest, OfMessage::BarrierReply);
            job.ex.on_message(now, from, &translated, &mut self.xids)
        } else {
            // Payload (echo) acks match by exact xid — every
            // transmission's echo stays valid, so no translation.
            self.routes.remove(&(from, env.xid));
            self.obs.emit(
                Event::new(now, EventKind::FlowModAck)
                    .span(job_id.0)
                    .dp(from.0)
                    .round(prev_round),
            );
            job.ex.on_message(now, from, env, &mut self.xids)
        };
        // The switch is done with its round when the round advanced or
        // the executor no longer lists it pending. Otherwise — barrier
        // fenced but payload acks outstanding (or vice versa) — the
        // timer must survive so the RTO machinery keeps driving
        // retransmissions; only the consumed barrier routes retire.
        let switch_done =
            job.ex.current_round() != prev_round || !job.ex.pending_switches().any(|d| d == from);
        if switch_done {
            if let Some(timer) = job.barriers.remove(&from) {
                for (xid, _) in &timer.outstanding {
                    self.routes.remove(&(from, *xid));
                }
            }
        } else if is_barrier {
            let timer = job.barriers.get_mut(&from).expect("present above");
            for (xid, _) in timer.outstanding.drain(..) {
                self.routes.remove(&(from, xid));
            }
        }
        // Every round crossed by this message is fenced network-wide:
        // journal the commits so recovery resumes past them. (A chain
        // of empty rounds can advance more than one at a time.)
        for round in prev_round..job.ex.current_round() {
            self.journal.append(&JournalRecord::RoundCommitted {
                id: job_id,
                round,
                at: now,
            });
            self.obs.emit(
                Event::new(now, EventKind::RoundCommit)
                    .span(job_id.0)
                    .round(round),
            );
        }
        if job.ex.current_round() != prev_round
            && !matches!(job.ex.state(), ExecState::Done | ExecState::Failed)
        {
            self.obs.inc(Ctr::RoundsDispatched);
            self.obs.emit(
                Event::new(now, EventKind::RoundDispatch)
                    .span(job_id.0)
                    .round(job.ex.current_round())
                    .aux(job.ex.current_round_width() as u64),
            );
        }
        Self::register(
            &mut self.routes,
            &mut self.stats,
            &self.obs,
            job_id,
            job,
            now,
            &cmds,
        );
        Self::record_sent(&mut self.resync, &cmds);
        Self::outputs(cmds, &mut out);
        self.reap(now);
        // a completed job may unblock queued conflicting jobs
        self.launch(now, &mut out);
        out
    }

    fn is_idle(&self) -> bool {
        // in-flight resync audits count as work: polling must continue
        // so their probe timeouts (and give-up bound) can fire
        self.active.is_empty() && self.queue.is_empty() && self.resync.auditing() == 0
    }

    fn reports(&self) -> &[UpdateReport] {
        &self.reports
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn active_count(&self) -> usize {
        self.active.len()
    }

    fn stats(&self) -> RuntimeStats {
        let mut s = self.stats;
        let r = self.resync.stats();
        s.resyncs = r.completed;
        s.resynced_rules = r.rules_replayed;
        s
    }

    fn on_disconnect(&mut self, dp: DpId, now: SimTime) {
        self.obs.inc(Ctr::Disconnects);
        self.obs
            .emit(Event::new(now, EventKind::Disconnect).dp(dp.0));
        // probes in the pipe died with the connection; the next
        // reconnect restarts the audit cleanly
        self.resync.abort(dp);
    }

    fn on_reconnect(&mut self, dp: DpId, now: SimTime) -> Vec<CtrlOutput> {
        self.stats.reconnects += 1;
        self.obs.inc(Ctr::Reconnects);
        self.obs
            .emit(Event::new(now, EventKind::Reconnect).dp(dp.0));
        // the switch is back: clean slate, then audit-and-repair
        self.quarantined.remove(&dp);
        self.strikes.remove(&dp);
        if !self.resync.knows(dp) {
            return Vec::new(); // nothing was ever intended for it
        }
        let probe = self.resync.begin(dp, now, &mut self.xids);
        self.obs
            .emit(Event::new(now, EventKind::ResyncBegin).dp(dp.0));
        vec![CtrlOutput::Send(dp, probe)]
    }

    fn note_installed(&mut self, dp: DpId, msg: &OfMessage) {
        if let OfMessage::FlowMod(fm) = msg {
            self.resync.record(dp, fm);
            self.journal.append(&JournalRecord::Baseline {
                dp,
                frame: codec::encode(&Envelope::new(Xid(0), msg.clone())).to_vec(),
            });
        }
    }

    fn intended_hashes(&self, dp: DpId) -> Option<Vec<u64>> {
        self.resync.intended_hashes(dp)
    }

    fn recover_from_crash(&mut self, now: SimTime) -> bool {
        if !self.journal.is_enabled() {
            return false;
        }
        let obs = self.obs.clone();
        let replayed = self.journal.len() as u64;
        let journal = std::mem::take(&mut self.journal);
        let prior = self.stats.recoveries;
        *self = Self::recover(self.config, journal);
        self.stats.recoveries += prior;
        // the sink survives the rebuild: its ring still holds the
        // pre-crash events the dump below exists to preserve
        self.obs = obs;
        self.obs.inc(Ctr::JournalReplays);
        self.obs.inc(Ctr::CrashRecoveries);
        self.obs
            .emit(Event::new(now, EventKind::JournalReplay).aux(replayed));
        self.obs.emit(Event::new(now, EventKind::CrashRecover));
        self.obs.dump(DumpReason::CrashRecovery, now);
        true
    }

    fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    fn status_report(&self) -> StatusReport {
        // Every sampled switch, plus any unsampled one that currently
        // carries a timer (it may already be flagged a straggler).
        let mut switches: BTreeMap<DpId, SwitchStatus> = self
            .rto
            .switches()
            .map(|dp| {
                (
                    dp,
                    SwitchStatus {
                        dp,
                        srtt: self.rto.srtt(dp),
                        rto: self.rto.rto(dp),
                        straggler: false,
                    },
                )
            })
            .collect();
        for job in self.active.values() {
            for (&dp, timer) in &job.barriers {
                let entry = switches.entry(dp).or_insert(SwitchStatus {
                    dp,
                    srtt: self.rto.srtt(dp),
                    rto: self.rto.rto(dp),
                    straggler: false,
                });
                entry.straggler |= timer.straggler;
            }
        }
        StatusReport {
            queued: self.queue.len(),
            active: self.active.len(),
            pending_acks: self.active.values().map(|j| j.ex.pending_acks()).sum(),
            stats: self.stats(),
            switches: switches.into_values().collect(),
            journal_len: self.journal.len(),
            quarantined: self.quarantined.iter().copied().collect(),
            shards: Vec::new(),
            tenants: self
                .tenants_in_flight()
                .into_iter()
                .map(|(tenant, in_flight)| TenantStatus {
                    tenant,
                    in_flight,
                    quota: self.config.tenant_quota,
                })
                .collect(),
            xshard_queued: 0,
            xshard_active: 0,
            migrating: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_openflow::flow::FlowMatch;
    use sdn_openflow::messages::{FlowMod, FlowModCommand};
    use sdn_types::{HostId, SimDuration};

    fn flowmod(dst: u32) -> OfMessage {
        OfMessage::FlowMod(FlowMod {
            command: FlowModCommand::Add,
            priority: 100,
            matcher: FlowMatch::dst_host(HostId(dst)),
            actions: vec![],
            cookie: 0,
        })
    }

    fn job(label: &str, dst: u32, rounds: Vec<Vec<u64>>) -> CompiledUpdate {
        CompiledUpdate {
            label: label.into(),
            rounds: rounds
                .into_iter()
                .map(|dps| crate::compile::CompiledRound {
                    msgs: dps.into_iter().map(|d| (DpId(d), flowmod(dst))).collect(),
                    pre_delay: SimDuration::ZERO,
                })
                .collect(),
        }
    }

    fn barriers_of(cmds: &[CtrlOutput]) -> Vec<(DpId, Xid)> {
        cmds.iter()
            .filter_map(|CtrlOutput::Send(dp, env)| {
                (env.msg == OfMessage::BarrierRequest).then_some((*dp, env.xid))
            })
            .collect()
    }

    fn reply(rt: &mut ConcurrentRuntime, now: SimTime, dp: DpId, xid: Xid) -> Vec<CtrlOutput> {
        rt.on_message(now, dp, &Envelope::new(xid, OfMessage::BarrierReply))
    }

    #[test]
    fn disjoint_jobs_run_concurrently() {
        let mut rt = ConcurrentRuntime::new(RuntimeConfig::default());
        let _ = rt.submit(
            job("a", 2, vec![vec![1], vec![2]]),
            SimTime(0),
            Priority::Normal,
        );
        let _ = rt.submit(
            job("b", 4, vec![vec![5], vec![6]]),
            SimTime(0),
            Priority::Normal,
        );
        let cmds = rt.poll(SimTime(0));
        // both round-0 dispatches go out together
        let b = barriers_of(&cmds);
        assert_eq!(b.len(), 2);
        assert_eq!(rt.active_count(), 2);
        assert_eq!(rt.stats().peak_active, 2);
        // finish both, interleaved
        let next_a = reply(&mut rt, SimTime(1), b[0].0, b[0].1);
        let next_b = reply(&mut rt, SimTime(2), b[1].0, b[1].1);
        for cmds in [next_a, next_b] {
            for (dp, xid) in barriers_of(&cmds) {
                reply(&mut rt, SimTime(3), dp, xid);
            }
        }
        assert!(rt.is_idle());
        assert_eq!(rt.reports().len(), 2);
        assert!(rt.reports().iter().all(|r| r.completed.is_some()));
    }

    #[test]
    fn conflicting_job_waits_for_the_active_one() {
        let mut rt = ConcurrentRuntime::new(RuntimeConfig::default());
        let _ = rt.submit(job("a", 2, vec![vec![1, 2]]), SimTime(0), Priority::Normal);
        let _ = rt.submit(job("b", 2, vec![vec![2, 3]]), SimTime(0), Priority::Normal);
        let cmds = rt.poll(SimTime(0));
        assert_eq!(rt.active_count(), 1, "b conflicts with a at s2");
        assert_eq!(rt.queued(), 1);
        // completing a releases b
        let mut launched = Vec::new();
        for (dp, xid) in barriers_of(&cmds) {
            launched.extend(reply(&mut rt, SimTime(1), dp, xid));
        }
        assert_eq!(rt.active_count(), 1);
        assert_eq!(rt.queued(), 0);
        assert!(!barriers_of(&launched).is_empty(), "b dispatched");
        let r = &rt.reports()[0];
        assert_eq!(r.label, "a");
        assert!(r.completed.is_some());
    }

    #[test]
    fn flow_disjoint_jobs_share_a_switch_concurrently() {
        let mut rt = ConcurrentRuntime::new(RuntimeConfig::default());
        let _ = rt.submit(job("a", 2, vec![vec![1, 2]]), SimTime(0), Priority::Normal);
        let _ = rt.submit(job("b", 4, vec![vec![2, 3]]), SimTime(0), Priority::Normal);
        rt.poll(SimTime(0));
        assert_eq!(rt.active_count(), 2, "distinct dst hosts commute at s2");
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let cfg = RuntimeConfig {
            queue_capacity: 2,
            max_active: 1,
            ..RuntimeConfig::default()
        };
        let mut rt = ConcurrentRuntime::new(cfg);
        // all conflict (same flow, same switch): only one runs
        for i in 0..4u32 {
            let out = rt.submit(
                job(&format!("j{i}"), 2, vec![vec![1]]),
                SimTime(0),
                Priority::Normal,
            );
            if i < 2 {
                assert!(out.is_ok(), "j{i} fits the queue");
            }
        }
        let stats = rt.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.rejected, 2);
    }

    #[test]
    fn adaptive_retransmission_uses_learned_rto() {
        let cfg = RuntimeConfig {
            retrans: RetransMode::Adaptive(RtoConfig {
                initial: SimDuration::from_millis(100),
                min: SimDuration::from_millis(1),
                max: SimDuration::from_secs(1),
                straggler_attempts: 3,
            }),
            ..RuntimeConfig::default()
        };
        let mut rt = ConcurrentRuntime::new(cfg);
        // Round 1 teaches the runtime that s1 answers in ~2 ms.
        let _ = rt.submit(
            job("a", 2, vec![vec![1], vec![1]]),
            SimTime(0),
            Priority::Normal,
        );
        let cmds = rt.poll(SimTime(0));
        let b = barriers_of(&cmds);
        let t1 = SimTime(0) + SimDuration::from_millis(2);
        let next = reply(&mut rt, t1, b[0].0, b[0].1);
        assert!(!barriers_of(&next).is_empty(), "round 2 dispatched");
        // Round 2's barrier is lost. The learned RTO (~2 ms srtt +
        // 4 ms var = ~6 ms) should fire far sooner than the 100 ms
        // initial value.
        let before = rt.stats().retransmissions;
        let polled = rt.poll(t1 + SimDuration::from_millis(20));
        assert!(
            !barriers_of(&polled).is_empty(),
            "adaptive timer must have fired within 20 ms"
        );
        assert_eq!(rt.stats().retransmissions, before + 1);
    }

    #[test]
    fn per_switch_attempt_budget_fails_the_job() {
        let cfg = RuntimeConfig {
            exec: ExecConfig {
                barrier_timeout: SimDuration::from_millis(10),
                max_attempts: 2,
                flowmod_acks: false,
            },
            retrans: RetransMode::Fixed,
            ..RuntimeConfig::default()
        };
        let mut rt = ConcurrentRuntime::new(cfg);
        let _ = rt.submit(
            job("doomed", 2, vec![vec![1]]),
            SimTime(0),
            Priority::Normal,
        );
        rt.poll(SimTime(0));
        rt.poll(SimTime(0) + SimDuration::from_millis(11)); // attempt 2
        rt.poll(SimTime(0) + SimDuration::from_millis(22)); // budget gone
        assert!(rt.is_idle());
        assert_eq!(rt.reports().len(), 1);
        assert_eq!(rt.reports()[0].completed, None);
        assert_eq!(rt.stats().failed, 1);
    }

    #[test]
    fn any_outstanding_barrier_reply_completes_the_switch() {
        let mut rt = ConcurrentRuntime::new(RuntimeConfig {
            retrans: RetransMode::Fixed,
            exec: ExecConfig {
                barrier_timeout: SimDuration::from_millis(5),
                max_attempts: 8,
                flowmod_acks: false,
            },
            ..RuntimeConfig::default()
        });
        let _ = rt.submit(job("a", 2, vec![vec![1]]), SimTime(0), Priority::Normal);
        let cmds = rt.poll(SimTime(0));
        let b0 = barriers_of(&cmds)[0];
        // timeout fires; a new xid goes out, but the old transmission
        // stays valid (its barrier fenced identical FlowMods)
        let re = rt.poll(SimTime(0) + SimDuration::from_millis(6));
        let b1 = barriers_of(&re)[0];
        assert_ne!(b0.1, b1.1);
        // an unknown xid does nothing...
        assert!(reply(&mut rt, SimTime(6_500_000), b0.0, Xid(0xdead)).is_empty());
        assert_eq!(rt.active_count(), 1);
        // ...but the late reply to the OLDER outstanding barrier
        // completes the switch — no livelock when RTO < RTT
        reply(&mut rt, SimTime(7_000_000), b0.0, b0.1);
        assert!(rt.is_idle());
        // the fresh xid is retired with the job: replaying it is a no-op
        assert!(reply(&mut rt, SimTime(8_000_000), b1.0, b1.1).is_empty());
        assert_eq!(rt.reports().len(), 1);
        assert!(rt.reports()[0].completed.is_some());
    }

    #[test]
    fn straggler_detection_counts_slow_switch() {
        let cfg = RuntimeConfig {
            retrans: RetransMode::Adaptive(RtoConfig {
                initial: SimDuration::from_millis(5),
                min: SimDuration::from_millis(1),
                max: SimDuration::from_secs(1),
                straggler_attempts: 2,
            }),
            ..RuntimeConfig::default()
        };
        let mut rt = ConcurrentRuntime::new(cfg);
        let _ = rt.submit(job("a", 2, vec![vec![1, 2]]), SimTime(0), Priority::Normal);
        let cmds = rt.poll(SimTime(0));
        let b = barriers_of(&cmds);
        // s1 acks fast; s2 stays silent past its (backed-off) deadlines
        reply(&mut rt, SimTime(1), b[0].0, b[0].1);
        rt.poll(SimTime(0) + SimDuration::from_millis(6));
        rt.poll(SimTime(0) + SimDuration::from_millis(30));
        assert!(rt.stats().stragglers >= 1, "s2 should be flagged");
    }

    #[test]
    fn high_priority_overtakes_normal_in_queue() {
        let cfg = RuntimeConfig {
            max_active: 1,
            ..RuntimeConfig::default()
        };
        let mut rt = ConcurrentRuntime::new(cfg);
        let _ = rt.submit(
            job("running", 2, vec![vec![1]]),
            SimTime(0),
            Priority::Normal,
        );
        let cmds = rt.poll(SimTime(0));
        let _ = rt.submit(
            job("patient", 4, vec![vec![5]]),
            SimTime(1),
            Priority::Normal,
        );
        let _ = rt.submit(job("urgent", 6, vec![vec![9]]), SimTime(2), Priority::High);
        // finish the running job; the High job launches first
        for (dp, xid) in barriers_of(&cmds) {
            reply(&mut rt, SimTime(3), dp, xid);
        }
        let (_, label, _) = rt.active_jobs().next().expect("one active");
        assert_eq!(label, "urgent");
    }

    fn echoes_of(cmds: &[CtrlOutput]) -> Vec<(DpId, Xid, Vec<u8>)> {
        cmds.iter()
            .filter_map(|CtrlOutput::Send(dp, env)| match &env.msg {
                OfMessage::EchoRequest(p) => Some((*dp, env.xid, p.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn ack_mode_timer_outlives_barrier_and_retransmits_payload() {
        // The RTO machinery must drive PAYLOAD retransmission, not just
        // barriers: a barrier reply with the payload ack still missing
        // keeps the per-switch timer alive, and its next firing resends
        // the FlowMod + echo pair (no barrier — that one is fenced).
        let cfg = RuntimeConfig {
            retrans: RetransMode::Fixed,
            exec: ExecConfig {
                barrier_timeout: SimDuration::from_millis(10),
                max_attempts: 8,
                flowmod_acks: true,
            },
            ..RuntimeConfig::default()
        };
        let mut rt = ConcurrentRuntime::new(cfg);
        let _ = rt.submit(job("a", 2, vec![vec![1]]), SimTime(0), Priority::Normal);
        let cmds = rt.poll(SimTime(0));
        let b = barriers_of(&cmds);
        assert_eq!(echoes_of(&cmds).len(), 1);
        // barrier fenced, payload ack lost: the job must stay active
        reply(&mut rt, SimTime(1), b[0].0, b[0].1);
        assert_eq!(rt.active_count(), 1, "payload ack still outstanding");
        // the surviving timer fires and resends the payload pair only
        let re = rt.poll(SimTime(0) + SimDuration::from_millis(11));
        assert!(barriers_of(&re).is_empty(), "fenced barrier not re-sent");
        let e = echoes_of(&re);
        assert_eq!(e.len(), 1, "unacked payload retransmitted");
        // the echo ack (exact xid, exact payload) completes the job
        let out = rt.on_message(
            SimTime(0) + SimDuration::from_millis(12),
            e[0].0,
            &Envelope::new(e[0].1, OfMessage::EchoReply(e[0].2.clone())),
        );
        let _ = out;
        assert!(rt.is_idle());
        assert!(rt.reports()[0].completed.is_some());
    }

    fn complete_all(rt: &mut ConcurrentRuntime, mut cmds: Vec<CtrlOutput>, mut now: SimTime) {
        let mut hops = 0;
        while !cmds.is_empty() && hops < 32 {
            let mut next = Vec::new();
            for (dp, xid) in barriers_of(&cmds) {
                next.extend(reply(rt, now, dp, xid));
            }
            for (dp, xid, payload) in echoes_of(&cmds) {
                next.extend(rt.on_message(
                    now,
                    dp,
                    &Envelope::new(xid, OfMessage::EchoReply(payload)),
                ));
            }
            cmds = next;
            now += SimDuration::from_millis(1);
            hops += 1;
        }
    }

    fn digest_report(fms: &[(u32, OfMessage)]) -> Vec<u8> {
        let mut t = sdn_switch::FlowTable::new();
        for (_, msg) in fms {
            if let OfMessage::FlowMod(fm) = msg {
                t.apply(fm);
            }
        }
        sdn_switch::resync::encode_digest_report(&t)
    }

    #[test]
    fn reconnect_probes_audits_and_repairs() {
        let mut rt = ConcurrentRuntime::new(RuntimeConfig::default());
        let _ = rt.submit(job("a", 2, vec![vec![1]]), SimTime(0), Priority::Normal);
        let cmds = rt.poll(SimTime(0));
        complete_all(&mut rt, cmds, SimTime(1));
        assert!(rt.is_idle());
        // the switch reboots: empty table, same dpid
        let t = SimTime(0) + SimDuration::from_secs(1);
        let probe = rt.on_reconnect(DpId(1), t);
        assert_eq!(rt.stats().reconnects, 1);
        let CtrlOutput::Send(dp, env) = &probe[0];
        assert_eq!(*dp, DpId(1));
        let OfMessage::EchoRequest(_) = &env.msg else {
            panic!("reconnect must open with a digest probe");
        };
        // empty-table report: the lost rule is replayed + re-probed
        let repair = rt.on_message(
            t + SimDuration::from_millis(1),
            DpId(1),
            &Envelope::new(env.xid, OfMessage::EchoReply(digest_report(&[]))),
        );
        let fm_count = repair
            .iter()
            .filter(|CtrlOutput::Send(_, e)| matches!(e.msg, OfMessage::FlowMod(_)))
            .count();
        assert_eq!(fm_count, 1, "exactly the missing rule is replayed");
        let CtrlOutput::Send(_, reprobe) = repair.last().unwrap();
        // the verification report now matches the shadow: audit done
        let done = rt.on_message(
            t + SimDuration::from_millis(2),
            DpId(1),
            &Envelope::new(
                reprobe.xid,
                OfMessage::EchoReply(digest_report(&[(1, flowmod(2))])),
            ),
        );
        assert!(done.is_empty());
        let stats = rt.stats();
        assert_eq!(stats.resyncs, 1);
        assert_eq!(stats.resynced_rules, 1);
    }

    #[test]
    fn reconnect_of_unknown_switch_skips_the_audit() {
        let mut rt = ConcurrentRuntime::new(RuntimeConfig::default());
        assert!(rt.on_reconnect(DpId(9), SimTime(0)).is_empty());
        assert_eq!(rt.stats().reconnects, 1);
    }

    #[test]
    fn repeated_exhaustion_quarantines_and_fails_fast() {
        let cfg = RuntimeConfig {
            exec: ExecConfig {
                barrier_timeout: SimDuration::from_millis(10),
                max_attempts: 1,
                flowmod_acks: false,
            },
            retrans: RetransMode::Fixed,
            quarantine_strikes: 2,
            ..RuntimeConfig::default()
        };
        let mut rt = ConcurrentRuntime::new(cfg);
        // two jobs against a dead switch burn their budgets (strikes)
        let _ = rt.submit(job("j1", 2, vec![vec![1]]), SimTime(0), Priority::Normal);
        rt.poll(SimTime(0));
        rt.poll(SimTime(0) + SimDuration::from_millis(11));
        let _ = rt.submit(
            job("j2", 2, vec![vec![1]]),
            SimTime(0) + SimDuration::from_millis(12),
            Priority::Normal,
        );
        rt.poll(SimTime(0) + SimDuration::from_millis(12));
        rt.poll(SimTime(0) + SimDuration::from_millis(23));
        assert_eq!(rt.stats().failed, 2);
        assert_eq!(rt.stats().quarantined, 1);
        assert_eq!(
            rt.reports()[1].failure,
            Some(FailReason::Exhausted(Some(DpId(1))))
        );
        // the third job fails fast at launch — no budget burned
        let before = rt.stats().retransmissions;
        let _ = rt.submit(
            job("j3", 2, vec![vec![1]]),
            SimTime(0) + SimDuration::from_millis(24),
            Priority::Normal,
        );
        rt.poll(SimTime(0) + SimDuration::from_millis(24));
        assert!(rt.is_idle());
        assert_eq!(rt.stats().retransmissions, before);
        assert_eq!(
            rt.reports()[2].failure,
            Some(FailReason::Quarantined(DpId(1)))
        );
        assert_eq!(rt.status_report().quarantined, vec![DpId(1)]);
        // reconnection lifts the quarantine
        rt.on_reconnect(DpId(1), SimTime(0) + SimDuration::from_millis(30));
        assert!(rt.status_report().quarantined.is_empty());
    }

    #[test]
    fn quarantine_aborts_active_jobs_waiting_on_the_switch() {
        // quarantine arrives via resync-probe exhaustion while a job
        // is mid-flight against the same switch
        let cfg = RuntimeConfig {
            exec: ExecConfig {
                barrier_timeout: SimDuration::from_secs(10),
                max_attempts: 100,
                flowmod_acks: false,
            },
            retrans: RetransMode::Fixed,
            resync_probe_timeout: SimDuration::from_millis(5),
            resync_attempts: 2,
            ..RuntimeConfig::default()
        };
        let mut rt = ConcurrentRuntime::new(cfg);
        let _ = rt.submit(job("a", 2, vec![vec![1]]), SimTime(0), Priority::Normal);
        let cmds = rt.poll(SimTime(0));
        complete_all(&mut rt, cmds, SimTime(1));
        // an audit of s1 that never answers exhausts its probe budget
        rt.on_reconnect(DpId(1), SimTime(10));
        let _ = rt.submit(job("b", 2, vec![vec![1]]), SimTime(11), Priority::Normal);
        rt.poll(SimTime(11));
        assert_eq!(rt.active_count(), 1);
        rt.poll(SimTime(10) + SimDuration::from_millis(6)); // probe 2
        rt.poll(SimTime(10) + SimDuration::from_millis(12)); // budget gone
        rt.poll(SimTime(10) + SimDuration::from_millis(13)); // abort sweep
        assert!(rt.is_idle(), "active job aborted by quarantine");
        let last = rt.reports().last().unwrap();
        assert_eq!(last.failure, Some(FailReason::Quarantined(DpId(1))));
    }

    #[test]
    fn crash_recovery_resumes_after_the_committed_round() {
        let mut rt = ConcurrentRuntime::with_journal(RuntimeConfig::default(), Journal::mem());
        let _ = rt.submit(
            job("two-round", 2, vec![vec![1], vec![2]]),
            SimTime(0),
            Priority::Normal,
        );
        let cmds = rt.poll(SimTime(0));
        let b = barriers_of(&cmds);
        assert_eq!(b, vec![(DpId(1), b[0].1)]);
        // round 0 commits; round 1 dispatches to s2 — then we crash
        let r1 = reply(&mut rt, SimTime(1), b[0].0, b[0].1);
        assert_eq!(barriers_of(&r1)[0].0, DpId(2));
        assert!(rt.recover_from_crash(SimTime(2)));
        assert_eq!(rt.stats().recoveries, 1);
        assert_eq!(rt.active_count(), 0);
        assert_eq!(rt.queued(), 1);
        // relaunch resumes at round 1: only s2 is addressed
        let resumed = rt.poll(SimTime(3));
        let rb = barriers_of(&resumed);
        assert_eq!(rb.len(), 1);
        assert_eq!(rb[0].0, DpId(2), "fenced round 0 is not re-sent");
        reply(&mut rt, SimTime(4), rb[0].0, rb[0].1);
        assert!(rt.is_idle());
        let r = rt.reports().last().unwrap();
        assert_eq!(r.label, "two-round");
        assert!(r.completed.is_some());
        // round 0's rule survived the crash in the shadow
        assert_eq!(
            rt.intended_hashes(DpId(1)).map(|h| h.len()),
            Some(1),
            "recovered shadow knows the fenced round's rule"
        );
    }

    #[test]
    fn recovery_without_a_journal_is_refused() {
        let mut rt = ConcurrentRuntime::new(RuntimeConfig::default());
        let _ = rt.submit(job("a", 2, vec![vec![1]]), SimTime(0), Priority::Normal);
        rt.poll(SimTime(0));
        assert!(!rt.recover_from_crash(SimTime(1)));
        assert_eq!(rt.active_count(), 1, "nothing was discarded");
    }

    #[test]
    fn recovery_preserves_terminal_reports() {
        let mut rt = ConcurrentRuntime::with_journal(RuntimeConfig::default(), Journal::mem());
        let _ = rt.submit(job("done", 2, vec![vec![1]]), SimTime(0), Priority::Normal);
        let cmds = rt.poll(SimTime(0));
        complete_all(&mut rt, cmds, SimTime(1));
        assert_eq!(rt.reports().len(), 1);
        assert!(rt.recover_from_crash(SimTime(5)));
        assert!(rt.is_idle(), "completed job not revived");
        assert_eq!(rt.reports().len(), 1);
        assert_eq!(rt.reports()[0].label, "done");
        assert!(rt.reports()[0].completed.is_some());
        assert_eq!(rt.stats().completed, 1);
    }

    #[test]
    fn seat_extract_install_round_trip() {
        let mut src = ConcurrentRuntime::new(RuntimeConfig::default());
        let mut dst = ConcurrentRuntime::new(RuntimeConfig::default());
        let _ = src.submit(job("a", 2, vec![vec![1]]), SimTime(0), Priority::Normal);
        let cmds = src.poll(SimTime(0));
        complete_all(&mut src, cmds, SimTime(1));
        assert!(src.seat_quiescent(DpId(1)));
        let want = src.intended_hashes(DpId(1)).expect("shadow learned");
        let srtt = src.rto_table().srtt(DpId(1));
        assert!(srtt.is_some(), "barrier reply sampled the RTT");
        let seat = src.extract_seat(DpId(1));
        assert!(!seat.is_empty());
        assert!(src.intended_hashes(DpId(1)).is_none(), "source forgot");
        assert_eq!(src.rto_table().sampled(), 0);
        dst.install_seat(seat);
        assert_eq!(dst.intended_hashes(DpId(1)), Some(want));
        assert_eq!(dst.rto_table().srtt(DpId(1)), srtt);
        // an empty seat for an unknown switch moves nothing
        let empty = src.extract_seat(DpId(42));
        assert!(empty.is_empty());
    }

    #[test]
    fn seat_fence_reflects_queued_and_active_work() {
        let cfg = RuntimeConfig {
            max_active: 1,
            ..RuntimeConfig::default()
        };
        let mut rt = ConcurrentRuntime::new(cfg);
        let _ = rt.submit(job("run", 2, vec![vec![1]]), SimTime(0), Priority::Normal);
        let _ = rt.submit(job("wait", 2, vec![vec![1]]), SimTime(0), Priority::Normal);
        let cmds = rt.poll(SimTime(0));
        assert!(
            !rt.seat_quiescent(DpId(1)),
            "active and queued work fence the seat"
        );
        assert!(
            rt.seat_quiescent(DpId(99)),
            "unknown switch is trivially clear"
        );
        complete_all(&mut rt, cmds, SimTime(1));
        assert!(rt.is_idle());
        assert!(rt.seat_quiescent(DpId(1)), "drained switch is clear");
        // a fabric reservation fences too
        let fp = Footprint::of(&job("resv", 2, vec![vec![1]]));
        assert!(rt.reserve(JobId(1 << 62), &fp));
        assert!(!rt.seat_quiescent(DpId(1)));
        rt.release(JobId(1 << 62));
        assert!(rt.seat_quiescent(DpId(1)));
    }

    #[test]
    fn migrated_quarantine_and_strikes_survive_without_recount() {
        let cfg = RuntimeConfig {
            exec: ExecConfig {
                barrier_timeout: SimDuration::from_millis(10),
                max_attempts: 1,
                flowmod_acks: false,
            },
            retrans: RetransMode::Fixed,
            quarantine_strikes: 1,
            ..RuntimeConfig::default()
        };
        let mut src = ConcurrentRuntime::new(cfg);
        let _ = src.submit(job("j", 2, vec![vec![1]]), SimTime(0), Priority::Normal);
        src.poll(SimTime(0));
        src.poll(SimTime(0) + SimDuration::from_millis(11));
        assert!(src.is_quarantined(DpId(1)));
        assert_eq!(src.stats().quarantined, 1);
        let seat = src.extract_seat(DpId(1));
        assert!(seat.quarantined);
        assert!(!src.is_quarantined(DpId(1)), "source released the switch");
        let mut dst = ConcurrentRuntime::new(RuntimeConfig::default());
        dst.install_seat(seat);
        assert!(dst.is_quarantined(DpId(1)));
        assert_eq!(
            dst.stats().quarantined,
            0,
            "membership moved without inflating the counter"
        );
    }

    #[test]
    fn ack_mode_echo_reply_routes_to_owning_job() {
        // Echo acks route by exact (switch, xid) with no translation;
        // a barrier-only runtime ignores stray echo replies entirely.
        let cfg = RuntimeConfig {
            exec: ExecConfig {
                flowmod_acks: true,
                ..ExecConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let mut rt = ConcurrentRuntime::new(cfg);
        let _ = rt.submit(job("a", 2, vec![vec![1]]), SimTime(0), Priority::Normal);
        let cmds = rt.poll(SimTime(0));
        let b = barriers_of(&cmds);
        let e = echoes_of(&cmds);
        // payload ack first, then the barrier: same end state
        rt.on_message(
            SimTime(1),
            e[0].0,
            &Envelope::new(e[0].1, OfMessage::EchoReply(e[0].2.clone())),
        );
        assert_eq!(rt.active_count(), 1, "barrier still outstanding");
        // an unknown echo xid is ignored, not misrouted
        assert!(rt
            .on_message(
                SimTime(2),
                e[0].0,
                &Envelope::new(Xid(0xbeef), OfMessage::EchoReply(vec![1, 2, 3])),
            )
            .is_empty());
        reply(&mut rt, SimTime(3), b[0].0, b[0].1);
        assert!(rt.is_idle());
        assert!(rt.reports()[0].completed.is_some());
    }
}
