//! Per-switch adaptive retransmission timeouts.
//!
//! The serial executor retransmitted a whole round on one fixed timer —
//! tuned for the slowest switch it might ever meet, so fast switches
//! waited and slow switches were spammed. The runtime instead keeps a
//! Jacobson/Karels estimator per switch (TIME4's observation: update
//! timing is a per-device property):
//!
//! ```text
//! srtt   += (rtt - srtt) / 8            (EWMA of the barrier RTT)
//! rttvar += (|rtt - srtt| - rttvar) / 4 (EWMA of its deviation)
//! rto     = clamp(srtt + 4·rttvar, min, max)
//! ```
//!
//! Retransmissions back off exponentially (`rto << attempts`), and
//! because every retransmitted barrier carries a *fresh* xid, a reply
//! always identifies the exact transmission it answers — Karn's
//! retransmission ambiguity does not arise and every matched reply is
//! a valid RTT sample.
//!
//! A switch whose attempt count reaches
//! [`RtoConfig::straggler_attempts`] while the rest of its round has
//! acknowledged is flagged a **straggler** (diagnostics surfaced via
//! runtime stats; operators watch this to find dying switches before
//! they fail updates).

use std::collections::BTreeMap;

use sdn_types::{DpId, SimDuration};

/// Estimator tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtoConfig {
    /// RTO before any sample exists (TCP uses 1 s; control channels
    /// are LAN-scale, so the default is tighter).
    pub initial: SimDuration,
    /// Lower clamp — never fire faster than this.
    pub min: SimDuration,
    /// Upper clamp — cap exponential backoff.
    pub max: SimDuration,
    /// Attempts after which a pending switch counts as a straggler.
    pub straggler_attempts: u32,
}

impl Default for RtoConfig {
    fn default() -> Self {
        RtoConfig {
            initial: SimDuration::from_millis(200),
            min: SimDuration::from_millis(2),
            max: SimDuration::from_secs(5),
            straggler_attempts: 3,
        }
    }
}

/// One switch's estimator state (integer nanosecond arithmetic; the
/// shifts are the classic 1/8 and 1/4 gains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Estimator {
    srtt: u64,
    rttvar: u64,
}

/// The per-switch RTO table shared by every executor in the runtime —
/// switch latency is a property of the switch, so samples from one
/// update speed up retransmission decisions for all of them.
#[derive(Debug, Clone, Default)]
pub struct RtoTable {
    config: RtoConfig,
    switches: BTreeMap<DpId, Estimator>,
}

impl RtoTable {
    /// A table with the given tuning.
    pub fn new(config: RtoConfig) -> Self {
        RtoTable {
            config,
            switches: BTreeMap::new(),
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &RtoConfig {
        &self.config
    }

    /// Feed one barrier round-trip sample for a switch.
    pub fn observe(&mut self, dp: DpId, rtt: SimDuration) {
        let rtt = rtt.as_nanos();
        match self.switches.get_mut(&dp) {
            None => {
                // First sample: srtt = rtt, rttvar = rtt/2 (RFC 6298).
                self.switches.insert(
                    dp,
                    Estimator {
                        srtt: rtt,
                        rttvar: rtt / 2,
                    },
                );
            }
            Some(e) => {
                let err = e.srtt.abs_diff(rtt);
                // rttvar += (|err| - rttvar) / 4
                e.rttvar = e.rttvar - e.rttvar / 4 + err / 4;
                // srtt += (rtt - srtt) / 8
                e.srtt = e.srtt - e.srtt / 8 + rtt / 8;
            }
        }
    }

    /// Current base RTO for a switch (initial when unsampled).
    pub fn rto(&self, dp: DpId) -> SimDuration {
        match self.switches.get(&dp) {
            None => self.config.initial,
            Some(e) => {
                let rto = e.srtt.saturating_add(e.rttvar.saturating_mul(4));
                SimDuration::from_nanos(
                    rto.clamp(self.config.min.as_nanos(), self.config.max.as_nanos()),
                )
            }
        }
    }

    /// RTO after `attempts` transmissions of the same barrier:
    /// exponential backoff, capped at [`RtoConfig::max`].
    pub fn backoff(&self, dp: DpId, attempts: u32) -> SimDuration {
        let base = self.rto(dp).as_nanos();
        let shift = attempts.saturating_sub(1).min(16);
        SimDuration::from_nanos(
            base.saturating_mul(1u64 << shift)
                .min(self.config.max.as_nanos()),
        )
    }

    /// Remove and return a switch's raw estimator state
    /// `(srtt, rttvar)` in nanoseconds — the seat-migration path
    /// carries it verbatim to another shard's table. `None` when the
    /// switch was never sampled.
    pub fn take(&mut self, dp: DpId) -> Option<(u64, u64)> {
        self.switches.remove(&dp).map(|e| (e.srtt, e.rttvar))
    }

    /// Install raw estimator state taken from another table,
    /// replacing any existing samples for `dp`.
    pub fn restore(&mut self, dp: DpId, srtt: u64, rttvar: u64) {
        self.switches.insert(dp, Estimator { srtt, rttvar });
    }

    /// Smoothed RTT for a switch, when sampled (diagnostics).
    pub fn srtt(&self, dp: DpId) -> Option<SimDuration> {
        self.switches
            .get(&dp)
            .map(|e| SimDuration::from_nanos(e.srtt))
    }

    /// Number of switches with at least one sample.
    pub fn sampled(&self) -> usize {
        self.switches.len()
    }

    /// Every switch with at least one sample, ascending.
    pub fn switches(&self) -> impl Iterator<Item = DpId> + '_ {
        self.switches.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsampled_switch_uses_initial() {
        let t = RtoTable::new(RtoConfig::default());
        assert_eq!(t.rto(DpId(1)), RtoConfig::default().initial);
    }

    #[test]
    fn converges_to_stable_rtt() {
        let mut t = RtoTable::new(RtoConfig::default());
        for _ in 0..64 {
            t.observe(DpId(1), SimDuration::from_millis(10));
        }
        let rto = t.rto(DpId(1));
        // srtt -> 10 ms, rttvar -> 0: rto approaches srtt (clamped by min).
        assert!(
            rto >= SimDuration::from_millis(9) && rto <= SimDuration::from_millis(14),
            "rto {rto} should settle near the true 10 ms RTT"
        );
        assert_eq!(t.sampled(), 1);
    }

    #[test]
    fn jitter_widens_the_timeout() {
        let mut stable = RtoTable::new(RtoConfig::default());
        let mut jittery = RtoTable::new(RtoConfig::default());
        for i in 0..64u64 {
            stable.observe(DpId(1), SimDuration::from_millis(10));
            let ms = if i % 2 == 0 { 2 } else { 18 }; // same mean, high var
            jittery.observe(DpId(1), SimDuration::from_millis(ms));
        }
        assert!(jittery.rto(DpId(1)) > stable.rto(DpId(1)));
    }

    #[test]
    fn per_switch_isolation() {
        let mut t = RtoTable::new(RtoConfig::default());
        t.observe(DpId(1), SimDuration::from_millis(1));
        t.observe(DpId(2), SimDuration::from_millis(100));
        assert!(t.rto(DpId(1)) < t.rto(DpId(2)));
        assert!(t.srtt(DpId(2)).unwrap() > t.srtt(DpId(1)).unwrap());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = RtoConfig {
            initial: SimDuration::from_millis(10),
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(55),
            straggler_attempts: 3,
        };
        let t = RtoTable::new(cfg);
        assert_eq!(t.backoff(DpId(1), 1), SimDuration::from_millis(10));
        assert_eq!(t.backoff(DpId(1), 2), SimDuration::from_millis(20));
        assert_eq!(t.backoff(DpId(1), 3), SimDuration::from_millis(40));
        assert_eq!(t.backoff(DpId(1), 4), SimDuration::from_millis(55));
        assert_eq!(t.backoff(DpId(1), 40), SimDuration::from_millis(55));
    }

    #[test]
    fn take_and_restore_move_the_estimator_verbatim() {
        let mut a = RtoTable::new(RtoConfig::default());
        let mut b = RtoTable::new(RtoConfig::default());
        for _ in 0..8 {
            a.observe(DpId(1), SimDuration::from_millis(7));
        }
        let rto = a.rto(DpId(1));
        let (srtt, rttvar) = a.take(DpId(1)).expect("sampled");
        assert_eq!(a.take(DpId(1)), None, "second take finds nothing");
        assert_eq!(a.sampled(), 0);
        b.restore(DpId(1), srtt, rttvar);
        assert_eq!(b.rto(DpId(1)), rto, "estimator moved bit-for-bit");
    }

    #[test]
    fn min_clamp_floors_tiny_rtts() {
        let mut t = RtoTable::new(RtoConfig::default());
        for _ in 0..64 {
            t.observe(DpId(1), SimDuration::from_nanos(10));
        }
        assert!(t.rto(DpId(1)) >= RtoConfig::default().min);
    }
}
