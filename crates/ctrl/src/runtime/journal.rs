//! Write-ahead journal for controller crash recovery.
//!
//! The concurrent runtime's state — queued jobs, active executors,
//! round cursors — lives in memory; a controller crash would orphan
//! every in-flight update. The journal records just enough to rebuild
//! that state: admissions (with the full compiled update), dispatch,
//! per-round commits, and terminal outcomes. Because FlowMods are
//! idempotent and rounds are barrier-fenced, recovery does not need a
//! byte-exact replica — re-sending a round the journal under-reported
//! is harmless, so records can be appended *after* their action takes
//! effect and a crash between the two only costs duplicate sends.
//!
//! Three backends behind one enum (an enum, not a trait object, so
//! [`ConcurrentRuntime`](crate::runtime::ConcurrentRuntime) keeps its
//! derived `Clone`/`Debug`):
//!
//! * [`Journal::Disabled`] — zero cost, no recovery (the default);
//! * [`Journal::mem`] — in-process record list, for tests and the
//!   simulator's crash/recover fault;
//! * [`Journal::file`] — append-only line-oriented file that survives
//!   the process. Updates are serialized as hex-encoded OpenFlow wire
//!   frames, so the on-disk format is stable across hosts for the
//!   same reason the resync digests are.

use std::fmt::Write as _;
use std::path::PathBuf;

use sdn_openflow::codec;
use sdn_openflow::messages::Envelope;
use sdn_types::{DpId, SimDuration, SimTime, Xid};

use crate::compile::{CompiledRound, CompiledUpdate};
use crate::runtime::admission::Priority;
use crate::runtime::conflict::JobId;
use crate::runtime::submit::TenantId;

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A rule installed outside any job (initial table population).
    /// Recovery replays these into the resync shadow so a post-crash
    /// audit still knows the baseline.
    Baseline {
        /// The switch.
        dp: DpId,
        /// The installing message, as an encoded wire frame.
        frame: Vec<u8>,
    },
    /// An update entered the admission queue.
    Admitted {
        /// Runtime-assigned id.
        id: JobId,
        /// The full compiled update (recovery re-queues it).
        update: CompiledUpdate,
        /// Its admission lane.
        priority: Priority,
        /// The submitting tenant (recovery rebuilds quota usage).
        tenant: TenantId,
        /// Latest useful launch time, when the caller set one.
        deadline: Option<SimTime>,
        /// Submission time.
        at: SimTime,
    },
    /// The update left the queue and dispatched its first round.
    Started {
        /// The job.
        id: JobId,
        /// Dispatch time.
        at: SimTime,
    },
    /// Every barrier (and payload ack) of `round` arrived — the round
    /// is fenced network-wide and will never be re-sent.
    RoundCommitted {
        /// The job.
        id: JobId,
        /// The 0-based round index.
        round: usize,
        /// Commit time.
        at: SimTime,
    },
    /// All rounds committed.
    Completed {
        /// The job.
        id: JobId,
        /// Completion time.
        at: SimTime,
    },
    /// The update failed (retransmission budget, quarantine).
    Failed {
        /// The job.
        id: JobId,
        /// Failure time.
        at: SimTime,
    },
    /// The waiting update was shed by the drop-oldest policy before it
    /// ever started — terminal, but not a failure.
    Shed {
        /// The job.
        id: JobId,
        /// Shed time.
        at: SimTime,
    },
    /// Two-phase protocol (fabric journal only): every involved shard
    /// accepted its footprint reservation for a cross-shard update.
    Prepared {
        /// The coordinator-assigned job.
        id: JobId,
        /// The shards holding reservations.
        shards: Vec<u32>,
        /// Prepare time.
        at: SimTime,
    },
    /// Two-phase protocol (fabric journal only): the prepared update
    /// was handed to the coordinator runtime for execution. Recovery
    /// re-establishes the shard reservations for jobs the coordinator
    /// still has in flight.
    XCommitted {
        /// The fabric ticket.
        id: JobId,
        /// The job id the coordinator runtime assigned at commit —
        /// recovery uses it to ask the coordinator whether the job is
        /// still in flight (and so needs its reservations back).
        coord: JobId,
        /// Commit time.
        at: SimTime,
    },
    /// Two-phase protocol (fabric journal only): the prepare was
    /// unwound — every shard reservation released, the update never
    /// executed. Also written during recovery for updates caught
    /// between prepare and commit by a crash.
    Aborted {
        /// The coordinator-assigned job.
        id: JobId,
        /// Abort time.
        at: SimTime,
    },
    /// Online migration (fabric journal only): the fabric decided to
    /// move a switch's seat and began fencing its source shard. Until
    /// a terminal `MigrateCommitted`/`MigrateAborted` follows, the
    /// source shard remains the sole owner — recovery rolls a torn
    /// migration back to `from` so exactly one shard ever owns a seat.
    MigrateBegin {
        /// The switch being moved.
        dp: DpId,
        /// Its current owner.
        from: u32,
        /// Its destination.
        to: u32,
        /// Begin time.
        at: SimTime,
    },
    /// Online migration (fabric journal only): the seat was extracted
    /// from `from`, installed on `to`, and the assignment override
    /// swapped. Recovery replays the override so `to` owns the switch.
    MigrateCommitted {
        /// The migrated switch.
        dp: DpId,
        /// The shard it left.
        from: u32,
        /// Its new owner.
        to: u32,
        /// Commit time.
        at: SimTime,
    },
    /// Online migration (fabric journal only): the migration was
    /// unwound — the source shard keeps the seat. Also written during
    /// recovery for migrations a crash caught between begin and
    /// commit.
    MigrateAborted {
        /// The switch whose migration unwound.
        dp: DpId,
        /// Abort time.
        at: SimTime,
    },
}

/// The journal: an append-only record log behind one of three
/// backends.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Journal {
    /// No journalling; recovery impossible.
    #[default]
    Disabled,
    /// In-memory record list.
    Mem(Vec<JournalRecord>),
    /// Append-only file of one serialized record per line.
    File {
        /// The log path (created on first append).
        path: PathBuf,
        /// Records appended by this handle (cheap `len`).
        appended: u64,
    },
}

impl Journal {
    /// An in-memory journal.
    pub fn mem() -> Self {
        Journal::Mem(Vec::new())
    }

    /// A file-backed journal at `path`. An existing log is extended,
    /// so recovery followed by further journalling reuses one path.
    pub fn file(path: impl Into<PathBuf>) -> Self {
        Journal::File {
            path: path.into(),
            appended: 0,
        }
    }

    /// Whether appends are recorded at all.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, Journal::Disabled)
    }

    /// Append one record. File I/O errors are swallowed: the journal
    /// is a recovery aid, and failing the control plane because the
    /// log disk hiccuped would invert that priority.
    pub fn append(&mut self, rec: &JournalRecord) {
        match self {
            Journal::Disabled => {}
            Journal::Mem(recs) => recs.push(rec.clone()),
            Journal::File { path, appended } => {
                use std::io::Write;
                let line = serialize(rec);
                let ok = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&*path)
                    .and_then(|mut f| writeln!(f, "{line}"));
                if ok.is_ok() {
                    *appended += 1;
                }
            }
        }
    }

    /// All records, oldest first. For the file backend this re-reads
    /// the log, skipping unparseable lines (a torn final write from a
    /// crash mid-append loses that record, never the log).
    pub fn records(&self) -> Vec<JournalRecord> {
        match self {
            Journal::Disabled => Vec::new(),
            Journal::Mem(recs) => recs.clone(),
            Journal::File { path, .. } => std::fs::read_to_string(path)
                .map(|s| s.lines().filter_map(parse).collect())
                .unwrap_or_default(),
        }
    }

    /// Number of records this handle knows about (for the file
    /// backend: appended by this handle, not the on-disk total).
    pub fn len(&self) -> usize {
        match self {
            Journal::Disabled => 0,
            Journal::Mem(recs) => recs.len(),
            Journal::File { appended, .. } => *appended as usize,
        }
    }

    /// Whether no record was appended through this handle.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// A compiled round as one token: `pre<ns>` plus `,<dp>:<hexframe>`
/// per message (frames encoded with xid 0 — the executor re-stamps
/// xids at dispatch anyway).
fn serialize_round(r: &CompiledRound) -> String {
    let mut s = format!("pre{}", r.pre_delay.as_nanos());
    for (dp, msg) in &r.msgs {
        let frame = codec::encode(&Envelope::new(Xid(0), msg.clone()));
        let _ = write!(s, ",{}:{}", dp.0, hex(&frame));
    }
    s
}

fn parse_round(tok: &str) -> Option<CompiledRound> {
    let mut parts = tok.split(',');
    let pre = parts.next()?.strip_prefix("pre")?.parse::<u64>().ok()?;
    let mut msgs = Vec::new();
    for p in parts {
        let (dp, frame) = p.split_once(':')?;
        let env = codec::decode(&unhex(frame)?).ok()?;
        msgs.push((DpId(dp.parse().ok()?), env.msg));
    }
    Some(CompiledRound {
        msgs,
        pre_delay: SimDuration::from_nanos(pre),
    })
}

fn serialize(rec: &JournalRecord) -> String {
    match rec {
        JournalRecord::Baseline { dp, frame } => {
            format!("baseline dp={} frame={}", dp.0, hex(frame))
        }
        JournalRecord::Admitted {
            id,
            update,
            priority,
            tenant,
            deadline,
            at,
        } => {
            let prio = match priority {
                Priority::Normal => "normal",
                Priority::High => "high",
            };
            let rounds: Vec<String> = update.rounds.iter().map(serialize_round).collect();
            let mut line = format!("admitted id={} at={} prio={}", id.0, at.0, prio);
            if tenant.0 != 0 {
                let _ = write!(line, " tenant={}", tenant.0);
            }
            if let Some(d) = deadline {
                let _ = write!(line, " deadline={}", d.0);
            }
            let _ = write!(
                line,
                " label={} rounds={}",
                hex(update.label.as_bytes()),
                rounds.join(";"),
            );
            line
        }
        JournalRecord::Started { id, at } => format!("started id={} at={}", id.0, at.0),
        JournalRecord::RoundCommitted { id, round, at } => {
            format!("round id={} n={round} at={}", id.0, at.0)
        }
        JournalRecord::Completed { id, at } => format!("completed id={} at={}", id.0, at.0),
        JournalRecord::Failed { id, at } => format!("failed id={} at={}", id.0, at.0),
        JournalRecord::Shed { id, at } => format!("shed id={} at={}", id.0, at.0),
        JournalRecord::Prepared { id, shards, at } => {
            let list: Vec<String> = shards.iter().map(|s| s.to_string()).collect();
            format!("prepared id={} at={} shards={}", id.0, at.0, list.join(";"))
        }
        JournalRecord::XCommitted { id, coord, at } => {
            format!("xcommitted id={} coord={} at={}", id.0, coord.0, at.0)
        }
        JournalRecord::Aborted { id, at } => format!("aborted id={} at={}", id.0, at.0),
        JournalRecord::MigrateBegin { dp, from, to, at } => {
            format!("migbegin dp={} from={from} to={to} at={}", dp.0, at.0)
        }
        JournalRecord::MigrateCommitted { dp, from, to, at } => {
            format!("migcommit dp={} from={from} to={to} at={}", dp.0, at.0)
        }
        JournalRecord::MigrateAborted { dp, at } => {
            format!("migabort dp={} at={}", dp.0, at.0)
        }
    }
}

/// Pull `key=` off the token or bail.
fn field<'a>(tok: Option<&'a str>, key: &str) -> Option<&'a str> {
    tok?.strip_prefix(key)?.strip_prefix('=')
}

fn parse(line: &str) -> Option<JournalRecord> {
    let mut toks = line.split(' ');
    let kind = toks.next()?;
    match kind {
        "baseline" => {
            let dp = field(toks.next(), "dp")?.parse().ok()?;
            let frame = unhex(field(toks.next(), "frame")?)?;
            Some(JournalRecord::Baseline {
                dp: DpId(dp),
                frame,
            })
        }
        "admitted" => {
            let id = field(toks.next(), "id")?.parse().ok()?;
            let at = field(toks.next(), "at")?.parse().ok()?;
            let priority = match field(toks.next(), "prio")? {
                "high" => Priority::High,
                _ => Priority::Normal,
            };
            // tenant and deadline are omitted at their defaults (and
            // absent from pre-fabric logs): probe before committing to
            // the label token
            let mut tenant = TenantId(0);
            let mut deadline = None;
            let mut tok = toks.next();
            if let Some(t) = field(tok, "tenant") {
                tenant = TenantId(t.parse().ok()?);
                tok = toks.next();
            }
            if let Some(d) = field(tok, "deadline") {
                deadline = Some(SimTime(d.parse().ok()?));
                tok = toks.next();
            }
            let label = String::from_utf8(unhex(field(tok, "label")?)?).ok()?;
            let rounds_tok = field(toks.next(), "rounds")?;
            let rounds = if rounds_tok.is_empty() {
                Vec::new()
            } else {
                rounds_tok
                    .split(';')
                    .map(parse_round)
                    .collect::<Option<Vec<_>>>()?
            };
            Some(JournalRecord::Admitted {
                id: JobId(id),
                update: CompiledUpdate { label, rounds },
                priority,
                tenant,
                deadline,
                at: SimTime(at),
            })
        }
        "started" | "completed" | "failed" | "shed" | "aborted" => {
            let id = JobId(field(toks.next(), "id")?.parse().ok()?);
            let at = SimTime(field(toks.next(), "at")?.parse().ok()?);
            Some(match kind {
                "started" => JournalRecord::Started { id, at },
                "completed" => JournalRecord::Completed { id, at },
                "failed" => JournalRecord::Failed { id, at },
                "aborted" => JournalRecord::Aborted { id, at },
                _ => JournalRecord::Shed { id, at },
            })
        }
        "xcommitted" => {
            let id = JobId(field(toks.next(), "id")?.parse().ok()?);
            let coord = JobId(field(toks.next(), "coord")?.parse().ok()?);
            let at = SimTime(field(toks.next(), "at")?.parse().ok()?);
            Some(JournalRecord::XCommitted { id, coord, at })
        }
        "prepared" => {
            let id = JobId(field(toks.next(), "id")?.parse().ok()?);
            let at = SimTime(field(toks.next(), "at")?.parse().ok()?);
            let shards_tok = field(toks.next(), "shards")?;
            let shards = if shards_tok.is_empty() {
                Vec::new()
            } else {
                shards_tok
                    .split(';')
                    .map(|s| s.parse().ok())
                    .collect::<Option<Vec<u32>>>()?
            };
            Some(JournalRecord::Prepared { id, shards, at })
        }
        "migbegin" | "migcommit" => {
            let dp = DpId(field(toks.next(), "dp")?.parse().ok()?);
            let from = field(toks.next(), "from")?.parse().ok()?;
            let to = field(toks.next(), "to")?.parse().ok()?;
            let at = SimTime(field(toks.next(), "at")?.parse().ok()?);
            Some(if kind == "migbegin" {
                JournalRecord::MigrateBegin { dp, from, to, at }
            } else {
                JournalRecord::MigrateCommitted { dp, from, to, at }
            })
        }
        "migabort" => {
            let dp = DpId(field(toks.next(), "dp")?.parse().ok()?);
            let at = SimTime(field(toks.next(), "at")?.parse().ok()?);
            Some(JournalRecord::MigrateAborted { dp, at })
        }
        "round" => {
            let id = JobId(field(toks.next(), "id")?.parse().ok()?);
            let round = field(toks.next(), "n")?.parse().ok()?;
            let at = SimTime(field(toks.next(), "at")?.parse().ok()?);
            Some(JournalRecord::RoundCommitted { id, round, at })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_openflow::flow::{Action, FlowMatch};
    use sdn_openflow::messages::{FlowMod, FlowModCommand, OfMessage};
    use sdn_types::{HostId, PortNo};

    fn update() -> CompiledUpdate {
        CompiledUpdate {
            label: "ring rotate k=2".into(),
            rounds: vec![
                CompiledRound {
                    msgs: vec![
                        (
                            DpId(3),
                            OfMessage::FlowMod(FlowMod {
                                command: FlowModCommand::Add,
                                priority: 100,
                                matcher: FlowMatch::dst_host(HostId(2)),
                                actions: vec![Action::Output(PortNo(1))],
                                cookie: 7,
                            }),
                        ),
                        (
                            DpId(5),
                            OfMessage::FlowMod(FlowMod {
                                command: FlowModCommand::Delete,
                                priority: 100,
                                matcher: FlowMatch::dst_host(HostId(2)),
                                actions: vec![],
                                cookie: 0,
                            }),
                        ),
                    ],
                    pre_delay: SimDuration::ZERO,
                },
                CompiledRound {
                    msgs: vec![],
                    pre_delay: SimDuration::from_millis(5),
                },
            ],
        }
    }

    fn all_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Baseline {
                dp: DpId(1),
                frame: codec::encode(&Envelope::new(
                    Xid(0),
                    OfMessage::FlowMod(FlowMod {
                        command: FlowModCommand::Add,
                        priority: 100,
                        matcher: FlowMatch::dst_host(HostId(9)),
                        actions: vec![Action::Output(PortNo(2))],
                        cookie: 1,
                    }),
                ))
                .to_vec(),
            },
            JournalRecord::Admitted {
                id: JobId(1),
                update: update(),
                priority: Priority::High,
                tenant: TenantId(4),
                deadline: Some(SimTime(90)),
                at: SimTime(10),
            },
            JournalRecord::Started {
                id: JobId(1),
                at: SimTime(20),
            },
            JournalRecord::RoundCommitted {
                id: JobId(1),
                round: 0,
                at: SimTime(30),
            },
            JournalRecord::Completed {
                id: JobId(1),
                at: SimTime(40),
            },
            JournalRecord::Failed {
                id: JobId(2),
                at: SimTime(50),
            },
            JournalRecord::Shed {
                id: JobId(3),
                at: SimTime(60),
            },
            JournalRecord::MigrateBegin {
                dp: DpId(7),
                from: 1,
                to: 2,
                at: SimTime(70),
            },
            JournalRecord::MigrateCommitted {
                dp: DpId(7),
                from: 1,
                to: 2,
                at: SimTime(80),
            },
            JournalRecord::MigrateAborted {
                dp: DpId(9),
                at: SimTime(90),
            },
        ]
    }

    #[test]
    fn every_record_survives_a_text_round_trip() {
        for rec in all_records() {
            let line = serialize(&rec);
            assert_eq!(parse(&line).as_ref(), Some(&rec), "line: {line}");
        }
    }

    #[test]
    fn mem_journal_returns_records_in_order() {
        let mut j = Journal::mem();
        for rec in all_records() {
            j.append(&rec);
        }
        assert_eq!(j.records(), all_records());
        assert_eq!(j.len(), all_records().len());
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let mut j = Journal::default();
        assert!(!j.is_enabled());
        j.append(&all_records()[0]);
        assert!(j.is_empty());
        assert!(j.records().is_empty());
    }

    #[test]
    fn file_journal_survives_reopen_and_ignores_torn_tail() {
        let dir = std::env::temp_dir().join(format!("sdn-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::file(&path);
            for rec in all_records() {
                j.append(&rec);
            }
            assert_eq!(j.len(), all_records().len());
        }
        // simulate a crash mid-append: a torn half-line at the tail
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "admitted id=9 at=").unwrap();
        }
        let j2 = Journal::file(&path);
        assert_eq!(j2.records(), all_records(), "torn tail dropped, log kept");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_rounds_and_empty_updates_serialize() {
        let rec = JournalRecord::Admitted {
            id: JobId(3),
            update: CompiledUpdate {
                label: String::new(),
                rounds: vec![],
            },
            priority: Priority::Normal,
            tenant: TenantId(0),
            deadline: None,
            at: SimTime(0),
        };
        let line = serialize(&rec);
        assert_eq!(parse(&line), Some(rec));
    }

    #[test]
    fn pre_fabric_admitted_lines_still_parse() {
        // a PR 7 log has no tenant/deadline tokens; recovery must read
        // it as the default tenant with no deadline
        let line = "admitted id=5 at=12 prio=normal label=61 rounds=";
        let rec = parse(line).expect("legacy line parses");
        let JournalRecord::Admitted {
            id,
            tenant,
            deadline,
            ..
        } = rec
        else {
            panic!("wrong kind");
        };
        assert_eq!(id, JobId(5));
        assert_eq!(tenant, TenantId(0));
        assert_eq!(deadline, None);
    }
}
