//! The redesigned submission surface: one request, one ticket.
//!
//! The runtime API accreted piecemeal — `submit(update, now, priority)`
//! here, tenant and deadline concerns nowhere, and every new dimension
//! threatening another positional parameter. [`SubmitRequest`] folds
//! the whole submission intent into one builder-style value; the
//! runtime answers with a [`SubmitTicket`] (accepted) or a typed
//! [`SubmitError`] (refused), so callers match on *why* instead of
//! decoding status-code-shaped enums.
//!
//! Tenancy is a first-class field: a [`TenantId`] rides the request
//! through admission, where per-tenant in-flight budgets are enforced
//! (surfaced as HTTP 429 by the REST layer), and into the fabric's
//! status accounting.

use std::fmt;

use sdn_types::SimTime;

use crate::compile::CompiledUpdate;
use crate::runtime::admission::Priority;
use crate::runtime::conflict::JobId;

/// A tenant: the isolation unit for admission quotas. Tenant `0` is
/// the default for callers that predate multi-tenancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Everything a caller says when offering an update: the compiled
/// update plus tenant, priority lane, and an optional deadline.
/// Built fluently:
///
/// ```ignore
/// let req = SubmitRequest::new(update)
///     .tenant(TenantId(3))
///     .high_priority()
///     .deadline(now + SimDuration::from_secs(5));
/// ```
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// The compiled update to execute.
    pub update: CompiledUpdate,
    /// The submitting tenant (budget accounting).
    pub tenant: TenantId,
    /// Admission lane.
    pub priority: Priority,
    /// Latest useful launch time. A job still waiting past this
    /// instant fails with
    /// [`FailReason::DeadlineExpired`](crate::controller::FailReason)
    /// instead of dispatching stale intent.
    pub deadline: Option<SimTime>,
}

impl SubmitRequest {
    /// A request with default tenant, normal priority, no deadline.
    pub fn new(update: CompiledUpdate) -> Self {
        SubmitRequest {
            update,
            tenant: TenantId::default(),
            priority: Priority::default(),
            deadline: None,
        }
    }

    /// Attribute the request to `tenant`.
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Select an admission lane.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Shortcut for the high-priority lane.
    pub fn high_priority(self) -> Self {
        self.priority(Priority::High)
    }

    /// Set the latest useful launch time.
    pub fn deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Proof of admission: the job's identity and where it landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitTicket {
    /// The id the runtime will report completion under.
    pub job: JobId,
    /// The shard that owns the job, when a fabric routed it;
    /// `None` for single-runtime controllers and for cross-shard
    /// jobs (which the coordinator owns).
    pub shard: Option<u32>,
    /// Queue depth observed right after admission (the caller's
    /// congestion signal).
    pub queued: usize,
    /// The job shed to make room, under the drop-oldest policy.
    pub displaced: Option<(JobId, String)>,
    /// Whether the update spans shards and runs under the fabric's
    /// two-phase protocol.
    pub cross_shard: bool,
}

impl SubmitTicket {
    /// A ticket for a single-runtime admission.
    pub fn local(job: JobId, queued: usize) -> Self {
        SubmitTicket {
            job,
            shard: None,
            queued,
            displaced: None,
            cross_shard: false,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity; retrying later is sound.
    QueueFull,
    /// The tenant's in-flight budget is spent (HTTP 429 upstream).
    QuotaExceeded {
        /// The over-budget tenant.
        tenant: TenantId,
        /// Its configured budget.
        limit: u32,
        /// Jobs it already has queued or executing.
        in_flight: u32,
    },
    /// The deadline had already passed at submission time.
    DeadlineExpired,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("queue full"),
            SubmitError::QuotaExceeded {
                tenant,
                limit,
                in_flight,
            } => write!(f, "{tenant} over quota ({in_flight}/{limit} in flight)"),
            SubmitError::DeadlineExpired => f.write_str("deadline already expired"),
        }
    }
}

/// What a submission comes back as.
pub type SubmitOutcome = Result<SubmitTicket, SubmitError>;

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_types::SimDuration;

    fn update() -> CompiledUpdate {
        CompiledUpdate {
            label: "u".into(),
            rounds: vec![],
        }
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let r = SubmitRequest::new(update());
        assert_eq!(r.tenant, TenantId(0));
        assert_eq!(r.priority, Priority::Normal);
        assert_eq!(r.deadline, None);
        let d = SimTime(0) + SimDuration::from_secs(1);
        let r = SubmitRequest::new(update())
            .tenant(TenantId(7))
            .high_priority()
            .deadline(d);
        assert_eq!(r.tenant, TenantId(7));
        assert_eq!(r.priority, Priority::High);
        assert_eq!(r.deadline, Some(d));
    }

    #[test]
    fn errors_render_for_operators() {
        let e = SubmitError::QuotaExceeded {
            tenant: TenantId(3),
            limit: 2,
            in_flight: 2,
        };
        assert_eq!(e.to_string(), "tenant3 over quota (2/2 in flight)");
        assert_eq!(SubmitError::QueueFull.to_string(), "queue full");
    }
}
