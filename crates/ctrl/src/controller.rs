//! The controller: a queue of update jobs processed one at a time.
//!
//! From the paper: *"create a message queue at the SDN controller side
//! to enqueue the REST messages in a message queue for each round of
//! network update... If the SDN controller starts to process a message,
//! it begins with the first round... If the message object does not
//! have a next round, the SDN controller deletes the message from the
//! queue and starts processing the next message."*

use std::collections::VecDeque;

use sdn_openflow::messages::Envelope;
use sdn_types::{DpId, SimDuration, SimTime};

use crate::compile::CompiledUpdate;
use crate::executor::{ExecConfig, ExecState, RoundExecutor, RoundTiming, XidAlloc};
use crate::runtime::submit::{SubmitOutcome, SubmitRequest, SubmitTicket};
use crate::runtime::{JobId, Priority, RuntimeHandle, RuntimeStats};

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControllerConfig {
    /// Round executor tuning.
    pub exec: ExecConfig,
}

/// A command the controller wants carried out by the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlOutput {
    /// Send a message to a switch.
    Send(DpId, Envelope),
}

/// Why an update failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// A switch exhausted its transmission budget; the culprit, when
    /// the runtime tracked one (the serial controller does not).
    Exhausted(Option<DpId>),
    /// The update touched a quarantined switch — refused (or aborted)
    /// rather than burning a retransmission budget against a switch
    /// already known dead.
    Quarantined(DpId),
    /// The submission's deadline passed before the job could launch;
    /// dispatching a stale intent would churn the network for nothing.
    DeadlineExpired,
}

/// Completion record of one update job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReport {
    /// Job label.
    pub label: String,
    /// When the job was submitted (queue wait = `started - submitted`).
    pub submitted: SimTime,
    /// When the first round was dispatched.
    pub started: SimTime,
    /// When the last barrier reply arrived (`None` = failed).
    pub completed: Option<SimTime>,
    /// Why the job failed; `None` for completed jobs (and for jobs
    /// recovered from a journal, which does not persist reasons).
    pub failure: Option<FailReason>,
    /// Per-round timings.
    pub rounds: Vec<RoundTiming>,
}

impl UpdateReport {
    /// Total update time (dispatch of round 1 → last barrier reply).
    pub fn duration(&self) -> Option<SimDuration> {
        self.completed.map(|c| c.saturating_since(self.started))
    }

    /// End-to-end latency including queueing (submission → last
    /// barrier reply) — the number concurrency experiments report.
    pub fn latency(&self) -> Option<SimDuration> {
        self.completed.map(|c| c.saturating_since(self.submitted))
    }
}

/// The controller.
#[derive(Debug, Clone)]
pub struct Controller {
    config: ControllerConfig,
    queue: VecDeque<(CompiledUpdate, SimTime)>,
    active: Option<(RoundExecutor, SimTime, SimTime)>,
    xids: XidAlloc,
    reports: Vec<UpdateReport>,
    stats: RuntimeStats,
}

impl Controller {
    /// A controller with the given configuration.
    pub fn new(config: ControllerConfig) -> Self {
        Controller {
            config,
            queue: VecDeque::new(),
            active: None,
            xids: XidAlloc::new(),
            reports: Vec::new(),
            stats: RuntimeStats::default(),
        }
    }

    /// Enqueue an update job (submission time unknown: reported as the
    /// simulation epoch). Prefer [`RuntimeHandle::submit`].
    pub fn enqueue(&mut self, update: CompiledUpdate) {
        let _ = self.submit(update, SimTime::ZERO, Priority::Normal);
    }

    /// Jobs waiting behind the active one.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Whether no job is active and the queue is empty.
    pub fn is_idle(&self) -> bool {
        self.active.is_none() && self.queue.is_empty()
    }

    /// Completed (or failed) job reports.
    pub fn reports(&self) -> &[UpdateReport] {
        &self.reports
    }

    /// Access to the active executor (diagnostics).
    pub fn active_executor(&self) -> Option<&RoundExecutor> {
        self.active.as_ref().map(|(e, _, _)| e)
    }

    /// Drive the controller: start the next job when idle, enforce
    /// timeouts on the active one. Call regularly (each simulator step
    /// or timer tick).
    pub fn poll(&mut self, now: SimTime) -> Vec<CtrlOutput> {
        let mut out = Vec::new();
        // finish bookkeeping of a completed/failed job
        self.reap(now);
        if self.active.is_none() {
            if let Some((update, submitted)) = self.queue.pop_front() {
                let mut ex = RoundExecutor::new(update, self.config.exec);
                for (dp, env) in ex.start(now, &mut self.xids) {
                    out.push(CtrlOutput::Send(dp, env));
                }
                self.active = Some((ex, now, submitted));
                self.stats.peak_active = self.stats.peak_active.max(1);
                // an empty update may complete instantly
                self.reap(now);
            }
        } else if let Some((ex, _, _)) = &mut self.active {
            for (dp, env) in ex.on_tick(now, &mut self.xids) {
                out.push(CtrlOutput::Send(dp, env));
            }
            self.reap(now);
        }
        out
    }

    /// Feed a message arriving from a switch.
    pub fn on_message(&mut self, now: SimTime, from: DpId, env: &Envelope) -> Vec<CtrlOutput> {
        let mut out = Vec::new();
        if let Some((ex, _, _)) = &mut self.active {
            for (dp, e) in ex.on_message(now, from, env, &mut self.xids) {
                out.push(CtrlOutput::Send(dp, e));
            }
        }
        self.reap(now);
        out
    }

    fn reap(&mut self, now: SimTime) {
        let done = matches!(
            self.active.as_ref().map(|(e, _, _)| e.state()),
            Some(ExecState::Done | ExecState::Failed)
        );
        if done {
            let (ex, started, submitted) = self.active.take().expect("checked");
            let completed = match ex.state() {
                ExecState::Done => {
                    self.stats.completed += 1;
                    Some(ex.timings().last().and_then(|t| t.completed).unwrap_or(now))
                }
                _ => {
                    self.stats.failed += 1;
                    None
                }
            };
            // same unit as the concurrent runtime: one per resent
            // per-switch barrier
            self.stats.retransmissions += ex.retransmissions();
            self.reports.push(UpdateReport {
                label: ex.label().to_string(),
                submitted,
                started,
                failure: completed.is_none().then_some(FailReason::Exhausted(None)),
                completed,
                rounds: ex.timings().to_vec(),
            });
        }
    }
}

impl RuntimeHandle for Controller {
    /// The serial controller accepts everything: the unbounded queue
    /// is exactly the paper's behaviour, kept as the baseline the
    /// bounded runtime is measured against. Tenant and deadline are
    /// ignored — the baseline predates both.
    fn submit_request(&mut self, req: SubmitRequest, now: SimTime) -> SubmitOutcome {
        self.stats.submitted += 1;
        self.stats.accepted += 1;
        let id = JobId(self.stats.submitted);
        self.queue.push_back((req.update, now));
        Ok(SubmitTicket::local(id, self.queue.len()))
    }

    fn poll(&mut self, now: SimTime) -> Vec<CtrlOutput> {
        Controller::poll(self, now)
    }

    fn on_message(&mut self, now: SimTime, from: DpId, env: &Envelope) -> Vec<CtrlOutput> {
        Controller::on_message(self, now, from, env)
    }

    fn is_idle(&self) -> bool {
        Controller::is_idle(self)
    }

    fn reports(&self) -> &[UpdateReport] {
        Controller::reports(self)
    }

    fn queued(&self) -> usize {
        Controller::queued(self)
    }

    fn active_count(&self) -> usize {
        usize::from(self.active.is_some())
    }

    fn stats(&self) -> RuntimeStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_openflow::flow::FlowMatch;
    use sdn_openflow::messages::{FlowMod, FlowModCommand, OfMessage};
    use sdn_types::HostId;

    fn flowmod() -> OfMessage {
        OfMessage::FlowMod(FlowMod {
            command: FlowModCommand::Add,
            priority: 100,
            matcher: FlowMatch::dst_host(HostId(2)),
            actions: vec![],
            cookie: 0,
        })
    }

    fn job(label: &str, rounds: Vec<Vec<u64>>) -> CompiledUpdate {
        CompiledUpdate {
            label: label.into(),
            rounds: rounds
                .into_iter()
                .map(|dps| crate::compile::CompiledRound {
                    msgs: dps.into_iter().map(|d| (DpId(d), flowmod())).collect(),
                    pre_delay: sdn_types::SimDuration::ZERO,
                })
                .collect(),
        }
    }

    fn ack_all(ctrl: &mut Controller, now: SimTime, cmds: &[CtrlOutput]) -> Vec<CtrlOutput> {
        let mut follow = Vec::new();
        for c in cmds {
            let CtrlOutput::Send(dp, env) = c;
            if env.msg == OfMessage::BarrierRequest {
                follow.extend(ctrl.on_message(
                    now,
                    *dp,
                    &Envelope::new(env.xid, OfMessage::BarrierReply),
                ));
            }
        }
        follow
    }

    #[test]
    fn queue_processed_in_order() {
        let mut ctrl = Controller::new(ControllerConfig::default());
        ctrl.enqueue(job("first", vec![vec![1]]));
        ctrl.enqueue(job("second", vec![vec![2]]));
        assert_eq!(ctrl.queued(), 2);

        let cmds = ctrl.poll(SimTime(0));
        assert!(!cmds.is_empty());
        assert_eq!(ctrl.queued(), 1);
        // finish job 1
        let follow = ack_all(&mut ctrl, SimTime(1), &cmds);
        assert!(follow.is_empty());
        assert_eq!(ctrl.reports().len(), 1);
        assert_eq!(ctrl.reports()[0].label, "first");

        // poll starts job 2
        let cmds2 = ctrl.poll(SimTime(2));
        assert!(!cmds2.is_empty());
        ack_all(&mut ctrl, SimTime(3), &cmds2);
        assert_eq!(ctrl.reports().len(), 2);
        assert!(ctrl.is_idle());
    }

    #[test]
    fn multi_round_jobs_chain_rounds() {
        let mut ctrl = Controller::new(ControllerConfig::default());
        ctrl.enqueue(job("j", vec![vec![1], vec![2], vec![3]]));
        let mut cmds = ctrl.poll(SimTime(0));
        let mut hops = 0;
        while !cmds.is_empty() && hops < 5 {
            cmds = ack_all(&mut ctrl, SimTime(hops + 1), &cmds);
            hops += 1;
        }
        assert_eq!(ctrl.reports().len(), 1);
        let r = &ctrl.reports()[0];
        assert_eq!(r.rounds.len(), 3);
        assert!(r.duration().is_some());
    }

    #[test]
    fn failed_job_reports_none_completed() {
        let cfg = ControllerConfig {
            exec: ExecConfig {
                barrier_timeout: SimDuration::from_millis(1),
                max_attempts: 1,
                flowmod_acks: false,
            },
        };
        let mut ctrl = Controller::new(cfg);
        ctrl.enqueue(job("doomed", vec![vec![1]]));
        ctrl.poll(SimTime(0));
        // no replies ever; tick past the deadline
        ctrl.poll(SimTime(0) + SimDuration::from_millis(10));
        assert_eq!(ctrl.reports().len(), 1);
        assert_eq!(ctrl.reports()[0].completed, None);
        assert!(ctrl.is_idle());
    }

    #[test]
    fn empty_job_completes_without_traffic() {
        let mut ctrl = Controller::new(ControllerConfig::default());
        ctrl.enqueue(job("noop", vec![]));
        let cmds = ctrl.poll(SimTime(7));
        assert!(cmds.is_empty());
        assert_eq!(ctrl.reports().len(), 1);
        assert_eq!(ctrl.reports()[0].completed, Some(SimTime(7)));
    }

    #[test]
    fn messages_while_idle_are_ignored() {
        let mut ctrl = Controller::new(ControllerConfig::default());
        let out = ctrl.on_message(
            SimTime(0),
            DpId(1),
            &Envelope::new(sdn_types::Xid(5), OfMessage::BarrierReply),
        );
        assert!(out.is_empty());
    }
}
