//! Compile abstract schedules into concrete FlowMods.
//!
//! The scheduling layer speaks in switches and rule swaps; the data
//! plane speaks in matches, priorities and ports. This module bridges
//! them for one unidirectional flow (the demo's h1 → h2):
//!
//! | rule                    | priority | match                  | actions                   |
//! |-------------------------|----------|------------------------|----------------------------|
//! | baseline routing        | 100      | dst = h2               | output(next hop)           |
//! | two-phase tagged        | 200      | dst = h2, tag = NEW    | output(new next hop)       |
//! | two-phase ingress flip  | 300      | dst = h2               | set-tag(NEW), output(new)  |
//!
//! `Activate` replaces the baseline rule in place (same match +
//! priority ⇒ OpenFlow Add-replace, atomic per switch); `RemoveOld`
//! deletes it; tagged rules sit at higher priority so flipping the
//! ingress atomically moves the whole path, per Reitblatt. Tagged
//! packets reaching the destination match its baseline rule (tag
//! wildcard) and are delivered still tagged; hosts ignore tags.

use std::fmt;

use sdn_openflow::flow::{Action, FlowMatch};
use sdn_openflow::messages::{FlowMod, FlowModCommand, OfMessage};
use sdn_topo::algo::route_latency;
use sdn_topo::graph::Topology;
use sdn_topo::route::RoutePath;
use sdn_types::{DpId, HostId, PortNo, SimDuration, VersionTag};
use update_core::model::UpdateInstance;
use update_core::schedule::{RuleOp, Schedule};

/// Priority of baseline routing rules.
pub const BASE_PRIORITY: u16 = 100;
/// Priority of NEW-tagged rules (two-phase commit).
pub const TAGGED_PRIORITY: u16 = 200;
/// Priority of the ingress flip rule.
pub const FLIP_PRIORITY: u16 = 300;

/// Cookie marking baseline (old-generation) rules.
pub const OLD_COOKIE: u64 = 0x1;
/// Cookie marking replacement (new-generation) rules.
pub const NEW_COOKIE: u64 = 0x2;
/// Cookie marking two-phase tagged rules.
pub const TAG_COOKIE: u64 = 0x3;
/// Cookie marking the ingress flip rule.
pub const FLIP_COOKIE: u64 = 0x4;

/// The flow being updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source host (h1 in the demo).
    pub src: HostId,
    /// Destination host (h2 in the demo).
    pub dst: HostId,
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Two consecutive route switches are not linked.
    MissingLink(DpId, DpId),
    /// The destination host is not attached where the route ends.
    BadHostAttachment(HostId, DpId),
    /// The host does not exist in the topology.
    UnknownHost(HostId),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::MissingLink(a, b) => write!(f, "no link {a} -> {b}"),
            CompileError::BadHostAttachment(h, dp) => {
                write!(f, "host {h} is not attached to {dp}")
            }
            CompileError::UnknownHost(h) => write!(f, "unknown host {h}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// One lowered round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledRound {
    /// The messages for each switch (a switch may receive several).
    pub msgs: Vec<(DpId, OfMessage)>,
    /// Grace period the executor must wait *before* dispatching this
    /// round. Non-zero on rule-removing (cleanup) rounds: packets that
    /// entered the network before the previous round completed may
    /// still be traversing the old rules, and deleting those rules
    /// under them would blackhole traffic the static analysis already
    /// proved safe. Reitblatt-style garbage collection.
    pub pre_delay: SimDuration,
}

/// A schedule lowered to per-round FlowMods.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledUpdate {
    /// Human-readable label (algorithm + instance).
    pub label: String,
    /// The rounds.
    pub rounds: Vec<CompiledRound>,
}

impl CompiledUpdate {
    /// Number of rounds.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Total FlowMods.
    pub fn message_count(&self) -> usize {
        self.rounds.iter().map(|r| r.msgs.len()).sum()
    }
}

/// Drain grace before cleanup rounds: several end-to-end traversals of
/// either route, plus slack. Adapts to the topology's latency scale.
pub fn cleanup_grace(topo: &Topology, inst: &UpdateInstance) -> SimDuration {
    let old = route_latency(topo, inst.old()).unwrap_or(SimDuration::from_millis(5));
    let new = route_latency(topo, inst.new_route()).unwrap_or(SimDuration::from_millis(5));
    (old + new).saturating_mul(8) + SimDuration::from_millis(10)
}

fn egress(topo: &Topology, from: DpId, to: DpId) -> Result<PortNo, CompileError> {
    topo.egress_port(from, to)
        .ok_or(CompileError::MissingLink(from, to))
}

fn host_port(topo: &Topology, host: HostId, at: DpId) -> Result<PortNo, CompileError> {
    let h = topo.host(host).ok_or(CompileError::UnknownHost(host))?;
    if h.attached_to != at {
        return Err(CompileError::BadHostAttachment(host, at));
    }
    Ok(h.port)
}

fn out_port_for(
    topo: &Topology,
    route: &RoutePath,
    v: DpId,
    spec: &FlowSpec,
) -> Result<PortNo, CompileError> {
    match route.next_hop(v) {
        Some(next) => egress(topo, v, next),
        None => host_port(topo, spec.dst, v), // v is the egress switch
    }
}

fn add_rule(priority: u16, matcher: FlowMatch, out: PortNo, cookie: u64) -> OfMessage {
    OfMessage::FlowMod(FlowMod {
        command: FlowModCommand::Add,
        priority,
        matcher,
        actions: vec![Action::Output(out)],
        cookie,
    })
}

/// The baseline configuration: one routing rule per old-route switch,
/// delivering to the destination host at the egress. Installed before
/// the experiment starts.
pub fn initial_flowmods(
    topo: &Topology,
    old_route: &RoutePath,
    spec: &FlowSpec,
) -> Result<Vec<(DpId, OfMessage)>, CompileError> {
    let matcher = FlowMatch::dst_host(spec.dst);
    let mut out = Vec::new();
    for &v in old_route.hops() {
        let port = out_port_for(topo, old_route, v, spec)?;
        out.push((v, add_rule(BASE_PRIORITY, matcher, port, OLD_COOKIE)));
    }
    Ok(out)
}

/// Lower one rule operation.
fn compile_op(
    topo: &Topology,
    inst: &UpdateInstance,
    spec: &FlowSpec,
    op: &RuleOp,
) -> Result<(DpId, OfMessage), CompileError> {
    let matcher = FlowMatch::dst_host(spec.dst);
    match op {
        RuleOp::Activate(v) => {
            let next = inst
                .new_next(*v)
                .expect("validated: activate only on switches with a new rule");
            let port = egress(topo, *v, next)?;
            Ok((*v, add_rule(BASE_PRIORITY, matcher, port, NEW_COOKIE)))
        }
        RuleOp::RemoveOld(v) => Ok((
            *v,
            OfMessage::FlowMod(FlowMod {
                command: FlowModCommand::Delete,
                priority: BASE_PRIORITY,
                matcher,
                actions: vec![],
                cookie: 0,
            }),
        )),
        RuleOp::InstallTagged(v) => {
            let next = inst
                .new_next(*v)
                .expect("validated: tagged install on new-route switches");
            let port = egress(topo, *v, next)?;
            Ok((
                *v,
                add_rule(
                    TAGGED_PRIORITY,
                    FlowMatch::dst_host_tagged(spec.dst, VersionTag::NEW),
                    port,
                    TAG_COOKIE,
                ),
            ))
        }
        RuleOp::FlipIngress => {
            let src = inst.src();
            let next = inst
                .new_next(src)
                .expect("source always has a new rule on a non-trivial route");
            let port = egress(topo, src, next)?;
            Ok((
                src,
                OfMessage::FlowMod(FlowMod {
                    command: FlowModCommand::Add,
                    priority: FLIP_PRIORITY,
                    matcher,
                    actions: vec![Action::SetTag(VersionTag::NEW), Action::Output(port)],
                    cookie: FLIP_COOKIE,
                }),
            ))
        }
    }
}

/// Lower a full schedule. Rule-removing rounds get a drain grace
/// period (see [`cleanup_grace`]).
pub fn compile_schedule(
    topo: &Topology,
    inst: &UpdateInstance,
    schedule: &Schedule,
    spec: &FlowSpec,
) -> Result<CompiledUpdate, CompileError> {
    let grace = cleanup_grace(topo, inst);
    let mut rounds = Vec::with_capacity(schedule.rounds.len());
    for round in &schedule.rounds {
        let mut msgs = Vec::with_capacity(round.ops.len());
        let mut removes = false;
        for op in &round.ops {
            removes |= matches!(op, RuleOp::RemoveOld(_));
            msgs.push(compile_op(topo, inst, spec, op)?);
        }
        rounds.push(CompiledRound {
            msgs,
            pre_delay: if removes { grace } else { SimDuration::ZERO },
        });
    }
    Ok(CompiledUpdate {
        label: format!("{} ({})", schedule.algorithm, inst),
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_topo::builders::figure1;
    use update_core::algorithms::{TwoPhaseCommit, UpdateScheduler, WayUp};

    fn setup() -> (sdn_topo::Figure1, UpdateInstance, FlowSpec) {
        let f = figure1();
        let inst = UpdateInstance::new(f.old_route.clone(), f.new_route.clone(), Some(f.waypoint))
            .unwrap();
        let spec = FlowSpec {
            src: f.h1,
            dst: f.h2,
        };
        (f, inst, spec)
    }

    #[test]
    fn initial_rules_cover_old_route() {
        let (f, _inst, spec) = setup();
        let mods = initial_flowmods(&f.topo, &f.old_route, &spec).unwrap();
        assert_eq!(mods.len(), f.old_route.len());
        // egress switch outputs toward the host port
        let (dp, msg) = mods.last().unwrap();
        assert_eq!(*dp, DpId(12));
        let OfMessage::FlowMod(fm) = msg else {
            panic!()
        };
        let host_port = f.topo.host(f.h2).unwrap().port;
        assert_eq!(fm.actions, vec![Action::Output(host_port)]);
    }

    #[test]
    fn wayup_schedule_compiles() {
        let (f, inst, spec) = setup();
        let s = WayUp::default().schedule(&inst).unwrap();
        let c = compile_schedule(&f.topo, &inst, &s, &spec).unwrap();
        assert_eq!(c.round_count(), s.round_count());
        assert_eq!(c.message_count(), s.op_count());
        assert!(c.label.contains("wayup"));
    }

    #[test]
    fn activate_points_to_new_next_hop() {
        let (f, inst, spec) = setup();
        let (dp, msg) = compile_op(&f.topo, &inst, &spec, &RuleOp::Activate(DpId(1))).unwrap();
        assert_eq!(dp, DpId(1));
        let OfMessage::FlowMod(fm) = msg else {
            panic!()
        };
        assert_eq!(fm.command, FlowModCommand::Add);
        assert_eq!(fm.priority, BASE_PRIORITY);
        // s1's new next hop is s7
        let expect = f.topo.egress_port(DpId(1), DpId(7)).unwrap();
        assert_eq!(fm.actions, vec![Action::Output(expect)]);
    }

    #[test]
    fn remove_old_is_a_delete() {
        let (f, inst, spec) = setup();
        let (_, msg) = compile_op(&f.topo, &inst, &spec, &RuleOp::RemoveOld(DpId(2))).unwrap();
        let OfMessage::FlowMod(fm) = msg else {
            panic!()
        };
        assert_eq!(fm.command, FlowModCommand::Delete);
        assert_eq!(fm.priority, BASE_PRIORITY);
    }

    #[test]
    fn two_phase_compiles_tagged_rules() {
        let (f, inst, spec) = setup();
        let s = TwoPhaseCommit.schedule(&inst).unwrap();
        let c = compile_schedule(&f.topo, &inst, &s, &spec).unwrap();
        // round 1: tagged installs at new-route interior switches
        for (_, msg) in &c.rounds[0].msgs {
            let OfMessage::FlowMod(fm) = msg else {
                panic!()
            };
            assert_eq!(fm.priority, TAGGED_PRIORITY);
            assert_eq!(fm.matcher.tag, Some(VersionTag::NEW));
        }
        // round 2: the flip at the source
        let (dp, msg) = &c.rounds[1].msgs[0];
        assert_eq!(*dp, DpId(1));
        let OfMessage::FlowMod(fm) = msg else {
            panic!()
        };
        assert_eq!(fm.priority, FLIP_PRIORITY);
        assert_eq!(fm.actions[0], Action::SetTag(VersionTag::NEW));
    }

    #[test]
    fn missing_link_is_reported() {
        let (f, _inst, spec) = setup();
        // a bogus route using a non-adjacent hop
        let bogus = RoutePath::from_raw(&[1, 12]).unwrap();
        let err = initial_flowmods(&f.topo, &bogus, &spec).unwrap_err();
        assert_eq!(err, CompileError::MissingLink(DpId(1), DpId(12)));
    }

    #[test]
    fn unknown_host_is_reported() {
        let (f, _inst, _spec) = setup();
        let bad_spec = FlowSpec {
            src: HostId(1),
            dst: HostId(99),
        };
        let err = initial_flowmods(&f.topo, &f.old_route, &bad_spec).unwrap_err();
        assert_eq!(err, CompileError::UnknownHost(HostId(99)));
    }
}
