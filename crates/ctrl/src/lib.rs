//! # sdn-ctrl
//!
//! The SDN controller of the reproduction — the Rust counterpart of the
//! demo's Ryu app `ofctl_rest_own.py` (§2 of the paper):
//!
//! * [`rest`] — the demo's REST/JSON update-request format
//!   (`"oldpath"`, `"newpath"`, `"wp"`, `"interval"`), parsed by a
//!   small hand-rolled JSON parser (no external JSON dependency);
//! * [`compile`] — turns an abstract round [`Schedule`] into concrete
//!   per-round FlowMods against a topology (ports, priorities,
//!   version-tag rules for two-phase commit);
//! * [`executor`] — the round state machine: dispatch the FlowMods of
//!   the current round, send barrier requests, collect barrier
//!   replies, advance; resend on timeout so lossy channels still
//!   converge ("the barrier messages are utilized to ensure reliable
//!   network updates");
//! * [`controller`] — the message queue of update jobs, processed one
//!   at a time exactly as the paper describes;
//! * [`runtime`] — the concurrent multi-update runtime: conflict-aware
//!   admission over a bounded queue, many executors in flight at once,
//!   per-switch adaptive retransmission (EWMA RTT + variance), and a
//!   write-ahead journal for crash recovery; its [`runtime::fabric`]
//!   submodule shards switches across runtimes behind one
//!   [`FabricCoordinator`] with a two-phase protocol for cross-shard
//!   updates and per-tenant admission quotas;
//! * [`resync`] — controller-side switch resynchronization: shadow
//!   flow tables plus the digest-probe audit that replays exactly the
//!   rules a reconnected switch is missing.
//!
//! [`Schedule`]: update_core::schedule::Schedule

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod controller;
pub mod executor;
pub mod handshake;
pub mod rest;
pub mod resync;
pub mod runtime;

pub use compile::{compile_schedule, initial_flowmods, CompiledUpdate, FlowSpec};
pub use controller::{Controller, ControllerConfig, CtrlOutput, FailReason, UpdateReport};
pub use executor::{ExecState, RoundExecutor};
pub use handshake::Handshake;
pub use rest::request::UpdateRequest;
pub use resync::ResyncManager;
pub use runtime::{
    AdmissionPolicy, AdmitOutcome, ConcurrentRuntime, FabricConfig, FabricCoordinator, Footprint,
    Journal, MigrateError, Priority, RetransMode, RuntimeConfig, RuntimeHandle, RuntimeStats,
    ShardId, SubmitError, SubmitOutcome, SubmitRequest, SubmitTicket, SwitchSeat, TenantId,
};
