//! `GET /status`: live runtime introspection over REST.
//!
//! The demo's Ryu app had no observability beyond its logs; operators
//! of a bounded, concurrent controller need to see backpressure and
//! retransmission health *before* updates start failing. This module
//! renders a [`StatusReport`] — admission-queue depth, active jobs,
//! outstanding payload acks, aggregate counters, and the per-switch
//! adaptive-RTO table with straggler flags — as a `200 OK` JSON body
//! in the same dialect the rest of the REST layer speaks:
//!
//! ```json
//! {
//!   "status": "ok",
//!   "queued": 3, "active": 2, "pending_acks": 5,
//!   "stats": {"submitted": 9, "completed": 4, ...},
//!   "switches": [
//!     {"dp": 1, "srtt_us": 840.0, "rto_us": 2400.0, "straggler": false},
//!     {"dp": 7, "rto_us": 100000.0, "straggler": true}
//!   ]
//! }
//! ```
//!
//! `srtt_us` is omitted (not `null`) for switches without a sample
//! yet, so clients can distinguish "never measured" from "measured
//! zero".

use std::collections::BTreeMap;

use crate::rest::json::Json;
use crate::rest::response::Response;
use crate::runtime::{StatusReport, SwitchStatus};

fn duration_us(d: sdn_types::SimDuration) -> Json {
    Json::Num(d.as_nanos() as f64 / 1_000.0)
}

fn switch_json(s: &SwitchStatus) -> Json {
    let mut m = BTreeMap::new();
    m.insert("dp".to_string(), Json::Num(s.dp.0 as f64));
    if let Some(srtt) = s.srtt {
        m.insert("srtt_us".to_string(), duration_us(srtt));
    }
    m.insert("rto_us".to_string(), duration_us(s.rto));
    m.insert("straggler".to_string(), Json::Bool(s.straggler));
    Json::Obj(m)
}

/// The `200 OK` response for `GET /status`.
pub fn status_response(report: &StatusReport) -> Response {
    let stats = &report.stats;
    let counters: BTreeMap<String, Json> = [
        ("submitted", stats.submitted),
        ("accepted", stats.accepted),
        ("rejected", stats.rejected),
        ("displaced", stats.displaced),
        ("completed", stats.completed),
        ("failed", stats.failed),
        ("retransmissions", stats.retransmissions),
        ("stragglers", stats.stragglers),
        ("peak_active", stats.peak_active),
        ("reconnects", stats.reconnects),
        ("resyncs", stats.resyncs),
        ("resynced_rules", stats.resynced_rules),
        ("quarantined", stats.quarantined),
        ("recoveries", stats.recoveries),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), Json::Num(v as f64)))
    .collect();
    let body: BTreeMap<String, Json> = [
        ("status".to_string(), Json::Str("ok".into())),
        ("queued".to_string(), Json::Num(report.queued as f64)),
        ("active".to_string(), Json::Num(report.active as f64)),
        (
            "pending_acks".to_string(),
            Json::Num(report.pending_acks as f64),
        ),
        ("stats".to_string(), Json::Obj(counters)),
        (
            "switches".to_string(),
            Json::Arr(report.switches.iter().map(switch_json).collect()),
        ),
        (
            "journal_len".to_string(),
            Json::Num(report.journal_len as f64),
        ),
        (
            "quarantined".to_string(),
            Json::Arr(
                report
                    .quarantined
                    .iter()
                    .map(|dp| Json::Num(dp.0 as f64))
                    .collect(),
            ),
        ),
    ]
    .into_iter()
    .collect();
    Response {
        status: 200,
        body: Json::Obj(body).render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rest::json;
    use crate::runtime::RuntimeStats;
    use sdn_types::{DpId, SimDuration};

    #[test]
    fn status_body_round_trips_through_the_parser() {
        let report = StatusReport {
            queued: 3,
            active: 2,
            pending_acks: 5,
            stats: RuntimeStats {
                submitted: 9,
                completed: 4,
                retransmissions: 7,
                stragglers: 1,
                reconnects: 2,
                resyncs: 1,
                resynced_rules: 6,
                quarantined: 1,
                recoveries: 1,
                ..RuntimeStats::default()
            },
            switches: vec![
                SwitchStatus {
                    dp: DpId(1),
                    srtt: Some(SimDuration::from_micros(840)),
                    rto: SimDuration::from_micros(2400),
                    straggler: false,
                },
                SwitchStatus {
                    dp: DpId(7),
                    srtt: None,
                    rto: SimDuration::from_millis(100),
                    straggler: true,
                },
            ],
            journal_len: 12,
            quarantined: vec![DpId(7)],
        };
        let r = status_response(&report);
        assert_eq!(r.status, 200);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("queued").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("pending_acks").unwrap().as_u64(), Some(5));
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("retransmissions").unwrap().as_u64(), Some(7));
        assert_eq!(stats.get("stragglers").unwrap().as_u64(), Some(1));
        let Json::Arr(switches) = v.get("switches").unwrap() else {
            panic!("switches must be an array");
        };
        assert_eq!(switches.len(), 2);
        assert_eq!(switches[0].get("srtt_us").unwrap().as_u64(), Some(840));
        assert!(switches[1].get("srtt_us").is_none(), "unsampled: omitted");
        assert_eq!(switches[1].get("straggler").unwrap().as_bool(), Some(true));
        assert_eq!(stats.get("reconnects").unwrap().as_u64(), Some(2));
        assert_eq!(stats.get("resyncs").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("resynced_rules").unwrap().as_u64(), Some(6));
        assert_eq!(stats.get("recoveries").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("journal_len").unwrap().as_u64(), Some(12));
        let Json::Arr(q) = v.get("quarantined").unwrap() else {
            panic!("quarantined must be an array");
        };
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].as_u64(), Some(7));
    }

    #[test]
    fn empty_runtime_status_is_well_formed() {
        let r = status_response(&StatusReport::default());
        assert_eq!(r.status, 200);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("active").unwrap().as_u64(), Some(0));
        assert_eq!(
            v.get("switches"),
            Some(&Json::Arr(Vec::new())),
            "no switches yet"
        );
    }
}
