//! `GET /status`: live runtime introspection over REST.
//!
//! The demo's Ryu app had no observability beyond its logs; operators
//! of a bounded, concurrent controller need to see backpressure and
//! retransmission health *before* updates start failing. This module
//! renders a [`StatusReport`] — admission-queue depth, active jobs,
//! outstanding payload acks, aggregate counters, and the per-switch
//! adaptive-RTO table with straggler flags — as a `200 OK` JSON body
//! in the same dialect the rest of the REST layer speaks:
//!
//! ```json
//! {
//!   "status": "ok",
//!   "queued": 3, "active": 2, "pending_acks": 5,
//!   "stats": {"submitted": 9, "completed": 4, ...},
//!   "switches": [
//!     {"dp": 1, "srtt_us": 840.0, "rto_us": 2400.0, "straggler": false},
//!     {"dp": 7, "rto_us": 100000.0, "straggler": true}
//!   ]
//! }
//! ```
//!
//! `srtt_us` is omitted (not `null`) for switches without a sample
//! yet, so clients can distinguish "never measured" from "measured
//! zero".

use std::collections::BTreeMap;

use sdn_types::DpId;

use crate::rest::json::Json;
use crate::rest::response::Response;
use crate::runtime::fabric::{MigrateError, RebalanceReport, ShardId};
use crate::runtime::{RuntimeStats, ShardStatus, StatusReport, SwitchStatus, TenantStatus};

/// One aggregate counter of [`RuntimeStats`], described once: its JSON
/// key under `"stats"` in `GET /v1/status`, its Prometheus family name
/// in `GET /v1/metrics`, its help line, and its accessor.
pub struct StatusField {
    /// JSON key under `"stats"`.
    pub key: &'static str,
    /// Prometheus counter family name. Status-scoped
    /// (`sdn_status_*`), so it can never collide with the obs
    /// registry's own `sdn_*` families on the same page.
    pub prom: &'static str,
    /// One-line meaning, shared by `# HELP` and the README table.
    pub help: &'static str,
    /// Reads this counter out of a stats snapshot.
    pub get: fn(&RuntimeStats) -> u64,
}

/// The single source of truth for the status counters.
/// [`status_response`] renders its JSON from this table, the metrics
/// endpoint appends it as extra counter families, and a docs test
/// regenerates the README table from it — the three can't drift.
pub const STATUS_FIELDS: &[StatusField] = &[
    StatusField {
        key: "submitted",
        prom: "sdn_status_submitted_total",
        help: "Updates offered for execution",
        get: |s| s.submitted,
    },
    StatusField {
        key: "accepted",
        prom: "sdn_status_accepted_total",
        help: "Updates that entered the queue",
        get: |s| s.accepted,
    },
    StatusField {
        key: "rejected",
        prom: "sdn_status_rejected_total",
        help: "Updates refused (backpressure, quota, deadline)",
        get: |s| s.rejected,
    },
    StatusField {
        key: "displaced",
        prom: "sdn_status_displaced_total",
        help: "Queued updates shed by the drop-oldest policy",
        get: |s| s.displaced,
    },
    StatusField {
        key: "completed",
        prom: "sdn_status_completed_total",
        help: "Updates that completed every round",
        get: |s| s.completed,
    },
    StatusField {
        key: "failed",
        prom: "sdn_status_failed_total",
        help: "Updates that exhausted a retransmission budget",
        get: |s| s.failed,
    },
    StatusField {
        key: "retransmissions",
        prom: "sdn_status_retransmissions_total",
        help: "Barrier retransmissions across all updates",
        get: |s| s.retransmissions,
    },
    StatusField {
        key: "stragglers",
        prom: "sdn_status_stragglers_total",
        help: "Switches flagged slow while the rest of their round had acknowledged",
        get: |s| s.stragglers,
    },
    StatusField {
        key: "peak_active",
        prom: "sdn_status_peak_active",
        help: "Highest number of simultaneously executing updates observed",
        get: |s| s.peak_active,
    },
    StatusField {
        key: "reconnects",
        prom: "sdn_status_reconnects_total",
        help: "Switch reconnects observed",
        get: |s| s.reconnects,
    },
    StatusField {
        key: "resyncs",
        prom: "sdn_status_resyncs_total",
        help: "Resynchronization audits that converged",
        get: |s| s.resyncs,
    },
    StatusField {
        key: "resynced_rules",
        prom: "sdn_status_resynced_rules_total",
        help: "Missing rules replayed by resynchronization",
        get: |s| s.resynced_rules,
    },
    StatusField {
        key: "quarantined",
        prom: "sdn_status_quarantined_total",
        help: "Switches quarantined after repeated failures",
        get: |s| s.quarantined,
    },
    StatusField {
        key: "recoveries",
        prom: "sdn_status_recoveries_total",
        help: "Crash recoveries this runtime was rebuilt through",
        get: |s| s.recoveries,
    },
    StatusField {
        key: "migrations",
        prom: "sdn_status_migrations_total",
        help: "Online seat migrations committed (fabric only)",
        get: |s| s.migrations,
    },
    StatusField {
        key: "migration_aborts",
        prom: "sdn_status_migration_aborts_total",
        help: "Seat migrations unwound at apply time or by crash recovery",
        get: |s| s.migration_aborts,
    },
];

/// The status-counter table as GitHub markdown — the exact block
/// embedded in `README.md` (a docs test keeps the two identical).
pub fn status_fields_markdown() -> String {
    let mut out = String::from("| `stats` key | Prometheus family | Meaning |\n|---|---|---|\n");
    for f in STATUS_FIELDS {
        out.push_str(&format!("| `{}` | `{}` | {} |\n", f.key, f.prom, f.help));
    }
    out
}

fn duration_us(d: sdn_types::SimDuration) -> Json {
    Json::Num(d.as_nanos() as f64 / 1_000.0)
}

fn switch_json(s: &SwitchStatus) -> Json {
    let mut m = BTreeMap::new();
    m.insert("dp".to_string(), Json::Num(s.dp.0 as f64));
    if let Some(srtt) = s.srtt {
        m.insert("srtt_us".to_string(), duration_us(srtt));
    }
    m.insert("rto_us".to_string(), duration_us(s.rto));
    m.insert("straggler".to_string(), Json::Bool(s.straggler));
    Json::Obj(m)
}

fn shard_json(s: &ShardStatus) -> Json {
    Json::Obj(
        [
            ("shard".to_string(), Json::Num(s.shard as f64)),
            ("queued".to_string(), Json::Num(s.queued as f64)),
            ("active".to_string(), Json::Num(s.active as f64)),
            ("switches".to_string(), Json::Num(s.switches as f64)),
        ]
        .into_iter()
        .collect(),
    )
}

fn tenant_json(t: &TenantStatus) -> Json {
    let mut m = BTreeMap::new();
    m.insert("tenant".to_string(), Json::Num(t.tenant.0 as f64));
    m.insert("in_flight".to_string(), Json::Num(t.in_flight as f64));
    if let Some(q) = t.quota {
        m.insert("quota".to_string(), Json::Num(q as f64));
    }
    Json::Obj(m)
}

/// The `200 OK` response for `GET /status`.
pub fn status_response(report: &StatusReport) -> Response {
    let stats = &report.stats;
    let counters: BTreeMap<String, Json> = STATUS_FIELDS
        .iter()
        .map(|f| (f.key.to_string(), Json::Num((f.get)(stats) as f64)))
        .collect();
    let body: BTreeMap<String, Json> = [
        ("status".to_string(), Json::Str("ok".into())),
        ("queued".to_string(), Json::Num(report.queued as f64)),
        ("active".to_string(), Json::Num(report.active as f64)),
        (
            "pending_acks".to_string(),
            Json::Num(report.pending_acks as f64),
        ),
        ("stats".to_string(), Json::Obj(counters)),
        (
            "switches".to_string(),
            Json::Arr(report.switches.iter().map(switch_json).collect()),
        ),
        (
            "journal_len".to_string(),
            Json::Num(report.journal_len as f64),
        ),
        (
            "quarantined".to_string(),
            Json::Arr(
                report
                    .quarantined
                    .iter()
                    .map(|dp| Json::Num(dp.0 as f64))
                    .collect(),
            ),
        ),
    ]
    .into_iter()
    .collect();
    let mut body = body;
    // fabric-only sections are omitted, not empty, for single-runtime
    // controllers, so pre-fabric clients see an unchanged document
    if !report.shards.is_empty() {
        body.insert(
            "shards".to_string(),
            Json::Arr(report.shards.iter().map(shard_json).collect()),
        );
        body.insert(
            "xshard_queued".to_string(),
            Json::Num(report.xshard_queued as f64),
        );
        body.insert(
            "xshard_active".to_string(),
            Json::Num(report.xshard_active as f64),
        );
        body.insert(
            "migrating".to_string(),
            Json::Arr(
                report
                    .migrating
                    .iter()
                    .map(|dp| Json::Num(dp.0 as f64))
                    .collect(),
            ),
        );
    }
    if !report.tenants.is_empty() {
        body.insert(
            "tenants".to_string(),
            Json::Arr(report.tenants.iter().map(tenant_json).collect()),
        );
    }
    Response {
        status: 200,
        body: Json::Obj(body).render(),
    }
}

/// The `200 OK` response for `GET /v1/rebalance`: per-shard load from
/// the footprint touch index plus the bounded migration plan.
pub fn rebalance_response(report: &RebalanceReport) -> Response {
    let loads = report
        .loads
        .iter()
        .map(|l| {
            Json::Obj(
                [
                    ("shard".to_string(), Json::Num(l.shard.0 as f64)),
                    ("switches".to_string(), Json::Num(l.switches as f64)),
                    ("touches".to_string(), Json::Num(l.touches as f64)),
                ]
                .into_iter()
                .collect(),
            )
        })
        .collect();
    let moves = report
        .moves
        .iter()
        .map(|m| {
            Json::Obj(
                [
                    ("dp".to_string(), Json::Num(m.dp.0 as f64)),
                    ("from".to_string(), Json::Num(m.from.0 as f64)),
                    ("to".to_string(), Json::Num(m.to.0 as f64)),
                    ("touches".to_string(), Json::Num(m.touches as f64)),
                ]
                .into_iter()
                .collect(),
            )
        })
        .collect();
    let body: BTreeMap<String, Json> = [
        ("status".to_string(), Json::Str("ok".into())),
        ("imbalance".to_string(), Json::Num(report.imbalance)),
        ("loads".to_string(), Json::Arr(loads)),
        ("moves".to_string(), Json::Arr(moves)),
    ]
    .into_iter()
    .collect();
    Response {
        status: 200,
        body: Json::Obj(body).render(),
    }
}

/// A parsed `POST /v1/rebalance/apply` body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceApply {
    /// `{"dp": N, "to": S}` — migrate one named switch to one named
    /// shard.
    Move {
        /// The switch to migrate.
        dp: DpId,
        /// The destination shard.
        to: ShardId,
    },
    /// `{}` (or an empty body) — apply the fabric's own advice report.
    Advice,
}

/// Parse a `POST /v1/rebalance/apply` body. An empty object (or empty
/// body) requests the fabric's own advice moves; `{"dp": N, "to": S}`
/// names one explicit move. Anything else — unparseable JSON, a
/// non-object, one key without the other, non-integer values — is a
/// `400` describing the problem.
pub fn parse_rebalance_apply(body: &str) -> Result<RebalanceApply, Response> {
    let bad = |detail: &str| Response {
        status: 400,
        body: Json::Obj(
            [
                ("status".to_string(), Json::Str("error".into())),
                ("detail".to_string(), Json::Str(detail.into())),
            ]
            .into_iter()
            .collect(),
        )
        .render(),
    };
    if body.trim().is_empty() {
        return Ok(RebalanceApply::Advice);
    }
    let v = match crate::rest::json::parse(body) {
        Ok(v) => v,
        Err(_) => return Err(bad("body must be a JSON object")),
    };
    if !matches!(v, Json::Obj(_)) {
        return Err(bad("body must be a JSON object"));
    }
    match (v.get("dp"), v.get("to")) {
        (None, None) => Ok(RebalanceApply::Advice),
        (Some(dp), Some(to)) => match (dp.as_u64(), to.as_u64()) {
            (Some(dp), Some(to)) if to <= u32::MAX as u64 => Ok(RebalanceApply::Move {
                dp: DpId(dp),
                to: ShardId(to as u32),
            }),
            _ => Err(bad("\"dp\" and \"to\" must be non-negative integers")),
        },
        _ => Err(bad("\"dp\" and \"to\" go together")),
    }
}

/// The `202 Accepted` response for a `POST /v1/rebalance/apply` whose
/// migrations all began: the switches now migrating, in dpid order
/// (commit is asynchronous — watch `migrating` in `GET /v1/status`).
pub fn rebalance_apply_response(migrating: &[DpId]) -> Response {
    let body: BTreeMap<String, Json> = [
        ("status".to_string(), Json::Str("accepted".into())),
        (
            "migrating".to_string(),
            Json::Arr(migrating.iter().map(|dp| Json::Num(dp.0 as f64)).collect()),
        ),
    ]
    .into_iter()
    .collect();
    Response {
        status: 202,
        body: Json::Obj(body).render(),
    }
}

/// The structured `409 Conflict` for a refused migration: a stable
/// `reason` slug plus the offending switch/shard, so clients branch
/// without parsing prose.
pub fn migrate_error_response(err: &MigrateError) -> Response {
    let mut body: BTreeMap<String, Json> = [
        ("status".to_string(), Json::Str("conflict".into())),
        ("detail".to_string(), Json::Str(err.to_string())),
    ]
    .into_iter()
    .collect();
    let reason = match err {
        MigrateError::UnknownSwitch(dp) => {
            body.insert("dp".to_string(), Json::Num(dp.0 as f64));
            "unknown_switch"
        }
        MigrateError::SameShard { dp, shard } => {
            body.insert("dp".to_string(), Json::Num(dp.0 as f64));
            body.insert("shard".to_string(), Json::Num(shard.0 as f64));
            "same_shard"
        }
        MigrateError::AlreadyMigrating(dp) => {
            body.insert("dp".to_string(), Json::Num(dp.0 as f64));
            "already_migrating"
        }
        MigrateError::BadShard(s) => {
            body.insert("shard".to_string(), Json::Num(s.0 as f64));
            "bad_shard"
        }
    };
    body.insert("reason".to_string(), Json::Str(reason.into()));
    Response {
        status: 409,
        body: Json::Obj(body).render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rest::json;
    use crate::runtime::RuntimeStats;
    use sdn_types::SimDuration;

    #[test]
    fn status_body_round_trips_through_the_parser() {
        let report = StatusReport {
            queued: 3,
            active: 2,
            pending_acks: 5,
            stats: RuntimeStats {
                submitted: 9,
                completed: 4,
                retransmissions: 7,
                stragglers: 1,
                reconnects: 2,
                resyncs: 1,
                resynced_rules: 6,
                quarantined: 1,
                recoveries: 1,
                migrations: 3,
                migration_aborts: 1,
                ..RuntimeStats::default()
            },
            switches: vec![
                SwitchStatus {
                    dp: DpId(1),
                    srtt: Some(SimDuration::from_micros(840)),
                    rto: SimDuration::from_micros(2400),
                    straggler: false,
                },
                SwitchStatus {
                    dp: DpId(7),
                    srtt: None,
                    rto: SimDuration::from_millis(100),
                    straggler: true,
                },
            ],
            journal_len: 12,
            quarantined: vec![DpId(7)],
            shards: Vec::new(),
            tenants: Vec::new(),
            xshard_queued: 0,
            xshard_active: 0,
            migrating: Vec::new(),
        };
        let r = status_response(&report);
        assert_eq!(r.status, 200);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("queued").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("pending_acks").unwrap().as_u64(), Some(5));
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("retransmissions").unwrap().as_u64(), Some(7));
        assert_eq!(stats.get("stragglers").unwrap().as_u64(), Some(1));
        let Json::Arr(switches) = v.get("switches").unwrap() else {
            panic!("switches must be an array");
        };
        assert_eq!(switches.len(), 2);
        assert_eq!(switches[0].get("srtt_us").unwrap().as_u64(), Some(840));
        assert!(switches[1].get("srtt_us").is_none(), "unsampled: omitted");
        assert_eq!(switches[1].get("straggler").unwrap().as_bool(), Some(true));
        assert_eq!(stats.get("reconnects").unwrap().as_u64(), Some(2));
        assert_eq!(stats.get("resyncs").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("resynced_rules").unwrap().as_u64(), Some(6));
        assert_eq!(stats.get("recoveries").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("migrations").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("migration_aborts").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("journal_len").unwrap().as_u64(), Some(12));
        let Json::Arr(q) = v.get("quarantined").unwrap() else {
            panic!("quarantined must be an array");
        };
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].as_u64(), Some(7));
    }

    #[test]
    fn empty_runtime_status_is_well_formed() {
        let r = status_response(&StatusReport::default());
        assert_eq!(r.status, 200);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("active").unwrap().as_u64(), Some(0));
        assert_eq!(
            v.get("switches"),
            Some(&Json::Arr(Vec::new())),
            "no switches yet"
        );
        assert!(v.get("shards").is_none(), "fabric sections are omitted");
        assert!(v.get("tenants").is_none());
    }

    #[test]
    fn fabric_status_renders_shards_and_tenants() {
        use crate::runtime::TenantId;
        let report = StatusReport {
            queued: 4,
            shards: vec![
                ShardStatus {
                    shard: 0,
                    queued: 1,
                    active: 2,
                    switches: 5,
                },
                ShardStatus {
                    shard: 1,
                    queued: 3,
                    active: 0,
                    switches: 4,
                },
            ],
            tenants: vec![
                TenantStatus {
                    tenant: TenantId(3),
                    in_flight: 2,
                    quota: Some(4),
                },
                TenantStatus {
                    tenant: TenantId(9),
                    in_flight: 1,
                    quota: None,
                },
            ],
            xshard_queued: 1,
            xshard_active: 2,
            migrating: vec![DpId(6)],
            ..StatusReport::default()
        };
        let v = json::parse(&status_response(&report).body).unwrap();
        let Json::Arr(shards) = v.get("shards").unwrap() else {
            panic!("shards must be an array");
        };
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].get("shard").unwrap().as_u64(), Some(0));
        assert_eq!(shards[0].get("active").unwrap().as_u64(), Some(2));
        assert_eq!(shards[1].get("queued").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("xshard_queued").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("xshard_active").unwrap().as_u64(), Some(2));
        let Json::Arr(migrating) = v.get("migrating").unwrap() else {
            panic!("migrating must be an array");
        };
        assert_eq!(migrating[0].as_u64(), Some(6));
        let Json::Arr(tenants) = v.get("tenants").unwrap() else {
            panic!("tenants must be an array");
        };
        assert_eq!(tenants[0].get("tenant").unwrap().as_u64(), Some(3));
        assert_eq!(tenants[0].get("quota").unwrap().as_u64(), Some(4));
        assert!(
            tenants[1].get("quota").is_none(),
            "unlimited: quota omitted"
        );
    }

    #[test]
    fn status_fields_cover_every_runtime_counter() {
        // exhaustive destructure: adding a RuntimeStats field breaks
        // this pattern, forcing the table (and with it the JSON body,
        // the metrics families and the README) to follow
        let RuntimeStats {
            submitted,
            accepted,
            rejected,
            displaced,
            completed,
            failed,
            retransmissions,
            stragglers,
            peak_active,
            reconnects,
            resyncs,
            resynced_rules,
            quarantined,
            recoveries,
            migrations,
            migration_aborts,
        } = RuntimeStats::default();
        let all = [
            submitted,
            accepted,
            rejected,
            displaced,
            completed,
            failed,
            retransmissions,
            stragglers,
            peak_active,
            reconnects,
            resyncs,
            resynced_rules,
            quarantined,
            recoveries,
            migrations,
            migration_aborts,
        ];
        assert_eq!(STATUS_FIELDS.len(), all.len());
        let mut keys: Vec<&str> = STATUS_FIELDS.iter().map(|f| f.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), STATUS_FIELDS.len(), "duplicate JSON key");
        let mut proms: Vec<&str> = STATUS_FIELDS.iter().map(|f| f.prom).collect();
        proms.sort_unstable();
        proms.dedup();
        assert_eq!(proms.len(), STATUS_FIELDS.len(), "duplicate family");
        for f in STATUS_FIELDS {
            assert!(
                f.prom.starts_with("sdn_status_"),
                "{} must be status-scoped to avoid registry collisions",
                f.prom
            );
            assert!(!f.help.is_empty());
        }
    }

    #[test]
    fn readme_status_table_matches_the_source_of_truth() {
        let readme =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"))
                .expect("workspace README");
        assert!(
            readme.contains(&status_fields_markdown()),
            "README status-field table drifted from STATUS_FIELDS; \
             regenerate it with status_fields_markdown()"
        );
    }

    #[test]
    fn rebalance_report_renders_loads_and_moves() {
        use crate::runtime::fabric::{ShardId, ShardLoad, SuggestedMove};
        let report = RebalanceReport {
            loads: vec![
                ShardLoad {
                    shard: ShardId(0),
                    switches: 2,
                    touches: 40,
                },
                ShardLoad {
                    shard: ShardId(1),
                    switches: 1,
                    touches: 2,
                },
            ],
            imbalance: 1.9,
            moves: vec![SuggestedMove {
                dp: DpId(2),
                from: ShardId(0),
                to: ShardId(1),
                touches: 30,
            }],
        };
        let r = rebalance_response(&report);
        assert_eq!(r.status, 200);
        let v = json::parse(&r.body).unwrap();
        assert!((v.get("imbalance").unwrap().as_f64().unwrap() - 1.9).abs() < 1e-9);
        let Json::Arr(loads) = v.get("loads").unwrap() else {
            panic!("loads must be an array");
        };
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].get("touches").unwrap().as_u64(), Some(40));
        let Json::Arr(moves) = v.get("moves").unwrap() else {
            panic!("moves must be an array");
        };
        assert_eq!(moves[0].get("dp").unwrap().as_u64(), Some(2));
        assert_eq!(moves[0].get("to").unwrap().as_u64(), Some(1));
    }
}
