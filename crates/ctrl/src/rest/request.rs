//! The WayUp REST request format.
//!
//! From the paper (§2): *"The WayUp REST request consists of a header
//! part and a body part. The header part consists of the input
//! parameters of WayUp. These are the old route, the new route, the
//! waypoint, and the time interval."* Routes are lists of datapath
//! numbers ordered "in the way they are passed by the network packets
//! along the route".
//!
//! ```json
//! {
//!   "oldpath": [1, 2, 3, 4, 5, 6, 12],
//!   "newpath": [1, 7, 3, 8, 9, 10, 11, 12],
//!   "wp": 3,
//!   "interval": 100
//! }
//! ```
//!
//! The body part of the original format carried raw OpenFlow messages
//! for Ryu's `/stats/flowentry/add` endpoint; this controller compiles
//! FlowMods from the routes itself (see [`crate::compile`]), so the
//! body is optional and an `"algorithm"` field selects the scheduler
//! instead.

use std::collections::BTreeMap;
use std::fmt;

use sdn_topo::route::{RouteError, RoutePath};
use sdn_types::{DpId, SimDuration, SimTime};
use update_core::model::{InstanceError, UpdateInstance};

use crate::compile::CompiledUpdate;
use crate::runtime::{Priority, SubmitRequest, TenantId};

use super::json::{self, Json, ParseLimits};

/// Longest accepted route, in hops — covers the n=4096-scale
/// workloads with headroom while keeping a hostile request's cost
/// bounded.
pub const MAX_PATH_HOPS: usize = 8192;

/// Bounds applied to REST request documents before and during
/// parsing. A conforming request is two routes, three scalars and a
/// short algorithm name; anything larger is noise or an attack.
pub const REQUEST_LIMITS: ParseLimits = ParseLimits {
    max_bytes: 256 * 1024,
    max_depth: 8,
    max_fields: 64,
    max_elements: 2 * MAX_PATH_HOPS + 64,
    max_string_bytes: 256,
};

/// A parsed update request.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRequest {
    /// The old route (datapath numbers, packet order).
    pub old_path: Vec<u64>,
    /// The new route.
    pub new_path: Vec<u64>,
    /// The waypoint, when the update must enforce one.
    pub waypoint: Option<u64>,
    /// Packet-injection interval in milliseconds (the demo uses this
    /// to pace its probe traffic).
    pub interval_ms: Option<u64>,
    /// Scheduler selection: `"wayup"` (default when `wp` present),
    /// `"peacock"`, `"slf-greedy"`, `"two-phase"`, `"one-shot"`.
    pub algorithm: Option<String>,
    /// Submitting tenant for admission-quota accounting (v1 API);
    /// tenant `0` when absent.
    pub tenant: Option<u32>,
    /// Admission lane: `"normal"` (default) or `"high"`.
    pub priority: Option<Priority>,
    /// Submission deadline, milliseconds from receipt; an update still
    /// queued past it fails instead of dispatching stale intent.
    pub deadline_ms: Option<u64>,
}

/// Request parsing/validation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The document is not valid JSON, or it blew a parser work limit
    /// (the [`json::JsonErrorKind`] distinguishes the two).
    BadJson(json::JsonError),
    /// A required field is missing.
    MissingField(&'static str),
    /// A field has the wrong type/shape.
    BadField(&'static str),
    /// A route exceeds [`MAX_PATH_HOPS`].
    PathTooLong(&'static str, usize),
    /// The routes do not form a valid path.
    BadRoute(RouteError),
    /// The routes/waypoint do not form a valid update instance.
    BadInstance(InstanceError),
}

impl RequestError {
    /// Whether the request was refused for exceeding a size/work
    /// limit (as opposed to being malformed) — the REST layer answers
    /// these with a payload-too-large response rather than a plain
    /// bad-request.
    pub fn is_limit(&self) -> bool {
        match self {
            RequestError::BadJson(e) => e.kind != json::JsonErrorKind::Syntax,
            RequestError::PathTooLong(..) => true,
            _ => false,
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::BadJson(e) => write!(f, "{e}"),
            RequestError::MissingField(k) => write!(f, "missing field \"{k}\""),
            RequestError::BadField(k) => write!(f, "field \"{k}\" has the wrong type"),
            RequestError::PathTooLong(k, n) => {
                write!(f, "field \"{k}\" has {n} hops, limit {MAX_PATH_HOPS}")
            }
            RequestError::BadRoute(e) => write!(f, "bad route: {e}"),
            RequestError::BadInstance(e) => write!(f, "bad update instance: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

fn path_field(v: &Json, key: &'static str) -> Result<Vec<u64>, RequestError> {
    let arr = v
        .get(key)
        .ok_or(RequestError::MissingField(key))?
        .as_array()
        .ok_or(RequestError::BadField(key))?;
    if arr.len() > MAX_PATH_HOPS {
        return Err(RequestError::PathTooLong(key, arr.len()));
    }
    arr.iter()
        .map(|x| x.as_u64().ok_or(RequestError::BadField(key)))
        .collect()
}

impl UpdateRequest {
    /// Parse a request document under [`REQUEST_LIMITS`].
    pub fn parse(doc: &str) -> Result<Self, RequestError> {
        let v = json::parse_with(doc, &REQUEST_LIMITS).map_err(RequestError::BadJson)?;
        let old_path = path_field(&v, "oldpath")?;
        let new_path = path_field(&v, "newpath")?;
        let waypoint = match v.get("wp") {
            None | Some(Json::Null) => None,
            Some(x) => Some(x.as_u64().ok_or(RequestError::BadField("wp"))?),
        };
        let interval_ms = match v.get("interval") {
            None | Some(Json::Null) => None,
            Some(x) => Some(x.as_u64().ok_or(RequestError::BadField("interval"))?),
        };
        let algorithm = match v.get("algorithm") {
            None | Some(Json::Null) => None,
            Some(x) => Some(
                x.as_str()
                    .ok_or(RequestError::BadField("algorithm"))?
                    .to_string(),
            ),
        };
        let tenant = match v.get("tenant") {
            None | Some(Json::Null) => None,
            Some(x) => {
                let t = x.as_u64().ok_or(RequestError::BadField("tenant"))?;
                Some(u32::try_from(t).map_err(|_| RequestError::BadField("tenant"))?)
            }
        };
        let priority = match v.get("priority") {
            None | Some(Json::Null) => None,
            Some(x) => match x.as_str() {
                Some("normal") => Some(Priority::Normal),
                Some("high") => Some(Priority::High),
                _ => return Err(RequestError::BadField("priority")),
            },
        };
        let deadline_ms = match v.get("deadline") {
            None | Some(Json::Null) => None,
            Some(x) => Some(x.as_u64().ok_or(RequestError::BadField("deadline"))?),
        };
        Ok(UpdateRequest {
            old_path,
            new_path,
            waypoint,
            interval_ms,
            algorithm,
            tenant,
            priority,
            deadline_ms,
        })
    }

    /// Fold the request's submission intent (tenant, lane, deadline)
    /// around an already-compiled update. `now` anchors the relative
    /// `deadline` field to an absolute launch cutoff.
    pub fn to_submission(&self, update: CompiledUpdate, now: SimTime) -> SubmitRequest {
        let mut req = SubmitRequest::new(update);
        if let Some(t) = self.tenant {
            req = req.tenant(TenantId(t));
        }
        if let Some(p) = self.priority {
            req = req.priority(p);
        }
        if let Some(ms) = self.deadline_ms {
            req = req.deadline(now + SimDuration::from_millis(ms));
        }
        req
    }

    /// Build the validated update instance this request describes.
    pub fn to_instance(&self) -> Result<UpdateInstance, RequestError> {
        let old = RoutePath::from_raw(&self.old_path).map_err(RequestError::BadRoute)?;
        let new = RoutePath::from_raw(&self.new_path).map_err(RequestError::BadRoute)?;
        UpdateInstance::new(old, new, self.waypoint.map(DpId)).map_err(RequestError::BadInstance)
    }

    /// Serialize back to the REST format.
    pub fn to_json(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert(
            "oldpath".to_string(),
            Json::Arr(self.old_path.iter().map(|&x| Json::Num(x as f64)).collect()),
        );
        obj.insert(
            "newpath".to_string(),
            Json::Arr(self.new_path.iter().map(|&x| Json::Num(x as f64)).collect()),
        );
        if let Some(w) = self.waypoint {
            obj.insert("wp".to_string(), Json::Num(w as f64));
        }
        if let Some(i) = self.interval_ms {
            obj.insert("interval".to_string(), Json::Num(i as f64));
        }
        if let Some(a) = &self.algorithm {
            obj.insert("algorithm".to_string(), Json::Str(a.clone()));
        }
        if let Some(t) = self.tenant {
            obj.insert("tenant".to_string(), Json::Num(t as f64));
        }
        if let Some(p) = self.priority {
            let name = match p {
                Priority::Normal => "normal",
                Priority::High => "high",
            };
            obj.insert("priority".to_string(), Json::Str(name.into()));
        }
        if let Some(d) = self.deadline_ms {
            obj.insert("deadline".to_string(), Json::Num(d as f64));
        }
        Json::Obj(obj).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO_DOC: &str = r#"{
        "oldpath": [1, 2, 3, 4, 5, 6, 12],
        "newpath": [1, 7, 3, 8, 9, 10, 11, 12],
        "wp": 3,
        "interval": 100
    }"#;

    #[test]
    fn parses_the_paper_example() {
        let r = UpdateRequest::parse(DEMO_DOC).unwrap();
        assert_eq!(r.old_path, vec![1, 2, 3, 4, 5, 6, 12]);
        assert_eq!(r.new_path, vec![1, 7, 3, 8, 9, 10, 11, 12]);
        assert_eq!(r.waypoint, Some(3));
        assert_eq!(r.interval_ms, Some(100));
        assert_eq!(r.algorithm, None);
    }

    #[test]
    fn builds_valid_instance() {
        let r = UpdateRequest::parse(DEMO_DOC).unwrap();
        let inst = r.to_instance().unwrap();
        assert_eq!(inst.waypoint(), Some(DpId(3)));
        assert_eq!(inst.src(), DpId(1));
        assert_eq!(inst.dst(), DpId(12));
    }

    #[test]
    fn optional_fields_absent() {
        let r = UpdateRequest::parse(r#"{"oldpath":[1,2],"newpath":[1,2]}"#).unwrap();
        assert_eq!(r.waypoint, None);
        assert_eq!(r.interval_ms, None);
    }

    #[test]
    fn algorithm_selector() {
        let r = UpdateRequest::parse(r#"{"oldpath":[1,2],"newpath":[1,2],"algorithm":"peacock"}"#)
            .unwrap();
        assert_eq!(r.algorithm.as_deref(), Some("peacock"));
    }

    #[test]
    fn missing_fields_rejected() {
        assert_eq!(
            UpdateRequest::parse(r#"{"newpath":[1,2]}"#),
            Err(RequestError::MissingField("oldpath"))
        );
        assert_eq!(
            UpdateRequest::parse(r#"{"oldpath":[1,2]}"#),
            Err(RequestError::MissingField("newpath"))
        );
    }

    #[test]
    fn wrong_types_rejected() {
        assert_eq!(
            UpdateRequest::parse(r#"{"oldpath":"nope","newpath":[1,2]}"#),
            Err(RequestError::BadField("oldpath"))
        );
        assert_eq!(
            UpdateRequest::parse(r#"{"oldpath":[1,-2],"newpath":[1,2]}"#),
            Err(RequestError::BadField("oldpath"))
        );
        assert_eq!(
            UpdateRequest::parse(r#"{"oldpath":[1,2],"newpath":[1,2],"wp":"x"}"#),
            Err(RequestError::BadField("wp"))
        );
    }

    #[test]
    fn bad_json_rejected() {
        let err = UpdateRequest::parse("{").unwrap_err();
        assert!(matches!(err, RequestError::BadJson(_)));
        assert!(!err.is_limit());
    }

    #[test]
    fn oversized_document_rejected_before_parsing() {
        let doc = format!(
            r#"{{"oldpath":[1,2],"newpath":[1,2],"junk":"{}"}}"#,
            "x".repeat(REQUEST_LIMITS.max_bytes)
        );
        let err = UpdateRequest::parse(&doc).unwrap_err();
        assert!(err.is_limit(), "{err}");
        assert!(matches!(
            err,
            RequestError::BadJson(json::JsonError {
                kind: json::JsonErrorKind::TooLarge,
                ..
            })
        ));
    }

    #[test]
    fn overlong_path_rejected() {
        let hops: Vec<String> = (1..=(MAX_PATH_HOPS as u64 + 1))
            .map(|i| i.to_string())
            .collect();
        let doc = format!(r#"{{"oldpath":[{}],"newpath":[1,2]}}"#, hops.join(","));
        let err = UpdateRequest::parse(&doc).unwrap_err();
        assert!(err.is_limit(), "{err}");
        assert!(matches!(err, RequestError::PathTooLong("oldpath", _)));
        assert!(err.to_string().contains("hops"));
    }

    #[test]
    fn deep_nesting_rejected_by_request_limits() {
        let doc = format!(
            r#"{{"oldpath":[1,2],"newpath":[1,2],"x":{}{}}}"#,
            "[".repeat(20),
            "]".repeat(20)
        );
        let err = UpdateRequest::parse(&doc).unwrap_err();
        assert!(err.is_limit(), "{err}");
    }

    #[test]
    fn field_flood_rejected() {
        let fields: Vec<String> = (0..200).map(|i| format!("\"f{i}\":{i}")).collect();
        let doc = format!(
            r#"{{"oldpath":[1,2],"newpath":[1,2],{}}}"#,
            fields.join(",")
        );
        let err = UpdateRequest::parse(&doc).unwrap_err();
        assert!(err.is_limit(), "{err}");
    }

    #[test]
    fn max_size_conforming_request_accepted() {
        // a big-but-legal request: two 2048-hop routes
        let path: Vec<String> = (1..=2048u64).map(|i| i.to_string()).collect();
        let rev: Vec<String> = std::iter::once(1u64)
            .chain((2..2048).rev())
            .chain(std::iter::once(2048))
            .map(|i| i.to_string())
            .collect();
        let doc = format!(
            r#"{{"oldpath":[{}],"newpath":[{}]}}"#,
            path.join(","),
            rev.join(",")
        );
        let r = UpdateRequest::parse(&doc).unwrap();
        assert_eq!(r.old_path.len(), 2048);
        assert!(r.to_instance().is_ok());
    }

    #[test]
    fn bad_route_rejected() {
        let r = UpdateRequest::parse(r#"{"oldpath":[1,2,1],"newpath":[1,2]}"#).unwrap();
        assert!(matches!(r.to_instance(), Err(RequestError::BadRoute(_))));
    }

    #[test]
    fn bad_instance_rejected() {
        let r = UpdateRequest::parse(r#"{"oldpath":[1,2,3],"newpath":[1,4,3],"wp":2}"#).unwrap();
        assert!(matches!(r.to_instance(), Err(RequestError::BadInstance(_))));
    }

    #[test]
    fn json_roundtrip() {
        let r = UpdateRequest::parse(DEMO_DOC).unwrap();
        let doc2 = r.to_json();
        let r2 = UpdateRequest::parse(&doc2).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn v1_submission_fields_parse_and_roundtrip() {
        let doc = r#"{
            "oldpath": [1, 2], "newpath": [1, 2],
            "tenant": 3, "priority": "high", "deadline": 250
        }"#;
        let r = UpdateRequest::parse(doc).unwrap();
        assert_eq!(r.tenant, Some(3));
        assert_eq!(r.priority, Some(Priority::High));
        assert_eq!(r.deadline_ms, Some(250));
        let r2 = UpdateRequest::parse(&r.to_json()).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn v1_submission_fields_default_when_absent() {
        let r = UpdateRequest::parse(r#"{"oldpath":[1,2],"newpath":[1,2]}"#).unwrap();
        assert_eq!(r.tenant, None);
        assert_eq!(r.priority, None);
        assert_eq!(r.deadline_ms, None);
        let sub = r.to_submission(
            CompiledUpdate {
                label: "u".into(),
                rounds: vec![],
            },
            SimTime(0),
        );
        assert_eq!(sub.tenant, TenantId(0));
        assert_eq!(sub.priority, Priority::Normal);
        assert_eq!(sub.deadline, None);
    }

    #[test]
    fn to_submission_anchors_the_deadline() {
        let doc = r#"{"oldpath":[1,2],"newpath":[1,2],"tenant":7,"deadline":100}"#;
        let r = UpdateRequest::parse(doc).unwrap();
        let now = SimTime(5_000_000);
        let sub = r.to_submission(
            CompiledUpdate {
                label: "u".into(),
                rounds: vec![],
            },
            now,
        );
        assert_eq!(sub.tenant, TenantId(7));
        assert_eq!(sub.deadline, Some(now + SimDuration::from_millis(100)));
    }

    #[test]
    fn bad_submission_fields_rejected() {
        assert_eq!(
            UpdateRequest::parse(r#"{"oldpath":[1,2],"newpath":[1,2],"priority":"urgent"}"#),
            Err(RequestError::BadField("priority"))
        );
        assert_eq!(
            UpdateRequest::parse(r#"{"oldpath":[1,2],"newpath":[1,2],"tenant":4294967296}"#),
            Err(RequestError::BadField("tenant"))
        );
    }
}
