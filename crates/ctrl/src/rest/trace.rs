//! `GET /v1/trace/{job}`: one update's recorded span tree.
//!
//! The tracing layer keys every lifecycle event to the update's job
//! id (its [`SpanId`](sdn_obs::SpanId)); this endpoint returns the
//! whole span as a tree — job-level lifecycle events at the root,
//! round-level events (dispatch, FlowMod send/ack, barrier fence,
//! round commit) grouped beneath their round index — rendered by
//! [`Obs::trace_json`]. A job the sink has never seen (wrong id,
//! span evicted, observability disabled) answers a structured `404`
//! naming the job, so clients branch without parsing prose.

use sdn_obs::Obs;

use crate::rest::json::Json;
use crate::rest::response::Response;

/// The response for `GET /v1/trace/{job}`: `200` with the span tree,
/// or a structured `404` when no trace exists for `job`.
pub fn trace_response(obs: &Obs, job: u64) -> Response {
    match obs.trace_json(job) {
        Some(body) => Response { status: 200, body },
        None => Response {
            status: 404,
            body: Json::Obj(
                [
                    ("status".to_string(), Json::Str("error".into())),
                    (
                        "detail".to_string(),
                        Json::Str("no trace recorded for that job".into()),
                    ),
                    ("job".to_string(), Json::Num(job as f64)),
                ]
                .into_iter()
                .collect(),
            )
            .render(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rest::json;
    use sdn_obs::{Event, EventKind};
    use sdn_types::SimTime;

    #[test]
    fn known_job_answers_its_span_tree() {
        let obs = Obs::recording();
        obs.emit(Event::new(SimTime::ZERO, EventKind::Submit).span(42));
        obs.emit(Event::new(SimTime::ZERO, EventKind::Commit).span(42));
        let r = trace_response(&obs, 42);
        assert_eq!(r.status, 200);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("job").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn unknown_job_is_a_structured_404() {
        let r = trace_response(&Obs::recording(), 7);
        assert_eq!(r.status, 404);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(v.get("job").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn disabled_obs_is_a_404_too() {
        assert_eq!(trace_response(&Obs::disabled(), 1).status, 404);
    }
}
