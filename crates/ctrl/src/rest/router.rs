//! Versioned endpoint routing: `/v1/*` plus legacy-path redirects.
//!
//! The REST surface grew unversioned out of the demo's Ryu paths
//! (`POST /stats/update`, `GET /status`); the fabric redesign is the
//! moment to version it. All live endpoints sit under `/v1/`:
//!
//! * `POST /v1/update` — submit an update (answered by
//!   [`submit_response`](crate::rest::response::submit_response),
//!   including `429` quota refusals);
//! * `GET /v1/status` — shard- and tenant-aware runtime introspection
//!   ([`status_response`](crate::rest::status::status_response));
//! * `GET /v1/rebalance` — the footprint-driven shard-migration advice
//!   ([`rebalance_response`](crate::rest::status::rebalance_response));
//! * `POST /v1/rebalance/apply` — execute migrations online
//!   ([`rebalance_apply_response`](crate::rest::status::rebalance_apply_response)).
//!
//! Legacy paths answer `308 Permanent Redirect` to their v1 homes, so
//! pre-fabric clients keep working after one extra round trip and
//! their operators see the new location in every response. `308` (not
//! `301`) because it forbids the method rewrite some clients apply on
//! `301`, and a redirected `POST /update` must stay a `POST`.
//!
//! Like the rest of the REST layer this is transport-agnostic: the
//! router maps `(method, path)` to an [`Endpoint`] and the embedding
//! binary owns sockets and handler wiring.

use crate::rest::json::Json;
use crate::rest::response::Response;

/// A live (v1) API endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/update`: submit an update.
    Submit,
    /// `GET /v1/status`: runtime introspection.
    Status,
    /// `GET /v1/rebalance`: shard-migration advice.
    Rebalance,
    /// `POST /v1/rebalance/apply`: execute seat migrations online.
    RebalanceApply,
    /// `GET /v1/metrics`: Prometheus text exposition.
    Metrics,
    /// `GET /v1/trace/{job}`: one update's span tree.
    Trace(u64),
}

/// Where a `(method, path)` pair leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// A live endpoint; dispatch to its handler.
    Endpoint(Endpoint),
    /// A legacy path; answer `308` pointing at `location`.
    Moved {
        /// The v1 home of the legacy path.
        location: &'static str,
    },
    /// The path exists but not under this method; answer `405`.
    MethodNotAllowed {
        /// The method the path does accept.
        allow: &'static str,
    },
    /// Nothing lives here; answer `404`.
    NotFound,
}

/// Map a request line to its route. Methods are case-sensitive
/// uppercase, per HTTP.
pub fn route(method: &str, path: &str) -> Route {
    // a query string never selects the endpoint (no v1 endpoint takes
    // query parameters, so they are simply ignored), and one trailing
    // slash is tolerated on every path
    let path = path.split('?').next().unwrap_or(path);
    let path = if path.len() > 1 {
        path.strip_suffix('/').unwrap_or(path)
    } else {
        path
    };
    // the one parameterised path: /v1/trace/{job}
    if let Some(job) = path.strip_prefix("/v1/trace/") {
        return match job.parse::<u64>() {
            Ok(job) if method == "GET" => Route::Endpoint(Endpoint::Trace(job)),
            Ok(_) => Route::MethodNotAllowed { allow: "GET" },
            Err(_) => Route::NotFound,
        };
    }
    match (method, path) {
        ("POST", "/v1/update") => Route::Endpoint(Endpoint::Submit),
        ("GET", "/v1/status") => Route::Endpoint(Endpoint::Status),
        ("GET", "/v1/rebalance") => Route::Endpoint(Endpoint::Rebalance),
        ("POST", "/v1/rebalance/apply") => Route::Endpoint(Endpoint::RebalanceApply),
        ("GET", "/v1/metrics") => Route::Endpoint(Endpoint::Metrics),
        // legacy paths: the pre-v1 surface and the demo's original
        // Ryu-style path, all pointing at their v1 homes
        ("POST", "/update") | ("POST", "/stats/update") => Route::Moved {
            location: "/v1/update",
        },
        ("GET", "/status") => Route::Moved {
            location: "/v1/status",
        },
        (_, "/v1/update") | (_, "/update") | (_, "/stats/update") | (_, "/v1/rebalance/apply") => {
            Route::MethodNotAllowed { allow: "POST" }
        }
        (_, "/v1/status") | (_, "/v1/rebalance") | (_, "/v1/metrics") | (_, "/status") => {
            Route::MethodNotAllowed { allow: "GET" }
        }
        _ => Route::NotFound,
    }
}

/// The `308 Permanent Redirect` for a legacy path. The body carries
/// the target too, because this JSON dialect has no header channel.
pub fn redirect_response(location: &str) -> Response {
    Response {
        status: 308,
        body: Json::Obj(
            [
                ("status".to_string(), Json::Str("moved".into())),
                ("location".to_string(), Json::Str(location.into())),
            ]
            .into_iter()
            .collect(),
        )
        .render(),
    }
}

/// The `405` for a known path under the wrong method.
pub fn method_not_allowed_response(allow: &str) -> Response {
    Response {
        status: 405,
        body: Json::Obj(
            [
                ("status".to_string(), Json::Str("error".into())),
                ("allow".to_string(), Json::Str(allow.into())),
            ]
            .into_iter()
            .collect(),
        )
        .render(),
    }
}

/// The `404` for a path nothing owns.
pub fn not_found_response() -> Response {
    Response {
        status: 404,
        body: Json::Obj(
            [
                ("status".to_string(), Json::Str("error".into())),
                ("detail".to_string(), Json::Str("no such endpoint".into())),
            ]
            .into_iter()
            .collect(),
        )
        .render(),
    }
}

/// Resolve a route all the way to a response for everything that is
/// *not* a live endpoint; `Ok(endpoint)` hands live traffic back to
/// the caller's handlers.
pub fn dispatch(method: &str, path: &str) -> Result<Endpoint, Response> {
    match route(method, path) {
        Route::Endpoint(e) => Ok(e),
        Route::Moved { location } => Err(redirect_response(location)),
        Route::MethodNotAllowed { allow } => Err(method_not_allowed_response(allow)),
        Route::NotFound => Err(not_found_response()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rest::json;

    #[test]
    fn v1_endpoints_are_live() {
        assert_eq!(
            route("POST", "/v1/update"),
            Route::Endpoint(Endpoint::Submit)
        );
        assert_eq!(
            route("GET", "/v1/status"),
            Route::Endpoint(Endpoint::Status)
        );
        assert_eq!(
            route("GET", "/v1/rebalance"),
            Route::Endpoint(Endpoint::Rebalance)
        );
    }

    #[test]
    fn legacy_paths_redirect_with_308() {
        for (method, path, home) in [
            ("POST", "/update", "/v1/update"),
            ("POST", "/stats/update", "/v1/update"),
            ("GET", "/status", "/v1/status"),
        ] {
            let Route::Moved { location } = route(method, path) else {
                panic!("{method} {path} must redirect");
            };
            assert_eq!(location, home);
            let r = redirect_response(location);
            assert_eq!(r.status, 308);
            let v = json::parse(&r.body).unwrap();
            assert_eq!(v.get("location").unwrap().as_str(), Some(home));
        }
    }

    #[test]
    fn wrong_method_names_the_right_one() {
        assert_eq!(
            route("GET", "/v1/update"),
            Route::MethodNotAllowed { allow: "POST" }
        );
        assert_eq!(
            route("POST", "/v1/status"),
            Route::MethodNotAllowed { allow: "GET" }
        );
        let r = method_not_allowed_response("POST");
        assert_eq!(r.status, 405);
    }

    #[test]
    fn unknown_paths_404() {
        assert_eq!(route("GET", "/v2/update"), Route::NotFound);
        assert_eq!(route("GET", "/"), Route::NotFound);
        assert_eq!(not_found_response().status, 404);
    }

    #[test]
    fn dispatch_folds_non_endpoints_to_responses() {
        assert_eq!(dispatch("POST", "/v1/update"), Ok(Endpoint::Submit));
        assert_eq!(dispatch("POST", "/update").unwrap_err().status, 308);
        assert_eq!(dispatch("DELETE", "/status").unwrap_err().status, 405);
        assert_eq!(dispatch("GET", "/nope").unwrap_err().status, 404);
    }
}
