//! `GET /v1/metrics`: Prometheus text exposition.
//!
//! The page is assembled from two sources at scrape time:
//!
//! * the [`sdn_obs`] registry — lifecycle counters, gauges and log₂
//!   histograms recorded by the instrumented runtimes — rendered by
//!   [`Obs::prometheus_with`];
//! * the runtime's own [`RuntimeStats`](crate::runtime::RuntimeStats)
//!   counters, appended as `sdn_status_*` families straight from the
//!   [`STATUS_FIELDS`] single-source table, so `GET /v1/status` and
//!   `GET /v1/metrics` can never disagree about what a counter means.
//!
//! Gauges (queue depth, active jobs, pending acks, migrating seats)
//! are *set here*, from the status report the caller just took — not
//! maintained in the runtime's poll loop — so the hot path pays
//! nothing for values only a scraper reads.
//!
//! The body is Prometheus text, not JSON; the embedding binary owns
//! the `Content-Type: text/plain; version=0.0.4` header, as it owns
//! all transport concerns.

use sdn_obs::{Gauge, Obs};

use crate::rest::response::Response;
use crate::rest::status::STATUS_FIELDS;
use crate::runtime::StatusReport;

/// The `200 OK` response for `GET /v1/metrics`.
pub fn metrics_response(obs: &Obs, report: &StatusReport) -> Response {
    obs.set_gauge(Gauge::QueueDepth, report.queued as i64);
    obs.set_gauge(Gauge::ActiveJobs, report.active as i64);
    obs.set_gauge(Gauge::PendingAcks, report.pending_acks as i64);
    obs.set_gauge(Gauge::Migrating, report.migrating.len() as i64);
    let stats = &report.stats;
    let extras: Vec<(&str, &str, u64)> = STATUS_FIELDS
        .iter()
        .map(|f| (f.prom, f.help, (f.get)(stats)))
        .collect();
    Response {
        status: 200,
        body: obs.prometheus_with(&extras),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeStats;
    use sdn_obs::{prometheus, Ctr, EventKind, HistId};
    use sdn_types::SimTime;

    fn report() -> StatusReport {
        StatusReport {
            queued: 2,
            active: 3,
            pending_acks: 4,
            migrating: vec![sdn_types::DpId(9)],
            stats: RuntimeStats {
                submitted: 11,
                completed: 7,
                ..RuntimeStats::default()
            },
            ..StatusReport::default()
        }
    }

    #[test]
    fn page_is_valid_prometheus_and_carries_both_sources() {
        let obs = Obs::recording();
        obs.inc(Ctr::Submitted);
        obs.observe(HistId::ViolationWindowNs, 40_000);
        obs.emit(sdn_obs::Event::new(SimTime::ZERO, EventKind::Submit).span(1));
        let r = metrics_response(&obs, &report());
        assert_eq!(r.status, 200);
        prometheus::validate(&r.body).expect("page must validate");
        assert!(r.body.contains("sdn_updates_submitted_total 1"));
        assert!(r.body.contains("sdn_violation_window_ns_count 1"));
        assert!(r.body.contains("sdn_status_submitted_total 11"));
        assert!(r.body.contains("sdn_status_completed_total 7"));
    }

    #[test]
    fn gauges_reflect_the_scraped_report() {
        let obs = Obs::recording();
        let r = metrics_response(&obs, &report());
        assert!(r.body.contains("sdn_queue_depth 2"));
        assert!(r.body.contains("sdn_active_jobs 3"));
        assert!(r.body.contains("sdn_pending_acks 4"));
        assert!(r.body.contains("sdn_migrating_seats 1"));
    }

    #[test]
    fn disabled_obs_still_serves_the_status_counters() {
        let r = metrics_response(&Obs::disabled(), &report());
        assert_eq!(r.status, 200);
        prometheus::validate(&r.body).expect("page must validate");
        assert!(r.body.contains("sdn_status_submitted_total 11"));
    }
}
