//! A small, strict JSON parser and serializer.
//!
//! The demo's controller speaks a REST/JSON dialect; the approved
//! dependency list has no JSON crate, so this module implements the
//! subset of RFC 8259 the interface needs (in fact, all of JSON minus
//! some float edge cases): objects, arrays, strings with escapes,
//! numbers, booleans, null. Errors carry byte offsets and a structured
//! [`JsonErrorKind`].
//!
//! Every dimension of parser work is bounded ([`ParseLimits`]):
//! document size, nesting depth, object fields, array elements and
//! string length. [`parse`] applies permissive defaults (depth only);
//! the REST request layer parses with much tighter limits so a hostile
//! request body costs bounded memory and CPU before rejection.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 64;

/// Work/memory bounds applied while parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum document size in bytes (checked before scanning).
    pub max_bytes: usize,
    /// Maximum nesting depth.
    pub max_depth: usize,
    /// Maximum object fields across the whole document.
    pub max_fields: usize,
    /// Maximum array elements across the whole document.
    pub max_elements: usize,
    /// Maximum decoded length of any single string, in bytes.
    pub max_string_bytes: usize,
}

impl Default for ParseLimits {
    /// The permissive defaults [`parse`] uses: depth-bounded only.
    fn default() -> Self {
        ParseLimits {
            max_bytes: usize::MAX,
            max_depth: MAX_DEPTH,
            max_fields: usize::MAX,
            max_elements: usize::MAX,
            max_string_bytes: usize::MAX,
        }
    }
}

/// What a [`JsonError`] structurally is — callers branch on this
/// instead of matching message strings (and the REST layer maps limit
/// kinds to backpressure-style responses rather than syntax errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Malformed JSON.
    Syntax,
    /// Document exceeds [`ParseLimits::max_bytes`].
    TooLarge,
    /// Nesting exceeds [`ParseLimits::max_depth`].
    TooDeep,
    /// Object fields exceed [`ParseLimits::max_fields`].
    TooManyFields,
    /// Array elements exceed [`ParseLimits::max_elements`].
    TooManyElements,
    /// A string exceeds [`ParseLimits::max_string_bytes`].
    StringTooLong,
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order preserved by BTreeMap's key sort).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Value as u64 if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Value as str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Value as array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Value as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse errors with byte offsets and a structured kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub at: usize,
    /// Structured classification.
    pub kind: JsonErrorKind,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected) under the permissive default limits.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    parse_with(input, &ParseLimits::default())
}

/// Parse under explicit work/memory bounds.
pub fn parse_with(input: &str, limits: &ParseLimits) -> Result<Json, JsonError> {
    if input.len() > limits.max_bytes {
        return Err(JsonError {
            at: 0,
            kind: JsonErrorKind::TooLarge,
            reason: format!(
                "document is {} bytes, limit {}",
                input.len(),
                limits.max_bytes
            ),
        });
    }
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        limits: *limits,
        fields: 0,
        elements: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    limits: ParseLimits,
    fields: usize,
    elements: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> JsonError {
        self.err_kind(JsonErrorKind::Syntax, reason)
    }

    fn err_kind(&self, kind: JsonErrorKind, reason: &str) -> JsonError {
        JsonError {
            at: self.pos,
            kind,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > self.limits.max_depth {
            return Err(self.err_kind(JsonErrorKind::TooDeep, "nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.fields += 1;
            if self.fields > self.limits.max_fields {
                return Err(self.err_kind(JsonErrorKind::TooManyFields, "too many object fields"));
            }
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.elements += 1;
            if self.elements > self.limits.max_elements {
                return Err(
                    self.err_kind(JsonErrorKind::TooManyElements, "too many array elements")
                );
            }
            let v = self.value(depth + 1)?;
            items.push(v);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            if s.len() > self.limits.max_string_bytes {
                return Err(self.err_kind(JsonErrorKind::StringTooLong, "string too long"));
            }
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{08}'),
                    Some(b'f') => s.push('\u{0c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // surrogate pairs
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("missing low surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined =
                                0x10000 + (((cp - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32;
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp as u32)
                        };
                        match c {
                            Some(c) => s.push(c),
                            None => return Err(self.err("invalid code point")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // re-assemble UTF-8 multibyte sequences
                    if b < 0x80 {
                        s.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = start + width;
                        if width == 0 || end > self.bytes.len() {
                            return Err(self.err("invalid UTF-8"));
                        }
                        match std::str::from_utf8(&self.bytes[start..end]) {
                            Ok(chunk) => {
                                s.push_str(chunk);
                                self.pos = end;
                            }
                            Err(_) => return Err(self.err("invalid UTF-8")),
                        }
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = (v << 4) | d as u16;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.5").unwrap(), Json::Num(-3.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_demo_request_shape() {
        let doc = r#"{
            "oldpath":[1,2,3,4,5,6,12],
            "newpath":[1,7,3,8,9,10,11,12],
            "wp":3,
            "interval":100
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("wp").and_then(Json::as_u64), Some(3));
        let old = v.get("oldpath").and_then(Json::as_array).unwrap();
        assert_eq!(old.len(), 7);
        assert_eq!(old[0].as_u64(), Some(1));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\nd\t/""#).unwrap(),
            Json::Str("a\"b\\c\nd\t/".into())
        );
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(parse("\"⟨s1⟩\"").unwrap(), Json::Str("⟨s1⟩".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("+1").is_err());
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let e = parse(&deep).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooDeep);
    }

    fn tight_limits() -> ParseLimits {
        ParseLimits {
            max_bytes: 64,
            max_depth: 3,
            max_fields: 4,
            max_elements: 5,
            max_string_bytes: 8,
        }
    }

    #[test]
    fn limit_document_size() {
        let doc = format!("[{}]", "1,".repeat(40) + "1");
        let e = parse_with(&doc, &tight_limits()).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooLarge);
    }

    #[test]
    fn limit_field_count() {
        let e = parse_with(r#"{"a":1,"b":2,"c":3,"d":4,"e":5}"#, &tight_limits()).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooManyFields);
        assert!(parse_with(r#"{"a":1,"b":2,"c":3,"d":4}"#, &tight_limits()).is_ok());
    }

    #[test]
    fn limit_element_count() {
        let e = parse_with("[1,2,3,4,5,6]", &tight_limits()).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooManyElements);
        assert!(parse_with("[1,2,3,4,5]", &tight_limits()).is_ok());
    }

    #[test]
    fn limit_element_count_is_global_across_nesting() {
        let e = parse_with("[[1,2],[3,4,5,6]]", &tight_limits()).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooManyElements);
    }

    #[test]
    fn limit_string_length() {
        let e = parse_with(r#""aaaaaaaaaaaaaaaaaa""#, &tight_limits()).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::StringTooLong);
        assert!(parse_with(r#""aaaa""#, &tight_limits()).is_ok());
    }

    #[test]
    fn limit_depth() {
        let e = parse_with("[[[[1]]]]", &tight_limits()).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooDeep);
        assert!(parse_with("[[[1]]]", &tight_limits()).is_ok());
    }

    #[test]
    fn syntax_errors_keep_syntax_kind() {
        assert_eq!(parse("{").unwrap_err().kind, JsonErrorKind::Syntax);
        assert_eq!(parse("[1,]").unwrap_err().kind, JsonErrorKind::Syntax);
    }

    #[test]
    fn error_reports_offset() {
        let e = parse("{\"a\": @}").unwrap_err();
        assert_eq!(e.at, 6);
        assert!(e.to_string().contains("byte 6"));
    }

    #[test]
    fn render_roundtrip() {
        let doc = r#"{"b":[1,2,{"c":null}],"a":"x\ny","n":-2.5,"t":true}"#;
        let v = parse(doc).unwrap();
        let rendered = v.render();
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn render_integers_without_fraction() {
        assert_eq!(Json::Num(100.0).render(), "100");
        assert_eq!(Json::Num(0.5).render(), "0.5");
    }

    #[test]
    fn object_accessors() {
        let v = parse(r#"{"x": 1, "s": "y", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.get("x").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("s").unwrap().as_str(), Some("y"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.0));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
