//! The demo's REST interface: a JSON value model ([`json`], with
//! per-request parser work limits), the WayUp request format
//! ([`request`]) and structured responses — including the bounded
//! runtime's backpressure ([`response`]).

pub mod json;
pub mod request;
pub mod response;
