//! The demo's REST interface: a JSON value model ([`json`], with
//! per-request parser work limits), the WayUp request format
//! ([`request`]), structured responses — including the bounded
//! runtime's backpressure ([`response`]) — and live runtime
//! introspection for `GET /status` ([`status`]).

pub mod json;
pub mod request;
pub mod response;
pub mod status;
