//! The controller's REST interface: a JSON value model ([`json`],
//! with per-request parser work limits), the WayUp request format
//! extended with v1 submission intent ([`request`]), structured
//! responses — admission backpressure, `429` tenant-quota refusals
//! ([`response`]) — versioned `/v1/*` endpoint routing with legacy
//! `308` redirects ([`router`]), live shard- and tenant-aware
//! runtime introspection for `GET /v1/status` ([`status`]),
//! Prometheus text exposition for `GET /v1/metrics` ([`metrics`]),
//! and per-update span trees for `GET /v1/trace/{job}` ([`trace`]).

pub mod json;
pub mod metrics;
pub mod request;
pub mod response;
pub mod router;
pub mod status;
pub mod trace;
