//! The demo's REST interface: a JSON value model ([`json`]) and the
//! WayUp request format ([`request`]).

pub mod json;
pub mod request;
