//! Structured REST responses: admission outcomes and request errors.
//!
//! The demo's Ryu app answered every request `200 OK`; with a bounded
//! admission queue the controller must be able to say *no* — and say
//! it in a form clients can act on. Responses are `(status code,
//! JSON body)` pairs in the demo's own JSON dialect:
//!
//! * `202 {"status":"queued","job":7,"queued":3}` — accepted;
//! * `202 {"status":"queued","job":8,"displaced":"u5 (...)"}` —
//!   accepted by shedding an older waiting job (drop-oldest policy);
//! * `503 {"status":"rejected","reason":"queue full","retry":true}` —
//!   backpressure; the client should retry later;
//! * `400/413 {"status":"error",...}` — malformed or over-limit
//!   request, with the parser's byte offset when available.

use std::collections::BTreeMap;

use crate::rest::json::Json;
use crate::rest::request::RequestError;
use crate::runtime::AdmitOutcome;

/// An HTTP-ish status code plus a JSON body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code (202, 400, 413, 503).
    pub status: u16,
    /// Rendered JSON body.
    pub body: String,
}

fn render(fields: Vec<(&str, Json)>) -> String {
    let map: BTreeMap<String, Json> = fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    Json::Obj(map).render()
}

/// The response for an admission outcome. `queued` is the runtime's
/// current queue depth (lets clients observe backlog).
pub fn admission_response(outcome: &AdmitOutcome, queued: usize) -> Response {
    match outcome {
        AdmitOutcome::Queued { id } => Response {
            status: 202,
            body: render(vec![
                ("status", Json::Str("queued".into())),
                ("job", Json::Num(id.0 as f64)),
                ("queued", Json::Num(queued as f64)),
            ]),
        },
        AdmitOutcome::QueuedDisplacing { id, dropped } => Response {
            status: 202,
            body: render(vec![
                ("status", Json::Str("queued".into())),
                ("job", Json::Num(id.0 as f64)),
                ("queued", Json::Num(queued as f64)),
                ("displaced", Json::Str(dropped.1.clone())),
            ]),
        },
        AdmitOutcome::Rejected(reason) => Response {
            status: 503,
            body: render(vec![
                ("status", Json::Str("rejected".into())),
                ("reason", Json::Str(reason.to_string())),
                ("retry", Json::Bool(true)),
            ]),
        },
    }
}

/// The response for a request that failed parsing/validation.
/// Limit violations answer `413` (payload too large / too much work);
/// everything else is a `400`.
pub fn error_response(err: &RequestError) -> Response {
    let status = if err.is_limit() { 413 } else { 400 };
    let mut fields = vec![
        ("status", Json::Str("error".into())),
        ("detail", Json::Str(err.to_string())),
    ];
    if let RequestError::BadJson(e) = err {
        fields.push(("at", Json::Num(e.at as f64)));
    }
    Response {
        status,
        body: render(fields),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rest::json;
    use crate::rest::request::UpdateRequest;
    use crate::runtime::conflict::JobId;
    use crate::runtime::RejectReason;

    #[test]
    fn queued_response_shape() {
        let r = admission_response(&AdmitOutcome::Queued { id: JobId(7) }, 3);
        assert_eq!(r.status, 202);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("queued"));
        assert_eq!(v.get("job").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("queued").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn displacing_response_names_the_victim() {
        let r = admission_response(
            &AdmitOutcome::QueuedDisplacing {
                id: JobId(8),
                dropped: (JobId(5), "old-job".into()),
            },
            2,
        );
        assert_eq!(r.status, 202);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("displaced").unwrap().as_str(), Some("old-job"));
    }

    #[test]
    fn rejected_response_is_backpressure() {
        let r = admission_response(&AdmitOutcome::Rejected(RejectReason::QueueFull), 9);
        assert_eq!(r.status, 503);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("rejected"));
        assert_eq!(v.get("retry").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn syntax_error_is_400_with_offset() {
        let err = UpdateRequest::parse("{\"a\": @}").unwrap_err();
        let r = error_response(&err);
        assert_eq!(r.status, 400);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("at").unwrap().as_u64(), Some(6));
    }

    #[test]
    fn limit_error_is_413() {
        let deep = format!(
            r#"{{"oldpath":[1,2],"newpath":[1,2],"x":{}{}}}"#,
            "[".repeat(30),
            "]".repeat(30)
        );
        let err = UpdateRequest::parse(&deep).unwrap_err();
        let r = error_response(&err);
        assert_eq!(r.status, 413);
    }
}
