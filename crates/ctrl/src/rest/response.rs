//! Structured REST responses: admission outcomes and request errors.
//!
//! The demo's Ryu app answered every request `200 OK`; with a bounded
//! admission queue the controller must be able to say *no* — and say
//! it in a form clients can act on. Responses are `(status code,
//! JSON body)` pairs in the demo's own JSON dialect:
//!
//! * `202 {"status":"queued","job":7,"queued":3}` — accepted;
//! * `202 {"status":"queued","job":8,"displaced":"u5 (...)"}` —
//!   accepted by shedding an older waiting job (drop-oldest policy);
//! * `503 {"status":"rejected","reason":"queue full","retry":true}` —
//!   backpressure; the client should retry later;
//! * `400/413 {"status":"error",...}` — malformed or over-limit
//!   request, with the parser's byte offset when available.

use std::collections::BTreeMap;

use crate::rest::json::Json;
use crate::rest::request::RequestError;
use crate::runtime::{AdmitOutcome, SubmitError, SubmitOutcome};

/// An HTTP-ish status code plus a JSON body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code (202, 400, 413, 503).
    pub status: u16,
    /// Rendered JSON body.
    pub body: String,
}

fn render(fields: Vec<(&str, Json)>) -> String {
    let map: BTreeMap<String, Json> = fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    Json::Obj(map).render()
}

/// The response for an admission outcome. `queued` is the runtime's
/// current queue depth (lets clients observe backlog).
pub fn admission_response(outcome: &AdmitOutcome, queued: usize) -> Response {
    match outcome {
        AdmitOutcome::Queued { id } => Response {
            status: 202,
            body: render(vec![
                ("status", Json::Str("queued".into())),
                ("job", Json::Num(id.0 as f64)),
                ("queued", Json::Num(queued as f64)),
            ]),
        },
        AdmitOutcome::QueuedDisplacing { id, dropped } => Response {
            status: 202,
            body: render(vec![
                ("status", Json::Str("queued".into())),
                ("job", Json::Num(id.0 as f64)),
                ("queued", Json::Num(queued as f64)),
                ("displaced", Json::Str(dropped.1.clone())),
            ]),
        },
        AdmitOutcome::Rejected(reason) => Response {
            status: 503,
            body: render(vec![
                ("status", Json::Str("rejected".into())),
                ("reason", Json::Str(reason.to_string())),
                ("retry", Json::Bool(true)),
            ]),
        },
    }
}

/// The v1 response for a [`SubmitOutcome`]. Tickets answer `202` with
/// the job id and placement; refusals are typed:
///
/// * `429 {"status":"rejected","reason":"quota exceeded","tenant":3,
///   "limit":2,"in_flight":2,"retry":true}` — the tenant's in-flight
///   budget is spent; retrying after a completion is sound;
/// * `503` — queue backpressure, exactly as the legacy endpoint;
/// * `422 {"retry":false}` — the deadline had already passed at
///   submission, so the identical request can never succeed.
pub fn submit_response(outcome: &SubmitOutcome) -> Response {
    match outcome {
        Ok(ticket) => {
            let mut fields = vec![
                ("status", Json::Str("queued".into())),
                ("job", Json::Num(ticket.job.0 as f64)),
                ("queued", Json::Num(ticket.queued as f64)),
                ("cross_shard", Json::Bool(ticket.cross_shard)),
            ];
            if let Some(shard) = ticket.shard {
                fields.push(("shard", Json::Num(shard as f64)));
            }
            if let Some((_, label)) = &ticket.displaced {
                fields.push(("displaced", Json::Str(label.clone())));
            }
            Response {
                status: 202,
                body: render(fields),
            }
        }
        Err(SubmitError::QuotaExceeded {
            tenant,
            limit,
            in_flight,
        }) => Response {
            status: 429,
            body: render(vec![
                ("status", Json::Str("rejected".into())),
                ("reason", Json::Str("quota exceeded".into())),
                ("tenant", Json::Num(tenant.0 as f64)),
                ("limit", Json::Num(*limit as f64)),
                ("in_flight", Json::Num(*in_flight as f64)),
                ("retry", Json::Bool(true)),
            ]),
        },
        Err(SubmitError::QueueFull) => Response {
            status: 503,
            body: render(vec![
                ("status", Json::Str("rejected".into())),
                ("reason", Json::Str("queue full".into())),
                ("retry", Json::Bool(true)),
            ]),
        },
        Err(SubmitError::DeadlineExpired) => Response {
            status: 422,
            body: render(vec![
                ("status", Json::Str("rejected".into())),
                ("reason", Json::Str("deadline already expired".into())),
                ("retry", Json::Bool(false)),
            ]),
        },
    }
}

/// The response for a request that failed parsing/validation.
/// Limit violations answer `413` (payload too large / too much work);
/// everything else is a `400`.
pub fn error_response(err: &RequestError) -> Response {
    let status = if err.is_limit() { 413 } else { 400 };
    let mut fields = vec![
        ("status", Json::Str("error".into())),
        ("detail", Json::Str(err.to_string())),
    ];
    if let RequestError::BadJson(e) = err {
        fields.push(("at", Json::Num(e.at as f64)));
    }
    Response {
        status,
        body: render(fields),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rest::json;
    use crate::rest::request::UpdateRequest;
    use crate::runtime::conflict::JobId;
    use crate::runtime::RejectReason;

    #[test]
    fn queued_response_shape() {
        let r = admission_response(&AdmitOutcome::Queued { id: JobId(7) }, 3);
        assert_eq!(r.status, 202);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("queued"));
        assert_eq!(v.get("job").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("queued").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn displacing_response_names_the_victim() {
        let r = admission_response(
            &AdmitOutcome::QueuedDisplacing {
                id: JobId(8),
                dropped: (JobId(5), "old-job".into()),
            },
            2,
        );
        assert_eq!(r.status, 202);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("displaced").unwrap().as_str(), Some("old-job"));
    }

    #[test]
    fn rejected_response_is_backpressure() {
        let r = admission_response(&AdmitOutcome::Rejected(RejectReason::QueueFull), 9);
        assert_eq!(r.status, 503);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("rejected"));
        assert_eq!(v.get("retry").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn submit_ticket_names_shard_and_protocol() {
        use crate::runtime::SubmitTicket;
        let r = submit_response(&Ok(SubmitTicket {
            job: JobId(4294967296),
            shard: Some(2),
            queued: 1,
            displaced: None,
            cross_shard: false,
        }));
        assert_eq!(r.status, 202);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("job").unwrap().as_u64(), Some(4294967296));
        assert_eq!(v.get("shard").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("cross_shard").unwrap().as_bool(), Some(false));

        let r = submit_response(&Ok(SubmitTicket {
            job: JobId(9),
            shard: None,
            queued: 0,
            displaced: Some((JobId(5), "old-job".into())),
            cross_shard: true,
        }));
        let v = json::parse(&r.body).unwrap();
        assert!(v.get("shard").is_none(), "coordinator-owned: no shard");
        assert_eq!(v.get("cross_shard").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("displaced").unwrap().as_str(), Some("old-job"));
    }

    #[test]
    fn quota_rejection_is_429_with_structured_body() {
        use crate::runtime::TenantId;
        let r = submit_response(&Err(SubmitError::QuotaExceeded {
            tenant: TenantId(3),
            limit: 2,
            in_flight: 2,
        }));
        assert_eq!(r.status, 429);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("tenant").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("limit").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("in_flight").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("retry").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn queue_full_and_expired_deadline_differ_in_retryability() {
        let r = submit_response(&Err(SubmitError::QueueFull));
        assert_eq!(r.status, 503);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("retry").unwrap().as_bool(), Some(true));
        let r = submit_response(&Err(SubmitError::DeadlineExpired));
        assert_eq!(r.status, 422);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("retry").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn syntax_error_is_400_with_offset() {
        let err = UpdateRequest::parse("{\"a\": @}").unwrap_err();
        let r = error_response(&err);
        assert_eq!(r.status, 400);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("at").unwrap().as_u64(), Some(6));
    }

    #[test]
    fn limit_error_is_413() {
        let deep = format!(
            r#"{{"oldpath":[1,2],"newpath":[1,2],"x":{}{}}}"#,
            "[".repeat(30),
            "]".repeat(30)
        );
        let err = UpdateRequest::parse(&deep).unwrap_err();
        let r = error_response(&err);
        assert_eq!(r.status, 413);
    }
}
