//! The round executor: barrier-synchronized round dispatch.
//!
//! Mirrors the demo's §2 word for word: *"In the current round, there
//! are a set of switches which have to be updated. The SDN controller
//! retrieves the corresponding OpenFlow message for every switch in the
//! set and sends them out to the switches. Later, the SDN controller
//! sends a barrier request to every switch of the set and waits for
//! barrier replies. For every barrier reply received by the SDN
//! controller, it determines the source switch. This switch is removed
//! from the set of switches of the current round... If the set is
//! empty, the current round finishes."*
//!
//! On top of the paper's logic, the executor retries a round when
//! barrier replies do not arrive within a timeout — FlowMods are
//! idempotent (Add-replace / exact Delete), so resending to the
//! unacknowledged switches is safe and makes updates reliable over a
//! lossy channel.

use std::collections::BTreeMap;

use sdn_openflow::messages::{Envelope, OfMessage};
use sdn_types::{DpId, SimDuration, SimTime, Xid};

use crate::compile::CompiledUpdate;

/// Allocates transaction ids.
#[derive(Debug, Clone, Default)]
pub struct XidAlloc {
    next: Xid,
}

impl XidAlloc {
    /// Start from 1 (0 is reserved for unsolicited messages).
    pub fn new() -> Self {
        XidAlloc { next: Xid(1) }
    }

    /// Start from `base` (clamped to 1). Runtimes sharing a transport —
    /// the fabric's shards and its coordinator — carve the xid space
    /// into disjoint ranges so a reply routes to its owner by value.
    pub fn with_base(base: u32) -> Self {
        XidAlloc {
            next: Xid(base.max(1)),
        }
    }

    /// Allocate the next xid.
    pub fn alloc(&mut self) -> Xid {
        let x = self.next;
        self.next = self.next.next();
        x
    }
}

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// How long to wait for a round's barrier replies before
    /// retransmitting.
    pub barrier_timeout: SimDuration,
    /// Attempts per round before giving up (1 = no retries).
    pub max_attempts: u32,
    /// Require a per-FlowMod acknowledgement in addition to the round
    /// barrier. Each FlowMod is paired with an [`OfMessage::EchoRequest`]
    /// whose payload is the encoded FlowMod frame; the switch applies
    /// the payload before echoing, so the echo reply *proves* the rule
    /// is installed. This closes the reliable-delivery hole where a
    /// dropped FlowMod's barrier survives: the barrier fences only
    /// what *arrived*, so a barrier reply alone cannot confirm
    /// installation on a lossy channel. Off by default to keep the
    /// barrier-only baseline comparable; the live transport suites
    /// turn it on.
    pub flowmod_acks: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            barrier_timeout: SimDuration::from_millis(250),
            max_attempts: 8,
            flowmod_acks: false,
        }
    }
}

/// Executor lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecState {
    /// Not started.
    Idle,
    /// Waiting out a drain grace period before dispatching the next
    /// (rule-removing) round.
    WaitingGrace,
    /// A round is in flight, waiting for barrier replies.
    AwaitingBarriers,
    /// All rounds acknowledged.
    Done,
    /// A round exceeded its attempt budget.
    Failed,
}

/// Timing record of one round (feeds the update-time evaluation, E2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundTiming {
    /// Round index (0-based).
    pub round: usize,
    /// When the round's messages were first dispatched.
    pub started: SimTime,
    /// When the last barrier reply arrived.
    pub completed: Option<SimTime>,
    /// Dispatch attempts (1 = no retransmissions).
    pub attempts: u32,
}

/// Whether a round message participates in per-payload
/// acknowledgement (only FlowMods carry installation state worth
/// verifying; anything else rides the barrier as before).
fn ack_eligible(msg: &OfMessage) -> bool {
    matches!(msg, OfMessage::FlowMod(_))
}

/// One outstanding payload-ack (echo) transmission.
#[derive(Debug, Clone)]
struct AckEntry {
    /// Index of the round message this echo covers.
    covered: usize,
    /// The exact bytes sent as the echo payload (the encoded FlowMod
    /// envelope). A reply only counts as an acknowledgement if it
    /// returns these bytes verbatim: a corrupted payload still gets
    /// echoed by a compliant switch, but proves nothing about
    /// installation.
    payload: Vec<u8>,
}

/// Outstanding work for one switch of the current round.
#[derive(Debug, Clone, Default)]
struct SwitchPending {
    /// Latest barrier xid; `None` once the barrier is acknowledged.
    barrier: Option<Xid>,
    /// Outstanding payload-ack (echo) transmissions by xid. Every
    /// transmission stays valid until the payload is acknowledged: the
    /// echo payload is the FlowMod itself, so a late reply to an older
    /// xid still proves installation.
    acks: BTreeMap<Xid, AckEntry>,
}

impl SwitchPending {
    fn done(&self) -> bool {
        self.barrier.is_none() && self.acks.is_empty()
    }
}

/// The per-update round executor.
#[derive(Debug, Clone)]
pub struct RoundExecutor {
    update: CompiledUpdate,
    config: ExecConfig,
    state: ExecState,
    current: usize,
    /// Outstanding barrier/payload acknowledgements per switch for the
    /// current round.
    pending: BTreeMap<DpId, SwitchPending>,
    round_started: SimTime,
    grace_until: SimTime,
    attempts: u32,
    /// Barrier set size of the round currently in flight (recorded at
    /// dispatch so width queries stay O(1)).
    current_width: usize,
    /// Per-switch barrier retransmissions over the whole update (one
    /// per resent barrier, the unit the runtime stats use).
    retransmissions: u64,
    timings: Vec<RoundTiming>,
}

impl RoundExecutor {
    /// New executor for a compiled update.
    pub fn new(update: CompiledUpdate, config: ExecConfig) -> Self {
        RoundExecutor {
            update,
            config,
            state: ExecState::Idle,
            current: 0,
            pending: BTreeMap::new(),
            round_started: SimTime::ZERO,
            grace_until: SimTime::ZERO,
            attempts: 0,
            current_width: 0,
            retransmissions: 0,
            timings: Vec::new(),
        }
    }

    /// An executor that resumes a recovered update at `round`
    /// (0-based): earlier rounds are taken as committed and never
    /// re-dispatched. Replaying them would be *safe* (FlowMods are
    /// idempotent) but wasteful; crash recovery trusts the journal's
    /// round-commit records instead. `start` then dispatches from
    /// `round`, or reports `Done` immediately when every round had
    /// committed before the crash.
    pub fn resume(update: CompiledUpdate, config: ExecConfig, round: usize) -> Self {
        let mut ex = Self::new(update, config);
        ex.current = round;
        ex
    }

    /// Lifecycle state.
    pub fn state(&self) -> ExecState {
        self.state
    }

    /// The compiled update being executed (recovery journalling).
    pub fn update(&self) -> &CompiledUpdate {
        &self.update
    }

    /// The update's label.
    pub fn label(&self) -> &str {
        &self.update.label
    }

    /// Per-round timing log.
    pub fn timings(&self) -> &[RoundTiming] {
        &self.timings
    }

    /// Index of the in-flight round.
    pub fn current_round(&self) -> usize {
        self.current
    }

    /// Switches of the current round still awaiting a barrier reply.
    pub fn pending_switches(&self) -> impl Iterator<Item = DpId> + '_ {
        self.pending.keys().copied()
    }

    /// Number of switches still pending in the current round.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Size (in switches) of the round currently in flight — recorded
    /// at dispatch, so this is O(1); zero before the first dispatch
    /// and during a grace wait.
    pub fn current_round_width(&self) -> usize {
        if self.state == ExecState::AwaitingBarriers {
            self.current_width
        } else {
            0
        }
    }

    /// Per-switch barrier retransmissions so far (one per resent
    /// barrier, whether round-level timeout or targeted).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Total outstanding payload acknowledgements in the current
    /// round (0 unless [`ExecConfig::flowmod_acks`] is on).
    pub fn pending_acks(&self) -> usize {
        self.pending.values().map(|p| p.acks.len()).sum()
    }

    /// Re-dispatch the current round's unacknowledged payloads and a
    /// *fresh* barrier to a subset of the still-pending switches. This
    /// is the per-switch retransmission hook the concurrent runtime
    /// drives from its adaptive RTO timers — unlike
    /// [`RoundExecutor::on_tick`] it never consults the fixed round
    /// timeout. Bumps the round's attempt counter once per call that
    /// actually resends.
    pub fn retransmit(&mut self, xids: &mut XidAlloc, targets: &[DpId]) -> Vec<(DpId, Envelope)> {
        if self.state != ExecState::AwaitingBarriers {
            return Vec::new();
        }
        let out = self.resend_to(xids, |dp| targets.contains(&dp));
        let resent: std::collections::BTreeSet<DpId> = out.iter().map(|(d, _)| *d).collect();
        if !resent.is_empty() {
            self.retransmissions += resent.len() as u64;
            self.attempts += 1;
            if let Some(t) = self.timings.last_mut() {
                t.attempts = self.attempts;
            }
        }
        out
    }

    /// Resend outstanding work to every pending switch accepted by
    /// `want`: unacknowledged payloads (with fresh payload-ack echoes
    /// in ack mode — older xids stay valid), then a fresh barrier
    /// unless the switch's barrier is already acknowledged. With acks
    /// off this degenerates to the classic behaviour: all of the
    /// switch's FlowMods plus a re-keyed barrier.
    fn resend_to(
        &mut self,
        xids: &mut XidAlloc,
        want: impl Fn(DpId) -> bool,
    ) -> Vec<(DpId, Envelope)> {
        let acks_on = self.config.flowmod_acks;
        let round = &self.update.rounds[self.current].msgs;
        let mut out = Vec::new();
        for (j, (dp, msg)) in round.iter().enumerate() {
            if !want(*dp) {
                continue;
            }
            let Some(entry) = self.pending.get_mut(dp) else {
                continue;
            };
            let tracked = acks_on && ack_eligible(msg);
            if tracked && !entry.acks.values().any(|a| a.covered == j) {
                continue; // payload already acknowledged
            }
            let fm_xid = xids.alloc();
            out.push((*dp, Envelope::new(fm_xid, msg.clone())));
            if tracked {
                let payload =
                    sdn_openflow::codec::encode(&Envelope::new(fm_xid, msg.clone())).to_vec();
                let echo_xid = xids.alloc();
                entry.acks.insert(
                    echo_xid,
                    AckEntry {
                        covered: j,
                        payload: payload.clone(),
                    },
                );
                out.push((
                    *dp,
                    Envelope::new(echo_xid, OfMessage::EchoRequest(payload)),
                ));
            }
        }
        let targets: Vec<DpId> = self
            .pending
            .keys()
            .copied()
            .filter(|dp| want(*dp))
            .collect();
        for dp in targets {
            let entry = self.pending.get_mut(&dp).expect("filtered on keys");
            if entry.barrier.is_none() && acks_on {
                continue; // barrier acked; only payload acks are missing
            }
            let xid = xids.alloc();
            entry.barrier = Some(xid);
            out.push((dp, Envelope::new(xid, OfMessage::BarrierRequest)));
        }
        out
    }

    /// Abort the update (the runtime's per-switch attempt budget was
    /// exhausted). The job reports as failed.
    pub fn force_fail(&mut self) {
        self.state = ExecState::Failed;
    }

    /// Begin execution: dispatch round 0 (or start its grace wait).
    pub fn start(&mut self, now: SimTime, xids: &mut XidAlloc) -> Vec<(DpId, Envelope)> {
        assert_eq!(self.state, ExecState::Idle, "start() called twice");
        if self.current >= self.update.rounds.len() {
            self.state = ExecState::Done;
            return Vec::new();
        }
        self.begin_round(now, xids)
    }

    /// Enter the current round: honour its drain grace, then dispatch.
    fn begin_round(&mut self, now: SimTime, xids: &mut XidAlloc) -> Vec<(DpId, Envelope)> {
        let delay = self.update.rounds[self.current].pre_delay;
        if delay > sdn_types::SimDuration::ZERO {
            self.state = ExecState::WaitingGrace;
            self.grace_until = now + delay;
            Vec::new()
        } else {
            self.state = ExecState::AwaitingBarriers;
            self.dispatch_current(now, xids, false)
        }
    }

    /// Dispatch (or re-dispatch) the current round. With
    /// `only_pending`, restrict to switches that have not acknowledged
    /// (retransmission).
    fn dispatch_current(
        &mut self,
        now: SimTime,
        xids: &mut XidAlloc,
        only_pending: bool,
    ) -> Vec<(DpId, Envelope)> {
        if only_pending {
            // Round-timeout retransmission: resend outstanding work to
            // every still-pending switch.
            let out = self.resend_to(xids, |_| true);
            let resent: std::collections::BTreeSet<DpId> = out.iter().map(|(d, _)| *d).collect();
            self.retransmissions += resent.len() as u64;
            self.attempts += 1;
            if let Some(t) = self.timings.last_mut() {
                t.attempts = self.attempts;
            }
            return out;
        }
        let acks_on = self.config.flowmod_acks;
        let round = &self.update.rounds[self.current].msgs;
        let targets: Vec<DpId> = {
            let mut t: Vec<DpId> = round.iter().map(|(dp, _)| *dp).collect();
            t.sort();
            t.dedup();
            t
        };
        self.pending.clear();
        for dp in &targets {
            self.pending.insert(*dp, SwitchPending::default());
        }
        let mut out = Vec::new();
        // Payloads first (each paired with its ack echo in ack mode)...
        for (j, (dp, msg)) in round.iter().enumerate() {
            let entry = self.pending.get_mut(dp).expect("inserted above");
            let fm_xid = xids.alloc();
            out.push((*dp, Envelope::new(fm_xid, msg.clone())));
            if acks_on && ack_eligible(msg) {
                let payload =
                    sdn_openflow::codec::encode(&Envelope::new(fm_xid, msg.clone())).to_vec();
                let echo_xid = xids.alloc();
                entry.acks.insert(
                    echo_xid,
                    AckEntry {
                        covered: j,
                        payload: payload.clone(),
                    },
                );
                out.push((
                    *dp,
                    Envelope::new(echo_xid, OfMessage::EchoRequest(payload)),
                ));
            }
        }
        // ...then one barrier per switch (FIFO connection ⇒ the barrier
        // fences everything above).
        for dp in &targets {
            let xid = xids.alloc();
            self.pending.get_mut(dp).expect("inserted above").barrier = Some(xid);
            out.push((*dp, Envelope::new(xid, OfMessage::BarrierRequest)));
        }
        self.current_width = targets.len();
        self.attempts = 1;
        self.round_started = now;
        self.timings.push(RoundTiming {
            round: self.current,
            started: now,
            completed: None,
            attempts: 1,
        });
        out
    }

    /// Feed a message from a switch. Returns follow-up commands (the
    /// next round's dispatch when this one completes).
    pub fn on_message(
        &mut self,
        now: SimTime,
        from: DpId,
        env: &Envelope,
        xids: &mut XidAlloc,
    ) -> Vec<(DpId, Envelope)> {
        if self.state != ExecState::AwaitingBarriers {
            return Vec::new();
        }
        let Some(entry) = self.pending.get_mut(&from) else {
            return Vec::new(); // switch already completed this round
        };
        match &env.msg {
            OfMessage::BarrierReply => {
                if entry.barrier != Some(env.xid) {
                    return Vec::new(); // stale/duplicate barrier reply
                }
                entry.barrier = None;
            }
            OfMessage::EchoReply(echoed) => {
                // A payload acknowledgement: the echo payload was the
                // FlowMod itself, so this reply proves installation of
                // the message it covers — retire every outstanding
                // transmission of that payload. The proof is only as
                // good as the round trip: a payload corrupted in either
                // direction comes back altered (the switch echoes what
                // it received and could not apply), so a mismatch is
                // ignored and the retransmission timer takes over.
                let Some(ack) = entry.acks.get(&env.xid) else {
                    return Vec::new(); // unsolicited or already-retired echo
                };
                if *echoed != ack.payload {
                    return Vec::new(); // corrupted round trip: no proof
                }
                let covered = ack.covered;
                entry.acks.retain(|_, a| a.covered != covered);
            }
            _ => return Vec::new(), // errors, stats: ignored here
        }
        // "it determines the source switch. This switch is removed
        // from the set of switches of the current round"
        if !entry.done() {
            return Vec::new();
        }
        self.pending.remove(&from);
        if !self.pending.is_empty() {
            return Vec::new();
        }
        // round complete
        if let Some(t) = self.timings.last_mut() {
            t.completed = Some(now);
        }
        self.current += 1;
        if self.current >= self.update.rounds.len() {
            self.state = ExecState::Done;
            return Vec::new();
        }
        self.begin_round(now, xids)
    }

    /// Clock tick: end grace waits, retransmit on timeout, fail when
    /// out of attempts.
    pub fn on_tick(&mut self, now: SimTime, xids: &mut XidAlloc) -> Vec<(DpId, Envelope)> {
        if self.state == ExecState::WaitingGrace {
            if now >= self.grace_until {
                self.state = ExecState::AwaitingBarriers;
                return self.dispatch_current(now, xids, false);
            }
            return Vec::new();
        }
        if self.state != ExecState::AwaitingBarriers {
            return Vec::new();
        }
        if now.saturating_since(self.round_started)
            < self
                .config
                .barrier_timeout
                .saturating_mul(self.attempts as u64)
        {
            return Vec::new();
        }
        if self.attempts >= self.config.max_attempts {
            self.state = ExecState::Failed;
            return Vec::new();
        }
        self.dispatch_current(now, xids, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_openflow::flow::FlowMatch;
    use sdn_openflow::messages::{FlowMod, FlowModCommand};
    use sdn_types::HostId;

    fn flowmod() -> OfMessage {
        OfMessage::FlowMod(FlowMod {
            command: FlowModCommand::Add,
            priority: 100,
            matcher: FlowMatch::dst_host(HostId(2)),
            actions: vec![],
            cookie: 0,
        })
    }

    fn update(rounds: Vec<Vec<u64>>) -> CompiledUpdate {
        CompiledUpdate {
            label: "test".into(),
            rounds: rounds
                .into_iter()
                .map(|dps| crate::compile::CompiledRound {
                    msgs: dps.into_iter().map(|d| (DpId(d), flowmod())).collect(),
                    pre_delay: SimDuration::ZERO,
                })
                .collect(),
        }
    }

    fn barriers_of(cmds: &[(DpId, Envelope)]) -> Vec<(DpId, Xid)> {
        cmds.iter()
            .filter(|(_, e)| e.msg == OfMessage::BarrierRequest)
            .map(|(d, e)| (*d, e.xid))
            .collect()
    }

    #[test]
    fn happy_path_two_rounds() {
        let mut xids = XidAlloc::new();
        let mut ex = RoundExecutor::new(update(vec![vec![5], vec![1, 3]]), ExecConfig::default());
        let cmds = ex.start(SimTime::ZERO, &mut xids);
        // round 1: flowmod to s5 + barrier to s5
        assert_eq!(cmds.len(), 2);
        let b = barriers_of(&cmds);
        assert_eq!(b.len(), 1);
        assert_eq!(ex.state(), ExecState::AwaitingBarriers);

        // barrier reply completes round 1 and dispatches round 2
        let next = ex.on_message(
            SimTime(1),
            b[0].0,
            &Envelope::new(b[0].1, OfMessage::BarrierReply),
            &mut xids,
        );
        assert_eq!(ex.current_round(), 1);
        let b2 = barriers_of(&next);
        assert_eq!(b2.len(), 2, "round 2 barriers to s1 and s3");

        // both replies finish the update
        for (dp, xid) in b2 {
            ex.on_message(
                SimTime(2),
                dp,
                &Envelope::new(xid, OfMessage::BarrierReply),
                &mut xids,
            );
        }
        assert_eq!(ex.state(), ExecState::Done);
        assert_eq!(ex.timings().len(), 2);
        assert!(ex.timings().iter().all(|t| t.completed.is_some()));
    }

    #[test]
    fn one_switch_acks_round_waits_for_other() {
        let mut xids = XidAlloc::new();
        let mut ex = RoundExecutor::new(update(vec![vec![1, 3]]), ExecConfig::default());
        let cmds = ex.start(SimTime::ZERO, &mut xids);
        let b = barriers_of(&cmds);
        let out = ex.on_message(
            SimTime(1),
            b[0].0,
            &Envelope::new(b[0].1, OfMessage::BarrierReply),
            &mut xids,
        );
        assert!(out.is_empty());
        assert_eq!(ex.state(), ExecState::AwaitingBarriers);
    }

    #[test]
    fn stale_xid_is_ignored() {
        let mut xids = XidAlloc::new();
        let mut ex = RoundExecutor::new(update(vec![vec![1]]), ExecConfig::default());
        let cmds = ex.start(SimTime::ZERO, &mut xids);
        let b = barriers_of(&cmds);
        // wrong xid
        ex.on_message(
            SimTime(1),
            b[0].0,
            &Envelope::new(Xid(9999), OfMessage::BarrierReply),
            &mut xids,
        );
        assert_eq!(ex.state(), ExecState::AwaitingBarriers);
        // duplicate correct reply after completion is also ignored
        ex.on_message(
            SimTime(2),
            b[0].0,
            &Envelope::new(b[0].1, OfMessage::BarrierReply),
            &mut xids,
        );
        assert_eq!(ex.state(), ExecState::Done);
        let out = ex.on_message(
            SimTime(3),
            b[0].0,
            &Envelope::new(b[0].1, OfMessage::BarrierReply),
            &mut xids,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn replies_from_unrelated_switch_ignored() {
        let mut xids = XidAlloc::new();
        let mut ex = RoundExecutor::new(update(vec![vec![1]]), ExecConfig::default());
        let cmds = ex.start(SimTime::ZERO, &mut xids);
        let b = barriers_of(&cmds);
        ex.on_message(
            SimTime(1),
            DpId(42),
            &Envelope::new(b[0].1, OfMessage::BarrierReply),
            &mut xids,
        );
        assert_eq!(ex.state(), ExecState::AwaitingBarriers);
    }

    #[test]
    fn timeout_retransmits_to_pending_only() {
        let mut xids = XidAlloc::new();
        let cfg = ExecConfig {
            barrier_timeout: SimDuration::from_millis(10),
            max_attempts: 3,
            flowmod_acks: false,
        };
        let mut ex = RoundExecutor::new(update(vec![vec![1, 3]]), cfg);
        let cmds = ex.start(SimTime::ZERO, &mut xids);
        let b = barriers_of(&cmds);
        // s1 acks, s3 does not
        ex.on_message(
            SimTime(1),
            b[0].0,
            &Envelope::new(b[0].1, OfMessage::BarrierReply),
            &mut xids,
        );
        // before timeout: nothing
        assert!(ex
            .on_tick(SimTime::ZERO + SimDuration::from_millis(5), &mut xids)
            .is_empty());
        // after timeout: resend only to s3
        let re = ex.on_tick(SimTime::ZERO + SimDuration::from_millis(11), &mut xids);
        assert!(!re.is_empty());
        assert!(re.iter().all(|(dp, _)| *dp == b[1].0));
        let rb = barriers_of(&re);
        assert_eq!(rb.len(), 1);
        // reply to the *new* barrier xid completes
        ex.on_message(
            SimTime::ZERO + SimDuration::from_millis(12),
            rb[0].0,
            &Envelope::new(rb[0].1, OfMessage::BarrierReply),
            &mut xids,
        );
        assert_eq!(ex.state(), ExecState::Done);
        assert_eq!(ex.timings()[0].attempts, 2);
    }

    #[test]
    fn attempt_budget_exhaustion_fails() {
        let mut xids = XidAlloc::new();
        let cfg = ExecConfig {
            barrier_timeout: SimDuration::from_millis(10),
            max_attempts: 2,
            flowmod_acks: false,
        };
        let mut ex = RoundExecutor::new(update(vec![vec![1]]), cfg);
        ex.start(SimTime::ZERO, &mut xids);
        ex.on_tick(SimTime::ZERO + SimDuration::from_millis(11), &mut xids);
        assert_eq!(ex.state(), ExecState::AwaitingBarriers);
        ex.on_tick(SimTime::ZERO + SimDuration::from_millis(40), &mut xids);
        assert_eq!(ex.state(), ExecState::Failed);
    }

    #[test]
    fn empty_update_is_immediately_done() {
        let mut xids = XidAlloc::new();
        let mut ex = RoundExecutor::new(update(vec![]), ExecConfig::default());
        assert!(ex.start(SimTime::ZERO, &mut xids).is_empty());
        assert_eq!(ex.state(), ExecState::Done);
    }

    #[test]
    fn flowmods_precede_barriers_in_dispatch_order() {
        let mut xids = XidAlloc::new();
        let mut ex = RoundExecutor::new(update(vec![vec![1, 1, 3]]), ExecConfig::default());
        let cmds = ex.start(SimTime::ZERO, &mut xids);
        // per switch: all flowmods before its barrier
        for dp in [DpId(1), DpId(3)] {
            let msgs: Vec<&OfMessage> = cmds
                .iter()
                .filter(|(d, _)| *d == dp)
                .map(|(_, e)| &e.msg)
                .collect();
            let barrier_pos = msgs
                .iter()
                .position(|m| **m == OfMessage::BarrierRequest)
                .unwrap();
            assert_eq!(barrier_pos, msgs.len() - 1);
        }
    }

    fn ack_cfg() -> ExecConfig {
        ExecConfig {
            barrier_timeout: SimDuration::from_millis(10),
            max_attempts: 10,
            flowmod_acks: true,
        }
    }

    fn echoes_of(cmds: &[(DpId, Envelope)]) -> Vec<(DpId, Xid, Vec<u8>)> {
        cmds.iter()
            .filter_map(|(d, e)| match &e.msg {
                OfMessage::EchoRequest(p) => Some((*d, e.xid, p.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn ack_mode_barrier_alone_does_not_complete_round() {
        // The dropped-FlowMod/surviving-barrier hole, closed: a barrier
        // reply without the payload ack leaves the round open.
        let mut xids = XidAlloc::new();
        let mut ex = RoundExecutor::new(update(vec![vec![1]]), ack_cfg());
        let cmds = ex.start(SimTime::ZERO, &mut xids);
        let b = barriers_of(&cmds);
        let e = echoes_of(&cmds);
        assert_eq!(e.len(), 1, "each FlowMod pairs with one ack echo");
        ex.on_message(
            SimTime(1),
            b[0].0,
            &Envelope::new(b[0].1, OfMessage::BarrierReply),
            &mut xids,
        );
        assert_eq!(ex.state(), ExecState::AwaitingBarriers);
        assert_eq!(ex.pending_acks(), 1);
        // the payload ack arrives: now the round completes
        ex.on_message(
            SimTime(2),
            e[0].0,
            &Envelope::new(e[0].1, OfMessage::EchoReply(e[0].2.clone())),
            &mut xids,
        );
        assert_eq!(ex.state(), ExecState::Done);
    }

    #[test]
    fn ack_mode_corrupted_echo_payload_is_rejected() {
        let mut xids = XidAlloc::new();
        let mut ex = RoundExecutor::new(update(vec![vec![1]]), ack_cfg());
        let cmds = ex.start(SimTime::ZERO, &mut xids);
        let b = barriers_of(&cmds);
        let e = echoes_of(&cmds);
        ex.on_message(
            SimTime(1),
            b[0].0,
            &Envelope::new(b[0].1, OfMessage::BarrierReply),
            &mut xids,
        );
        // an echoed payload with one bit flipped proves nothing
        let mut bad = e[0].2.clone();
        bad[0] ^= 1;
        ex.on_message(
            SimTime(2),
            e[0].0,
            &Envelope::new(e[0].1, OfMessage::EchoReply(bad)),
            &mut xids,
        );
        assert_eq!(ex.state(), ExecState::AwaitingBarriers);
        assert_eq!(ex.pending_acks(), 1);
        // the intact round trip still completes the round
        ex.on_message(
            SimTime(3),
            e[0].0,
            &Envelope::new(e[0].1, OfMessage::EchoReply(e[0].2.clone())),
            &mut xids,
        );
        assert_eq!(ex.state(), ExecState::Done);
    }

    #[test]
    fn ack_mode_retransmits_unacked_payloads_without_barrier() {
        // Two FlowMods to one switch; the barrier and one payload are
        // acknowledged. The timeout must resend only the missing
        // payload — no barrier re-key, no duplicate of the acked one.
        let mut xids = XidAlloc::new();
        let mut ex = RoundExecutor::new(update(vec![vec![1, 1]]), ack_cfg());
        let cmds = ex.start(SimTime::ZERO, &mut xids);
        let b = barriers_of(&cmds);
        let e = echoes_of(&cmds);
        assert_eq!(e.len(), 2);
        ex.on_message(
            SimTime(1),
            b[0].0,
            &Envelope::new(b[0].1, OfMessage::BarrierReply),
            &mut xids,
        );
        ex.on_message(
            SimTime(2),
            e[0].0,
            &Envelope::new(e[0].1, OfMessage::EchoReply(e[0].2.clone())),
            &mut xids,
        );
        let re = ex.on_tick(SimTime::ZERO + SimDuration::from_millis(11), &mut xids);
        assert!(barriers_of(&re).is_empty(), "acked barrier is not re-sent");
        let re_echo = echoes_of(&re);
        assert_eq!(re_echo.len(), 1, "only the unacked payload is resent");
        assert_eq!(
            re.len(),
            2,
            "exactly one FlowMod + its ack echo retransmitted"
        );
        ex.on_message(
            SimTime::ZERO + SimDuration::from_millis(12),
            re_echo[0].0,
            &Envelope::new(re_echo[0].1, OfMessage::EchoReply(re_echo[0].2.clone())),
            &mut xids,
        );
        assert_eq!(ex.state(), ExecState::Done);
    }

    #[test]
    fn ack_mode_late_reply_to_old_echo_xid_still_counts() {
        // Retransmissions re-key the echo, but the original payload is
        // identical — a straggling reply to the *first* transmission
        // still proves installation and retires every outstanding copy.
        let mut xids = XidAlloc::new();
        let mut ex = RoundExecutor::new(update(vec![vec![1]]), ack_cfg());
        let cmds = ex.start(SimTime::ZERO, &mut xids);
        let e1 = echoes_of(&cmds);
        let re = ex.on_tick(SimTime::ZERO + SimDuration::from_millis(11), &mut xids);
        let b2 = barriers_of(&re);
        assert_eq!(b2.len(), 1, "unacked barrier re-keys on retransmit");
        assert_eq!(ex.pending_acks(), 2, "both transmissions outstanding");
        ex.on_message(
            SimTime::ZERO + SimDuration::from_millis(12),
            e1[0].0,
            &Envelope::new(e1[0].1, OfMessage::EchoReply(e1[0].2.clone())),
            &mut xids,
        );
        assert_eq!(ex.pending_acks(), 0, "old ack retires every copy");
        ex.on_message(
            SimTime::ZERO + SimDuration::from_millis(13),
            b2[0].0,
            &Envelope::new(b2[0].1, OfMessage::BarrierReply),
            &mut xids,
        );
        assert_eq!(ex.state(), ExecState::Done);
    }

    #[test]
    fn acks_off_sends_no_echoes() {
        let mut xids = XidAlloc::new();
        let mut ex = RoundExecutor::new(update(vec![vec![1, 3]]), ExecConfig::default());
        let cmds = ex.start(SimTime::ZERO, &mut xids);
        assert!(echoes_of(&cmds).is_empty());
        assert_eq!(ex.pending_acks(), 0);
    }
}
