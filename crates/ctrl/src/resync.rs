//! Controller-side switch resynchronization.
//!
//! After a switch reconnects the controller cannot trust its table:
//! FlowMods in flight died with the connection, and a rebooted switch
//! returns empty. [`ResyncManager`] keeps a **shadow table** per
//! switch — every FlowMod the controller has sent, applied to a local
//! [`FlowTable`] — and runs the audit-and-repair handshake defined by
//! [`sdn_switch::resync`]:
//!
//! 1. probe: an `EchoRequest` carrying [`DIGEST_PROBE`];
//! 2. audit: the switch's `EchoReply` reports its sorted per-rule hash
//!    list, diffed against the shadow's [`FlowTable::rule_hashes`];
//! 3. repair: exactly the missing rules are replayed as idempotent
//!    `Add` FlowMods ([`FlowEntry::as_add`]), followed by a fresh
//!    probe — the control channel is FIFO, so the next report already
//!    reflects the repair.
//!
//! The loop ends when a report matches the shadow. Probes are
//! retransmitted on a deadline (they ride the same lossy channel as
//! everything else) under a bounded attempt budget; a switch that
//! exhausts it is handed back to the runtime for quarantine.
//!
//! Rules the switch holds that the shadow does not ("extra" rules) are
//! counted but never deleted: a hash is not invertible into a Delete
//! matcher, and in practice extras only appear transiently after a
//! crash recovery whose journal under-reported progress — the rounds
//! that installed them are re-sent and re-recorded, converging the
//! shadow onto them.

use std::collections::BTreeMap;

use sdn_openflow::messages::{Envelope, FlowMod, OfMessage};
use sdn_switch::flow_table::{FlowEntry, FlowTable};
use sdn_switch::resync::{decode_digest_report, DIGEST_PROBE};
use sdn_types::{DpId, SimTime, Xid};

use crate::executor::XidAlloc;

/// One in-progress audit of one switch.
#[derive(Debug, Clone)]
struct Audit {
    /// Xid of the newest outstanding probe.
    xid: Xid,
    /// When it went out (retransmission timer base).
    sent: SimTime,
    /// Probes sent so far for this audit (1 = no retransmissions).
    attempts: u32,
}

/// Counters the runtime surfaces through `GET /status`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResyncStats {
    /// Audits begun (one per reconnect with a known shadow).
    pub started: u64,
    /// Audits that converged (report matched the shadow).
    pub completed: u64,
    /// Missing rules replayed across all audits.
    pub rules_replayed: u64,
    /// Audits abandoned after the probe budget ran out.
    pub exhausted: u64,
}

/// Shadow tables plus the audit state machine.
#[derive(Debug, Clone, Default)]
pub struct ResyncManager {
    shadow: BTreeMap<DpId, FlowTable>,
    pending: BTreeMap<DpId, Audit>,
    stats: ResyncStats,
}

impl ResyncManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ResyncStats {
        self.stats
    }

    /// Switches currently being audited.
    pub fn auditing(&self) -> usize {
        self.pending.len()
    }

    /// Whether an audit of `dp` is mid-handshake (the migration fence
    /// holds a seat on its shard until the audit converges).
    pub fn audit_in_flight(&self, dp: DpId) -> bool {
        self.pending.contains_key(&dp)
    }

    /// Record a FlowMod the controller sent to `dp`, keeping the
    /// shadow table in lock-step with the intended switch state.
    /// Identical replays are idempotent (Add-replace), so recording a
    /// retransmission is harmless.
    pub fn record(&mut self, dp: DpId, fm: &FlowMod) {
        self.shadow.entry(dp).or_default().apply(fm);
    }

    /// Whether any rule was ever recorded for `dp`.
    pub fn knows(&self, dp: DpId) -> bool {
        self.shadow.contains_key(&dp)
    }

    /// The intended (shadow) rule-hash list for `dp`, ascending —
    /// what an in-sync switch must report. `None` when the controller
    /// never sent `dp` anything.
    pub fn intended_hashes(&self, dp: DpId) -> Option<Vec<u64>> {
        self.shadow.get(&dp).map(FlowTable::rule_hashes)
    }

    /// Begin (or restart) an audit of `dp`: returns the digest probe
    /// to send. Restarting an in-flight audit is safe — the newest
    /// probe's xid supersedes the old one.
    pub fn begin(&mut self, dp: DpId, now: SimTime, xids: &mut XidAlloc) -> Envelope {
        let xid = xids.alloc();
        if self
            .pending
            .insert(
                dp,
                Audit {
                    xid,
                    sent: now,
                    attempts: 1,
                },
            )
            .is_none()
        {
            self.stats.started += 1;
        }
        Envelope::new(xid, OfMessage::EchoRequest(DIGEST_PROBE.to_vec()))
    }

    /// Whether an `EchoReply` from `dp` with `xid` belongs to an
    /// outstanding probe of ours (and must not be routed to a job).
    pub fn owns(&self, dp: DpId, xid: Xid) -> bool {
        self.pending.get(&dp).is_some_and(|a| a.xid == xid)
    }

    /// Feed the `EchoReply` payload of an owned probe. Returns the
    /// repair commands for `dp`: the missing FlowMods followed by a
    /// fresh probe, or nothing when the switch is in sync (audit
    /// complete). An unparseable payload (a switch that does not speak
    /// the digest extension mirrors the probe back) falls back to full
    /// replay of the shadow.
    pub fn on_report(
        &mut self,
        dp: DpId,
        payload: &[u8],
        now: SimTime,
        xids: &mut XidAlloc,
    ) -> Vec<Envelope> {
        let Some(audit) = self.pending.get(&dp) else {
            return Vec::new();
        };
        let attempts = audit.attempts;
        let shadow = self.shadow.entry(dp).or_default();
        let missing: Vec<FlowMod> = match decode_digest_report(payload) {
            Some(reported) => shadow
                .iter()
                .filter(|e| reported.binary_search(&e.rule_hash()).is_err())
                .map(FlowEntry::as_add)
                .collect(),
            // Digest unsupported: replay everything (idempotent).
            None => shadow.iter().map(FlowEntry::as_add).collect(),
        };
        if missing.is_empty() {
            self.pending.remove(&dp);
            self.stats.completed += 1;
            return Vec::new();
        }
        self.stats.rules_replayed += missing.len() as u64;
        let mut out: Vec<Envelope> = missing
            .into_iter()
            .map(|fm| Envelope::new(xids.alloc(), OfMessage::FlowMod(fm)))
            .collect();
        // Follow-up probe verifies the repair; FIFO ordering means its
        // report already includes the rules above.
        let xid = xids.alloc();
        self.pending.insert(
            dp,
            Audit {
                xid,
                sent: now,
                attempts: attempts + 1,
            },
        );
        out.push(Envelope::new(
            xid,
            OfMessage::EchoRequest(DIGEST_PROBE.to_vec()),
        ));
        out
    }

    /// Drive probe retransmission: every audit whose newest probe is
    /// older than `timeout` is re-probed; audits past `max_attempts`
    /// are abandoned and their switches returned for quarantine.
    pub fn on_tick(
        &mut self,
        now: SimTime,
        timeout: sdn_types::SimDuration,
        max_attempts: u32,
        xids: &mut XidAlloc,
    ) -> (Vec<(DpId, Envelope)>, Vec<DpId>) {
        let mut resend = Vec::new();
        let mut give_up = Vec::new();
        for (&dp, audit) in self.pending.iter_mut() {
            if now < audit.sent + timeout {
                continue;
            }
            if audit.attempts >= max_attempts {
                give_up.push(dp);
                continue;
            }
            audit.xid = xids.alloc();
            audit.sent = now;
            audit.attempts += 1;
            resend.push((
                dp,
                Envelope::new(audit.xid, OfMessage::EchoRequest(DIGEST_PROBE.to_vec())),
            ));
        }
        for dp in &give_up {
            self.pending.remove(dp);
            self.stats.exhausted += 1;
        }
        (resend, give_up)
    }

    /// Drop the audit state for `dp` (e.g. the switch disconnected
    /// again mid-audit; the next reconnect restarts cleanly).
    pub fn abort(&mut self, dp: DpId) {
        self.pending.remove(&dp);
    }

    /// Remove and return the shadow table for `dp`, aborting any
    /// in-flight audit — the seat-migration path carries the shadow to
    /// another manager. `None` when the controller never sent `dp`
    /// anything (nothing to move).
    pub fn take_shadow(&mut self, dp: DpId) -> Option<FlowTable> {
        self.pending.remove(&dp);
        self.shadow.remove(&dp)
    }

    /// Install a shadow table taken from another manager, replacing
    /// any existing shadow for `dp`.
    pub fn install_shadow(&mut self, dp: DpId, table: FlowTable) {
        self.shadow.insert(dp, table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_openflow::flow::{Action, FlowMatch};
    use sdn_openflow::messages::FlowModCommand;
    use sdn_switch::resync::encode_digest_report;
    use sdn_types::{HostId, PortNo, SimDuration};

    fn add(dst: u32, out: u32) -> FlowMod {
        FlowMod {
            command: FlowModCommand::Add,
            priority: 100,
            matcher: FlowMatch::dst_host(HostId(dst)),
            actions: vec![Action::Output(PortNo(out))],
            cookie: 1,
        }
    }

    fn report_of(fms: &[FlowMod]) -> Vec<u8> {
        let mut t = FlowTable::new();
        for fm in fms {
            t.apply(fm);
        }
        encode_digest_report(&t)
    }

    #[test]
    fn in_sync_switch_completes_immediately() {
        let mut m = ResyncManager::new();
        let mut xids = XidAlloc::new();
        m.record(DpId(1), &add(2, 1));
        let probe = m.begin(DpId(1), SimTime(0), &mut xids);
        assert!(m.owns(DpId(1), probe.xid));
        let out = m.on_report(DpId(1), &report_of(&[add(2, 1)]), SimTime(1), &mut xids);
        assert!(out.is_empty());
        assert_eq!(m.auditing(), 0);
        assert_eq!(m.stats().completed, 1);
        assert_eq!(m.stats().rules_replayed, 0);
    }

    #[test]
    fn missing_rules_are_replayed_with_a_follow_up_probe() {
        let mut m = ResyncManager::new();
        let mut xids = XidAlloc::new();
        m.record(DpId(1), &add(2, 1));
        m.record(DpId(1), &add(3, 2));
        m.begin(DpId(1), SimTime(0), &mut xids);
        // switch only has the dst=2 rule
        let out = m.on_report(DpId(1), &report_of(&[add(2, 1)]), SimTime(1), &mut xids);
        let fms: Vec<&FlowMod> = out
            .iter()
            .filter_map(|e| match &e.msg {
                OfMessage::FlowMod(fm) => Some(fm),
                _ => None,
            })
            .collect();
        assert_eq!(fms.len(), 1);
        assert_eq!(fms[0].matcher.dst, Some(HostId(3)));
        assert!(
            matches!(out.last().unwrap().msg, OfMessage::EchoRequest(ref p) if p == DIGEST_PROBE),
            "repair ends with a verification probe"
        );
        assert_eq!(m.stats().rules_replayed, 1);
        // the verification report now matches
        let done = m.on_report(
            DpId(1),
            &report_of(&[add(2, 1), add(3, 2)]),
            SimTime(2),
            &mut xids,
        );
        assert!(done.is_empty());
        assert_eq!(m.stats().completed, 1);
    }

    #[test]
    fn unparseable_reply_falls_back_to_full_replay() {
        let mut m = ResyncManager::new();
        let mut xids = XidAlloc::new();
        m.record(DpId(1), &add(2, 1));
        m.record(DpId(1), &add(3, 2));
        m.begin(DpId(1), SimTime(0), &mut xids);
        // a vanilla switch mirrors the probe payload back
        let out = m.on_report(DpId(1), DIGEST_PROBE, SimTime(1), &mut xids);
        let fm_count = out
            .iter()
            .filter(|e| matches!(e.msg, OfMessage::FlowMod(_)))
            .count();
        assert_eq!(fm_count, 2, "full shadow replayed");
    }

    #[test]
    fn probes_retransmit_then_exhaust() {
        let mut m = ResyncManager::new();
        let mut xids = XidAlloc::new();
        m.record(DpId(1), &add(2, 1));
        let p0 = m.begin(DpId(1), SimTime(0), &mut xids);
        let timeout = SimDuration::from_millis(10);
        // not yet due
        let (r, g) = m.on_tick(
            SimTime(0) + SimDuration::from_millis(5),
            timeout,
            3,
            &mut xids,
        );
        assert!(r.is_empty() && g.is_empty());
        // due: re-probe with a fresh xid
        let (r, g) = m.on_tick(
            SimTime(0) + SimDuration::from_millis(11),
            timeout,
            3,
            &mut xids,
        );
        assert_eq!(r.len(), 1);
        assert!(g.is_empty());
        assert_ne!(r[0].1.xid, p0.xid);
        assert!(!m.owns(DpId(1), p0.xid), "superseded probe is dead");
        assert!(m.owns(DpId(1), r[0].1.xid));
        // two more deadlines: attempts 3, then budget gone
        let (r, _) = m.on_tick(
            SimTime(0) + SimDuration::from_millis(22),
            timeout,
            3,
            &mut xids,
        );
        assert_eq!(r.len(), 1);
        let (r, g) = m.on_tick(
            SimTime(0) + SimDuration::from_millis(33),
            timeout,
            3,
            &mut xids,
        );
        assert!(r.is_empty());
        assert_eq!(g, vec![DpId(1)]);
        assert_eq!(m.auditing(), 0);
        assert_eq!(m.stats().exhausted, 1);
    }

    #[test]
    fn stale_and_foreign_replies_are_not_owned() {
        let mut m = ResyncManager::new();
        let mut xids = XidAlloc::new();
        m.record(DpId(1), &add(2, 1));
        let p = m.begin(DpId(1), SimTime(0), &mut xids);
        assert!(!m.owns(DpId(2), p.xid), "wrong switch");
        assert!(!m.owns(DpId(1), Xid(0xdead)), "wrong xid");
        assert!(m.on_report(DpId(2), b"", SimTime(1), &mut xids).is_empty());
    }

    #[test]
    fn take_shadow_moves_the_table_and_aborts_the_audit() {
        let mut a = ResyncManager::new();
        let mut b = ResyncManager::new();
        let mut xids = XidAlloc::new();
        a.record(DpId(1), &add(2, 1));
        a.record(DpId(1), &add(3, 2));
        a.begin(DpId(1), SimTime(0), &mut xids);
        let want = a.intended_hashes(DpId(1)).unwrap();
        let table = a.take_shadow(DpId(1)).expect("shadow existed");
        assert!(!a.knows(DpId(1)), "source forgot the switch");
        assert_eq!(a.auditing(), 0, "in-flight audit aborted");
        assert!(a.take_shadow(DpId(1)).is_none(), "second take empty");
        b.install_shadow(DpId(1), table);
        assert_eq!(b.intended_hashes(DpId(1)), Some(want));
    }

    #[test]
    fn delete_keeps_shadow_in_sync() {
        let mut m = ResyncManager::new();
        let mut xids = XidAlloc::new();
        m.record(DpId(1), &add(2, 1));
        let del = FlowMod {
            command: FlowModCommand::Delete,
            priority: 100,
            matcher: FlowMatch::dst_host(HostId(2)),
            actions: vec![],
            cookie: 0,
        };
        m.record(DpId(1), &del);
        assert_eq!(m.intended_hashes(DpId(1)), Some(vec![]));
        m.begin(DpId(1), SimTime(0), &mut xids);
        let out = m.on_report(DpId(1), &report_of(&[]), SimTime(1), &mut xids);
        assert!(out.is_empty(), "empty shadow matches empty switch");
    }
}
