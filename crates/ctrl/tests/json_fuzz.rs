//! Property tests for the hand-rolled JSON parser: it must never
//! panic, must round-trip everything it accepts, and must agree with
//! itself on re-parse.

use proptest::prelude::*;

use sdn_ctrl::rest::json::{parse, Json};

fn arb_json(depth: u32) -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // avoid NaN/inf (not representable in JSON)
        (-1.0e12f64..1.0e12).prop_map(Json::Num),
        "[a-zA-Z0-9 _\\-\\.\\\\\"\n\t⟨⟩€😀]{0,24}".prop_map(Json::Str),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            leaf,
            proptest::collection::vec(arb_json(depth - 1), 0..4).prop_map(Json::Arr),
            proptest::collection::btree_map("[a-z]{1,8}", arb_json(depth - 1), 0..4)
                .prop_map(Json::Obj),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(input in ".{0,256}") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_json_like_soup(
        input in "[\\{\\}\\[\\]\",:0-9a-z\\\\ .eE+-]{0,128}"
    ) {
        let _ = parse(&input);
    }

    #[test]
    fn render_parse_roundtrip(v in arb_json(3)) {
        let rendered = v.render();
        let back = parse(&rendered).unwrap_or_else(|e| {
            panic!("render produced unparseable JSON: {rendered:?}: {e}")
        });
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parse_is_idempotent_through_render(v in arb_json(3)) {
        let r1 = v.render();
        let v2 = parse(&r1).unwrap();
        let r2 = v2.render();
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn numbers_roundtrip_exactly(n in -1.0e12f64..1.0e12) {
        let v = Json::Num(n);
        let back = parse(&v.render()).unwrap();
        let got = back.as_f64().unwrap();
        // integers render without fraction; everything within f64
        // precision must survive
        prop_assert!((got - n).abs() <= n.abs() * 1e-12 + 1e-9, "{n} -> {got}");
    }
}
