//! Property tests for the hand-rolled JSON parser: it must never
//! panic, must round-trip everything it accepts, must agree with
//! itself on re-parse — and must stay inside its work limits on any
//! input, rejecting over-limit documents with the right error kind.

use proptest::prelude::*;

use sdn_ctrl::rest::json::{parse, parse_with, Json, JsonErrorKind, ParseLimits};

fn arb_json(depth: u32) -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // avoid NaN/inf (not representable in JSON)
        (-1.0e12f64..1.0e12).prop_map(Json::Num),
        "[a-zA-Z0-9 _\\-\\.\\\\\"\n\t⟨⟩€😀]{0,24}".prop_map(Json::Str),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            leaf,
            proptest::collection::vec(arb_json(depth - 1), 0..4).prop_map(Json::Arr),
            proptest::collection::btree_map("[a-z]{1,8}", arb_json(depth - 1), 0..4)
                .prop_map(Json::Obj),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(input in ".{0,256}") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_json_like_soup(
        input in "[\\{\\}\\[\\]\",:0-9a-z\\\\ .eE+-]{0,128}"
    ) {
        let _ = parse(&input);
    }

    #[test]
    fn render_parse_roundtrip(v in arb_json(3)) {
        let rendered = v.render();
        let back = parse(&rendered).unwrap_or_else(|e| {
            panic!("render produced unparseable JSON: {rendered:?}: {e}")
        });
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parse_is_idempotent_through_render(v in arb_json(3)) {
        let r1 = v.render();
        let v2 = parse(&r1).unwrap();
        let r2 = v2.render();
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn numbers_roundtrip_exactly(n in -1.0e12f64..1.0e12) {
        let v = Json::Num(n);
        let back = parse(&v.render()).unwrap();
        let got = back.as_f64().unwrap();
        // integers render without fraction; everything within f64
        // precision must survive
        prop_assert!((got - n).abs() <= n.abs() * 1e-12 + 1e-9, "{n} -> {got}");
    }

    #[test]
    fn limited_parser_never_panics_on_arbitrary_bytes(
        input in ".{0,256}",
        max_bytes in 0usize..128,
        max_depth in 0usize..6,
        max_fields in 0usize..6,
        max_elements in 0usize..6,
        max_string_bytes in 0usize..12,
    ) {
        let limits = ParseLimits {
            max_bytes, max_depth, max_fields, max_elements, max_string_bytes,
        };
        let _ = parse_with(&input, &limits);
    }

    #[test]
    fn limits_only_narrow_the_accepted_set(v in arb_json(3)) {
        // A document accepted under tight limits parses identically
        // under the defaults; one rejected under the defaults is
        // rejected under any tighter limits too.
        let rendered = v.render();
        let tight = ParseLimits {
            max_bytes: 4096,
            max_depth: 8,
            max_fields: 64,
            max_elements: 64,
            max_string_bytes: 256,
        };
        if let Ok(under_tight) = parse_with(&rendered, &tight) {
            prop_assert_eq!(under_tight, parse(&rendered).unwrap());
        }
    }

    #[test]
    fn oversized_documents_reject_with_too_large(pad in 1usize..64) {
        let doc = format!("\"{}\"", "x".repeat(pad + 16));
        let limits = ParseLimits { max_bytes: 16, ..ParseLimits::default() };
        let e = parse_with(&doc, &limits).unwrap_err();
        prop_assert_eq!(e.kind, JsonErrorKind::TooLarge);
    }

    #[test]
    fn element_floods_reject_with_too_many_elements(n in 9usize..64) {
        let doc = format!("[{}]", vec!["1"; n].join(","));
        let limits = ParseLimits { max_elements: 8, ..ParseLimits::default() };
        let e = parse_with(&doc, &limits).unwrap_err();
        prop_assert_eq!(e.kind, JsonErrorKind::TooManyElements);
    }
}
