//! Serializability of the fabric's cross-shard two-phase protocol.
//!
//! Property: submit a batch of updates to a sharded
//! [`FabricCoordinator`] — some landing in one shard, some spanning
//! several, some in genuine footprint conflict — and drive the whole
//! fabric against real [`SoftSwitch`] tables under randomized message
//! delivery. Whatever interleaving the two-phase protocol produces,
//! the committed flow tables must equal executing the same updates
//! **serially in the fabric's completion order**: the concurrent
//! sharded execution is equivalent to a serial order of the same
//! updates (with the completion order as the witness).
//!
//! This extends `runtime_conflict.rs`'s commutativity machinery across
//! shard boundaries: there, disjointness alone justified interleaving;
//! here, the coordinator's reservations must *create* that
//! disjointness dynamically — including for updates that conflict and
//! must serialize.

use std::collections::BTreeMap;

use proptest::prelude::*;

use sdn_ctrl::compile::{compile_schedule, CompiledUpdate, FlowSpec};
use sdn_ctrl::controller::CtrlOutput;
use sdn_ctrl::runtime::{
    FabricConfig, FabricCoordinator, RuntimeHandle, SubmitError, SubmitRequest, TenantId,
};
use sdn_openflow::messages::Envelope;
use sdn_switch::SoftSwitch;
use sdn_topo::gen::{self, UpdatePair};
use sdn_types::{DetRng, DpId, SimTime, Xid};
use update_core::algorithms::{SlfGreedy, UpdateScheduler};
use update_core::checker::verify_schedule;
use update_core::model::UpdateInstance;
use update_core::properties::PropertySet;

/// `k` switch-disjoint flows of `n` switches each, plus (optionally)
/// the reverse of flow 0 — a genuine footprint conflict the fabric
/// must serialize rather than interleave.
fn flows(n: u64, k: usize, with_conflict: bool, rng: &mut DetRng) -> Vec<UpdatePair> {
    let mut pairs: Vec<UpdatePair> = (0..k)
        .map(|i| {
            let base = gen::random_permutation(n, rng);
            gen::shift(&base, (i as u64) * (n + 3))
        })
        .collect();
    if with_conflict {
        let first = pairs[0].clone();
        pairs.push(UpdatePair {
            old: first.new.clone(),
            new: first.old.clone(),
            waypoint: None,
        });
    }
    pairs
}

/// Compile each flow (verifying its schedule statically), labelled
/// `u0`, `u1`, ... so reports map back to updates. The conflicting
/// reverse flow reuses flow 0's hosts.
fn compile_flows(pairs: &[UpdatePair], k: usize) -> Vec<CompiledUpdate> {
    let topo = gen::materialize_batch(&pairs[..k]);
    pairs
        .iter()
        .enumerate()
        .map(|(i, pair)| {
            let (src, dst) = gen::batch_hosts(if i < k { i } else { 0 });
            let spec = FlowSpec { src, dst };
            let inst =
                UpdateInstance::new(pair.old.clone(), pair.new.clone(), pair.waypoint).unwrap();
            let sched = SlfGreedy::default().schedule(&inst).unwrap();
            let report = verify_schedule(&inst, &sched, PropertySet::loop_free_strong());
            assert!(report.is_ok(), "per-flow schedule must verify: {report}");
            let mut c = compile_schedule(&topo, &inst, &sched, &spec).unwrap();
            c.label = format!("u{i}");
            c
        })
        .collect()
}

fn all_switches(updates: &[CompiledUpdate]) -> Vec<DpId> {
    let mut dps: Vec<DpId> = updates
        .iter()
        .flat_map(|u| u.rounds.iter().flat_map(|r| r.msgs.iter().map(|(d, _)| *d)))
        .collect();
    dps.sort();
    dps.dedup();
    dps
}

fn shuffle<T>(items: &mut [T], rng: &mut DetRng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.index(i + 1));
    }
}

/// Forwarding-relevant fingerprint of a switch farm.
fn fingerprint(sws: &BTreeMap<DpId, SoftSwitch>) -> Vec<(DpId, Vec<String>)> {
    sws.iter()
        .map(|(&dp, s)| {
            let mut rules: Vec<String> = s
                .table()
                .iter()
                .map(|e| {
                    format!(
                        "{}|{:?}|{:?}|{}",
                        e.priority, e.matcher, e.actions, e.cookie
                    )
                })
                .collect();
            rules.sort();
            (dp, rules)
        })
        .collect()
}

/// Drive the fabric against live switches until idle, delivering
/// commands and replies in a seed-shuffled order each step so
/// different seeds exercise different cross-shard interleavings.
fn drive(
    fab: &mut FabricCoordinator,
    farm: &mut BTreeMap<DpId, SoftSwitch>,
    rng: &mut DetRng,
    mut t: u64,
) -> u64 {
    let mut pending: Vec<(DpId, Envelope)> = Vec::new();
    for _ in 0..20_000 {
        t += 1;
        pending.extend(
            fab.poll(SimTime(t))
                .into_iter()
                .map(|CtrlOutput::Send(dp, env)| (dp, env)),
        );
        if pending.is_empty() {
            if fab.is_idle() {
                return t;
            }
            continue;
        }
        shuffle(&mut pending, rng);
        let mut replies: Vec<(DpId, Envelope)> = Vec::new();
        for (dp, env) in pending.drain(..) {
            let sw = farm.get_mut(&dp).expect("known switch");
            replies.extend(sw.handle_control(env).into_iter().map(|r| (dp, r)));
        }
        shuffle(&mut replies, rng);
        for (dp, reply) in replies {
            t += 1;
            pending.extend(
                fab.on_message(SimTime(t), dp, &reply)
                    .into_iter()
                    .map(|CtrlOutput::Send(dp, env)| (dp, env)),
            );
        }
        if fab.is_idle() && pending.is_empty() {
            return t;
        }
    }
    panic!("fabric did not drain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of cross-shard two-phase commits is equivalent
    /// to some serial order of the same updates.
    #[test]
    fn cross_shard_two_phase_commits_serialize(
        n in 4u64..8,
        k in 2usize..4,
        shards in 2u32..5,
        with_conflict in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::new(seed);
        let pairs = flows(n, k, with_conflict, &mut rng);
        let updates = compile_flows(&pairs, k);
        let dps = all_switches(&updates);

        let mut fab = FabricCoordinator::new(FabricConfig {
            shards,
            journal: true,
            ..FabricConfig::default()
        });
        let mut order: Vec<usize> = (0..updates.len()).collect();
        shuffle(&mut order, &mut rng);
        let mut farm: BTreeMap<DpId, SoftSwitch> =
            dps.iter().map(|&d| (d, SoftSwitch::new(d, 64))).collect();
        let mut saw_cross_shard = false;
        for &i in &order {
            let t = fab
                .submit_request(SubmitRequest::new(updates[i].clone()), SimTime(0))
                .expect("fabric admits the batch");
            saw_cross_shard |= t.cross_shard;
        }
        let end = drive(&mut fab, &mut farm, &mut rng, 0);
        let _ = end;

        prop_assert_eq!(fab.reports().len(), updates.len());
        prop_assert!(fab.reports().iter().all(|r| r.completed.is_some()),
            "every update must commit");
        prop_assert!(saw_cross_shard || shards == 1,
            "workload must exercise the two-phase path");

        // serial witness: the same updates, executed one after another
        // in the fabric's completion order
        let mut reference: BTreeMap<DpId, SoftSwitch> =
            dps.iter().map(|&d| (d, SoftSwitch::new(d, 64))).collect();
        let mut xid = Xid(1);
        for report in fab.reports() {
            let idx: usize = report.label.strip_prefix('u').unwrap().parse().unwrap();
            for round in &updates[idx].rounds {
                for (dp, msg) in &round.msgs {
                    reference
                        .get_mut(dp)
                        .unwrap()
                        .handle_control(Envelope::new(xid, msg.clone()));
                    xid = xid.next();
                }
            }
        }
        prop_assert_eq!(
            fingerprint(&farm),
            fingerprint(&reference),
            "fabric execution must equal its completion-order serial witness"
        );
    }
}

/// The conflicting pair really serializes: with the reverse of flow 0
/// in the batch, the fabric must never run both at once (the witness
/// tables would differ otherwise) — checked deterministically here so
/// a proptest shrink isn't the only evidence.
#[test]
fn conflicting_cross_shard_updates_never_overlap() {
    let mut rng = DetRng::new(7);
    let pairs = flows(5, 2, true, &mut rng);
    let updates = compile_flows(&pairs, 2);
    let dps = all_switches(&updates);
    let mut fab = FabricCoordinator::new(FabricConfig {
        shards: 3,
        ..FabricConfig::default()
    });
    let mut farm: BTreeMap<DpId, SoftSwitch> =
        dps.iter().map(|&d| (d, SoftSwitch::new(d, 64))).collect();
    for u in &updates {
        assert!(fab
            .submit_request(SubmitRequest::new(u.clone()), SimTime(0))
            .is_ok());
    }
    // u0 and u2 share a footprint: at no point may both be active
    drive(&mut fab, &mut farm, &mut rng, 0);
    assert_eq!(fab.reports().len(), 3);
    assert!(fab.reports().iter().all(|r| r.completed.is_some()));
    let done: Vec<&str> = fab.reports().iter().map(|r| r.label.as_str()).collect();
    let p0 = done.iter().position(|&l| l == "u0").unwrap();
    let p2 = done.iter().position(|&l| l == "u2").unwrap();
    assert_ne!(p0, p2);
}

/// Tenant budgets hold across the whole fabric, shards and
/// coordinator alike, and free up as work completes.
#[test]
fn tenant_quota_spans_shards_and_releases_on_completion() {
    let mut rng = DetRng::new(3);
    let pairs = flows(4, 3, false, &mut rng);
    let updates = compile_flows(&pairs, 3);
    let dps = all_switches(&updates);
    let mut fab = FabricCoordinator::new(FabricConfig {
        shards: 2,
        tenants: sdn_ctrl::runtime::fabric::TenantPolicy::with_quota(2),
        ..FabricConfig::default()
    });
    let mut farm: BTreeMap<DpId, SoftSwitch> =
        dps.iter().map(|&d| (d, SoftSwitch::new(d, 64))).collect();
    let tenant = TenantId(9);
    for u in &updates[..2] {
        assert!(fab
            .submit_request(SubmitRequest::new(u.clone()).tenant(tenant), SimTime(0))
            .is_ok());
    }
    let third = fab.submit_request(
        SubmitRequest::new(updates[2].clone()).tenant(tenant),
        SimTime(0),
    );
    assert_eq!(
        third,
        Err(SubmitError::QuotaExceeded {
            tenant,
            limit: 2,
            in_flight: 2
        })
    );
    drive(&mut fab, &mut farm, &mut rng, 0);
    // budget released: the refused update now fits
    assert!(fab
        .submit_request(
            SubmitRequest::new(updates[2].clone()).tenant(tenant),
            SimTime(1_000_000),
        )
        .is_ok());
}
