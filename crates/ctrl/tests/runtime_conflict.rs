//! Commutativity of conflict-analyzer-admitted concurrency.
//!
//! Property: when the conflict analyzer declares a set of compiled
//! updates footprint-disjoint, **any** interleaving of their control
//! messages (each update's own round order preserved — that is what
//! barriers enforce — everything across updates arbitrary) drives the
//! switches to the *same* committed flow tables as executing the
//! updates serially, i.e. the concurrent execution is equivalent to a
//! serial order. Cross-validated against `verify_schedule`: each
//! flow's schedule is transiently safe in isolation, and since
//! disjoint footprints touch disjoint (switch, flow-class) slices,
//! those per-flow guarantees carry to the merged trace unchanged.
//!
//! A negative control checks the analyzer *does* flag same-flow
//! overlap, where the committed state genuinely depends on order.

use proptest::prelude::*;

use sdn_ctrl::compile::{compile_schedule, CompiledUpdate, FlowSpec};
use sdn_ctrl::runtime::Footprint;
use sdn_openflow::messages::Envelope;
use sdn_switch::SoftSwitch;
use sdn_topo::gen::{self, UpdatePair};
use sdn_types::{DetRng, DpId, Xid};
use update_core::algorithms::{SlfGreedy, UpdateScheduler};
use update_core::checker::verify_schedule;
use update_core::model::UpdateInstance;
use update_core::properties::PropertySet;

/// Build `k` disjoint flows of `n` switches each. With `shared`, all
/// flows run over the *same* switches (flow-class disjointness only);
/// otherwise each flow gets its own dpid range (switch disjointness).
fn disjoint_flows(n: u64, k: usize, shared: bool, rng: &mut DetRng) -> Vec<UpdatePair> {
    (0..k)
        .map(|i| {
            let base = gen::random_permutation(n, rng);
            if shared {
                base
            } else {
                gen::shift(&base, (i as u64) * (n + 3))
            }
        })
        .collect()
}

/// Compile each flow against the shared batch topology, verifying its
/// schedule statically on the way.
fn compile_flows(pairs: &[UpdatePair]) -> Vec<CompiledUpdate> {
    let topo = gen::materialize_batch(pairs);
    pairs
        .iter()
        .enumerate()
        .map(|(i, pair)| {
            let (src, dst) = gen::batch_hosts(i);
            let spec = FlowSpec { src, dst };
            let inst =
                UpdateInstance::new(pair.old.clone(), pair.new.clone(), pair.waypoint).unwrap();
            let sched = SlfGreedy::default().schedule(&inst).unwrap();
            let report = verify_schedule(&inst, &sched, PropertySet::loop_free_strong());
            assert!(report.is_ok(), "per-flow schedule must verify: {report}");
            compile_schedule(&topo, &inst, &sched, &spec).unwrap()
        })
        .collect()
}

/// All switches any update touches.
fn all_switches(updates: &[CompiledUpdate]) -> Vec<DpId> {
    let mut dps: Vec<DpId> = updates
        .iter()
        .flat_map(|u| u.rounds.iter().flat_map(|r| r.msgs.iter().map(|(d, _)| *d)))
        .collect();
    dps.sort();
    dps.dedup();
    dps
}

/// Apply a message sequence to fresh switches; return each switch's
/// committed table as a sorted fingerprint.
fn run_sequence(
    switches: &[DpId],
    seq: &[(DpId, sdn_openflow::messages::OfMessage)],
) -> Vec<(DpId, Vec<String>)> {
    let mut sws: Vec<SoftSwitch> = switches.iter().map(|&d| SoftSwitch::new(d, 64)).collect();
    let mut xid = Xid(1);
    for (dp, msg) in seq {
        let sw = sws.iter_mut().find(|s| s.dpid() == *dp).unwrap();
        sw.handle_control(Envelope::new(xid, msg.clone()));
        xid = xid.next();
    }
    sws.iter()
        .map(|s| {
            // fingerprint the forwarding-relevant fields only —
            // `installed_seq`/`packets` are bookkeeping and naturally
            // differ between interleavings
            let mut rules: Vec<String> = s
                .table()
                .iter()
                .map(|e| {
                    format!(
                        "{}|{:?}|{:?}|{}",
                        e.priority, e.matcher, e.actions, e.cookie
                    )
                })
                .collect();
            rules.sort();
            (s.dpid(), rules)
        })
        .collect()
}

/// Random merge of the updates' message streams, preserving each
/// stream's internal order.
fn random_interleaving(
    updates: &[CompiledUpdate],
    rng: &mut DetRng,
) -> Vec<(DpId, sdn_openflow::messages::OfMessage)> {
    let mut streams: Vec<std::collections::VecDeque<_>> = updates
        .iter()
        .map(|u| {
            u.rounds
                .iter()
                .flat_map(|r| r.msgs.iter().cloned())
                .collect()
        })
        .collect();
    let mut out = Vec::new();
    loop {
        let nonempty: Vec<usize> = streams
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, _)| i)
            .collect();
        if nonempty.is_empty() {
            return out;
        }
        let pick = nonempty[rng.index(nonempty.len())];
        out.push(streams[pick].pop_front().unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn admitted_interleavings_commute_to_a_serial_order(
        n in 4u64..9,
        k in 2usize..4,
        shared in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::new(seed);
        let pairs = disjoint_flows(n, k, shared, &mut rng);
        let updates = compile_flows(&pairs);

        // the analyzer must admit the whole set concurrently
        let fps: Vec<Footprint> = updates.iter().map(Footprint::of).collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                prop_assert!(
                    fps[i].disjoint(&fps[j]),
                    "flows {i}/{j} must be footprint-disjoint (shared={shared})"
                );
            }
        }

        // serial reference: update 0 fully, then 1, ...
        let dps = all_switches(&updates);
        let serial: Vec<_> = updates
            .iter()
            .flat_map(|u| u.rounds.iter().flat_map(|r| r.msgs.iter().cloned()))
            .collect();
        let reference = run_sequence(&dps, &serial);

        // any admitted interleaving commits the same configuration
        for _ in 0..4 {
            let merged = random_interleaving(&updates, &mut rng);
            prop_assert_eq!(merged.len(), serial.len());
            let got = run_sequence(&dps, &merged);
            prop_assert_eq!(&got, &reference, "interleaving must commute");
        }
    }

    #[test]
    fn same_flow_overlap_is_flagged_as_conflict(
        n in 4u64..9,
        seed in any::<u64>(),
    ) {
        // Two updates of the SAME flow (same dst host, same switches):
        // committed state depends on order, and the analyzer must say
        // so instead of admitting them concurrently.
        let mut rng = DetRng::new(seed);
        let pair_a = gen::random_permutation(n, &mut rng);
        let pair_b = UpdatePair {
            old: pair_a.new.clone(),
            new: pair_a.old.clone(),
            waypoint: None,
        };
        let topo = gen::materialize_batch(std::slice::from_ref(&pair_a));
        let (src, dst) = gen::batch_hosts(0);
        let spec = FlowSpec { src, dst };
        let compiled: Vec<CompiledUpdate> = [&pair_a, &pair_b]
            .iter()
            .map(|p| {
                let inst =
                    UpdateInstance::new(p.old.clone(), p.new.clone(), None).unwrap();
                let sched = SlfGreedy::default().schedule(&inst).unwrap();
                compile_schedule(&topo, &inst, &sched, &spec).unwrap()
            })
            .collect();
        let fa = Footprint::of(&compiled[0]);
        let fb = Footprint::of(&compiled[1]);
        prop_assert!(fa.conflicts(&fb), "same-flow updates must conflict");
    }
}

/// Non-proptest sanity: the drain grace on cleanup rounds never hides
/// messages from the footprint (every round contributes, including
/// the old-only switches whose rules only appear in RemoveOld rounds).
#[test]
fn footprint_includes_cleanup_round_switches() {
    // disjoint detour: switches 2,4,5,6 are old-only, touched *only*
    // by the trailing cleanup round's deletes
    let pair = gen::disjoint_detour(7, 2);
    let topo = gen::materialize_batch(std::slice::from_ref(&pair));
    let (src, dst) = gen::batch_hosts(0);
    let spec = FlowSpec { src, dst };
    let inst = UpdateInstance::new(pair.old.clone(), pair.new.clone(), pair.waypoint).unwrap();
    let sched = SlfGreedy::default().schedule(&inst).unwrap();
    let compiled = compile_schedule(&topo, &inst, &sched, &spec).unwrap();
    let fp = Footprint::of(&compiled);
    for dp in [2u64, 4, 5, 6].map(DpId) {
        assert!(
            fp.switches().any(|d| d == dp),
            "old-only switch {dp} (cleanup round) missing from footprint"
        );
    }
}
