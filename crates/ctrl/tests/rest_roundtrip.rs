//! `GET /status` end-to-end: drive a real [`ConcurrentRuntime`]
//! through the robustness machinery — journalled baseline, a job that
//! exhausts against a dead switch and quarantines it, a reconnect
//! audit, a crash recovery — and check that every counter the
//! operator needs round-trips through the rendered JSON.

use sdn_ctrl::compile::{CompiledRound, CompiledUpdate};
use sdn_ctrl::controller::CtrlOutput;
use sdn_ctrl::executor::ExecConfig;
use sdn_ctrl::rest::json::{self, Json};
use sdn_ctrl::rest::status::status_response;
use sdn_ctrl::runtime::{
    ConcurrentRuntime, Journal, Priority, RetransMode, RuntimeConfig, RuntimeHandle,
};
use sdn_openflow::flow::{Action, FlowMatch};
use sdn_openflow::messages::{Envelope, FlowMod, FlowModCommand, OfMessage};
use sdn_switch::SoftSwitch;
use sdn_types::{DpId, HostId, PortNo, SimDuration, SimTime, Xid};

fn add(dst: u32) -> OfMessage {
    OfMessage::FlowMod(FlowMod {
        command: FlowModCommand::Add,
        priority: 100,
        matcher: FlowMatch::dst_host(HostId(dst)),
        actions: vec![Action::Output(PortNo(1))],
        cookie: u64::from(dst),
    })
}

fn one_round_job(label: &str, dp: u64, dst: u32) -> CompiledUpdate {
    CompiledUpdate {
        label: label.into(),
        rounds: vec![CompiledRound {
            msgs: vec![(DpId(dp), add(dst))],
            pre_delay: SimDuration::ZERO,
        }],
    }
}

#[test]
fn live_status_reports_robustness_counters() {
    let cfg = RuntimeConfig {
        exec: ExecConfig {
            barrier_timeout: SimDuration::from_millis(10),
            max_attempts: 1,
            flowmod_acks: false,
        },
        retrans: RetransMode::Fixed,
        quarantine_strikes: 1,
        ..RuntimeConfig::default()
    };
    let mut rt = ConcurrentRuntime::with_journal(cfg, Journal::mem());
    let mut now = SimTime(0);

    // baseline rule: journalled and mirrored into the shadow table
    let mut sw = SoftSwitch::new(DpId(1), 8);
    let baseline = add(7);
    rt.note_installed(DpId(1), &baseline);
    sw.handle_control(Envelope::new(Xid(1), baseline));

    // a job against a switch that never answers: one attempt, exhaust,
    // strike, quarantine
    assert!(rt
        .submit(one_round_job("doomed", 9, 50), now, Priority::Normal)
        .is_ok());
    let _ = rt.poll(now);
    now += SimDuration::from_millis(50);
    let _ = rt.poll(now);
    assert!(rt.is_idle(), "exhausted job must fail cleanly");

    // a reconnect runs the audit handshake; the switch is in sync so
    // it converges on the first report with nothing replayed
    for CtrlOutput::Send(dp, env) in rt.on_reconnect(DpId(1), now) {
        assert_eq!(dp, DpId(1));
        for reply in sw.handle_control(env) {
            let _ = rt.on_message(now, DpId(1), &reply);
        }
    }

    let resp = status_response(&rt.status_report());
    assert_eq!(resp.status, 200);
    let v = json::parse(&resp.body).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(v.get("queued").unwrap().as_u64(), Some(0));
    assert_eq!(v.get("active").unwrap().as_u64(), Some(0));
    let stats = v.get("stats").unwrap();
    assert_eq!(stats.get("failed").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("quarantined").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("reconnects").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("resyncs").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("resynced_rules").unwrap().as_u64(), Some(0));
    assert_eq!(stats.get("recoveries").unwrap().as_u64(), Some(0));
    // baseline + admitted + started + failed are all on record
    assert!(
        v.get("journal_len").unwrap().as_u64().unwrap() >= 4,
        "journal must hold the session's records: {}",
        resp.body
    );
    let Json::Arr(q) = v.get("quarantined").unwrap() else {
        panic!("quarantined must be an array");
    };
    assert_eq!(q.len(), 1);
    assert_eq!(q[0].as_u64(), Some(9), "the dead switch is named");

    // crash + recover: the terminal job survives via the journal, the
    // recovery counter ticks, and quarantine (not persisted) resets
    assert!(rt.recover_from_crash(now), "journalled runtime recovers");
    let v2 = json::parse(&status_response(&rt.status_report()).body).unwrap();
    let stats2 = v2.get("stats").unwrap();
    assert_eq!(stats2.get("recoveries").unwrap().as_u64(), Some(1));
    assert_eq!(stats2.get("failed").unwrap().as_u64(), Some(1));
    let Json::Arr(q2) = v2.get("quarantined").unwrap() else {
        panic!("quarantined must be an array");
    };
    assert!(q2.is_empty(), "quarantine is runtime state, not journalled");
    assert_eq!(rt.reports().len(), 1, "terminal report survives recovery");
}
