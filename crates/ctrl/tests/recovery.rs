//! Crash-recovery and resynchronization invariants.
//!
//! Property 1 (*crash equivalence*): crash the controller after an
//! arbitrary number of delivered control messages, rebuild it from its
//! write-ahead journal, and let it finish — the switches converge to
//! exactly the tables an uninterrupted run produces, and every job
//! reaches a terminal report. The journal may under-report progress
//! (records land after their actions), so recovery legitimately
//! re-sends rounds the switches already applied; idempotent FlowMods
//! make that correct, and this test is the proof.
//!
//! Property 2 (*resync minimality*): wipe an arbitrary subset of a
//! switch's rules and run the audit-and-repair handshake — the first
//! repair replays exactly the missing rules (never a surviving one),
//! and the follow-up audit finds the switch in sync.

use std::collections::{BTreeMap, VecDeque};

use proptest::prelude::*;

use sdn_ctrl::compile::{CompiledRound, CompiledUpdate};
use sdn_ctrl::controller::CtrlOutput;
use sdn_ctrl::executor::XidAlloc;
use sdn_ctrl::resync::ResyncManager;
use sdn_ctrl::runtime::{ConcurrentRuntime, Journal, Priority, RuntimeConfig, RuntimeHandle};
use sdn_openflow::flow::{Action, FlowMatch};
use sdn_openflow::messages::{Envelope, FlowMod, FlowModCommand, OfMessage};
use sdn_switch::SoftSwitch;
use sdn_types::{DpId, HostId, PortNo, SimDuration, SimTime};

fn add(dst: u32, out: u32) -> OfMessage {
    OfMessage::FlowMod(FlowMod {
        command: FlowModCommand::Add,
        priority: 100,
        matcher: FlowMatch::dst_host(HostId(dst)),
        actions: vec![Action::Output(PortNo(out))],
        cookie: u64::from(dst),
    })
}

/// A synthetic multi-round update: round `r` installs dst-host rules
/// on the given switches. Distinct `dst` per job keeps jobs
/// footprint-disjoint so they execute concurrently.
fn job(label: &str, dst: u32, rounds: &[Vec<u64>]) -> CompiledUpdate {
    CompiledUpdate {
        label: label.into(),
        rounds: rounds
            .iter()
            .enumerate()
            .map(|(r, dps)| CompiledRound {
                msgs: dps
                    .iter()
                    .map(|&d| (DpId(d), add(dst, (r as u32) + 1)))
                    .collect(),
                pre_delay: SimDuration::ZERO,
            })
            .collect(),
    }
}

/// Fingerprint of every switch table (forwarding-relevant fields,
/// order-independent).
fn tables(switches: &BTreeMap<DpId, SoftSwitch>) -> Vec<(DpId, Vec<u64>)> {
    switches
        .iter()
        .map(|(&dp, sw)| (dp, sw.table().rule_hashes()))
        .collect()
}

/// Drive the runtime against the switches until idle, or until
/// `crash_after` messages have been delivered (the crash point).
/// Returns the number of messages delivered.
fn drive(
    rt: &mut ConcurrentRuntime,
    switches: &mut BTreeMap<DpId, SoftSwitch>,
    now: &mut SimTime,
    crash_after: Option<usize>,
) -> usize {
    let mut delivered = 0usize;
    let mut wire: VecDeque<(DpId, Envelope)> = VecDeque::new();
    for _round in 0..10_000 {
        for CtrlOutput::Send(dp, env) in rt.poll(*now) {
            wire.push_back((dp, env));
        }
        if wire.is_empty() {
            if rt.is_idle() {
                return delivered;
            }
            // timer-driven progress only
            *now += SimDuration::from_millis(5);
            continue;
        }
        while let Some((dp, env)) = wire.pop_front() {
            if crash_after == Some(delivered) {
                return delivered;
            }
            delivered += 1;
            let sw = switches.get_mut(&dp).expect("known switch");
            for reply in sw.handle_control(env) {
                for CtrlOutput::Send(d2, e2) in rt.on_message(*now, dp, &reply) {
                    wire.push_back((d2, e2));
                }
            }
        }
        *now += SimDuration::from_millis(1);
    }
    panic!("drive did not converge");
}

fn fresh_switches(dps: &[u64]) -> BTreeMap<DpId, SoftSwitch> {
    dps.iter()
        .map(|&d| (DpId(d), SoftSwitch::new(DpId(d), 64)))
        .collect()
}

/// Env var naming the journal path when this test binary is re-spawned
/// as the crashing writer process.
const CHILD_PATH_VAR: &str = "SDN_JOURNAL_CHILD_PATH";

/// Child half of [`file_journal_survives_a_real_process_boundary`]:
/// admit jobs against a file-backed journal, send the first round, and
/// exit without any cleanup — a real crash, in a real separate
/// process. Only runs when the parent sets [`CHILD_PATH_VAR`];
/// `#[ignore]` keeps it out of normal runs.
#[test]
#[ignore]
fn journal_child_writes_then_exits() {
    let Ok(path) = std::env::var(CHILD_PATH_VAR) else {
        return;
    };
    let mut rt = ConcurrentRuntime::with_journal(RuntimeConfig::default(), Journal::file(&path));
    let now = SimTime(0);
    for i in 0..3u32 {
        let admitted = rt.submit(
            job(&format!("job{i}"), 10 + i, &[vec![1, 2], vec![3, 4]]),
            now,
            Priority::Normal,
        );
        assert!(admitted.is_ok(), "child admission failed");
    }
    // first round goes out, no switch ever answers: every job is
    // mid-flight when the process dies
    let _ = rt.poll(now);
    std::process::exit(0);
}

/// `Journal::File` across a real process boundary: one process writes
/// the log and dies mid-flight; a second process (this one) reopens
/// the same path in a fresh runtime, recovers, and drives every job to
/// completion. This is the property the in-process crash tests cannot
/// check — that the on-disk byte format, not a shared `Vec`, carries
/// the recovery.
#[test]
fn file_journal_survives_a_real_process_boundary() {
    let path = std::env::temp_dir().join(format!("sdn-journal-xproc-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let status = std::process::Command::new(std::env::current_exe().expect("test binary path"))
        .arg("journal_child_writes_then_exits")
        .arg("--exact")
        .arg("--ignored")
        .env(CHILD_PATH_VAR, &path)
        .status()
        .expect("spawn child test process");
    assert!(status.success(), "child writer must exit cleanly");

    let mut rt = ConcurrentRuntime::with_journal(RuntimeConfig::default(), Journal::file(&path));
    assert!(rt.is_idle(), "nothing carries over in-process");
    let mut now = SimTime(1);
    assert!(
        rt.recover_from_crash(now),
        "the other process's journal must drive a recovery"
    );
    assert_eq!(rt.stats().recoveries, 1);
    assert_eq!(
        rt.queued() + rt.active_count(),
        3,
        "all three mid-flight jobs are re-queued"
    );

    // the switches are fresh too (they belong to the dead process's
    // world); recovery re-runs every round, so they fully converge
    let mut switches = fresh_switches(&[1, 2, 3, 4]);
    drive(&mut rt, &mut switches, &mut now, None);
    assert!(rt.is_idle());
    assert_eq!(rt.reports().len(), 3);
    assert!(rt.reports().iter().all(|r| r.completed.is_some()));
    for (dp, sw) in &switches {
        assert_eq!(
            rt.intended_hashes(*dp),
            Some(sw.table().rule_hashes()),
            "recovered shadow of {dp} must match the replayed table"
        );
    }
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crash_at_any_point_recovers_to_the_uninterrupted_outcome(
        crash_frac in 0.0f64..1.0,
        flowmod_acks in any::<bool>(),
        njobs in 1usize..4,
    ) {
        let all_dps: Vec<u64> = (1..=6).collect();
        let cfg = RuntimeConfig {
            exec: sdn_ctrl::executor::ExecConfig {
                flowmod_acks,
                ..Default::default()
            },
            ..RuntimeConfig::default()
        };
        let mk_jobs = || -> Vec<CompiledUpdate> {
            (0..njobs)
                .map(|i| {
                    job(
                        &format!("job{i}"),
                        10 + i as u32,
                        &[vec![1, 2], vec![3, 4], vec![5, 6]],
                    )
                })
                .collect()
        };

        // Reference: uninterrupted run.
        let mut reference = ConcurrentRuntime::new(cfg);
        let mut ref_switches = fresh_switches(&all_dps);
        let mut now = SimTime(0);
        for u in mk_jobs() {
            let _ = reference.submit(u, now, Priority::Normal);
        }
        let total = drive(&mut reference, &mut ref_switches, &mut now, None);
        prop_assert!(reference.is_idle());
        let want = tables(&ref_switches);

        // Crashed run: journal on, crash after a fraction of the
        // reference run's message count, recover, finish.
        let crash_after = ((total as f64) * crash_frac) as usize;
        let mut rt = ConcurrentRuntime::with_journal(cfg, Journal::mem());
        let mut switches = fresh_switches(&all_dps);
        let mut now = SimTime(0);
        for u in mk_jobs() {
            let _ = rt.submit(u, now, Priority::Normal);
        }
        drive(&mut rt, &mut switches, &mut now, Some(crash_after));
        let recovered = rt.recover_from_crash(now);
        prop_assert!(recovered, "a journalled runtime must recover");
        prop_assert_eq!(rt.stats().recoveries, 1);
        drive(&mut rt, &mut switches, &mut now, None);
        prop_assert!(rt.is_idle(), "every re-queued job must finish");

        prop_assert_eq!(&tables(&switches), &want,
            "crash at {}/{} must converge to the reference tables",
            crash_after, total);
        // every job reached a terminal report exactly once
        prop_assert_eq!(rt.reports().len(), njobs);
        for r in rt.reports() {
            prop_assert!(r.completed.is_some(), "{} must complete", r.label);
        }
        // the recovered shadow agrees with the real tables
        for (dp, sw) in &switches {
            prop_assert_eq!(
                rt.intended_hashes(*dp),
                Some(sw.table().rule_hashes()),
                "shadow of {dp} diverged"
            );
        }
    }

    #[test]
    fn resync_replays_exactly_the_missing_rules(
        nrules in 1usize..12,
        wipe_mask in any::<u16>(),
    ) {
        let dp = DpId(1);
        let mut mgr = ResyncManager::new();
        let mut xids = XidAlloc::new();
        let mut sw = SoftSwitch::new(dp, 64);
        let mut missing = 0usize;
        let mut xid_src = XidAlloc::new();
        for i in 0..nrules {
            let OfMessage::FlowMod(fm) = add(i as u32 + 1, 1) else { unreachable!() };
            mgr.record(dp, &fm);
            // the wiped subset never reaches the switch
            if wipe_mask & (1 << i) != 0 {
                missing += 1;
            } else {
                sw.handle_control(Envelope::new(xid_src.alloc(), add(i as u32 + 1, 1)));
            }
        }

        // audit: probe, report, repair
        let probe = mgr.begin(dp, SimTime(0), &mut xids);
        let mut replies = sw.handle_control(probe);
        prop_assert_eq!(replies.len(), 1);
        let OfMessage::EchoReply(payload) = &replies.remove(0).msg else {
            panic!("probe must be answered with an echo reply");
        };
        let repair = mgr.on_report(dp, payload, SimTime(1), &mut xids);
        let fms: Vec<&Envelope> = repair
            .iter()
            .filter(|e| matches!(e.msg, OfMessage::FlowMod(_)))
            .collect();
        prop_assert_eq!(fms.len(), missing, "exactly the diff is replayed");

        if missing == 0 {
            prop_assert!(repair.is_empty(), "in-sync switch: audit closes");
        } else {
            // apply the repair; the verification probe must find the
            // switch in sync
            let mut verify_reply = Vec::new();
            for env in repair {
                verify_reply = sw.handle_control(env);
            }
            prop_assert_eq!(verify_reply.len(), 1);
            let OfMessage::EchoReply(p2) = &verify_reply.remove(0).msg else {
                panic!("verification probe must be echoed");
            };
            let done = mgr.on_report(dp, p2, SimTime(2), &mut xids);
            prop_assert!(done.is_empty(), "second audit must converge");
        }
        prop_assert_eq!(mgr.stats().completed, 1);
        prop_assert_eq!(mgr.stats().rules_replayed, missing as u64);
        prop_assert_eq!(mgr.intended_hashes(dp), Some(sw.table().rule_hashes()));
    }
}
