//! REST v1 edge cases end-to-end: `POST /v1/rebalance/apply` against a
//! live [`FabricCoordinator`] — malformed bodies, structured `409`
//! refusals, the happy path — plus the legacy-path `308` redirect
//! bodies asserted byte for byte (pre-v1 clients parse these blind, so
//! the exact bytes are the contract).

use sdn_ctrl::compile::{CompiledRound, CompiledUpdate};
use sdn_ctrl::rest::json::{self, Json};
use sdn_ctrl::rest::router::{dispatch, Endpoint};
use sdn_ctrl::rest::status::{
    migrate_error_response, parse_rebalance_apply, rebalance_apply_response, status_response,
    RebalanceApply,
};
use sdn_ctrl::runtime::fabric::{FabricConfig, FabricCoordinator};
use sdn_ctrl::runtime::{Priority, RuntimeHandle};
use sdn_openflow::flow::FlowMatch;
use sdn_openflow::messages::{FlowMod, FlowModCommand, OfMessage};
use sdn_types::{DpId, HostId, SimDuration, SimTime};

fn one_switch_job(label: &str, dp: u64) -> CompiledUpdate {
    CompiledUpdate {
        label: label.into(),
        rounds: vec![CompiledRound {
            msgs: vec![(
                DpId(dp),
                OfMessage::FlowMod(FlowMod {
                    command: FlowModCommand::Add,
                    priority: 100,
                    matcher: FlowMatch::dst_host(HostId(9)),
                    actions: vec![],
                    cookie: 0,
                }),
            )],
            pre_delay: SimDuration::ZERO,
        }],
    }
}

/// Handle a `POST /v1/rebalance/apply` request against a fabric the
/// way an embedding binary would: route, parse, execute, render.
fn apply(
    fab: &mut FabricCoordinator,
    body: &str,
    now: SimTime,
) -> sdn_ctrl::rest::response::Response {
    match dispatch("POST", "/v1/rebalance/apply") {
        Ok(Endpoint::RebalanceApply) => {}
        other => panic!("router must accept the apply endpoint: {other:?}"),
    }
    let parsed = match parse_rebalance_apply(body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let outcome = match parsed {
        RebalanceApply::Move { dp, to } => fab.begin_migration(dp, to, now).map(|()| vec![dp]),
        RebalanceApply::Advice => {
            let report = fab.rebalance_report(4);
            fab.apply_rebalance(&report, now)
        }
    };
    match outcome {
        Ok(migrating) => rebalance_apply_response(&migrating),
        Err(e) => migrate_error_response(&e),
    }
}

#[test]
fn apply_rejects_malformed_bodies_with_400() {
    let mut fab = FabricCoordinator::new(FabricConfig {
        shards: 2,
        ..FabricConfig::default()
    });
    for body in [
        "not json at all",
        "[1,2,3]",
        "42",
        r#"{"dp": 2}"#,
        r#"{"to": 1}"#,
        r#"{"dp": "two", "to": 1}"#,
        r#"{"dp": 2, "to": -1}"#,
    ] {
        let r = apply(&mut fab, body, SimTime(0));
        assert_eq!(r.status, 400, "body {body:?} must be refused: {}", r.body);
        let v = json::parse(&r.body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("error"));
        assert!(v.get("detail").is_some(), "refusal must say why");
    }
    // nothing changed on the fabric
    assert_eq!(fab.stats().migration_aborts, 0);
    assert!(fab.status_report().migrating.is_empty());
}

#[test]
fn apply_unknown_switch_is_a_structured_409() {
    let mut fab = FabricCoordinator::new(FabricConfig {
        shards: 2,
        ..FabricConfig::default()
    });
    let r = apply(&mut fab, r#"{"dp": 99, "to": 0}"#, SimTime(0));
    assert_eq!(r.status, 409);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("conflict"));
    assert_eq!(v.get("reason").unwrap().as_str(), Some("unknown_switch"));
    assert_eq!(v.get("dp").unwrap().as_u64(), Some(99));
}

#[test]
fn apply_same_shard_noop_is_a_structured_409() {
    let mut fab = FabricCoordinator::new(FabricConfig {
        shards: 2,
        ..FabricConfig::default()
    });
    let _ = fab.submit(one_switch_job("warm", 2), SimTime(0), Priority::Normal);
    // dp2 already lives on shard 0 under modulo 2
    let r = apply(&mut fab, r#"{"dp": 2, "to": 0}"#, SimTime(1));
    assert_eq!(r.status, 409);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("reason").unwrap().as_str(), Some("same_shard"));
    assert_eq!(v.get("dp").unwrap().as_u64(), Some(2));
    assert_eq!(v.get("shard").unwrap().as_u64(), Some(0));
}

#[test]
fn apply_mid_migration_repeat_is_a_structured_409() {
    let mut fab = FabricCoordinator::new(FabricConfig {
        shards: 2,
        ..FabricConfig::default()
    });
    // an in-flight job keeps the migration fenced (uncommitted), so
    // the repeat arrives genuinely mid-migration
    let _ = fab.submit(one_switch_job("hold", 2), SimTime(0), Priority::Normal);
    let _ = fab.poll(SimTime(0));
    let first = apply(&mut fab, r#"{"dp": 2, "to": 1}"#, SimTime(1));
    assert_eq!(first.status, 202, "{}", first.body);
    let v = json::parse(&first.body).unwrap();
    let Json::Arr(migrating) = v.get("migrating").unwrap() else {
        panic!("202 must list the migrating switches");
    };
    assert_eq!(migrating[0].as_u64(), Some(2));
    let repeat = apply(&mut fab, r#"{"dp": 2, "to": 1}"#, SimTime(2));
    assert_eq!(repeat.status, 409);
    let v = json::parse(&repeat.body).unwrap();
    assert_eq!(v.get("reason").unwrap().as_str(), Some("already_migrating"));
    assert_eq!(v.get("dp").unwrap().as_u64(), Some(2));
    // the migration itself is still live and visible in /v1/status
    let status = json::parse(&status_response(&fab.status_report()).body).unwrap();
    let Json::Arr(m) = status.get("migrating").unwrap() else {
        panic!("fabric status must carry the migrating list");
    };
    assert_eq!(m[0].as_u64(), Some(2));
}

#[test]
fn apply_advice_body_runs_the_report_and_counters_land_in_status() {
    let mut fab = FabricCoordinator::new(FabricConfig {
        shards: 2,
        ..FabricConfig::default()
    });
    // two hot switches on shard 0, one cool on shard 1 → one advised move
    for (dp, times) in [(2u64, 4), (4, 3), (1, 1)] {
        for i in 0..times {
            let _ = fab.submit(
                one_switch_job(&format!("w{dp}-{i}"), dp),
                SimTime(i),
                Priority::Normal,
            );
        }
    }
    let r = apply(&mut fab, "", SimTime(10));
    assert_eq!(r.status, 202, "{}", r.body);
    // `{}` is the same request
    let again = apply(&mut fab, "{}", SimTime(11));
    assert_eq!(
        again.status, 409,
        "the advised switch is already migrating: {}",
        again.body
    );
    let status = json::parse(&status_response(&fab.status_report()).body).unwrap();
    let stats = status.get("stats").unwrap();
    assert_eq!(stats.get("migration_aborts").unwrap().as_u64(), Some(1));
}

#[test]
fn apply_path_rejects_other_methods() {
    let err = dispatch("GET", "/v1/rebalance/apply").unwrap_err();
    assert_eq!(err.status, 405);
    let v = json::parse(&err.body).unwrap();
    assert_eq!(v.get("allow").unwrap().as_str(), Some("POST"));
}

#[test]
fn legacy_redirect_bodies_are_byte_stable() {
    // pre-v1 clients parse these bodies blind: the exact bytes are the
    // contract, not just the parsed shape
    for (method, path, expected) in [
        (
            "POST",
            "/update",
            r#"{"location":"/v1/update","status":"moved"}"#,
        ),
        (
            "POST",
            "/stats/update",
            r#"{"location":"/v1/update","status":"moved"}"#,
        ),
        (
            "GET",
            "/status",
            r#"{"location":"/v1/status","status":"moved"}"#,
        ),
    ] {
        let r = dispatch(method, path).unwrap_err();
        assert_eq!(r.status, 308);
        assert_eq!(r.body, expected, "{method} {path}");
    }
}

// --- PR 10: the observability surface's edge contract ---------------

#[test]
fn trace_unknown_job_is_a_structured_404() {
    let obs = sdn_obs::Obs::recording();
    match dispatch("GET", "/v1/trace/7") {
        Ok(Endpoint::Trace(7)) => {}
        other => panic!("router must parse the job id: {other:?}"),
    }
    let r = sdn_ctrl::rest::trace::trace_response(&obs, 7);
    assert_eq!(r.status, 404);
    let v = json::parse(&r.body).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("error"));
    assert_eq!(v.get("job").unwrap().as_u64(), Some(7));
    assert!(v.get("detail").unwrap().as_str().is_some());

    // a disabled handle records nothing, so every job is unknown
    let off = sdn_obs::Obs::disabled();
    assert_eq!(sdn_ctrl::rest::trace::trace_response(&off, 0).status, 404);
}

#[test]
fn trace_path_rejects_non_numeric_jobs_and_other_methods() {
    // non-numeric {job} is not a live endpoint: 404, not a parse panic
    let err = dispatch("GET", "/v1/trace/abc").unwrap_err();
    assert_eq!(err.status, 404);
    let err = dispatch("GET", "/v1/trace/-1").unwrap_err();
    assert_eq!(err.status, 404);
    // a well-formed job under the wrong method names GET
    let err = dispatch("DELETE", "/v1/trace/42").unwrap_err();
    assert_eq!(err.status, 405);
    let v = json::parse(&err.body).unwrap();
    assert_eq!(v.get("allow").unwrap().as_str(), Some("GET"));
}

#[test]
fn metrics_rejects_other_methods_with_405_naming_get() {
    for method in ["POST", "PUT", "DELETE", "PATCH", "HEAD"] {
        let err = dispatch(method, "/v1/metrics").unwrap_err();
        assert_eq!(err.status, 405, "{method} /v1/metrics");
        let v = json::parse(&err.body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(v.get("allow").unwrap().as_str(), Some("GET"));
    }
}

#[test]
fn metrics_endpoint_serves_a_valid_prometheus_page() {
    let mut fab = FabricCoordinator::new(FabricConfig {
        shards: 2,
        ..FabricConfig::default()
    });
    let obs = sdn_obs::Obs::recording();
    fab.attach_obs(obs.clone());
    let _ = fab.submit(one_switch_job("m0", 1), SimTime(0), Priority::Normal);
    match dispatch("GET", "/v1/metrics") {
        Ok(Endpoint::Metrics) => {}
        other => panic!("metrics must be live: {other:?}"),
    }
    let r = sdn_ctrl::rest::metrics::metrics_response(&obs, &fab.status_report());
    assert_eq!(r.status, 200);
    sdn_obs::prometheus::validate(&r.body).expect("page must be valid Prometheus text");
    assert!(r.body.contains("sdn_updates_submitted_total 1"));
}

#[test]
fn trailing_slashes_and_query_strings_resolve_on_every_v1_path() {
    use sdn_ctrl::rest::router::{route, Route};
    for (method, path, want) in [
        ("POST", "/v1/update/", Endpoint::Submit),
        ("POST", "/v1/update?tenant=3", Endpoint::Submit),
        ("GET", "/v1/status/", Endpoint::Status),
        ("GET", "/v1/status?verbose=1", Endpoint::Status),
        ("GET", "/v1/rebalance/?limit=4", Endpoint::Rebalance),
        ("POST", "/v1/rebalance/apply/", Endpoint::RebalanceApply),
        ("GET", "/v1/metrics/", Endpoint::Metrics),
        ("GET", "/v1/metrics?format=text", Endpoint::Metrics),
        ("GET", "/v1/trace/42/", Endpoint::Trace(42)),
        ("GET", "/v1/trace/42?pretty=1", Endpoint::Trace(42)),
    ] {
        assert_eq!(
            route(method, path),
            Route::Endpoint(want),
            "{method} {path}"
        );
    }
    // only ONE trailing slash is tolerated; a double slash is a 404
    assert_eq!(route("GET", "/v1/status//"), Route::NotFound);
    // and the bare root stays a 404 even though it ends in '/'
    assert_eq!(route("GET", "/"), Route::NotFound);
}
