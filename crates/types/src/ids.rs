//! Identifier newtypes.
//!
//! Every entity in the system — switches (datapaths), ports, hosts,
//! links, flows, protocol transactions and rule-version tags — gets its
//! own newtype so the compiler keeps the layers honest. All identifiers
//! are plain integers underneath, matching how Ryu exposes OpenFlow
//! datapaths ("switches ... are identified by integer values called
//! datapaths", §2 of the demo paper).

use std::fmt;

/// Identifier of an OpenFlow datapath (a switch).
///
/// The demo paper's REST format carries routes as lists of datapath
/// numbers (`"oldpath":[<dp-num>,...]`); we mirror that directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DpId(pub u64);

impl DpId {
    /// Raw integer value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for DpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for DpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u64> for DpId {
    fn from(v: u64) -> Self {
        DpId(v)
    }
}

/// A switch port number. Port numbering is per-switch, starting at 1
/// (port 0 is reserved, as in OpenFlow where 0 is invalid).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortNo(pub u32);

impl PortNo {
    /// The OpenFlow `CONTROLLER` pseudo-port.
    pub const CONTROLLER: PortNo = PortNo(0xffff_fffd);
    /// The OpenFlow `LOCAL` pseudo-port.
    pub const LOCAL: PortNo = PortNo(0xffff_fffe);

    /// Raw integer value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Whether this is a real, physical port (not a pseudo-port).
    #[inline]
    pub const fn is_physical(self) -> bool {
        self.0 > 0 && self.0 < 0xffff_ff00
    }
}

impl fmt::Debug for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PortNo::CONTROLLER => write!(f, "p[ctrl]"),
            PortNo::LOCAL => write!(f, "p[local]"),
            PortNo(n) => write!(f, "p{n}"),
        }
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of an end host attached to the network (e.g. `h1`, `h2`
/// in Figure 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Identifier of a (bidirectional) link in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Identifier of a flow (a `(src-host, dst-host)` traffic aggregate).
/// The demo updates the single flow h1 → h2; the library supports many.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// OpenFlow transaction identifier, echoed back in replies. Barrier
/// replies are matched to barrier requests by `Xid`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Xid(pub u32);

impl Xid {
    /// The zero transaction id, used for unsolicited messages.
    pub const ZERO: Xid = Xid(0);

    /// Next transaction id, wrapping (OpenFlow xids wrap in practice).
    #[inline]
    pub fn next(self) -> Xid {
        Xid(self.0.wrapping_add(1))
    }
}

impl fmt::Debug for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xid:{}", self.0)
    }
}

/// Rule version tag used by the tag-based two-phase-commit fallback
/// (Reitblatt-style per-packet consistency). Tag `0` conventionally
/// means "untagged / old generation".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionTag(pub u16);

impl VersionTag {
    /// The untagged / initial generation.
    pub const OLD: VersionTag = VersionTag(0);
    /// The conventional "new generation" tag used by the two-phase
    /// commit scheduler.
    pub const NEW: VersionTag = VersionTag(1);
}

impl fmt::Debug for VersionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VersionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn dpid_display_matches_paper_notation() {
        assert_eq!(DpId(3).to_string(), "s3");
        assert_eq!(format!("{:?}", DpId(12)), "s12");
    }

    #[test]
    fn dpid_orders_by_raw_value() {
        let mut v = vec![DpId(5), DpId(1), DpId(3)];
        v.sort();
        assert_eq!(v, vec![DpId(1), DpId(3), DpId(5)]);
    }

    #[test]
    fn portno_pseudo_ports_are_not_physical() {
        assert!(!PortNo::CONTROLLER.is_physical());
        assert!(!PortNo::LOCAL.is_physical());
        assert!(!PortNo(0).is_physical());
        assert!(PortNo(1).is_physical());
        assert!(PortNo(48).is_physical());
    }

    #[test]
    fn xid_next_wraps() {
        assert_eq!(Xid(u32::MAX).next(), Xid(0));
        assert_eq!(Xid(7).next(), Xid(8));
    }

    #[test]
    fn version_tags_distinct() {
        assert_ne!(VersionTag::OLD, VersionTag::NEW);
        assert_eq!(VersionTag::OLD.to_string(), "v0");
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<DpId> = (0..100).map(DpId).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn host_and_flow_display() {
        assert_eq!(HostId(1).to_string(), "h1");
        assert_eq!(FlowId(9).to_string(), "f9");
        assert_eq!(format!("{:?}", LinkId(2)), "l2");
    }
}
