//! # sdn-types
//!
//! Foundational types shared by every crate in the *transient-updates*
//! workspace: switch/port/flow identifiers, virtual time for the
//! discrete-event simulator, deterministic random number generation, and
//! small shared utilities.
//!
//! The types here are deliberately small, `Copy` where possible, and free
//! of behaviour that belongs to higher layers. Keeping them in one crate
//! avoids dependency cycles between the topology, protocol and scheduling
//! layers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod rng;
pub mod time;

pub use ids::{DpId, FlowId, HostId, LinkId, PortNo, VersionTag, Xid};
pub use rng::{DetRng, SplitMix64};
pub use time::{SimDuration, SimTime};
