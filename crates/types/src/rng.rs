//! Deterministic randomness.
//!
//! Every stochastic component in the workspace — channel delays, fault
//! injection, workload generators, the sampling verifier — draws from a
//! [`DetRng`] seeded explicitly by the experiment configuration. The
//! same seed always reproduces the same trace, which is essential when
//! a test asserts that a particular interleaving violates (or upholds)
//! a transient property.
//!
//! [`SplitMix64`] provides cheap, well-distributed sub-seed derivation
//! so independent components (e.g. the per-switch channel and the
//! packet injector) consume decorrelated streams derived from one
//! master seed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The SplitMix64 generator (Steele, Lea, Flood 2014). Used only to
/// derive decorrelated sub-seeds from a master seed; simulation-quality
/// sampling goes through [`DetRng`]'s `StdRng`.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A deterministic random number generator with explicit seeding and
/// named sub-stream derivation.
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    inner: StdRng,
}

impl DetRng {
    /// Create a generator from an explicit experiment seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent generator for a named component. The label
    /// is hashed (FNV-1a) into the derivation so different components
    /// with the same index still decorrelate.
    pub fn derive(&self, label: &str, index: u64) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut mix = SplitMix64::new(self.seed ^ h ^ index.rotate_left(17));
        // burn a few outputs so nearby seeds diverge
        let a = mix.next_u64();
        let b = mix.next_u64();
        DetRng::new(a ^ b.rotate_left(23))
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() on empty domain");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Sample an exponential distribution with the given mean, via
    /// inverse CDF. Returns 0 for non-positive means.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Choose a uniformly random element (by reference). Returns `None`
    /// on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            let i = self.index(xs.len());
            Some(&xs[i])
        }
    }

    /// Access the underlying `rand` generator for APIs that need one.
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should diverge");
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        let root = DetRng::new(7);
        let mut c1 = root.derive("channel", 0);
        let mut c2 = root.derive("channel", 0);
        let mut inj = root.derive("injector", 0);
        let mut c1b = root.derive("channel", 1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let x = c1.next_u64();
        assert_ne!(x, inj.next_u64());
        assert_ne!(x, c1b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_roughly_matches_probability() {
        let mut r = DetRng::new(11);
        let hits = (0..20_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = DetRng::new(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "got {mean}");
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-1.0), 0.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // and with overwhelming probability not the identity
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut r = DetRng::new(13);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let one = [42u8];
        assert_eq!(r.choose(&one), Some(&42));
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = DetRng::new(17);
        for _ in 0..1000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
            let i = r.index(5);
            assert!(i < 5);
        }
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 computed from the standard
        // SplitMix64 algorithm definition.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism check.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }
}
