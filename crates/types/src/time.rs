//! Virtual time for the discrete-event simulator.
//!
//! All latencies in the workspace — control-channel delays, link
//! propagation, switch processing — are expressed in [`SimDuration`]s
//! and accumulate on a [`SimTime`] axis. Using virtual time keeps every
//! experiment deterministic and lets the update-time evaluation (E2/E5)
//! report stable numbers independent of the host machine.
//!
//! Resolution is one nanosecond, stored as `u64`, which covers ~584
//! years of simulated time: far beyond any update experiment.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulation's virtual time axis, in nanoseconds since
/// simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to fractional milliseconds (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Convert to fractional microseconds (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference between two instants.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds. The demo's REST format expresses
    /// the injection `interval` in milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((ms * 1_000_000.0).round() as u64)
        }
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scale by an integer factor (saturating).
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Whether the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is uncertain.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_nanos(5).as_nanos(), 5);
    }

    #[test]
    fn from_millis_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(t.as_nanos(), 2_000_000);
        let t2 = t + SimDuration::from_micros(500);
        assert_eq!((t2 - t).as_nanos(), 500_000);
        assert_eq!(t.saturating_since(t2), SimDuration::ZERO);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_millis(1);
        }
        assert_eq!(t.as_millis_f64(), 10.0);
        let mut d = SimDuration::ZERO;
        d += SimDuration::from_micros(250);
        d += SimDuration::from_micros(750);
        assert_eq!(d, SimDuration::from_millis(1));
    }

    #[test]
    fn saturation_on_overflow() {
        let t = SimTime(u64::MAX) + SimDuration::from_secs(10);
        assert_eq!(t.0, u64::MAX);
        assert_eq!(SimDuration(u64::MAX).saturating_mul(3).as_nanos(), u64::MAX);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimTime(1_500_000).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_micros(25).to_string(), "0.025ms");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
    }
}
