//! Property tests for workload generators and topology builders:
//! every generated pair must be a valid, endpoint-consistent instance,
//! and materialization must physically support both routes.

use proptest::prelude::*;

use sdn_topo::algo::{is_connected, route_latency};
use sdn_topo::builders;
use sdn_topo::gen;
use sdn_types::{DetRng, SimDuration};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reversal_pairs_share_endpoints(n in 3u64..64) {
        let p = gen::reversal(n);
        prop_assert_eq!(p.old.src(), p.new.src());
        prop_assert_eq!(p.old.dst(), p.new.dst());
        prop_assert_eq!(p.old.len(), p.new.len());
    }

    #[test]
    fn permutation_pairs_are_valid(n in 3u64..48, seed in 0u64..10_000) {
        let mut rng = DetRng::new(seed);
        let p = gen::random_permutation(n, &mut rng);
        prop_assert_eq!(p.old.src(), p.new.src());
        prop_assert_eq!(p.old.dst(), p.new.dst());
        // new route visits exactly the old switches (permutation)
        let mut old_ids = p.old.raw();
        let mut new_ids = p.new.raw();
        old_ids.sort_unstable();
        new_ids.sort_unstable();
        prop_assert_eq!(old_ids, new_ids);
    }

    #[test]
    fn waypointed_pairs_keep_waypoint_interior(
        n in 5u64..40, crossing: bool, seed in 0u64..10_000
    ) {
        let mut rng = DetRng::new(seed);
        let p = gen::waypointed(n, crossing, &mut rng);
        let w = p.waypoint.expect("waypointed always sets one");
        prop_assert!(p.old.contains(w));
        prop_assert!(p.new.contains(w));
        prop_assert_ne!(w, p.old.src());
        prop_assert_ne!(w, p.old.dst());
    }

    #[test]
    fn materialized_topologies_support_both_routes(
        n in 5u64..32, crossing: bool, seed in 0u64..10_000
    ) {
        let mut rng = DetRng::new(seed);
        let p = gen::waypointed(n, crossing, &mut rng);
        let t = gen::materialize(&p);
        p.old.validate_on(&t).expect("old route realizable");
        p.new.validate_on(&t).expect("new route realizable");
        prop_assert!(is_connected(&t));
        prop_assert!(route_latency(&t, &p.old).is_some());
        prop_assert!(route_latency(&t, &p.new).is_some());
    }

    #[test]
    fn subsequence_is_increasing(n in 3u64..48, keep in 0.0f64..1.0, seed in 0u64..10_000) {
        let mut rng = DetRng::new(seed);
        let p = gen::random_subsequence(n, keep, &mut rng);
        let raw = p.new.raw();
        prop_assert!(raw.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn line_and_ring_shapes(n in 2u64..64) {
        let lat = SimDuration::from_millis(1);
        let line = builders::line(n, lat).unwrap();
        prop_assert_eq!(line.switch_count(), n as usize);
        prop_assert_eq!(line.link_count(), (n - 1) as usize);
        prop_assert!(is_connected(&line));
        if n >= 3 {
            let ring = builders::ring(n, lat).unwrap();
            prop_assert_eq!(ring.link_count(), n as usize);
        }
    }

    #[test]
    fn grids_are_connected(w in 1u64..8, h in 1u64..8) {
        let t = builders::grid(w, h, SimDuration::from_millis(1)).unwrap();
        prop_assert_eq!(t.switch_count(), (w * h) as usize);
        prop_assert!(is_connected(&t));
    }
}

#[test]
fn fat_trees_are_connected_and_sized() {
    for k in [2u64, 4, 6, 8] {
        let t = builders::fat_tree(k, SimDuration::from_millis(1)).unwrap();
        let half = k / 2;
        assert_eq!(t.switch_count() as u64, half * half + k * k);
        assert!(is_connected(&t), "k={k}");
    }
}
