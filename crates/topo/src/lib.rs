//! # sdn-topo
//!
//! Network topology model for the transient-updates workspace.
//!
//! A [`graph::Topology`] is an undirected multigraph of
//! switches (identified by [`sdn_types::DpId`]) connected by links with
//! per-direction port numbers and propagation latency, plus end hosts
//! attached to switches. Routing policies are expressed as
//! [`route::RoutePath`]s — simple switch sequences — which is
//! exactly the representation the demo paper's REST interface uses
//! (`"oldpath":[<dp-num>,...]`).
//!
//! The crate also provides:
//!
//! * [`builders`] — canonical topologies, including the paper's
//!   **Figure 1** (12 switches, hosts `h1`/`h2`, waypoint `s3`) plus
//!   line/ring/grid/fat-tree shapes for scaling experiments;
//! * [`gen`] — workload generators producing old/new route pairs
//!   (reversals, random jumps, waypointed variants) for the
//!   round-scaling and violation experiments;
//! * [`algo`] — BFS/Dijkstra path computation and reachability;
//! * [`dot`] — Graphviz export that renders old routes solid and new
//!   routes dashed, mirroring the paper's figure style.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod builders;
pub mod dot;
pub mod gen;
pub mod graph;
pub mod route;

pub use builders::Figure1;
pub use graph::{Host, Link, Switch, Topology, TopologyError};
pub use route::{RouteError, RoutePath};
