//! Graph algorithms over [`Topology`]: BFS shortest path (hop count),
//! Dijkstra (latency), reachability and connectivity.
//!
//! These are used by the topology builders (sanity checks), the
//! workload generators (finding alternative routes) and the examples.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use sdn_types::{DpId, SimDuration};

use crate::graph::Topology;
use crate::route::RoutePath;

/// Shortest path by hop count from `src` to `dst`, as a [`RoutePath`].
/// Returns `None` if unreachable or `src == dst`.
pub fn bfs_path(topo: &Topology, src: DpId, dst: DpId) -> Option<RoutePath> {
    if src == dst || !topo.has_switch(src) || !topo.has_switch(dst) {
        return None;
    }
    let mut prev: BTreeMap<DpId, DpId> = BTreeMap::new();
    let mut seen: BTreeSet<DpId> = BTreeSet::new();
    let mut q = VecDeque::new();
    seen.insert(src);
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        if u == dst {
            break;
        }
        for v in topo.neighbors(u) {
            if seen.insert(v) {
                prev.insert(v, u);
                q.push_back(v);
            }
        }
    }
    reconstruct(src, dst, &prev)
}

/// Shortest path by accumulated link latency (Dijkstra).
pub fn dijkstra_path(topo: &Topology, src: DpId, dst: DpId) -> Option<RoutePath> {
    if src == dst || !topo.has_switch(src) || !topo.has_switch(dst) {
        return None;
    }
    let mut dist: BTreeMap<DpId, u64> = BTreeMap::new();
    let mut prev: BTreeMap<DpId, DpId> = BTreeMap::new();
    // max-heap on Reverse(cost)
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, DpId)>> = BinaryHeap::new();
    dist.insert(src, 0);
    heap.push(std::cmp::Reverse((0, src)));
    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if u == dst {
            break;
        }
        if dist.get(&u).copied().unwrap_or(u64::MAX) < d {
            continue;
        }
        for v in topo.neighbors(u) {
            let w = topo
                .link_between(u, v)
                .map(|l| l.latency.as_nanos())
                .unwrap_or(u64::MAX);
            let nd = d.saturating_add(w);
            if nd < dist.get(&v).copied().unwrap_or(u64::MAX) {
                dist.insert(v, nd);
                prev.insert(v, u);
                heap.push(std::cmp::Reverse((nd, v)));
            }
        }
    }
    reconstruct(src, dst, &prev)
}

fn reconstruct(src: DpId, dst: DpId, prev: &BTreeMap<DpId, DpId>) -> Option<RoutePath> {
    if !prev.contains_key(&dst) {
        return None;
    }
    let mut hops = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = *prev.get(&cur)?;
        hops.push(cur);
    }
    hops.reverse();
    RoutePath::new(hops).ok()
}

/// All switches reachable from `src` (including `src`).
pub fn reachable_from(topo: &Topology, src: DpId) -> BTreeSet<DpId> {
    let mut seen = BTreeSet::new();
    if !topo.has_switch(src) {
        return seen;
    }
    let mut q = VecDeque::new();
    seen.insert(src);
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for v in topo.neighbors(u) {
            if seen.insert(v) {
                q.push_back(v);
            }
        }
    }
    seen
}

/// Whether every switch can reach every other switch.
pub fn is_connected(topo: &Topology) -> bool {
    let mut ids = topo.switch_ids();
    match ids.next() {
        None => true,
        Some(first) => reachable_from(topo, first).len() == topo.switch_count(),
    }
}

/// Total one-way latency along a route (sum of link latencies).
/// Returns `None` if a hop is not physically linked.
pub fn route_latency(topo: &Topology, route: &RoutePath) -> Option<SimDuration> {
    let mut total = SimDuration::ZERO;
    for (a, b) in route.edges() {
        total += topo.link_between(a, b)?.latency;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    /// 1 -- 2 -- 3
    ///  \________/   (1--4--3 with cheap links)
    fn diamond() -> Topology {
        let mut t = Topology::new();
        t.add_switches(4).unwrap();
        t.add_link(DpId(1), DpId(2), lat(5)).unwrap();
        t.add_link(DpId(2), DpId(3), lat(5)).unwrap();
        t.add_link(DpId(1), DpId(4), lat(1)).unwrap();
        t.add_link(DpId(4), DpId(3), lat(1)).unwrap();
        t
    }

    #[test]
    fn bfs_finds_min_hops() {
        let t = diamond();
        let p = bfs_path(&t, DpId(1), DpId(3)).unwrap();
        assert_eq!(p.len(), 3); // either 1-2-3 or 1-4-3
    }

    #[test]
    fn dijkstra_prefers_cheap_links() {
        let t = diamond();
        let p = dijkstra_path(&t, DpId(1), DpId(3)).unwrap();
        assert_eq!(p.raw(), vec![1, 4, 3]);
        assert_eq!(route_latency(&t, &p), Some(lat(2)));
    }

    #[test]
    fn unreachable_returns_none() {
        let mut t = diamond();
        t.add_switch(DpId(9)).unwrap();
        assert!(bfs_path(&t, DpId(1), DpId(9)).is_none());
        assert!(dijkstra_path(&t, DpId(1), DpId(9)).is_none());
    }

    #[test]
    fn same_node_returns_none() {
        let t = diamond();
        assert!(bfs_path(&t, DpId(1), DpId(1)).is_none());
    }

    #[test]
    fn reachability_and_connectivity() {
        let mut t = diamond();
        assert!(is_connected(&t));
        assert_eq!(reachable_from(&t, DpId(1)).len(), 4);
        t.add_switch(DpId(9)).unwrap();
        assert!(!is_connected(&t));
        assert_eq!(reachable_from(&t, DpId(9)).len(), 1);
    }

    #[test]
    fn empty_topology_is_connected() {
        assert!(is_connected(&Topology::new()));
    }

    #[test]
    fn route_latency_missing_link() {
        let t = diamond();
        let bogus = RoutePath::from_raw(&[1, 3]).unwrap();
        assert!(route_latency(&t, &bogus).is_none());
    }
}
