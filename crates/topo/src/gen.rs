//! Workload generators: old/new route pairs for update experiments.
//!
//! The scheduling literature evaluates round complexity on *route
//! permutation* workloads: the old policy is a line ⟨1,…,n⟩ and the new
//! policy revisits a subset of those switches in a different order.
//! This module generates the canonical families:
//!
//! * [`reversal`] — the new route traverses the old route backwards;
//!   the worst case for strong loop freedom (Θ(n) rounds) and the
//!   showcase for Peacock's relaxed scheduling (O(1) rounds here);
//! * [`random_permutation`] — uniformly random interior order;
//! * [`random_subsequence`] — order-preserving random subset (all
//!   forward jumps; the easy case);
//! * [`waypointed`] — routes sharing a waypoint, optionally with a
//!   *crossing* switch (before the waypoint on one route, after it on
//!   the other), which makes pure rule-replacement WayUp infeasible and
//!   exercises the two-phase-commit fallback;
//! * [`disjoint_detour`] — new route disjoint from old except at the
//!   endpoints and waypoint (the Figure 1 shape, parameterized);
//! * [`fat_tree_flows`] — a *multi-flow batch* of k-ary fat-tree
//!   re-routes (core and uplink re-routes, some waypointed), the
//!   datacenter-scale throughput workload.
//!
//! [`materialize`] builds a [`Topology`] containing exactly the links
//! both routes need (plus host attachment points), so generated pairs
//! can drive the full controller/switch simulation, not just the
//! abstract scheduler.

use sdn_types::{DetRng, DpId, HostId, SimDuration};

use crate::builders::{DEFAULT_HOST_LATENCY, DEFAULT_LINK_LATENCY};
use crate::graph::Topology;
use crate::route::RoutePath;

/// An update workload: old route, new route, optional waypoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdatePair {
    /// Current (old) policy.
    pub old: RoutePath,
    /// Target (new) policy.
    pub new: RoutePath,
    /// Waypoint on both routes, if the workload enforces one.
    pub waypoint: Option<DpId>,
}

impl UpdatePair {
    fn plain(old: RoutePath, new: RoutePath) -> Self {
        UpdatePair {
            old,
            new,
            waypoint: None,
        }
    }
}

/// Old ⟨1,…,n⟩, new ⟨1, n−1, n−2, …, 2, n⟩ (n ≥ 3): full reversal of
/// the interior. Strong loop freedom needs Θ(n) rounds here; relaxed
/// loop freedom needs only 3.
pub fn reversal(n: u64) -> UpdatePair {
    assert!(n >= 3, "reversal needs n >= 3");
    let old = RoutePath::from_raw(&(1..=n).collect::<Vec<_>>()).expect("valid");
    let mut ids = vec![1];
    ids.extend((2..n).rev());
    ids.push(n);
    let new = RoutePath::from_raw(&ids).expect("valid");
    UpdatePair::plain(old, new)
}

/// Old ⟨1,…,n⟩; new route visits a uniformly shuffled permutation of
/// the interior switches (all of them), keeping endpoints fixed.
pub fn random_permutation(n: u64, rng: &mut DetRng) -> UpdatePair {
    assert!(n >= 3, "permutation needs n >= 3");
    let old = RoutePath::from_raw(&(1..=n).collect::<Vec<_>>()).expect("valid");
    let mut interior: Vec<u64> = (2..n).collect();
    rng.shuffle(&mut interior);
    let mut ids = vec![1];
    ids.extend(interior);
    ids.push(n);
    let new = RoutePath::from_raw(&ids).expect("valid");
    UpdatePair::plain(old, new)
}

/// Old ⟨1,…,n⟩; new route keeps each interior switch with probability
/// `keep` in the *old order* (only forward jumps — the easy case every
/// scheduler should finish in few rounds).
pub fn random_subsequence(n: u64, keep: f64, rng: &mut DetRng) -> UpdatePair {
    assert!(n >= 3, "subsequence needs n >= 3");
    let old = RoutePath::from_raw(&(1..=n).collect::<Vec<_>>()).expect("valid");
    let mut ids = vec![1];
    for i in 2..n {
        if rng.chance(keep) {
            ids.push(i);
        }
    }
    ids.push(n);
    let new = RoutePath::from_raw(&ids).expect("valid");
    UpdatePair::plain(old, new)
}

/// A waypointed instance on `n ≥ 5` switches.
///
/// Old route: ⟨1,…,n⟩ with waypoint `w = ⌈n/2⌉`. The new route keeps
/// the waypoint and shuffles each side's interior independently, so
/// every shared switch stays on the same side of the waypoint — the
/// *crossing-free* case where a pure rule-replacement WayUp schedule
/// exists (HotNets'14).
///
/// With `crossing = true`, one switch from before the waypoint (old
/// order) is moved after it on the new route, creating a crossing
/// switch; transient waypoint enforcement then requires the tag-based
/// fallback.
pub fn waypointed(n: u64, crossing: bool, rng: &mut DetRng) -> UpdatePair {
    assert!(n >= 5, "waypointed needs n >= 5");
    let w = n.div_ceil(2);
    let old = RoutePath::from_raw(&(1..=n).collect::<Vec<_>>()).expect("valid");

    let mut before: Vec<u64> = (2..w).collect();
    let mut after: Vec<u64> = (w + 1..n).collect();
    rng.shuffle(&mut before);
    rng.shuffle(&mut after);

    if crossing {
        // Move one pre-waypoint switch to the post-waypoint side.
        let moved = before.pop().unwrap_or_else(|| {
            panic!("need at least one interior switch before the waypoint (n={n})")
        });
        let at = if after.is_empty() {
            0
        } else {
            rng.index(after.len() + 1)
        };
        after.insert(at, moved);
    }

    let mut ids = vec![1];
    ids.extend(before);
    ids.push(w);
    ids.extend(after);
    ids.push(n);
    let new = RoutePath::from_raw(&ids).expect("valid");
    UpdatePair {
        old,
        new,
        waypoint: Some(DpId(w)),
    }
}

/// Old ⟨1,…,n⟩; new route interleaves the two halves of the interior:
/// ⟨1, m+1, 2, m+2, 3, …, n⟩ with `m = n/2`. Every second jump is
/// backward with overlapping spans, which defeats the "one deep
/// backward switch per round" shortcut and stresses relaxed-loop-
/// freedom schedulers harder than reversals do.
pub fn comb(n: u64) -> UpdatePair {
    assert!(n >= 6, "comb needs n >= 6");
    let old = RoutePath::from_raw(&(1..=n).collect::<Vec<_>>()).expect("valid");
    let m = (n - 2) / 2; // interior split point
    let lows: Vec<u64> = (2..2 + m).collect();
    let highs: Vec<u64> = (2 + m..n).collect();
    let mut ids = vec![1];
    let mut li = 0;
    let mut hi = 0;
    // interleave high, low, high, low ... to maximize span overlap
    while li < lows.len() || hi < highs.len() {
        if hi < highs.len() {
            ids.push(highs[hi]);
            hi += 1;
        }
        if li < lows.len() {
            ids.push(lows[li]);
            li += 1;
        }
    }
    ids.push(n);
    let new = RoutePath::from_raw(&ids).expect("valid");
    UpdatePair::plain(old, new)
}

/// Old ⟨1,…,n⟩; new route rotates the interior left by `k`:
/// ⟨1, 2+k, 3+k, …, n−1, 2, 3, …, 1+k, n⟩. Every switch in the moved
/// suffix jumps backward by n−2−k positions with overlapping spans —
/// a tunable middle ground between the all-backward [`reversal`] and
/// the all-forward [`random_subsequence`], used by the scheduler
/// scaling experiments at n ≥ 256.
pub fn rotation(n: u64, k: u64) -> UpdatePair {
    assert!(n >= 4, "rotation needs n >= 4");
    let interior = n - 2; // switches 2..=n-1
    let k = k % interior;
    let old = RoutePath::from_raw(&(1..=n).collect::<Vec<_>>()).expect("valid");
    let mut ids = vec![1];
    ids.extend(2 + k..n);
    ids.extend(2..2 + k);
    ids.push(n);
    let new = RoutePath::from_raw(&ids).expect("valid");
    UpdatePair::plain(old, new)
}

/// A batch of fat-tree-routed flow re-routes: the datacenter-scale
/// multi-flow workload (`exp_rounds_scaling`'s `fat_tree` family).
///
/// Models a `k`-ary fat tree (`k` even, ≥ 4): `(k/2)²` core switches,
/// `k/2` aggregation switches per pod, `k/2` edge switches per pod,
/// `k` pods. Core `(a, j)` (for `j < k/2`) connects to aggregation
/// switch `a` of every pod, so any inter-pod path is
/// ⟨edge, agg `a`, core `(a, j)`, agg `a`, edge⟩ for some uplink `a`
/// and core offset `j`. Dpids: cores first, then aggregations, then
/// edges, each layer numbered contiguously from 1.
///
/// Each generated flow picks two distinct pods and re-routes:
///
/// * **core re-route** (half the flows, ECMP rebalance): the new
///   route keeps both aggregation switches and changes only the core
///   — the interior is *shared*, so the schedulers must order the
///   switch updates transiently safely. One in four of these keeps a
///   waypoint at the source-side aggregation switch (a pod firewall).
/// * **uplink re-route** (the other half): the new route changes the
///   aggregation pair, sharing only the endpoints — the easy,
///   disjoint-detour case.
pub fn fat_tree_flows(k: u64, flows: usize, rng: &mut DetRng) -> Vec<UpdatePair> {
    assert!(k >= 4 && k.is_multiple_of(2), "fat tree needs even k >= 4");
    let half = k / 2;
    let cores = half * half;
    let aggs = k * half;
    let core = |a: u64, j: u64| DpId(1 + a * half + j);
    let agg = |pod: u64, a: u64| DpId(1 + cores + pod * half + a);
    let edge = |pod: u64, e: u64| DpId(1 + cores + aggs + pod * half + e);

    let mut out = Vec::with_capacity(flows);
    for _ in 0..flows {
        let ps = rng.index(k as usize) as u64;
        let mut pd = rng.index((k - 1) as usize) as u64;
        if pd >= ps {
            pd += 1;
        }
        let es = edge(ps, rng.index(half as usize) as u64);
        let ed = edge(pd, rng.index(half as usize) as u64);
        let a1 = rng.index(half as usize) as u64;
        let j1 = rng.index(half as usize) as u64;
        let old = RoutePath::from_raw(&[es.0, agg(ps, a1).0, core(a1, j1).0, agg(pd, a1).0, ed.0])
            .expect("distinct layers");
        if rng.chance(0.5) {
            // Core re-route: same uplink, different core offset.
            let mut j2 = rng.index((half - 1) as usize) as u64;
            if j2 >= j1 {
                j2 += 1;
            }
            let new =
                RoutePath::from_raw(&[es.0, agg(ps, a1).0, core(a1, j2).0, agg(pd, a1).0, ed.0])
                    .expect("distinct layers");
            let waypoint = rng.chance(0.25).then_some(agg(ps, a1));
            out.push(UpdatePair { old, new, waypoint });
        } else {
            // Uplink re-route: different aggregation pair (and core).
            let mut a2 = rng.index((half - 1) as usize) as u64;
            if a2 >= a1 {
                a2 += 1;
            }
            let j2 = rng.index(half as usize) as u64;
            let new =
                RoutePath::from_raw(&[es.0, agg(ps, a2).0, core(a2, j2).0, agg(pd, a2).0, ed.0])
                    .expect("distinct layers");
            out.push(UpdatePair::plain(old, new));
        }
    }
    out
}

/// A parameterized Figure-1 shape: old route ⟨1,…,k,…,n⟩, new route
/// that shares only the source, waypoint `k` and destination, detouring
/// through fresh switches `n+1, n+2, …` elsewhere.
pub fn disjoint_detour(n: u64, waypoint_pos: u64) -> UpdatePair {
    assert!(n >= 3, "detour needs n >= 3");
    assert!(
        waypoint_pos >= 1 && waypoint_pos < n - 1,
        "waypoint must be interior"
    );
    let w = waypoint_pos + 1; // dpid at that old-route position (1-based ids)
    let old = RoutePath::from_raw(&(1..=n).collect::<Vec<_>>()).expect("valid");
    let mut ids = vec![1];
    let mut fresh = n + 1;
    // one detour switch before the waypoint
    ids.push(fresh);
    fresh += 1;
    ids.push(w);
    // detour switches after the waypoint (match old suffix length)
    let suffix = (n - w).max(2) - 1;
    for _ in 0..suffix {
        ids.push(fresh);
        fresh += 1;
    }
    ids.push(n);
    let new = RoutePath::from_raw(&ids).expect("valid");
    UpdatePair {
        old,
        new,
        waypoint: Some(DpId(w)),
    }
}

/// Build a topology containing every switch and link the two routes
/// need, and attach `h1` to the shared source and `h2` to the shared
/// destination. Panics if the routes disagree on endpoints (workloads
/// generated by this module never do).
pub fn materialize(pair: &UpdatePair) -> Topology {
    materialize_with(pair, DEFAULT_LINK_LATENCY)
}

/// Translate every dpid of a pair by `offset` — the standard way to
/// stamp out switch-disjoint copies of one workload for concurrent
/// multi-update experiments (`shift(reversal(8), 10*i)` gives flow `i`
/// its own dpid range).
pub fn shift(pair: &UpdatePair, offset: u64) -> UpdatePair {
    let mv = |r: &RoutePath| {
        RoutePath::from_raw(&r.raw().iter().map(|d| d + offset).collect::<Vec<_>>())
            .expect("translation preserves validity")
    };
    UpdatePair {
        old: mv(&pair.old),
        new: mv(&pair.new),
        waypoint: pair.waypoint.map(|w| DpId(w.0 + offset)),
    }
}

/// Build one topology covering a whole *batch* of update pairs — the
/// multi-flow worlds the concurrent runtime executes against. Switches
/// and links are deduplicated across flows; flow `i` (0-based) gets
/// source host `2i+1` attached at its shared source switch and
/// destination host `2i+2` at its shared destination switch, so every
/// flow's FlowMods match a distinct destination host even where routes
/// share switches.
pub fn materialize_batch(pairs: &[UpdatePair]) -> Topology {
    let mut t = Topology::new();
    for pair in pairs {
        assert_eq!(pair.old.src(), pair.new.src(), "routes must share source");
        assert_eq!(
            pair.old.dst(),
            pair.new.dst(),
            "routes must share destination"
        );
        for &dp in pair.old.hops().iter().chain(pair.new.hops()) {
            if !t.has_switch(dp) {
                t.add_switch(dp).expect("deduplicated");
            }
        }
        for (a, b) in pair.old.edges().chain(pair.new.edges()) {
            if !t.adjacent(a, b) {
                t.add_link(a, b, DEFAULT_LINK_LATENCY).expect("valid link");
            }
        }
    }
    for (i, pair) in pairs.iter().enumerate() {
        let i = i as u32;
        t.attach_host(HostId(2 * i + 1), pair.old.src(), DEFAULT_HOST_LATENCY)
            .expect("src exists");
        t.attach_host(HostId(2 * i + 2), pair.old.dst(), DEFAULT_HOST_LATENCY)
            .expect("dst exists");
    }
    t
}

/// The host pair [`materialize_batch`] attaches for flow `i`.
pub fn batch_hosts(i: usize) -> (HostId, HostId) {
    let i = i as u32;
    (HostId(2 * i + 1), HostId(2 * i + 2))
}

/// [`materialize`] with an explicit link latency.
pub fn materialize_with(pair: &UpdatePair, latency: SimDuration) -> Topology {
    assert_eq!(pair.old.src(), pair.new.src(), "routes must share source");
    assert_eq!(
        pair.old.dst(),
        pair.new.dst(),
        "routes must share destination"
    );
    let mut t = Topology::new();
    for &dp in pair.old.hops().iter().chain(pair.new.hops()) {
        if !t.has_switch(dp) {
            t.add_switch(dp).expect("deduplicated");
        }
    }
    for (a, b) in pair.old.edges().chain(pair.new.edges()) {
        if !t.adjacent(a, b) {
            t.add_link(a, b, latency).expect("valid link");
        }
    }
    t.attach_host(HostId(1), pair.old.src(), DEFAULT_HOST_LATENCY)
        .expect("src exists");
    t.attach_host(HostId(2), pair.old.dst(), DEFAULT_HOST_LATENCY)
        .expect("dst exists");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(0xfeed)
    }

    #[test]
    fn reversal_shape() {
        let p = reversal(5);
        assert_eq!(p.old.raw(), vec![1, 2, 3, 4, 5]);
        assert_eq!(p.new.raw(), vec![1, 4, 3, 2, 5]);
        assert_eq!(p.waypoint, None);
    }

    #[test]
    fn reversal_minimum() {
        let p = reversal(3);
        assert_eq!(p.new.raw(), vec![1, 2, 3]); // single interior: unchanged
    }

    #[test]
    fn permutation_is_permutation() {
        let mut r = rng();
        let p = random_permutation(10, &mut r);
        let mut interior: Vec<u64> = p.new.raw()[1..9].to_vec();
        interior.sort_unstable();
        assert_eq!(interior, (2..10).collect::<Vec<_>>());
        assert_eq!(p.new.src(), DpId(1));
        assert_eq!(p.new.dst(), DpId(10));
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut r = rng();
        for _ in 0..20 {
            let p = random_subsequence(12, 0.5, &mut r);
            let raw = p.new.raw();
            let mut sorted = raw.clone();
            sorted.sort_unstable();
            assert_eq!(raw, sorted, "subsequence must be increasing");
        }
    }

    #[test]
    fn subsequence_extreme_probabilities() {
        let mut r = rng();
        let all = random_subsequence(8, 1.0, &mut r);
        assert_eq!(all.new, all.old);
        let none = random_subsequence(8, 0.0, &mut r);
        assert_eq!(none.new.raw(), vec![1, 8]);
    }

    #[test]
    fn waypointed_crossing_free_sides_consistent() {
        let mut r = rng();
        for n in [5u64, 8, 13] {
            let p = waypointed(n, false, &mut r);
            let w = p.waypoint.unwrap();
            let wo = p.old.position(w).unwrap();
            let wn = p.new.position(w).unwrap();
            for &dp in p.new.hops() {
                if dp == w {
                    continue;
                }
                if let (Some(po), Some(pn)) = (p.old.position(dp), p.new.position(dp)) {
                    assert_eq!(po < wo, pn < wn, "switch {dp} crossed the waypoint (n={n})");
                }
            }
        }
    }

    #[test]
    fn waypointed_crossing_creates_a_crossing() {
        let mut r = rng();
        let p = waypointed(9, true, &mut r);
        let w = p.waypoint.unwrap();
        let wo = p.old.position(w).unwrap();
        let wn = p.new.position(w).unwrap();
        let crossings = p
            .new
            .hops()
            .iter()
            .filter(|&&dp| {
                dp != w
                    && p.old.position(dp).is_some_and(|po| {
                        let pn = p.new.position(dp).unwrap();
                        (po < wo) != (pn < wn)
                    })
            })
            .count();
        assert!(crossings >= 1);
    }

    #[test]
    fn disjoint_detour_shares_only_endpoints_and_waypoint() {
        let p = disjoint_detour(7, 2);
        let w = p.waypoint.unwrap();
        assert_eq!(w, DpId(3));
        let shared: Vec<u64> = p
            .new
            .raw()
            .into_iter()
            .filter(|&x| p.old.contains(DpId(x)))
            .collect();
        assert_eq!(shared, vec![1, 3, 7]);
    }

    #[test]
    fn materialize_covers_both_routes() {
        let mut r = rng();
        let p = waypointed(9, true, &mut r);
        let t = materialize(&p);
        p.old.validate_on(&t).unwrap();
        p.new.validate_on(&t).unwrap();
        assert!(t.host(HostId(1)).is_some());
        assert!(t.host(HostId(2)).is_some());
        assert_eq!(t.host(HostId(1)).unwrap().attached_to, p.old.src());
    }

    #[test]
    fn materialize_figure1_like_detour() {
        let p = disjoint_detour(12, 2);
        let t = materialize(&p);
        p.old.validate_on(&t).unwrap();
        p.new.validate_on(&t).unwrap();
    }

    #[test]
    fn rotation_shape() {
        let p = rotation(8, 3);
        assert_eq!(p.old.raw(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(p.new.raw(), vec![1, 5, 6, 7, 2, 3, 4, 8]);
    }

    #[test]
    fn rotation_visits_every_switch_once() {
        for n in [4u64, 9, 33, 257] {
            for k in [0u64, 1, 5, n] {
                let p = rotation(n, k);
                let mut ids = p.new.raw();
                ids.sort_unstable();
                assert_eq!(ids, (1..=n).collect::<Vec<_>>(), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn rotation_zero_is_identity() {
        let p = rotation(6, 0);
        assert_eq!(p.new, p.old);
    }

    #[test]
    fn comb_interleaves_halves() {
        let p = comb(8);
        assert_eq!(p.old.raw(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        // interior 2..=7, m=3: lows [2,3,4], highs [5,6,7]
        assert_eq!(p.new.raw(), vec![1, 5, 2, 6, 3, 7, 4, 8]);
    }

    #[test]
    fn comb_visits_every_switch_once() {
        for n in [6u64, 9, 16, 33] {
            let p = comb(n);
            let mut ids = p.new.raw();
            ids.sort_unstable();
            assert_eq!(ids, (1..=n).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn generators_deterministic_under_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        assert_eq!(random_permutation(9, &mut a), random_permutation(9, &mut b));
        assert_eq!(waypointed(9, true, &mut a), waypointed(9, true, &mut b));
        assert_eq!(fat_tree_flows(8, 20, &mut a), fat_tree_flows(8, 20, &mut b));
    }

    #[test]
    fn fat_tree_flows_are_valid_inter_pod_paths() {
        let mut r = rng();
        for k in [4u64, 8, 16] {
            let half = k / 2;
            let cores = half * half;
            let aggs = k * half;
            let layer = |dp: DpId| -> u8 {
                if dp.0 <= cores {
                    0 // core
                } else if dp.0 <= cores + aggs {
                    1 // aggregation
                } else {
                    2 // edge
                }
            };
            for (i, p) in fat_tree_flows(k, 40, &mut r).into_iter().enumerate() {
                for route in [&p.old, &p.new] {
                    let layers: Vec<u8> = route.hops().iter().map(|&d| layer(d)).collect();
                    assert_eq!(layers, vec![2, 1, 0, 1, 2], "k={k} flow {i}: {route}");
                }
                assert_eq!(p.old.src(), p.new.src(), "k={k} flow {i}");
                assert_eq!(p.old.dst(), p.new.dst(), "k={k} flow {i}");
                assert_ne!(p.old, p.new, "k={k} flow {i}: re-route must change");
                // Endpoints live in different pods.
                let pod_of_edge = |dp: DpId| (dp.0 - 1 - cores - aggs) / half;
                assert_ne!(
                    pod_of_edge(p.old.src()),
                    pod_of_edge(p.old.dst()),
                    "k={k} flow {i}"
                );
                if let Some(w) = p.waypoint {
                    assert!(p.old.contains(w) && p.new.contains(w), "k={k} flow {i}");
                    assert_eq!(layer(w), 1, "waypoint is an aggregation switch");
                }
            }
        }
    }

    #[test]
    fn fat_tree_flows_mix_shared_and_disjoint_interiors() {
        let mut r = rng();
        let flows = fat_tree_flows(8, 100, &mut r);
        let shared_interior = |p: &UpdatePair| {
            p.new
                .hops()
                .iter()
                .skip(1)
                .take(3)
                .any(|&d| p.old.contains(d))
        };
        let shared = flows.iter().filter(|p| shared_interior(p)).count();
        // Both re-route styles must be well represented.
        assert!(shared >= 20, "core re-routes too rare: {shared}/100");
        assert!(shared <= 80, "uplink re-routes too rare: {shared}/100");
    }

    #[test]
    fn shift_translates_every_switch_and_the_waypoint() {
        let mut r = rng();
        let p = waypointed(7, false, &mut r);
        let s = shift(&p, 100);
        assert_eq!(
            s.old.raw(),
            p.old.raw().iter().map(|d| d + 100).collect::<Vec<_>>()
        );
        assert_eq!(s.waypoint, p.waypoint.map(|w| DpId(w.0 + 100)));
        // disjoint from the original
        assert!(s.new.hops().iter().all(|d| !p.old.contains(*d)));
    }

    #[test]
    fn materialize_batch_covers_every_flow_with_distinct_hosts() {
        let mut r = rng();
        let pairs = fat_tree_flows(4, 6, &mut r);
        let t = materialize_batch(&pairs);
        for (i, p) in pairs.iter().enumerate() {
            p.old.validate_on(&t).unwrap();
            p.new.validate_on(&t).unwrap();
            let (src, dst) = batch_hosts(i);
            assert_eq!(t.host(src).unwrap().attached_to, p.old.src());
            assert_eq!(t.host(dst).unwrap().attached_to, p.old.dst());
        }
    }

    #[test]
    fn fat_tree_flows_materialize() {
        let mut r = rng();
        for p in fat_tree_flows(4, 10, &mut r) {
            let t = materialize(&p);
            p.old.validate_on(&t).unwrap();
            p.new.validate_on(&t).unwrap();
        }
    }
}
