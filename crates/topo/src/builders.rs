//! Canonical topologies.
//!
//! The star of the module is [`figure1`], the paper's evaluation setup:
//! *"the test setup for transiently secure network updates tool consists
//! of 12 nodes or OpenFlow (OVS) switches with host h1 connected to
//! switch 1 and host h2 connected to switch 12 in mininet. Node/switch 3
//! is the waypoint, e.g., Firewall or IDS. The edges having a solid
//! line, build the old route ... The edges having a dashed line, build
//! the new route."*
//!
//! The figure shows but does not list the exact solid/dashed edges, so
//! the concrete routes below are a documented reconstruction with the
//! stated invariants: 12 switches, h1@s1, h2@s12, waypoint s3 on *both*
//! routes, old and new routes otherwise disjoint in the middle. See
//! EXPERIMENTS.md (E1).
//!
//! The remaining builders (line, ring, grid, fat-tree) supply shapes for
//! the scaling experiments (E2/E3).

use sdn_types::{DpId, HostId, SimDuration};

use crate::graph::{Topology, TopologyError};
use crate::route::RoutePath;

/// Default one-way link latency used by the builders (1 ms, a typical
/// intra-datacenter figure and Mininet's default order of magnitude).
pub const DEFAULT_LINK_LATENCY: SimDuration = SimDuration::from_millis(1);

/// Default host access latency (100 µs).
pub const DEFAULT_HOST_LATENCY: SimDuration = SimDuration::from_micros(100);

/// The paper's Figure 1 scenario: topology plus the old (solid) and new
/// (dashed) routing policies and the waypoint.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// 12-switch topology with h1@s1 and h2@s12 attached.
    pub topo: Topology,
    /// The old routing policy (solid edges): ⟨1,2,3,4,5,6,12⟩.
    pub old_route: RoutePath,
    /// The new routing policy (dashed edges): ⟨1,7,3,8,9,10,11,12⟩.
    pub new_route: RoutePath,
    /// The waypoint (firewall / IDS): s3, on both routes.
    pub waypoint: DpId,
    /// Source host (h1, attached to s1).
    pub h1: HostId,
    /// Destination host (h2, attached to s12).
    pub h2: HostId,
}

/// Build the Figure 1 scenario.
pub fn figure1() -> Figure1 {
    let mut topo = Topology::new();
    topo.add_switches(12).expect("fresh topology");

    let old_route = RoutePath::from_raw(&[1, 2, 3, 4, 5, 6, 12]).expect("valid");
    let new_route = RoutePath::from_raw(&[1, 7, 3, 8, 9, 10, 11, 12]).expect("valid");

    for (a, b) in old_route.edges().chain(new_route.edges()) {
        // Routes share s1->... edges only at the waypoint junctions;
        // add_link rejects duplicates, so skip already-present pairs.
        if !topo.adjacent(a, b) {
            topo.add_link(a, b, DEFAULT_LINK_LATENCY)
                .expect("valid link");
        }
    }

    topo.attach_host(HostId(1), DpId(1), DEFAULT_HOST_LATENCY)
        .expect("s1 exists");
    topo.attach_host(HostId(2), DpId(12), DEFAULT_HOST_LATENCY)
        .expect("s12 exists");

    Figure1 {
        topo,
        old_route,
        new_route,
        waypoint: DpId(3),
        h1: HostId(1),
        h2: HostId(2),
    }
}

/// A line (path) topology `s1 -- s2 -- ... -- sn`.
pub fn line(n: u64, latency: SimDuration) -> Result<Topology, TopologyError> {
    let mut t = Topology::new();
    t.add_switches(n)?;
    for i in 1..n {
        t.add_link(DpId(i), DpId(i + 1), latency)?;
    }
    Ok(t)
}

/// A ring topology `s1 -- s2 -- ... -- sn -- s1` (n ≥ 3).
pub fn ring(n: u64, latency: SimDuration) -> Result<Topology, TopologyError> {
    let mut t = line(n, latency)?;
    if n >= 3 {
        t.add_link(DpId(n), DpId(1), latency)?;
    }
    Ok(t)
}

/// A `w × h` grid; switch at row r (0-based), column c has dpid
/// `r*w + c + 1`.
pub fn grid(w: u64, h: u64, latency: SimDuration) -> Result<Topology, TopologyError> {
    let mut t = Topology::new();
    t.add_switches(w * h)?;
    let id = |r: u64, c: u64| DpId(r * w + c + 1);
    for r in 0..h {
        for c in 0..w {
            if c + 1 < w {
                t.add_link(id(r, c), id(r, c + 1), latency)?;
            }
            if r + 1 < h {
                t.add_link(id(r, c), id(r + 1, c), latency)?;
            }
        }
    }
    Ok(t)
}

/// A k-ary fat-tree (k even, k ≥ 2): `(k/2)^2` core switches, `k` pods
/// of `k/2` aggregation plus `k/2` edge switches.
///
/// Dpid layout: cores first (1..=(k/2)^2), then per pod `p`
/// (0-based): aggregation `(k/2)^2 + p*k + 1 ..`, then edge switches.
pub fn fat_tree(k: u64, latency: SimDuration) -> Result<Topology, TopologyError> {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity must be even and >= 2"
    );
    let half = k / 2;
    let cores = half * half;
    let mut t = Topology::new();
    let total = cores + k * k; // each pod has k switches (k/2 agg + k/2 edge)
    t.add_switches(total)?;

    let core_id = |i: u64| DpId(i + 1);
    let agg_id = |pod: u64, i: u64| DpId(cores + pod * k + i + 1);
    let edge_id = |pod: u64, i: u64| DpId(cores + pod * k + half + i + 1);

    for pod in 0..k {
        for a in 0..half {
            // aggregation <-> core: agg `a` connects to cores
            // [a*half, (a+1)*half)
            for c in 0..half {
                t.add_link(agg_id(pod, a), core_id(a * half + c), latency)?;
            }
            // aggregation <-> edge, full bipartite within pod
            for e in 0..half {
                t.add_link(agg_id(pod, a), edge_id(pod, e), latency)?;
            }
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{is_connected, route_latency};

    #[test]
    fn figure1_matches_paper_invariants() {
        let f = figure1();
        assert_eq!(f.topo.switch_count(), 12, "12 nodes per the paper");
        assert_eq!(f.topo.host(f.h1).unwrap().attached_to, DpId(1));
        assert_eq!(f.topo.host(f.h2).unwrap().attached_to, DpId(12));
        assert_eq!(f.waypoint, DpId(3));
        // waypoint on both routes
        assert!(f.old_route.contains(f.waypoint));
        assert!(f.new_route.contains(f.waypoint));
        // routes start/end at the host switches
        assert_eq!(f.old_route.src(), DpId(1));
        assert_eq!(f.old_route.dst(), DpId(12));
        assert_eq!(f.new_route.src(), DpId(1));
        assert_eq!(f.new_route.dst(), DpId(12));
        // both physically realizable
        f.old_route.validate_on(&f.topo).unwrap();
        f.new_route.validate_on(&f.topo).unwrap();
        assert!(is_connected(&f.topo));
    }

    #[test]
    fn figure1_routes_have_latency() {
        let f = figure1();
        let ol = route_latency(&f.topo, &f.old_route).unwrap();
        let nl = route_latency(&f.topo, &f.new_route).unwrap();
        assert_eq!(ol, DEFAULT_LINK_LATENCY.saturating_mul(6));
        assert_eq!(nl, DEFAULT_LINK_LATENCY.saturating_mul(7));
    }

    #[test]
    fn line_shape() {
        let t = line(5, DEFAULT_LINK_LATENCY).unwrap();
        assert_eq!(t.switch_count(), 5);
        assert_eq!(t.link_count(), 4);
        assert!(t.adjacent(DpId(1), DpId(2)));
        assert!(!t.adjacent(DpId(1), DpId(3)));
        assert!(is_connected(&t));
    }

    #[test]
    fn ring_closes_the_loop() {
        let t = ring(6, DEFAULT_LINK_LATENCY).unwrap();
        assert_eq!(t.link_count(), 6);
        assert!(t.adjacent(DpId(6), DpId(1)));
    }

    #[test]
    fn small_ring_degenerates_to_line() {
        let t = ring(2, DEFAULT_LINK_LATENCY).unwrap();
        assert_eq!(t.link_count(), 1);
    }

    #[test]
    fn grid_shape() {
        let t = grid(3, 2, DEFAULT_LINK_LATENCY).unwrap();
        assert_eq!(t.switch_count(), 6);
        // 3x2 grid: horizontal 2*2=4 + vertical 3*1=3 = 7 links
        assert_eq!(t.link_count(), 7);
        assert!(is_connected(&t));
        // corners have degree 2
        assert_eq!(t.neighbors(DpId(1)).count(), 2);
    }

    #[test]
    fn fat_tree_k4() {
        let t = fat_tree(4, DEFAULT_LINK_LATENCY).unwrap();
        // 4 cores + 4 pods * 4 switches = 20
        assert_eq!(t.switch_count(), 20);
        // links: per pod: 2 agg * 2 cores + 2*2 agg-edge = 8 -> 32 total
        assert_eq!(t.link_count(), 32);
        assert!(is_connected(&t));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fat_tree_odd_rejected() {
        let _ = fat_tree(3, DEFAULT_LINK_LATENCY);
    }
}
