//! The topology graph: switches, links, ports, hosts.
//!
//! Ports are allocated per switch in the order links are attached,
//! starting at 1, exactly like Mininet does when it wires OVS switches.
//! Each (undirected) link knows the port it occupies on both endpoints
//! and its one-way propagation latency, which the data-plane simulator
//! charges per hop.

use std::collections::BTreeMap;
use std::fmt;

use sdn_types::{DpId, HostId, LinkId, PortNo, SimDuration};

/// Errors from topology construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Switch id already present.
    DuplicateSwitch(DpId),
    /// Host id already present.
    DuplicateHost(HostId),
    /// Referenced switch does not exist.
    UnknownSwitch(DpId),
    /// Referenced host does not exist.
    UnknownHost(HostId),
    /// A link between the two switches already exists.
    DuplicateLink(DpId, DpId),
    /// Self-loops are not allowed.
    SelfLoop(DpId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateSwitch(dp) => write!(f, "switch {dp} already exists"),
            TopologyError::DuplicateHost(h) => write!(f, "host {h} already exists"),
            TopologyError::UnknownSwitch(dp) => write!(f, "unknown switch {dp}"),
            TopologyError::UnknownHost(h) => write!(f, "unknown host {h}"),
            TopologyError::DuplicateLink(a, b) => write!(f, "link {a} -- {b} already exists"),
            TopologyError::SelfLoop(dp) => write!(f, "self-loop on {dp} not allowed"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A switch (OpenFlow datapath) in the topology.
#[derive(Debug, Clone)]
pub struct Switch {
    /// Datapath id.
    pub dpid: DpId,
    /// Human-readable name (defaults to `s<dpid>`).
    pub name: String,
    /// Next free port number.
    next_port: u32,
}

impl Switch {
    fn new(dpid: DpId) -> Self {
        Switch {
            dpid,
            name: format!("{dpid}"),
            next_port: 1,
        }
    }

    fn alloc_port(&mut self) -> PortNo {
        let p = PortNo(self.next_port);
        self.next_port += 1;
        p
    }
}

/// An undirected switch-to-switch link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Link id.
    pub id: LinkId,
    /// First endpoint.
    pub a: DpId,
    /// Port occupied on `a`.
    pub port_a: PortNo,
    /// Second endpoint.
    pub b: DpId,
    /// Port occupied on `b`.
    pub port_b: PortNo,
    /// One-way propagation latency.
    pub latency: SimDuration,
}

impl Link {
    /// The endpoint opposite `from`, if `from` is an endpoint.
    pub fn other(&self, from: DpId) -> Option<DpId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// The egress port on `from` toward the other endpoint.
    pub fn egress_port(&self, from: DpId) -> Option<PortNo> {
        if from == self.a {
            Some(self.port_a)
        } else if from == self.b {
            Some(self.port_b)
        } else {
            None
        }
    }
}

/// An end host attached to an edge switch (e.g. `h1` on `s1` in the
/// paper's Figure 1).
#[derive(Debug, Clone)]
pub struct Host {
    /// Host id.
    pub id: HostId,
    /// Switch the host hangs off.
    pub attached_to: DpId,
    /// Switch port facing the host.
    pub port: PortNo,
    /// Host-to-switch latency.
    pub latency: SimDuration,
}

/// The network topology: switches, undirected links, attached hosts.
///
/// Deterministic iteration order (BTreeMap) keeps every downstream
/// artifact — schedules, traces, DOT output — reproducible.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    switches: BTreeMap<DpId, Switch>,
    links: Vec<Link>,
    hosts: BTreeMap<HostId, Host>,
    /// adjacency: switch -> (neighbor -> link index)
    adj: BTreeMap<DpId, BTreeMap<DpId, usize>>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a switch with the given datapath id.
    pub fn add_switch(&mut self, dpid: DpId) -> Result<(), TopologyError> {
        if self.switches.contains_key(&dpid) {
            return Err(TopologyError::DuplicateSwitch(dpid));
        }
        self.switches.insert(dpid, Switch::new(dpid));
        self.adj.insert(dpid, BTreeMap::new());
        Ok(())
    }

    /// Add switches `1..=n` (convenience for builders).
    pub fn add_switches(&mut self, n: u64) -> Result<(), TopologyError> {
        for i in 1..=n {
            self.add_switch(DpId(i))?;
        }
        Ok(())
    }

    /// Connect two switches with an undirected link of the given
    /// one-way latency. Ports are allocated on both endpoints.
    pub fn add_link(
        &mut self,
        a: DpId,
        b: DpId,
        latency: SimDuration,
    ) -> Result<LinkId, TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        if !self.switches.contains_key(&a) {
            return Err(TopologyError::UnknownSwitch(a));
        }
        if !self.switches.contains_key(&b) {
            return Err(TopologyError::UnknownSwitch(b));
        }
        if self.adj[&a].contains_key(&b) {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        let port_a = self.switches.get_mut(&a).expect("checked").alloc_port();
        let port_b = self.switches.get_mut(&b).expect("checked").alloc_port();
        let id = LinkId(self.links.len() as u32);
        let idx = self.links.len();
        self.links.push(Link {
            id,
            a,
            port_a,
            b,
            port_b,
            latency,
        });
        self.adj.get_mut(&a).expect("checked").insert(b, idx);
        self.adj.get_mut(&b).expect("checked").insert(a, idx);
        Ok(id)
    }

    /// Attach a host to a switch, allocating a switch port for it.
    pub fn attach_host(
        &mut self,
        id: HostId,
        to: DpId,
        latency: SimDuration,
    ) -> Result<(), TopologyError> {
        if self.hosts.contains_key(&id) {
            return Err(TopologyError::DuplicateHost(id));
        }
        let sw = self
            .switches
            .get_mut(&to)
            .ok_or(TopologyError::UnknownSwitch(to))?;
        let port = sw.alloc_port();
        self.hosts.insert(
            id,
            Host {
                id,
                attached_to: to,
                port,
                latency,
            },
        );
        Ok(())
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Whether the switch exists.
    pub fn has_switch(&self, dp: DpId) -> bool {
        self.switches.contains_key(&dp)
    }

    /// Iterate over switches in dpid order.
    pub fn switches(&self) -> impl Iterator<Item = &Switch> {
        self.switches.values()
    }

    /// Iterate over switch ids in order.
    pub fn switch_ids(&self) -> impl Iterator<Item = DpId> + '_ {
        self.switches.keys().copied()
    }

    /// Iterate over links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Iterate over hosts in id order.
    pub fn hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts.values()
    }

    /// Look up a host.
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.hosts.get(&id)
    }

    /// Neighbors of a switch, in dpid order.
    pub fn neighbors(&self, dp: DpId) -> impl Iterator<Item = DpId> + '_ {
        self.adj
            .get(&dp)
            .into_iter()
            .flat_map(|m| m.keys().copied())
    }

    /// The link between two switches, if any.
    pub fn link_between(&self, a: DpId, b: DpId) -> Option<&Link> {
        self.adj
            .get(&a)
            .and_then(|m| m.get(&b))
            .map(|&i| &self.links[i])
    }

    /// The egress port on `from` toward adjacent switch `to`.
    pub fn egress_port(&self, from: DpId, to: DpId) -> Option<PortNo> {
        self.link_between(from, to)
            .and_then(|l| l.egress_port(from))
    }

    /// The switch reached by leaving `from` through `port`, together
    /// with the link latency, or the host on that port.
    pub fn port_peer(&self, from: DpId, port: PortNo) -> Option<PortPeer> {
        for l in &self.links {
            if l.a == from && l.port_a == port {
                return Some(PortPeer::Switch(l.b, l.latency));
            }
            if l.b == from && l.port_b == port {
                return Some(PortPeer::Switch(l.a, l.latency));
            }
        }
        for h in self.hosts.values() {
            if h.attached_to == from && h.port == port {
                return Some(PortPeer::Host(h.id, h.latency));
            }
        }
        None
    }

    /// Whether two switches are adjacent.
    pub fn adjacent(&self, a: DpId, b: DpId) -> bool {
        self.adj.get(&a).is_some_and(|m| m.contains_key(&b))
    }
}

/// What sits on the far side of a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortPeer {
    /// Another switch, with the link's one-way latency.
    Switch(DpId, SimDuration),
    /// An end host, with the access latency.
    Host(HostId, SimDuration),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    fn triangle() -> Topology {
        let mut t = Topology::new();
        t.add_switches(3).unwrap();
        t.add_link(DpId(1), DpId(2), lat(1)).unwrap();
        t.add_link(DpId(2), DpId(3), lat(1)).unwrap();
        t.add_link(DpId(3), DpId(1), lat(2)).unwrap();
        t
    }

    #[test]
    fn build_triangle() {
        let t = triangle();
        assert_eq!(t.switch_count(), 3);
        assert_eq!(t.link_count(), 3);
        assert!(t.adjacent(DpId(1), DpId(2)));
        assert!(t.adjacent(DpId(2), DpId(1)));
        assert!(!t.adjacent(DpId(1), DpId(1)));
    }

    #[test]
    fn ports_allocated_in_order() {
        let t = triangle();
        // s1's first link (to s2) gets port 1, second (to s3) port 2.
        assert_eq!(t.egress_port(DpId(1), DpId(2)), Some(PortNo(1)));
        assert_eq!(t.egress_port(DpId(1), DpId(3)), Some(PortNo(2)));
        assert_eq!(t.egress_port(DpId(2), DpId(1)), Some(PortNo(1)));
    }

    #[test]
    fn duplicate_switch_rejected() {
        let mut t = Topology::new();
        t.add_switch(DpId(1)).unwrap();
        assert_eq!(
            t.add_switch(DpId(1)),
            Err(TopologyError::DuplicateSwitch(DpId(1)))
        );
    }

    #[test]
    fn duplicate_link_rejected_either_direction() {
        let mut t = Topology::new();
        t.add_switches(2).unwrap();
        t.add_link(DpId(1), DpId(2), lat(1)).unwrap();
        assert_eq!(
            t.add_link(DpId(1), DpId(2), lat(1)),
            Err(TopologyError::DuplicateLink(DpId(1), DpId(2)))
        );
        assert_eq!(
            t.add_link(DpId(2), DpId(1), lat(1)),
            Err(TopologyError::DuplicateLink(DpId(2), DpId(1)))
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        t.add_switch(DpId(1)).unwrap();
        assert_eq!(
            t.add_link(DpId(1), DpId(1), lat(1)),
            Err(TopologyError::SelfLoop(DpId(1)))
        );
    }

    #[test]
    fn unknown_switch_rejected() {
        let mut t = Topology::new();
        t.add_switch(DpId(1)).unwrap();
        assert_eq!(
            t.add_link(DpId(1), DpId(9), lat(1)),
            Err(TopologyError::UnknownSwitch(DpId(9)))
        );
        assert_eq!(
            t.attach_host(HostId(1), DpId(9), lat(0)),
            Err(TopologyError::UnknownSwitch(DpId(9)))
        );
    }

    #[test]
    fn host_attachment_and_port_peer() {
        let mut t = triangle();
        t.attach_host(HostId(1), DpId(1), lat(0)).unwrap();
        let h = t.host(HostId(1)).unwrap();
        assert_eq!(h.attached_to, DpId(1));
        // s1 already used ports 1,2 for links; host gets port 3.
        assert_eq!(h.port, PortNo(3));
        assert_eq!(
            t.port_peer(DpId(1), PortNo(3)),
            Some(PortPeer::Host(HostId(1), lat(0)))
        );
        assert_eq!(
            t.port_peer(DpId(1), PortNo(1)),
            Some(PortPeer::Switch(DpId(2), lat(1)))
        );
        assert_eq!(t.port_peer(DpId(1), PortNo(9)), None);
    }

    #[test]
    fn duplicate_host_rejected() {
        let mut t = triangle();
        t.attach_host(HostId(1), DpId(1), lat(0)).unwrap();
        assert_eq!(
            t.attach_host(HostId(1), DpId(2), lat(0)),
            Err(TopologyError::DuplicateHost(HostId(1)))
        );
    }

    #[test]
    fn neighbors_sorted() {
        let t = triangle();
        let n: Vec<DpId> = t.neighbors(DpId(1)).collect();
        assert_eq!(n, vec![DpId(2), DpId(3)]);
    }

    #[test]
    fn link_other_and_egress() {
        let t = triangle();
        let l = t.link_between(DpId(1), DpId(2)).unwrap();
        assert_eq!(l.other(DpId(1)), Some(DpId(2)));
        assert_eq!(l.other(DpId(2)), Some(DpId(1)));
        assert_eq!(l.other(DpId(3)), None);
        assert_eq!(l.egress_port(DpId(3)), None);
    }

    #[test]
    fn error_display() {
        let e = TopologyError::DuplicateLink(DpId(1), DpId(2));
        assert!(e.to_string().contains("s1"));
        assert!(e.to_string().contains("s2"));
    }
}
