//! Routing policies as switch paths.
//!
//! The demo's REST interface describes a policy as an ordered list of
//! datapath numbers "in the way they are passed by the network packets
//! along the route" (§2). [`RoutePath`] is that list, with validation:
//! a route must be *simple* (no repeated switch) and non-trivial, and
//! can be checked against a [`Topology`] for physical realizability.

use std::collections::HashSet;
use std::fmt;

use sdn_types::DpId;

use crate::graph::Topology;

/// Errors raised by route construction / validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Fewer than two switches.
    TooShort,
    /// A switch appears twice in the route.
    RepeatedSwitch(DpId),
    /// The route uses a switch the topology does not contain.
    UnknownSwitch(DpId),
    /// Two consecutive route switches are not adjacent in the topology.
    MissingLink(DpId, DpId),
    /// The given waypoint is not on the route.
    WaypointNotOnRoute(DpId),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::TooShort => write!(f, "route needs at least two switches"),
            RouteError::RepeatedSwitch(dp) => write!(f, "switch {dp} repeated in route"),
            RouteError::UnknownSwitch(dp) => write!(f, "route uses unknown switch {dp}"),
            RouteError::MissingLink(a, b) => {
                write!(f, "route hops {a} -> {b} but no such link exists")
            }
            RouteError::WaypointNotOnRoute(dp) => {
                write!(f, "waypoint {dp} is not on the route")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A simple (loop-free) path of switches, e.g. `⟨s1, s2, s3, s12⟩`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RoutePath {
    hops: Vec<DpId>,
}

impl RoutePath {
    /// Build a route, validating simplicity and minimum length.
    pub fn new(hops: Vec<DpId>) -> Result<Self, RouteError> {
        if hops.len() < 2 {
            return Err(RouteError::TooShort);
        }
        let mut seen = HashSet::with_capacity(hops.len());
        for &h in &hops {
            if !seen.insert(h) {
                return Err(RouteError::RepeatedSwitch(h));
            }
        }
        Ok(RoutePath { hops })
    }

    /// Build a route from raw datapath numbers (REST convenience).
    pub fn from_raw(ids: &[u64]) -> Result<Self, RouteError> {
        RoutePath::new(ids.iter().map(|&i| DpId(i)).collect())
    }

    /// First switch (ingress; attached to the source host).
    pub fn src(&self) -> DpId {
        self.hops[0]
    }

    /// Last switch (egress; attached to the destination host).
    pub fn dst(&self) -> DpId {
        *self.hops.last().expect("non-empty by construction")
    }

    /// All switches in order.
    pub fn hops(&self) -> &[DpId] {
        &self.hops
    }

    /// Number of switches on the route.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Routes are never empty; kept for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the route contains the switch.
    pub fn contains(&self, dp: DpId) -> bool {
        self.hops.contains(&dp)
    }

    /// Position of a switch on the route.
    pub fn position(&self, dp: DpId) -> Option<usize> {
        self.hops.iter().position(|&h| h == dp)
    }

    /// The switch after `dp` on this route (its "rule" under this
    /// policy), or `None` if `dp` is the egress or not on the route.
    pub fn next_hop(&self, dp: DpId) -> Option<DpId> {
        let i = self.position(dp)?;
        self.hops.get(i + 1).copied()
    }

    /// The switch before `dp` on this route.
    pub fn prev_hop(&self, dp: DpId) -> Option<DpId> {
        let i = self.position(dp)?;
        if i == 0 {
            None
        } else {
            Some(self.hops[i - 1])
        }
    }

    /// Directed edges `(from, to)` along the route.
    pub fn edges(&self) -> impl Iterator<Item = (DpId, DpId)> + '_ {
        self.hops.windows(2).map(|w| (w[0], w[1]))
    }

    /// Validate the route against a topology: all switches exist and
    /// consecutive hops are physically linked.
    pub fn validate_on(&self, topo: &Topology) -> Result<(), RouteError> {
        for &h in &self.hops {
            if !topo.has_switch(h) {
                return Err(RouteError::UnknownSwitch(h));
            }
        }
        for (a, b) in self.edges() {
            if !topo.adjacent(a, b) {
                return Err(RouteError::MissingLink(a, b));
            }
        }
        Ok(())
    }

    /// Check a waypoint lies on this route.
    pub fn check_waypoint(&self, wp: DpId) -> Result<(), RouteError> {
        if self.contains(wp) {
            Ok(())
        } else {
            Err(RouteError::WaypointNotOnRoute(wp))
        }
    }

    /// The reversed route (used by workload generators).
    pub fn reversed(&self) -> RoutePath {
        let mut hops = self.hops.clone();
        hops.reverse();
        RoutePath { hops }
    }

    /// Raw datapath numbers (REST serialization).
    pub fn raw(&self) -> Vec<u64> {
        self.hops.iter().map(|d| d.raw()).collect()
    }
}

impl fmt::Debug for RoutePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, h) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{h}")?;
        }
        write!(f, "⟩")
    }
}

impl fmt::Display for RoutePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_types::SimDuration;

    fn path(ids: &[u64]) -> RoutePath {
        RoutePath::from_raw(ids).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let p = path(&[2, 1, 3]);
        assert_eq!(p.src(), DpId(2));
        assert_eq!(p.dst(), DpId(3));
        assert_eq!(p.len(), 3);
        assert!(p.contains(DpId(1)));
        assert!(!p.contains(DpId(9)));
        assert_eq!(p.position(DpId(1)), Some(1));
        assert_eq!(p.raw(), vec![2, 1, 3]);
    }

    #[test]
    fn next_and_prev_hop() {
        let p = path(&[1, 2, 3, 4]);
        assert_eq!(p.next_hop(DpId(1)), Some(DpId(2)));
        assert_eq!(p.next_hop(DpId(4)), None);
        assert_eq!(p.next_hop(DpId(7)), None);
        assert_eq!(p.prev_hop(DpId(1)), None);
        assert_eq!(p.prev_hop(DpId(3)), Some(DpId(2)));
    }

    #[test]
    fn edges_enumerated_in_order() {
        let p = path(&[1, 2, 3]);
        let e: Vec<_> = p.edges().collect();
        assert_eq!(e, vec![(DpId(1), DpId(2)), (DpId(2), DpId(3))]);
    }

    #[test]
    fn rejects_too_short() {
        assert_eq!(RoutePath::from_raw(&[]), Err(RouteError::TooShort));
        assert_eq!(RoutePath::from_raw(&[1]), Err(RouteError::TooShort));
    }

    #[test]
    fn rejects_repeats() {
        assert_eq!(
            RoutePath::from_raw(&[1, 2, 1]),
            Err(RouteError::RepeatedSwitch(DpId(1)))
        );
    }

    #[test]
    fn waypoint_check() {
        let p = path(&[1, 3, 5]);
        assert!(p.check_waypoint(DpId(3)).is_ok());
        assert_eq!(
            p.check_waypoint(DpId(4)),
            Err(RouteError::WaypointNotOnRoute(DpId(4)))
        );
    }

    #[test]
    fn reversed_roundtrip() {
        let p = path(&[1, 2, 3]);
        assert_eq!(p.reversed().raw(), vec![3, 2, 1]);
        assert_eq!(p.reversed().reversed(), p);
    }

    #[test]
    fn validate_against_topology() {
        let mut t = Topology::new();
        t.add_switches(3).unwrap();
        t.add_link(DpId(1), DpId(2), SimDuration::from_millis(1))
            .unwrap();
        t.add_link(DpId(2), DpId(3), SimDuration::from_millis(1))
            .unwrap();
        assert!(path(&[1, 2, 3]).validate_on(&t).is_ok());
        assert_eq!(
            path(&[1, 3]).validate_on(&t),
            Err(RouteError::MissingLink(DpId(1), DpId(3)))
        );
        assert_eq!(
            path(&[1, 4]).validate_on(&t),
            Err(RouteError::UnknownSwitch(DpId(4)))
        );
    }

    #[test]
    fn display_uses_angle_brackets() {
        let p = path(&[2, 1, 3]);
        assert_eq!(p.to_string(), "⟨s2, s1, s3⟩");
    }
}
