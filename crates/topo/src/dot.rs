//! Graphviz (DOT) export.
//!
//! Renders a topology in the visual language of the paper's Figure 1:
//! old-route edges solid and bold, new-route edges dashed, the waypoint
//! filled black, hosts as boxes.

use std::fmt::Write as _;

use sdn_types::DpId;

use crate::graph::Topology;
use crate::route::RoutePath;

/// Styling inputs for [`render`].
#[derive(Debug, Clone, Default)]
pub struct DotStyle<'a> {
    /// Old (solid) route, if any.
    pub old_route: Option<&'a RoutePath>,
    /// New (dashed) route, if any.
    pub new_route: Option<&'a RoutePath>,
    /// Waypoint to fill black, if any.
    pub waypoint: Option<DpId>,
}

/// Render the topology as a DOT `graph`.
pub fn render(topo: &Topology, style: &DotStyle<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph topology {{");
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");

    for sw in topo.switches() {
        let mut attrs = String::new();
        if style.waypoint == Some(sw.dpid) {
            attrs.push_str(" style=filled fillcolor=black fontcolor=white");
        }
        let _ = writeln!(out, "  \"{}\" [label=\"{}\"{}];", sw.dpid, sw.name, attrs);
    }
    for h in topo.hosts() {
        let _ = writeln!(out, "  \"{}\" [shape=box];", h.id);
        let _ = writeln!(
            out,
            "  \"{}\" -- \"{}\" [style=dotted];",
            h.id, h.attached_to
        );
    }

    let on_route = |r: Option<&RoutePath>, a: DpId, b: DpId| -> bool {
        r.is_some_and(|r| {
            r.edges()
                .any(|(x, y)| (x == a && y == b) || (x == b && y == a))
        })
    };

    for l in topo.links() {
        let old = on_route(style.old_route, l.a, l.b);
        let new = on_route(style.new_route, l.a, l.b);
        let attr = match (old, new) {
            (true, true) => " [style=bold color=\"black:black\"]",
            (true, false) => " [style=bold]",
            (false, true) => " [style=dashed]",
            (false, false) => " [color=gray]",
        };
        let _ = writeln!(out, "  \"{}\" -- \"{}\"{};", l.a, l.b, attr);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::figure1;

    #[test]
    fn figure1_renders_with_styles() {
        let f = figure1();
        let dot = render(
            &f.topo,
            &DotStyle {
                old_route: Some(&f.old_route),
                new_route: Some(&f.new_route),
                waypoint: Some(f.waypoint),
            },
        );
        assert!(dot.starts_with("graph topology {"));
        assert!(dot.contains("\"s3\" [label=\"s3\" style=filled"));
        assert!(dot.contains("style=bold"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("\"h1\" [shape=box]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn unstyled_render_is_gray() {
        let f = figure1();
        let dot = render(&f.topo, &DotStyle::default());
        assert!(dot.contains("color=gray"));
        assert!(!dot.contains("style=dashed"));
    }

    #[test]
    fn edge_count_matches_topology() {
        let f = figure1();
        let dot = render(&f.topo, &DotStyle::default());
        let edge_lines = dot
            .lines()
            .filter(|l| l.contains("--") && !l.contains("dotted"))
            .count();
        assert_eq!(edge_lines, f.topo.link_count());
    }
}
