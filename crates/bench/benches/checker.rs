//! Micro-benchmark: transient verification cost — the stateless
//! verifier against the incremental (cross-round session) and
//! parallel engines on the same schedules.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sdn_topo::builders::figure1;
use update_core::algorithms::{Peacock, SlfGreedy, UpdateScheduler, WayUp};
use update_core::checker::{
    verify_schedule, verify_schedule_incremental, verify_schedule_parallel,
};
use update_core::model::UpdateInstance;
use update_core::properties::PropertySet;

fn bench_checker(c: &mut Criterion) {
    let f = figure1();
    let fig_inst =
        UpdateInstance::new(f.old_route.clone(), f.new_route.clone(), Some(f.waypoint)).unwrap();
    let fig_sched = WayUp::default().schedule(&fig_inst).unwrap();

    c.bench_function("checker/verify_fig1_wayup", |b| {
        b.iter(|| {
            verify_schedule(
                black_box(&fig_inst),
                black_box(&fig_sched),
                PropertySet::transiently_secure(),
            )
        })
    });

    let rev = sdn_topo::gen::reversal(32);
    let rev_inst = UpdateInstance::new(rev.old, rev.new, None).unwrap();
    let rev_sched = Peacock::default().schedule(&rev_inst).unwrap();
    c.bench_function("checker/verify_reversal32_peacock", |b| {
        b.iter(|| {
            verify_schedule(
                black_box(&rev_inst),
                black_box(&rev_sched),
                PropertySet::loop_free_relaxed(),
            )
        })
    });

    c.bench_function("checker/verify_reversal32_slf", |b| {
        b.iter(|| {
            verify_schedule(
                black_box(&rev_inst),
                black_box(&rev_sched),
                PropertySet::loop_free_strong(),
            )
        })
    });

    // Whole-schedule verification at scale: the Θ(n)-round SLF
    // schedule is where per-round rebuilds hurt; the incremental
    // verifier reuses the cross-round session state instead.
    let big = sdn_topo::gen::reversal(256);
    let big_inst = UpdateInstance::new(big.old, big.new, None).unwrap();
    let big_sched = SlfGreedy::default().schedule(&big_inst).unwrap();
    c.bench_function("checker/verify_reversal256_slf_stateless", |b| {
        b.iter(|| {
            verify_schedule(
                black_box(&big_inst),
                black_box(&big_sched),
                PropertySet::loop_free_strong(),
            )
        })
    });
    c.bench_function("checker/verify_reversal256_slf_incremental", |b| {
        b.iter(|| {
            verify_schedule_incremental(
                black_box(&big_inst),
                black_box(&big_sched),
                PropertySet::loop_free_strong(),
            )
        })
    });
    c.bench_function("checker/verify_reversal256_slf_parallel2", |b| {
        b.iter(|| {
            verify_schedule_parallel(
                black_box(&big_inst),
                black_box(&big_sched),
                PropertySet::loop_free_strong(),
                2,
            )
        })
    });
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
