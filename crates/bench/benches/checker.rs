//! Micro-benchmark: transient verification cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sdn_topo::builders::figure1;
use update_core::algorithms::{Peacock, UpdateScheduler, WayUp};
use update_core::checker::verify_schedule;
use update_core::model::UpdateInstance;
use update_core::properties::PropertySet;

fn bench_checker(c: &mut Criterion) {
    let f = figure1();
    let fig_inst =
        UpdateInstance::new(f.old_route.clone(), f.new_route.clone(), Some(f.waypoint)).unwrap();
    let fig_sched = WayUp::default().schedule(&fig_inst).unwrap();

    c.bench_function("checker/verify_fig1_wayup", |b| {
        b.iter(|| {
            verify_schedule(
                black_box(&fig_inst),
                black_box(&fig_sched),
                PropertySet::transiently_secure(),
            )
        })
    });

    let rev = sdn_topo::gen::reversal(32);
    let rev_inst = UpdateInstance::new(rev.old, rev.new, None).unwrap();
    let rev_sched = Peacock::default().schedule(&rev_inst).unwrap();
    c.bench_function("checker/verify_reversal32_peacock", |b| {
        b.iter(|| {
            verify_schedule(
                black_box(&rev_inst),
                black_box(&rev_sched),
                PropertySet::loop_free_relaxed(),
            )
        })
    });

    c.bench_function("checker/verify_reversal32_slf", |b| {
        b.iter(|| {
            verify_schedule(
                black_box(&rev_inst),
                black_box(&rev_sched),
                PropertySet::loop_free_strong(),
            )
        })
    });
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
