//! Micro-benchmark: schedule computation cost vs instance size.
//!
//! The scaling sizes (256–1024 by default) exercise the cross-round
//! `AdmissionProbe` session — the stateless oracle made these sizes
//! intractable (~26 ms at reversal/64 before PR 2), and per-round
//! session re-opens capped the sweep at n = 1024 before PR 3. Set
//! `SCHED_BENCH_MAX_N` to cap (CI smoke uses 256) or raise (2048 and
//! 4096 are registered but opt-in, to keep default runs short) the
//! sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sdn_types::DetRng;
use update_core::algorithms::{Peacock, SlfGreedy, TwoPhaseCommit, UpdateScheduler, WayUp};
use update_core::model::UpdateInstance;

fn max_n() -> u64 {
    std::env::var("SCHED_BENCH_MAX_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

fn bench_schedulers(c: &mut Criterion) {
    let cap = max_n();
    let mut group = c.benchmark_group("schedulers");
    for n in [8u64, 32, 64].into_iter().filter(|&n| n <= cap) {
        let rev = sdn_topo::gen::reversal(n);
        let rev_inst = UpdateInstance::new(rev.old, rev.new, None).unwrap();
        group.bench_with_input(
            BenchmarkId::new("peacock_reversal", n),
            &rev_inst,
            |b, i| b.iter(|| Peacock::default().schedule(black_box(i)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("slf_greedy_reversal", n),
            &rev_inst,
            |b, i| b.iter(|| SlfGreedy::default().schedule(black_box(i)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("two_phase_reversal", n),
            &rev_inst,
            |b, i| b.iter(|| TwoPhaseCommit.schedule(black_box(i)).unwrap()),
        );

        let mut rng = DetRng::new(n);
        let wp = sdn_topo::gen::waypointed(n.max(5), false, &mut rng);
        let wp_inst = UpdateInstance::new(wp.old, wp.new, wp.waypoint).unwrap();
        group.bench_with_input(BenchmarkId::new("wayup_waypointed", n), &wp_inst, |b, i| {
            b.iter(|| WayUp::default().schedule(black_box(i)).unwrap())
        });
    }

    // Scaling tier: reversal (the SLF worst case) and random
    // permutations at datacenter-ish path lengths. 2048/4096 run only
    // when SCHED_BENCH_MAX_N raises the cap.
    for n in [256u64, 512, 1024, 2048, 4096]
        .into_iter()
        .filter(|&n| n <= cap)
    {
        let rev = sdn_topo::gen::reversal(n);
        let rev_inst = UpdateInstance::new(rev.old, rev.new, None).unwrap();
        group.bench_with_input(
            BenchmarkId::new("peacock_reversal", n),
            &rev_inst,
            |b, i| b.iter(|| Peacock::default().schedule(black_box(i)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("slf_greedy_reversal", n),
            &rev_inst,
            |b, i| b.iter(|| SlfGreedy::default().schedule(black_box(i)).unwrap()),
        );

        let mut rng = DetRng::new(n ^ 0xabcd);
        let perm = sdn_topo::gen::random_permutation(n, &mut rng);
        let perm_inst = UpdateInstance::new(perm.old, perm.new, None).unwrap();
        group.bench_with_input(BenchmarkId::new("peacock_perm", n), &perm_inst, |b, i| {
            b.iter(|| Peacock::default().schedule(black_box(i)).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("slf_greedy_perm", n),
            &perm_inst,
            |b, i| b.iter(|| SlfGreedy::default().schedule(black_box(i)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
