//! Micro-benchmark: schedule computation cost vs instance size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sdn_types::DetRng;
use update_core::algorithms::{Peacock, SlfGreedy, TwoPhaseCommit, UpdateScheduler, WayUp};
use update_core::model::UpdateInstance;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    for n in [8u64, 32, 64] {
        let rev = sdn_topo::gen::reversal(n);
        let rev_inst = UpdateInstance::new(rev.old, rev.new, None).unwrap();
        group.bench_with_input(
            BenchmarkId::new("peacock_reversal", n),
            &rev_inst,
            |b, i| b.iter(|| Peacock::default().schedule(black_box(i)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("slf_greedy_reversal", n),
            &rev_inst,
            |b, i| b.iter(|| SlfGreedy::default().schedule(black_box(i)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("two_phase_reversal", n),
            &rev_inst,
            |b, i| b.iter(|| TwoPhaseCommit.schedule(black_box(i)).unwrap()),
        );

        let mut rng = DetRng::new(n);
        let wp = sdn_topo::gen::waypointed(n.max(5), false, &mut rng);
        let wp_inst = UpdateInstance::new(wp.old, wp.new, wp.waypoint).unwrap();
        group.bench_with_input(BenchmarkId::new("wayup_waypointed", n), &wp_inst, |b, i| {
            b.iter(|| WayUp::default().schedule(black_box(i)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
