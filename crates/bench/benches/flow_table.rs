//! Micro-benchmark: flow-table apply and lookup.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sdn_openflow::flow::{Action, FlowMatch, PacketMeta};
use sdn_openflow::messages::{FlowMod, FlowModCommand};
use sdn_switch::FlowTable;
use sdn_types::{HostId, PortNo};

fn filled_table(n: u32) -> FlowTable {
    let mut t = FlowTable::new();
    for i in 0..n {
        t.apply(&FlowMod {
            command: FlowModCommand::Add,
            priority: (i % 7) as u16,
            matcher: FlowMatch::dst_host(HostId(i)),
            actions: vec![Action::Output(PortNo(i % 16 + 1))],
            cookie: i as u64,
        });
    }
    t
}

fn bench_flow_table(c: &mut Criterion) {
    let pkt = PacketMeta {
        in_port: PortNo(1),
        src: HostId(500),
        dst: HostId(99),
        tag: None,
    };

    for n in [16u32, 256, 1024] {
        c.bench_function(&format!("flow_table/lookup_{n}"), |b| {
            let mut t = filled_table(n);
            b.iter(|| t.lookup(black_box(&pkt)))
        });
    }

    c.bench_function("flow_table/add_replace", |b| {
        let mut t = filled_table(256);
        let fm = FlowMod {
            command: FlowModCommand::Add,
            priority: 3,
            matcher: FlowMatch::dst_host(HostId(17)),
            actions: vec![Action::Output(PortNo(9))],
            cookie: 1,
        };
        b.iter(|| t.apply(black_box(&fm)))
    });
}

criterion_group!(benches, bench_flow_table);
criterion_main!(benches);
