//! Micro-benchmark: wire codec encode/decode and stream framing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sdn_openflow::codec::{decode, encode};
use sdn_openflow::flow::{Action, FlowMatch};
use sdn_openflow::framing::FrameCodec;
use sdn_openflow::messages::{Envelope, FlowMod, FlowModCommand, OfMessage};
use sdn_types::{HostId, PortNo, VersionTag, Xid};

fn sample_flowmod() -> Envelope {
    Envelope::new(
        Xid(77),
        OfMessage::FlowMod(FlowMod {
            command: FlowModCommand::Add,
            priority: 100,
            matcher: FlowMatch::dst_host_tagged(HostId(2), VersionTag::NEW),
            actions: vec![Action::SetTag(VersionTag::NEW), Action::Output(PortNo(3))],
            cookie: 0xabcd,
        }),
    )
}

fn bench_codec(c: &mut Criterion) {
    let env = sample_flowmod();
    let bytes = encode(&env);

    c.bench_function("codec/encode_flowmod", |b| {
        b.iter(|| encode(black_box(&env)))
    });
    c.bench_function("codec/decode_flowmod", |b| {
        b.iter(|| decode(black_box(&bytes)).unwrap())
    });
    c.bench_function("codec/encode_barrier", |b| {
        let barrier = Envelope::new(Xid(1), OfMessage::BarrierRequest);
        b.iter(|| encode(black_box(&barrier)))
    });

    // framing a burst of 64 coalesced messages
    let mut stream = Vec::new();
    for i in 0..64u32 {
        stream.extend_from_slice(&encode(&Envelope::new(Xid(i), OfMessage::BarrierRequest)));
    }
    c.bench_function("codec/frame_64_messages", |b| {
        b.iter(|| {
            let mut fc = FrameCodec::new();
            fc.feed(black_box(&stream));
            fc.drain().unwrap().len()
        })
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
