//! Macro-benchmark: the full Figure-1 scenario — scheduling,
//! compilation, simulated execution with barriers and probe traffic.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sdn_channel::config::ChannelConfig;
use sdn_sim::scenario::{run_scenario, AlgoChoice, Scenario};
use sdn_topo::gen::UpdatePair;
use sdn_types::SimDuration;

fn fig1_pair() -> UpdatePair {
    let f = sdn_topo::builders::figure1();
    UpdatePair {
        old: f.old_route,
        new: f.new_route,
        waypoint: Some(f.waypoint),
    }
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);

    for algo in [AlgoChoice::WayUp, AlgoChoice::TwoPhase, AlgoChoice::OneShot] {
        group.bench_function(format!("fig1_{algo}"), |b| {
            b.iter(|| {
                let mut sc = Scenario::new("bench", fig1_pair(), algo)
                    .with_channel(ChannelConfig::jittery(SimDuration::from_millis(2)))
                    .with_seed(1);
                sc.inject_count = 200;
                sc.inject_interval = SimDuration::from_micros(500);
                sc.verify = false;
                run_scenario(black_box(&sc)).unwrap()
            })
        });
    }

    group.bench_function("fig1_wayup_with_verification", |b| {
        b.iter(|| {
            let mut sc = Scenario::new("bench", fig1_pair(), AlgoChoice::WayUp)
                .with_channel(ChannelConfig::jittery(SimDuration::from_millis(2)))
                .with_seed(1);
            sc.inject_count = 0;
            sc.verify = true;
            run_scenario(black_box(&sc)).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
