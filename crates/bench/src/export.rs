//! The shared `BENCH_*.json` export schema and writer.
//!
//! Every `exp_*` binary used to carry its own `Record` struct and its
//! own document-assembly + `fs::write` block; the six copies drifted
//! in field order and provenance strings. This module is the one
//! writer: a [`Record`] names the measurement (`workload`/`algo`/`n`
//! — the key the `bench_check` regression gate joins on), carries the
//! value in its unit (`ms`), and takes experiment-specific extras as
//! ride-along fields the gate ignores. [`Export`] assembles the
//! document (`experiment`, `source`, `unit`, headers, `records`) and
//! writes it; the gate reads fields by key, so the committed
//! `BENCH_PR*.json` baselines stay comparable unchanged.

use crate::json::Json;

/// One measurement in the shared export schema.
#[derive(Debug, Clone)]
pub struct Record {
    /// Workload family (`reversal`, `fat_tree`, `disjoint`, …) — the
    /// *name* of what was measured.
    pub workload: String,
    /// Scheduler / engine / configuration the timing belongs to.
    pub algo: String,
    /// Instance size.
    pub n: u64,
    /// The measured *value*, in the export's unit (milliseconds —
    /// virtual or wall, per experiment; see its `unit` header).
    pub ms: f64,
    /// Experiment-specific extra fields, appended after the shared
    /// ones; the regression gate never reads them.
    pub extras: Vec<(String, Json)>,
}

impl Record {
    /// A record with the shared fields only.
    pub fn new(workload: impl Into<String>, algo: impl Into<String>, n: u64, ms: f64) -> Self {
        Record {
            workload: workload.into(),
            algo: algo.into(),
            n,
            ms,
            extras: Vec::new(),
        }
    }

    /// Append one experiment-specific field.
    pub fn with(mut self, key: &str, value: Json) -> Self {
        self.extras.push((key.to_string(), value));
        self
    }

    /// Render to the shared JSON shape.
    pub fn json(&self) -> Json {
        let mut fields = vec![
            ("workload".to_string(), Json::str(self.workload.clone())),
            ("algo".to_string(), Json::str(self.algo.clone())),
            ("n".to_string(), Json::Int(self.n as i64)),
            ("ms".to_string(), Json::Num(self.ms)),
        ];
        fields.extend(self.extras.iter().cloned());
        Json::Obj(fields)
    }
}

/// A whole export document under assembly.
#[derive(Debug, Clone)]
pub struct Export {
    experiment: String,
    headers: Vec<(String, Json)>,
    /// The records written so far.
    pub records: Vec<Record>,
}

impl Export {
    /// Start an export for `experiment` (`rounds_scaling`,
    /// `shard_scaling`, …). Provenance is derived: the source string
    /// becomes `exp_<experiment> --json`.
    pub fn new(experiment: &str) -> Self {
        Export {
            experiment: experiment.to_string(),
            headers: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Add a document-level header field (e.g. `max_n`).
    pub fn header(mut self, key: &str, value: Json) -> Self {
        self.headers.push((key.to_string(), value));
        self
    }

    /// Append one record.
    pub fn push(&mut self, r: Record) {
        self.records.push(r);
    }

    /// The assembled document.
    pub fn doc(&self) -> Json {
        let mut fields = vec![
            ("experiment".to_string(), Json::str(self.experiment.clone())),
            (
                "source".to_string(),
                Json::str(format!("exp_{} --json", self.experiment)),
            ),
            ("unit".to_string(), Json::str("ms")),
        ];
        fields.extend(self.headers.iter().cloned());
        fields.push((
            "records".to_string(),
            Json::Arr(self.records.iter().map(Record::json).collect()),
        ));
        Json::Obj(fields)
    }

    /// Write the document to `path` (trailing newline, like every
    /// committed baseline) and return the summary line for the CLI to
    /// print — library code never prints (`ci/lint_prints.sh`).
    #[must_use = "print the summary so the CLI reports what it wrote"]
    pub fn write(&self, path: &str) -> String {
        std::fs::write(path, format!("{}\n", self.doc())).expect("write json export");
        format!("wrote {} records to {path}", self.records.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::records_of;

    #[test]
    fn document_carries_provenance_and_unit() {
        let mut e = Export::new("rounds_scaling").header("max_n", Json::Int(512));
        e.push(Record::new("reversal", "peacock", 64, 0.25).with("rounds", Json::Num(3.0)));
        let doc = e.doc();
        assert_eq!(
            doc.get("experiment").and_then(Json::as_str),
            Some("rounds_scaling")
        );
        assert_eq!(
            doc.get("source").and_then(Json::as_str),
            Some("exp_rounds_scaling --json")
        );
        assert_eq!(doc.get("unit").and_then(Json::as_str), Some("ms"));
        assert_eq!(doc.get("max_n").and_then(Json::as_f64), Some(512.0));
    }

    #[test]
    fn regression_gate_reads_the_shared_shape() {
        let mut e = Export::new("shard_scaling");
        e.push(Record::new("disjoint", "fabric", 4, 12.5));
        let parsed = Json::parse(&e.doc().to_string()).unwrap();
        let rs = records_of(&parsed).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].workload, "disjoint");
        assert_eq!(rs[0].algo, "fabric");
        assert_eq!(rs[0].n, 4);
        assert!((rs[0].ms - 12.5).abs() < 1e-12);
    }

    #[test]
    fn extras_ride_after_the_shared_fields() {
        let r = Record::new("w", "a", 1, 2.0)
            .with("budget_ms", Json::Num(40.0))
            .json();
        assert_eq!(
            r.to_string(),
            r#"{"workload":"w","algo":"a","n":1,"ms":2,"budget_ms":40}"#
        );
    }
}
