//! Tiny summary statistics for experiment series.

/// Mean / median / p95 / min / max of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower of the middle pair for even n).
    pub median: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns a zeroed summary for empty input.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                median: 0.0,
                p95: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let median = v[(n - 1) / 2];
        let p95 = v[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
        Summary {
            n,
            mean,
            median,
            p95,
            min: v[0],
            max: v[n - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes() {
        let s = Summary::of(&[3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p95, 5.0);
    }

    #[test]
    fn empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.p95, 7.5);
    }
}
