//! Tiny summary statistics for experiment series.

/// Mean / median / p95 / min / max of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower of the middle pair for even n).
    pub median: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns a zeroed summary for empty input.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                median: 0.0,
                p95: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let median = v[(n - 1) / 2];
        let p95 = v[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
        Summary {
            n,
            mean,
            median,
            p95,
            min: v[0],
            max: v[n - 1],
        }
    }
}

/// Nearest-rank percentile (`p` in 0..=100) of a sample — the one
/// definition every experiment binary shares. Returns NaN for empty
/// input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let n = v.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    v[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes() {
        let s = Summary::of(&[3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p95, 5.0);
    }

    #[test]
    fn empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.p95, 7.5);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
        assert!(percentile(&[], 50.0).is_nan());
        // agrees with Summary's p95 definition
        assert_eq!(percentile(&xs, 95.0), Summary::of(&xs).p95);
    }
}
