//! # sdn-bench
//!
//! Experiment harnesses reproducing the paper's evaluation (see
//! `DESIGN.md` §3 and `EXPERIMENTS.md` at the workspace root):
//!
//! | binary                | experiment |
//! |-----------------------|------------|
//! | `exp_fig1`            | E1 — the Figure 1 scenario end to end |
//! | `exp_update_time`     | E2 — flow-table update time vs latency × algorithm |
//! | `exp_rounds_scaling`  | E3 — rounds vs path length (Peacock vs SLF) |
//! | `exp_violations`      | E4 — transient violations, one-shot vs scheduled |
//! | `exp_barrier_overhead`| E5 — barrier cost decomposition, loss sensitivity |
//! | `exp_ablation`        | E6 — orderings, oracles, FIFO, sub-schedulers |
//! | `bench_check`         | CI perf-regression gate over the JSON exports |
//!
//! Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod regression;
pub mod stats;
pub mod table;

pub use json::Json;
pub use stats::Summary;
pub use table::Table;
