//! # sdn-bench
//!
//! Experiment harnesses reproducing the paper's evaluation (see
//! `DESIGN.md` §3 and `EXPERIMENTS.md` at the workspace root):
//!
//! | binary                | experiment |
//! |-----------------------|------------|
//! | `exp_fig1`            | E1 — the Figure 1 scenario end to end |
//! | `exp_update_time`     | E2 — flow-table update time vs latency × algorithm |
//! | `exp_rounds_scaling`  | E3 — rounds vs path length (Peacock vs SLF) |
//! | `exp_violations`      | E4 — transient violations, one-shot vs scheduled |
//! | `exp_barrier_overhead`| E5 — barrier cost decomposition, loss sensitivity |
//! | `exp_ablation`        | E6 — orderings, oracles, FIFO, sub-schedulers |
//! | `exp_concurrent_updates` | E7 — concurrent runtime: throughput, backpressure, adaptive RTO |
//! | `exp_connection_scaling` | E8 — the live transport at scale |
//! | `exp_fault_recovery`  | E9 — convergence under control-plane failure |
//! | `exp_shard_scaling`   | E10 — sharded fabric scaling vs cross-shard tax |
//! | `exp_live_rebalance`  | E11 — seat migration under load |
//! | `exp_observability`   | E12 — observability overhead and flight-recorder fidelity |
//! | `bench_check`         | CI perf-regression gate over the JSON exports |
//!
//! Machine-readable exports (`BENCH_PR*.json`) all flow through
//! [`export::Export`] — one shared schema for the `bench_check` gate.
//!
//! Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod regression;
pub mod stats;
pub mod table;

pub use export::{Export, Record};
pub use json::Json;
pub use stats::Summary;
pub use table::Table;
