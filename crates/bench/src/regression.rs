//! Cross-PR performance-regression checking over the bench JSON
//! exports.
//!
//! `exp_rounds_scaling --json-out` writes per-schedule timing records
//! (`BENCH_PR2.json`, `BENCH_PR3.json`, … are committed at the
//! workspace root). The `bench_check` binary — CI's `bench-regression`
//! job — re-runs the experiment and compares the fresh records against
//! a committed baseline through [`compare`]: a record regresses when
//! its timing exceeds the baseline by more than a noise threshold
//! (generous, default 3×) *and* an absolute floor that keeps
//! microsecond-scale jitter from failing builds. Records without a
//! baseline counterpart (new workloads, larger n) are reported as
//! skipped, never failed — the gate only defends numbers that were
//! already achieved.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Json;

/// One timing record from a bench export.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Workload family (`reversal`, `rotation`, `comb`, …).
    pub workload: String,
    /// Scheduler / engine the timing belongs to.
    pub algo: String,
    /// Instance size.
    pub n: u64,
    /// Milliseconds per schedule.
    pub ms: f64,
}

impl BenchRecord {
    fn key(&self) -> (String, String, u64) {
        (self.workload.clone(), self.algo.clone(), self.n)
    }
}

/// Extract the timing records of a parsed export document.
pub fn records_of(doc: &Json) -> Result<Vec<BenchRecord>, String> {
    let arr = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("document has no 'records' array")?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, r) in arr.iter().enumerate() {
        let field = |k: &str| r.get(k).ok_or(format!("record {i} missing '{k}'"));
        out.push(BenchRecord {
            workload: field("workload")?
                .as_str()
                .ok_or(format!("record {i}: workload not a string"))?
                .to_string(),
            algo: field("algo")?
                .as_str()
                .ok_or(format!("record {i}: algo not a string"))?
                .to_string(),
            n: field("n")?.as_f64().ok_or(format!("record {i}: bad n"))? as u64,
            ms: field("ms")?.as_f64().ok_or(format!("record {i}: bad ms"))?,
        });
    }
    Ok(out)
}

/// How one current record compares against the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the threshold (or below the absolute noise floor).
    Ok,
    /// Slower than threshold × baseline and above the noise floor.
    Regressed,
    /// No baseline record with the same (workload, algo, n).
    Skipped,
}

/// One comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The current record.
    pub current: BenchRecord,
    /// Baseline milliseconds, when a matching record exists.
    pub baseline_ms: Option<f64>,
    /// The verdict under the thresholds given to [`compare`].
    pub verdict: Verdict,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.current;
        match self.baseline_ms {
            Some(b) => write!(
                f,
                "{:9} {:>22} n={:<5} {:>10.3} ms vs {:>10.3} ms ({:>5.2}x) {}",
                match self.verdict {
                    Verdict::Ok => "ok",
                    Verdict::Regressed => "REGRESSED",
                    Verdict::Skipped => "skipped",
                },
                format!("{}/{}", c.workload, c.algo),
                c.n,
                c.ms,
                b,
                if b > 0.0 { c.ms / b } else { f64::INFINITY },
                if self.verdict == Verdict::Regressed {
                    "<-- over threshold"
                } else {
                    ""
                }
            ),
            None => write!(
                f,
                "{:9} {:>22} n={:<5} {:>10.3} ms (no baseline)",
                "skipped",
                format!("{}/{}", c.workload, c.algo),
                c.n,
                c.ms,
            ),
        }
    }
}

/// Compare `current` records against `baseline` ones.
///
/// A record regresses when `ms > threshold × baseline_ms` **and**
/// `ms > floor_ms` — the floor absorbs scheduler-noise on
/// sub-millisecond rows where a 3× ratio is meaningless.
pub fn compare(
    baseline: &[BenchRecord],
    current: &[BenchRecord],
    threshold: f64,
    floor_ms: f64,
) -> Vec<Comparison> {
    let by_key: BTreeMap<_, f64> = baseline.iter().map(|r| (r.key(), r.ms)).collect();
    current
        .iter()
        .map(|r| {
            let baseline_ms = by_key.get(&r.key()).copied();
            let verdict = match baseline_ms {
                None => Verdict::Skipped,
                Some(b) => {
                    if r.ms > floor_ms && r.ms > threshold * b {
                        Verdict::Regressed
                    } else {
                        Verdict::Ok
                    }
                }
            };
            Comparison {
                current: r.clone(),
                baseline_ms,
                verdict,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(workload: &str, algo: &str, n: u64, ms: f64) -> BenchRecord {
        BenchRecord {
            workload: workload.into(),
            algo: algo.into(),
            n,
            ms,
        }
    }

    #[test]
    fn extracts_records_from_export() {
        let doc = Json::parse(
            r#"{"experiment":"rounds_scaling","records":[
                {"workload":"reversal","algo":"peacock","n":64,"rounds":3,"ms":0.16}]}"#,
        )
        .unwrap();
        let rs = records_of(&doc).unwrap();
        assert_eq!(rs, vec![rec("reversal", "peacock", 64, 0.16)]);
        assert!(records_of(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn flags_only_genuine_regressions() {
        let baseline = vec![
            rec("reversal", "slf-greedy", 512, 10.0),
            rec("reversal", "slf-greedy", 64, 0.3),
        ];
        let current = vec![
            rec("reversal", "slf-greedy", 512, 45.0), // 4.5x: regression
            rec("reversal", "slf-greedy", 64, 2.0),   // 6.7x but under floor
            rec("fat_tree", "slf-greedy", 512, 9.0),  // no baseline
        ];
        let cmp = compare(&baseline, &current, 3.0, 5.0);
        assert_eq!(cmp[0].verdict, Verdict::Regressed);
        assert_eq!(cmp[1].verdict, Verdict::Ok);
        assert_eq!(cmp[2].verdict, Verdict::Skipped);
    }

    #[test]
    fn within_threshold_passes() {
        let baseline = vec![rec("comb", "peacock", 1024, 25.0)];
        let current = vec![rec("comb", "peacock", 1024, 70.0)]; // 2.8x
        let cmp = compare(&baseline, &current, 3.0, 5.0);
        assert_eq!(cmp[0].verdict, Verdict::Ok);
        assert!(cmp[0].to_string().contains("ok"));
    }
}
