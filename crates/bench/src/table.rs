//! Aligned plain-text tables for experiment output.

use std::fmt;

/// A simple aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["algo", "rounds"]);
        t.row(vec!["peacock".into(), "3".into()]);
        t.row(vec!["slf".into(), "12".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("peacock"));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, two rows, plus title
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // ties-to-even at the cut
    }
}
