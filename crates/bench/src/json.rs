//! Minimal JSON emission for machine-readable bench exports.
//!
//! The workspace builds offline (no serde); experiments that need to
//! persist timings for cross-PR tracking (`exp_rounds_scaling
//! --json`, written to `BENCH_PR2.json`) assemble a [`Json`] value and
//! `Display` it. Only the constructs the exports use are implemented:
//! objects, arrays, strings, numbers and booleans.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string (escaped on output).
    Str(String),
    /// A finite number; NaN/infinity render as `null`.
    Num(f64),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Str(s) => escape(s, f),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj(vec![
            ("name", Json::str("slf-greedy")),
            ("n", Json::Int(1024)),
            ("ms", Json::Num(12.5)),
            ("ok", Json::Bool(true)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::str("b")])),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"slf-greedy","n":1024,"ms":12.5,"ok":true,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::str("a\"b\\c\nd").to_string(),
            r#""a\"b\\c\nd""#.to_string()
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
