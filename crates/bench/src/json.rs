//! Minimal JSON emission *and parsing* for machine-readable bench
//! exports.
//!
//! The workspace builds offline (no serde); experiments that need to
//! persist timings for cross-PR tracking (`exp_rounds_scaling
//! --json`, written to `BENCH_PR3.json`) assemble a [`Json`] value and
//! `Display` it, and the `bench_check` regression gate reads the
//! committed baselines back through [`Json::parse`]. Only the
//! constructs the exports use are implemented: objects, arrays,
//! strings, numbers, booleans and null.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string (escaped on output).
    Str(String),
    /// A finite number; NaN/infinity render as `null`.
    Num(f64),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// The null literal.
    Null,
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Parse a JSON document (strict enough for the bench exports;
    /// rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric coercion: `Num` or `Int`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String access.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array access.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.at,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.at += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar; `at` is always on a char
                    // boundary by construction.
                    let c = self.text[self.at..].chars().next().expect("non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii");
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("bad number '{text}'")))
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Str(s) => escape(s, f),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Null => f.write_str("null"),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj(vec![
            ("name", Json::str("slf-greedy")),
            ("n", Json::Int(1024)),
            ("ms", Json::Num(12.5)),
            ("ok", Json::Bool(true)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::str("b")])),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"slf-greedy","n":1024,"ms":12.5,"ok":true,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::str("a\"b\\c\nd").to_string(),
            r#""a\"b\\c\nd""#.to_string()
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_round_trips_emitted_documents() {
        let j = Json::obj(vec![
            ("name", Json::str("slf-greedy")),
            ("n", Json::Int(1024)),
            ("ms", Json::Num(12.5)),
            ("neg", Json::Num(-0.25)),
            ("ok", Json::Bool(true)),
            ("nil", Json::Null),
            (
                "tags",
                Json::Arr(vec![Json::str("a\n\"b\""), Json::str("ü")]),
            ),
        ]);
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn parse_real_export_shape() {
        let doc = r#" {"experiment":"rounds_scaling","max_n":512,
            "records":[{"workload":"reversal","algo":"peacock","n":4,"rounds":2,"ms":0.010225}]} "#;
        let j = Json::parse(doc).unwrap();
        assert_eq!(
            j.get("experiment").and_then(Json::as_str),
            Some("rounds_scaling")
        );
        assert_eq!(j.get("max_n").and_then(Json::as_f64), Some(512.0));
        let recs = j.get("records").and_then(Json::as_arr).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get("ms").and_then(Json::as_f64), Some(0.010225));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}{}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("truth").is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(Json::parse(r#""\u0041\tb""#).unwrap(), Json::str("A\tb"));
    }
}
