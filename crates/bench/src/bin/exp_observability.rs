//! E12 — observability overhead and fidelity.
//!
//! PR 10 threads the `sdn_obs` handle through the fabric, the
//! simulator and the transport. This experiment holds the two promises
//! that instrumentation makes:
//!
//! * **non-perturbation** — the E10 shard-scaling workload runs twice
//!   per shard count, once with observability disabled (the
//!   all-`None` no-op handle) and once recording with a bounded ring.
//!   Virtual-time makespans must agree to the nanosecond — the
//!   instrumentation adds *no* virtual delays — and the acceptance bar
//!   from the issue (obs-on ≤ 1.05× obs-off) is asserted on top.
//!   Wall-clock totals for both legs are reported as document headers
//!   (not gated records: wall time on shared CI runners is noise).
//! * **fidelity** — on the recording legs the registry must agree
//!   with ground truth (submitted = committed = n, a non-empty
//!   submit→commit histogram), the Prometheus page must pass the
//!   strict `sdn_obs::prometheus::validate` checker, and the span
//!   trace for a submitted job must exist.
//!
//! A forced-crash chaos leg then drives the flight recorder: a
//! coordinator crash at 3 ms over cross-shard work must yield at least
//! one `crash_recovery` dump whose JSON parses and carries the
//! documented schema (`reason`/`shard`/`at_ns`/`dropped`/`events`,
//! events non-empty) — and the whole leg, rerun under the same seed,
//! must reproduce the dumps byte for byte.
//!
//! Flags: `--tier small` (CI smoke sizes), `--json` (write
//! `BENCH_PR10.json`), `--json-out PATH`.

use std::time::Instant;

use sdn_bench::table::{f2, Table};
use sdn_bench::{Export, Json, Record};
use sdn_channel::config::ChannelConfig;
use sdn_ctrl::compile::{compile_schedule, initial_flowmods, CompiledUpdate, FlowSpec};
use sdn_ctrl::executor::ExecConfig;
use sdn_ctrl::runtime::{FabricConfig, FabricCoordinator, RuntimeConfig, SubmitRequest};
use sdn_obs::{prometheus, Ctr, DumpReason, HistId, Obs};
use sdn_sim::chaos::FaultKind;
use sdn_sim::report::SimReport;
use sdn_sim::world::{World, WorldConfig};
use sdn_topo::gen::{self, UpdatePair};
use sdn_types::{DpId, SimDuration, SimTime};
use update_core::algorithms::{SlfGreedy, UpdateScheduler};
use update_core::model::UpdateInstance;
use update_core::partition::ShardAssignment;

const FLOW_LEN: u64 = 8;
const PER_SHARD_ACTIVE: usize = 4;

/// `n` switch-disjoint reversal flows (the E10 scaling workload).
fn disjoint_flows(n: usize) -> Vec<UpdatePair> {
    (0..n)
        .map(|i| gen::shift(&gen::reversal(FLOW_LEN), (i as u64) * (FLOW_LEN + 2)))
        .collect()
}

/// Every switch of every flow, in flow order.
fn flow_switches(pairs: &[UpdatePair]) -> Vec<Vec<DpId>> {
    pairs
        .iter()
        .map(|p| {
            let mut dps: Vec<DpId> = p.old.hops().to_vec();
            dps.extend(p.new.hops().iter().copied());
            dps.sort();
            dps.dedup();
            dps
        })
        .collect()
}

/// Pin flow `i` to shard `i % shards`; the first `cross` flows
/// straddle their home shard and its neighbour.
fn assignment(pairs: &[UpdatePair], shards: u32, cross: usize) -> ShardAssignment {
    let mut overrides: Vec<(DpId, u32)> = Vec::new();
    for (i, dps) in flow_switches(pairs).iter().enumerate() {
        let home = (i as u32) % shards;
        let away = (home + 1) % shards;
        let half = dps.len() / 2;
        for (j, &dp) in dps.iter().enumerate() {
            let s = if i < cross && j >= half { away } else { home };
            overrides.push((dp, s));
        }
    }
    ShardAssignment::with_overrides(shards, overrides)
}

struct RunOutcome {
    report: SimReport,
    obs: Obs,
    first_job: u64,
    wall_ms: f64,
    crashes: u64,
    recoveries: u64,
}

/// Submit `pairs` into a fabric with `obs` attached, probe every flow,
/// run to quiescence.
fn run_load(
    pairs: &[UpdatePair],
    assign: ShardAssignment,
    runtime: RuntimeConfig,
    journal: bool,
    crash_at: Option<SimTime>,
    obs: Obs,
) -> RunOutcome {
    let wall = Instant::now();
    let topo = gen::materialize_batch(pairs);
    let fabric = FabricCoordinator::with_assignment(
        FabricConfig {
            shards: assign.shards(),
            runtime,
            journal,
            ..FabricConfig::default()
        },
        assign,
    );
    let cfg = WorldConfig {
        channel: ChannelConfig::lan(),
        seed: 2816,
        ..WorldConfig::default()
    };
    let mut world = World::builder(topo.clone())
        .config(cfg)
        .runtime_handle(Box::new(fabric))
        .obs(obs.clone())
        .build();
    let mut compiled: Vec<CompiledUpdate> = Vec::new();
    for (i, pair) in pairs.iter().enumerate() {
        let (src, dst) = gen::batch_hosts(i);
        let spec = FlowSpec { src, dst };
        let inst = UpdateInstance::new(pair.old.clone(), pair.new.clone(), pair.waypoint).unwrap();
        let sched = SlfGreedy::default().schedule(&inst).expect("schedulable");
        world.install_initial(&initial_flowmods(&topo, &pair.old, &spec).unwrap());
        compiled.push(compile_schedule(&topo, &inst, &sched, &spec).unwrap());
    }
    let mut first_job = 0u64;
    for (i, c) in compiled.into_iter().enumerate() {
        let ticket = world
            .submit(SubmitRequest::new(c))
            .expect("fabric admits the batch");
        if i == 0 {
            first_job = ticket.job.0;
        }
    }
    if let Some(at) = crash_at {
        world.schedule_fault(at, FaultKind::CrashController);
    }
    for (i, _) in pairs.iter().enumerate() {
        let (src, dst) = gen::batch_hosts(i);
        world.plan_injection(src, dst, SimDuration::from_micros(500), 100, SimTime::ZERO);
    }
    let report = world.run(SimTime::ZERO + SimDuration::from_secs(3600));
    RunOutcome {
        report,
        obs,
        first_job,
        wall_ms: wall.elapsed().as_secs_f64() * 1e3,
        crashes: world.controller_crashes(),
        recoveries: world.runtime().stats().recoveries,
    }
}

/// Makespan (t=0 submission → last completion) in virtual ms.
fn makespan_ms(r: &SimReport) -> f64 {
    r.updates
        .iter()
        .filter_map(|u| u.completed)
        .map(|t| t.as_millis_f64())
        .fold(0.0, f64::max)
}

fn shard_runtime() -> RuntimeConfig {
    RuntimeConfig {
        queue_capacity: 64,
        max_active: PER_SHARD_ACTIVE,
        ..RuntimeConfig::default()
    }
}

/// Outage-tolerant tuning for the forced-crash leg.
fn patient_runtime() -> RuntimeConfig {
    RuntimeConfig {
        exec: ExecConfig {
            barrier_timeout: SimDuration::from_millis(20),
            max_attempts: 60,
            flowmod_acks: false,
        },
        max_active: PER_SHARD_ACTIVE,
        queue_capacity: 64,
        ..RuntimeConfig::default()
    }
}

/// Parse one dump document and check the documented schema.
fn check_dump_schema(json: &str) {
    let doc = Json::parse(json).expect("dump must be valid JSON");
    for key in ["reason", "shard", "at_ns", "dropped", "events"] {
        assert!(doc.get(key).is_some(), "dump missing key {key:?}: {json}");
    }
    match doc.get("events") {
        Some(Json::Arr(events)) => {
            assert!(!events.is_empty(), "dump must carry events");
            for ev in events {
                for key in ["at_ns", "kind"] {
                    assert!(ev.get(key).is_some(), "dump event missing {key:?}");
                }
            }
        }
        other => panic!("dump events must be an array, got {other:?}"),
    }
}

/// Run the forced-crash chaos leg and return its rendered dumps.
fn chaos_dumps(n: usize) -> (RunOutcome, Vec<String>) {
    let pairs = disjoint_flows(n);
    let out = run_load(
        &pairs,
        assignment(&pairs, 4, n / 2),
        patient_runtime(),
        true,
        Some(SimTime::ZERO + SimDuration::from_millis(3)),
        Obs::with_ring(256),
    );
    let dumps = out
        .obs
        .dumps()
        .into_iter()
        .map(|d| d.json)
        .collect::<Vec<_>>();
    (out, dumps)
}

fn main() {
    let mut tier_small = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tier" => {
                let t = args.next().expect("--tier needs small|full");
                tier_small = t == "small";
            }
            "--json" => json_path = Some("BENCH_PR10.json".to_string()),
            "--json-out" => json_path = Some(args.next().expect("--json-out needs a path")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: exp_observability [--tier small|full] [--json | --json-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let n: usize = if tier_small { 16 } else { 32 };
    let shard_counts: &[u32] = if tier_small {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    };
    let cross = n / 4;

    println!("E12: observability overhead and fidelity on the E10 workload");
    println!(
        "    {n} switch-disjoint {FLOW_LEN}-hop flows, {cross} cross-shard, \
         obs off vs recording; virtual time\n"
    );

    let mut records: Vec<Record> = Vec::new();
    let mut t = Table::new(
        "virtual makespan, obs off vs on",
        &["shards", "off ms", "on ms", "ratio", "wall off", "wall on"],
    );
    let mut wall_off_total = 0.0;
    let mut wall_on_total = 0.0;
    for &shards in shard_counts {
        let pairs = disjoint_flows(n);
        let off = run_load(
            &pairs,
            assignment(&pairs, shards, cross),
            shard_runtime(),
            false,
            None,
            Obs::disabled(),
        );
        let on = run_load(
            &pairs,
            assignment(&pairs, shards, cross),
            shard_runtime(),
            false,
            None,
            Obs::with_ring(256),
        );
        for (leg, out) in [("off", &off), ("on", &on)] {
            let done = out
                .report
                .updates
                .iter()
                .filter(|u| u.completed.is_some())
                .count();
            assert_eq!(done, n, "obs-{leg} shards={shards}: all must complete");
            assert!(
                !out.report.violations.any(),
                "obs-{leg} shards={shards}: transient violations: {}",
                out.report.violations
            );
        }
        let off_ms = makespan_ms(&off.report);
        let on_ms = makespan_ms(&on.report);
        // The recorder adds no virtual delays, so the deterministic
        // makespans must agree exactly; the issue's 5% bar rides on
        // top as the stated acceptance criterion.
        assert!(
            (on_ms - off_ms).abs() < 1e-9,
            "shards={shards}: obs must not perturb virtual time \
             ({on_ms} vs {off_ms} ms)"
        );
        assert!(
            on_ms <= off_ms * 1.05,
            "shards={shards}: obs-on makespan {on_ms:.3} ms exceeds \
             1.05x obs-off {off_ms:.3} ms"
        );

        // Fidelity of the recording leg against ground truth.
        let reg = on.obs.registry();
        assert_eq!(reg.counter(Ctr::Submitted), n as u64, "submitted counter");
        assert_eq!(reg.counter(Ctr::Commits), n as u64, "commit counter");
        assert_eq!(
            reg.hist(HistId::SubmitToCommitNs).count,
            n as u64,
            "submit-to-commit histogram must see every update"
        );
        let page = on.obs.prometheus();
        prometheus::validate(&page).expect("Prometheus page must validate");
        assert!(
            on.obs.trace_json(on.first_job).is_some(),
            "span trace for the first submitted job must exist"
        );

        wall_off_total += off.wall_ms;
        wall_on_total += on.wall_ms;
        t.row(vec![
            shards.to_string(),
            f2(off_ms),
            f2(on_ms),
            format!("{:.3}", on_ms / off_ms),
            f2(off.wall_ms),
            f2(on.wall_ms),
        ]);
        records.push(Record::new("obs_off", "fabric", shards as u64, off_ms));
        records.push(Record::new("obs_on", "fabric", shards as u64, on_ms));
    }
    println!("{t}");
    println!(
        "wall-clock totals: {:.1} ms off, {:.1} ms on ({:.2}x) — reported, not gated\n",
        wall_off_total,
        wall_on_total,
        wall_on_total / wall_off_total.max(1e-9)
    );

    // --- forced-crash leg: the flight recorder must fire ---------------
    let chaos_n = 8usize;
    let (out, dumps) = chaos_dumps(chaos_n);
    assert_eq!(out.crashes, 1, "chaos leg must actually crash");
    assert_eq!(out.recoveries, 1, "journal must rebuild the fabric");
    assert!(
        !dumps.is_empty(),
        "a forced crash must leave at least one flight-recorder dump"
    );
    let crash_dumps = out
        .obs
        .dumps()
        .iter()
        .filter(|d| d.reason == DumpReason::CrashRecovery)
        .count();
    assert!(crash_dumps >= 1, "at least one dump must be crash_recovery");
    for d in &dumps {
        check_dump_schema(d);
    }
    // Byte-identical replay: same seed, same workload, same dumps.
    let (_, replay) = chaos_dumps(chaos_n);
    assert_eq!(
        dumps, replay,
        "flight-recorder dumps must replay byte-identically under the same seed"
    );
    let mut tc = Table::new(
        "forced crash at 3 ms, 4 shards, half the flows cross-shard",
        &["crashes", "recoveries", "dumps", "crash dumps", "replay"],
    );
    tc.row(vec![
        out.crashes.to_string(),
        out.recoveries.to_string(),
        dumps.len().to_string(),
        crash_dumps.to_string(),
        "byte-identical".to_string(),
    ]);
    println!("{tc}");
    records.push(Record::new("chaos_dumps", "fabric", 4, dumps.len() as f64));

    println!(
        "acceptance: obs-on makespan within 5% of obs-off on every shard count \
         (exactly equal in virtual time); {} schema-valid dump(s), replay byte-identical",
        dumps.len()
    );

    if let Some(path) = json_path {
        let mut export = Export::new("observability")
            .header("wall_off_ms", Json::Num(wall_off_total))
            .header("wall_on_ms", Json::Num(wall_on_total));
        for r in &records {
            export.push(r.clone());
        }
        println!("{}", export.write(&path));
    }
}
