//! `bench_check` — the CI perf-regression gate.
//!
//! Compares a fresh `exp_rounds_scaling` JSON export against a
//! committed baseline (`BENCH_PR2.json` et seq.) and exits non-zero
//! when any per-schedule timing regressed beyond the noise threshold.
//! Run by the `bench-regression` job in `.github/workflows/ci.yml`:
//!
//! ```text
//! cargo run --release -p sdn-bench --bin exp_rounds_scaling -- \
//!     --max-n 512 --json-out bench_current.json
//! cargo run --release -p sdn-bench --bin bench_check -- \
//!     --baseline BENCH_PR2.json --current bench_current.json
//! ```
//!
//! Flags: `--baseline PATH` (required), `--current PATH` (required),
//! `--threshold X` (default 3.0 — generous, CI runners are noisy),
//! `--floor-ms MS` (default 5.0 — sub-floor rows never fail).

use sdn_bench::json::Json;
use sdn_bench::regression::{compare, records_of, Verdict};

fn die(msg: &str) -> ! {
    eprintln!("bench_check: {msg}");
    eprintln!("usage: bench_check --baseline PATH --current PATH [--threshold X] [--floor-ms MS]");
    std::process::exit(2);
}

fn load(path: &str) -> Vec<sdn_bench::regression::BenchRecord> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")));
    records_of(&doc).unwrap_or_else(|e| die(&format!("bad export {path}: {e}")))
}

fn main() {
    let mut baseline_path: Option<String> = None;
    let mut current_path: Option<String> = None;
    let mut threshold = 3.0f64;
    let mut floor_ms = 5.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--current" => current_path = Some(value("--current")),
            "--threshold" => {
                threshold = value("--threshold")
                    .parse()
                    .unwrap_or_else(|_| die("--threshold needs a number"))
            }
            "--floor-ms" => {
                floor_ms = value("--floor-ms")
                    .parse()
                    .unwrap_or_else(|_| die("--floor-ms needs a number"))
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| die("--baseline is required"));
    let current_path = current_path.unwrap_or_else(|| die("--current is required"));

    let baseline = load(&baseline_path);
    let current = load(&current_path);
    if current.is_empty() {
        die("current export contains no records");
    }

    println!(
        "comparing {} current records ({current_path}) against {} baseline records \
         ({baseline_path}); threshold {threshold}x, floor {floor_ms} ms\n",
        current.len(),
        baseline.len(),
    );
    let comparisons = compare(&baseline, &current, threshold, floor_ms);
    for c in &comparisons {
        println!("{c}");
    }
    let regressed: Vec<_> = comparisons
        .iter()
        .filter(|c| c.verdict == Verdict::Regressed)
        .collect();
    let skipped = comparisons
        .iter()
        .filter(|c| c.verdict == Verdict::Skipped)
        .count();
    println!(
        "\n{} compared, {} regressed, {} skipped (no baseline)",
        comparisons.len(),
        regressed.len(),
        skipped
    );
    if !regressed.is_empty() {
        eprintln!("\nperformance regressions detected:");
        for c in regressed {
            eprintln!("  {c}");
        }
        std::process::exit(1);
    }
}
