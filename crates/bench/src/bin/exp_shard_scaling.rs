//! E10 — sharded fabric scaling vs cross-shard coordination cost.
//!
//! The fabric partitions the switch set into shards, each running its
//! own conflict graph, admission queue and RTO table; cross-shard
//! updates pay a two-phase prepare/commit through the coordinator.
//! This experiment quantifies both sides of that bargain on the
//! simulated data plane:
//!
//! * **scaling** — aggregate admitted-update throughput completing `n`
//!   switch-disjoint updates, swept over shard count, with each flow
//!   pinned to one shard via [`ShardAssignment::with_overrides`]: the
//!   per-shard `max_active` bottleneck (4 here) is the resource that
//!   sharding multiplies;
//! * **cross-shard tax** — the same sweep with a fraction of flows
//!   deliberately straddling two shards, so they route through the
//!   coordinator's two-phase path instead of scaling with the shards;
//! * **chaos** — a cross-shard workload with the controller crashed
//!   mid-flight: the journalled fabric must recover, finish the work,
//!   and leave a rule-for-rule clean audit with zero transient
//!   violations under live probing.
//!
//! All timing is virtual (deterministic), so the exported records are
//! noise-free and the `bench_check` gate can hold a tight line.
//! Self-asserts the PR-8 acceptance bar: ≥ 2× aggregate throughput at
//! 4 shards vs 1 shard on the switch-disjoint workload, and the chaos
//! leg converges violation-free with a clean audit.
//!
//! Flags: `--tier small` (CI smoke sizes), `--json` (write
//! `BENCH_PR8.json`), `--json-out PATH`.

use sdn_bench::table::{f2, Table};
use sdn_bench::Export;
use sdn_channel::config::ChannelConfig;
use sdn_ctrl::compile::{compile_schedule, initial_flowmods, CompiledUpdate, FlowSpec};
use sdn_ctrl::executor::ExecConfig;
use sdn_ctrl::runtime::{FabricConfig, FabricCoordinator, RuntimeConfig, SubmitRequest};
use sdn_sim::chaos::FaultKind;
use sdn_sim::report::SimReport;
use sdn_sim::world::{World, WorldConfig};
use sdn_topo::gen::{self, UpdatePair};
use sdn_types::{DpId, SimDuration, SimTime};
use update_core::algorithms::{SlfGreedy, UpdateScheduler};
use update_core::model::UpdateInstance;
use update_core::partition::ShardAssignment;

const FLOW_LEN: u64 = 8;
const PER_SHARD_ACTIVE: usize = 4;

/// `n` switch-disjoint reversal flows.
fn disjoint_flows(n: usize) -> Vec<UpdatePair> {
    (0..n)
        .map(|i| gen::shift(&gen::reversal(FLOW_LEN), (i as u64) * (FLOW_LEN + 2)))
        .collect()
}

/// Every switch of every flow, in flow order.
fn flow_switches(pairs: &[UpdatePair]) -> Vec<Vec<DpId>> {
    pairs
        .iter()
        .map(|p| {
            let mut dps: Vec<DpId> = p.old.hops().to_vec();
            dps.extend(p.new.hops().iter().copied());
            dps.sort();
            dps.dedup();
            dps
        })
        .collect()
}

/// Pin flow `i` to shard `i % shards`; the first `cross` flows instead
/// straddle their home shard and its neighbour (half the hops each),
/// forcing the two-phase path whenever `shards > 1`.
fn assignment(pairs: &[UpdatePair], shards: u32, cross: usize) -> ShardAssignment {
    let mut overrides: Vec<(DpId, u32)> = Vec::new();
    for (i, dps) in flow_switches(pairs).iter().enumerate() {
        let home = (i as u32) % shards;
        let away = (home + 1) % shards;
        let half = dps.len() / 2;
        for (j, &dp) in dps.iter().enumerate() {
            let s = if i < cross && j >= half { away } else { home };
            overrides.push((dp, s));
        }
    }
    ShardAssignment::with_overrides(shards, overrides)
}

struct RunOutcome {
    report: SimReport,
    cross_shard: usize,
    recoveries: u64,
    crashes: u64,
    audit_clean: bool,
}

/// Submit `pairs` at t=0 into a fabric over `assign`, probe every flow
/// while the updates run, and run to quiescence.
fn run_load(
    pairs: &[UpdatePair],
    assign: ShardAssignment,
    runtime: RuntimeConfig,
    journal: bool,
    crash_at: Option<SimTime>,
) -> RunOutcome {
    let topo = gen::materialize_batch(pairs);
    let fabric = FabricCoordinator::with_assignment(
        FabricConfig {
            shards: assign.shards(),
            runtime,
            journal,
            ..FabricConfig::default()
        },
        assign,
    );
    let cfg = WorldConfig {
        channel: ChannelConfig::lan(),
        seed: 2816,
        ..WorldConfig::default()
    };
    let mut world = World::builder(topo.clone())
        .config(cfg)
        .runtime_handle(Box::new(fabric))
        .build();
    let mut compiled: Vec<CompiledUpdate> = Vec::new();
    for (i, pair) in pairs.iter().enumerate() {
        let (src, dst) = gen::batch_hosts(i);
        let spec = FlowSpec { src, dst };
        let inst = UpdateInstance::new(pair.old.clone(), pair.new.clone(), pair.waypoint).unwrap();
        let sched = SlfGreedy::default().schedule(&inst).expect("schedulable");
        world.install_initial(&initial_flowmods(&topo, &pair.old, &spec).unwrap());
        compiled.push(compile_schedule(&topo, &inst, &sched, &spec).unwrap());
    }
    let mut cross_shard = 0;
    for c in compiled {
        let ticket = world
            .submit(SubmitRequest::new(c))
            .expect("fabric admits the batch");
        cross_shard += usize::from(ticket.cross_shard);
    }
    if let Some(at) = crash_at {
        world.schedule_fault(at, FaultKind::CrashController);
    }
    for (i, _) in pairs.iter().enumerate() {
        let (src, dst) = gen::batch_hosts(i);
        world.plan_injection(src, dst, SimDuration::from_micros(500), 100, SimTime::ZERO);
    }
    let report = world.run(SimTime::ZERO + SimDuration::from_secs(3600));
    RunOutcome {
        report,
        cross_shard,
        recoveries: world.runtime().stats().recoveries,
        crashes: world.controller_crashes(),
        audit_clean: world.audit().is_clean(),
    }
}

/// Makespan (t=0 submission → last completion) in virtual ms.
fn makespan_ms(r: &SimReport) -> f64 {
    r.updates
        .iter()
        .filter_map(|u| u.completed)
        .map(|t| t.as_millis_f64())
        .fold(0.0, f64::max)
}

fn shard_runtime() -> RuntimeConfig {
    RuntimeConfig {
        queue_capacity: 64,
        max_active: PER_SHARD_ACTIVE,
        ..RuntimeConfig::default()
    }
}

/// Outage-tolerant tuning for the chaos leg.
fn patient_runtime() -> RuntimeConfig {
    RuntimeConfig {
        exec: ExecConfig {
            barrier_timeout: SimDuration::from_millis(20),
            max_attempts: 60,
            flowmod_acks: false,
        },
        max_active: PER_SHARD_ACTIVE,
        queue_capacity: 64,
        ..RuntimeConfig::default()
    }
}

struct Record {
    workload: &'static str,
    algo: String,
    n: u64,
    ms: f64,
}

fn main() {
    let mut tier_small = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tier" => {
                let t = args.next().expect("--tier needs small|full");
                tier_small = t == "small";
            }
            "--json" => json_path = Some("BENCH_PR8.json".to_string()),
            "--json-out" => json_path = Some(args.next().expect("--json-out needs a path")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: exp_shard_scaling [--tier small|full] [--json | --json-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let n: usize = if tier_small { 16 } else { 32 };
    let shard_counts: &[u32] = if tier_small {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    };
    let cross_fracs: &[f64] = &[0.0, 0.25, 0.5];

    println!("E10: sharded fabric scaling vs cross-shard coordination cost");
    println!(
        "    {n} switch-disjoint {FLOW_LEN}-hop flows pinned per-shard \
         (max_active {PER_SHARD_ACTIVE} each); virtual time\n"
    );

    let mut records: Vec<Record> = Vec::new();
    let mut t = Table::new(
        "aggregate throughput vs shard count x cross-shard fraction",
        &[
            "shards",
            "xfrac",
            "xshard upd",
            "makespan ms",
            "upd/s",
            "speedup",
        ],
    );
    let mut baseline_ms = 0.0;
    let mut speedup_at_4 = 0.0;
    for &frac in cross_fracs {
        let cross = (frac * n as f64).round() as usize;
        for &shards in shard_counts {
            let pairs = disjoint_flows(n);
            let out = run_load(
                &pairs,
                assignment(&pairs, shards, cross),
                shard_runtime(),
                false,
                None,
            );
            let done = out
                .report
                .updates
                .iter()
                .filter(|u| u.completed.is_some())
                .count();
            assert_eq!(done, n, "shards={shards} xfrac={frac}: all must complete");
            assert!(
                !out.report.violations.any(),
                "shards={shards} xfrac={frac}: transient violations: {}",
                out.report.violations
            );
            assert!(out.audit_clean, "shards={shards} xfrac={frac}: dirty audit");
            // pinning keeps single-shard flows off the two-phase path
            let expect_cross = if shards > 1 { cross } else { 0 };
            assert_eq!(
                out.cross_shard, expect_cross,
                "shards={shards} xfrac={frac}: cross-shard ticket count"
            );
            let ms = makespan_ms(&out.report);
            if shards == 1 && frac == 0.0 {
                baseline_ms = ms;
            }
            let speedup = baseline_ms / ms;
            if shards == 4 && frac == 0.0 {
                speedup_at_4 = speedup;
            }
            t.row(vec![
                shards.to_string(),
                format!("{frac:.2}"),
                out.cross_shard.to_string(),
                f2(ms),
                f2(n as f64 / (ms / 1e3)),
                f2(speedup),
            ]);
            records.push(Record {
                workload: "shard_scaling",
                algo: format!("xfrac{:02}", (frac * 100.0) as u32),
                n: shards as u64,
                ms,
            });
        }
    }
    println!("{t}");

    // --- chaos leg: coordinator crash over cross-shard work ------------
    let chaos_n = 8usize;
    let pairs = disjoint_flows(chaos_n);
    let out = run_load(
        &pairs,
        assignment(&pairs, 4, chaos_n / 2),
        patient_runtime(),
        true,
        Some(SimTime::ZERO + SimDuration::from_millis(3)),
    );
    let done = out
        .report
        .updates
        .iter()
        .filter(|u| u.completed.is_some())
        .count();
    let mut tc = Table::new(
        "chaos: controller crash at 3 ms, 4 shards, half the flows cross-shard",
        &["crashes", "recoveries", "completed", "violations", "audit"],
    );
    tc.row(vec![
        out.crashes.to_string(),
        out.recoveries.to_string(),
        format!("{done}/{chaos_n}"),
        out.report.violations.any().to_string(),
        if out.audit_clean { "clean" } else { "DIRTY" }.to_string(),
    ]);
    println!("{tc}");
    assert_eq!(out.crashes, 1, "chaos leg must actually crash");
    assert_eq!(out.recoveries, 1, "journal must rebuild the fabric");
    assert!(
        out.report
            .updates
            .iter()
            .all(|u| u.completed.is_some() || u.failure.is_some()),
        "no update may hang across the crash"
    );
    assert!(
        !out.report.violations.any(),
        "chaos leg violations: {}",
        out.report.violations
    );
    assert!(out.audit_clean, "chaos leg must end with a clean audit");
    records.push(Record {
        workload: "chaos_recoveries",
        algo: "fabric".into(),
        n: 4,
        ms: out.recoveries as f64,
    });
    records.push(Record {
        workload: "chaos_completed",
        algo: "fabric".into(),
        n: 4,
        ms: done as f64,
    });

    // --- acceptance bar -------------------------------------------------
    assert!(
        speedup_at_4 >= 2.0,
        "fabric must be >= 2x aggregate throughput at 4 shards vs 1 on the \
         switch-disjoint workload, got {speedup_at_4:.2}x"
    );
    println!(
        "acceptance: {speedup_at_4:.2}x throughput at 4 shards (>= 2x required); \
         chaos leg {done}/{chaos_n} completed, {} recovery, clean audit",
        out.recoveries
    );

    if let Some(path) = json_path {
        let mut export = Export::new("shard_scaling");
        for r in &records {
            export.push(sdn_bench::Record::new(
                r.workload,
                r.algo.clone(),
                r.n,
                r.ms,
            ));
        }
        println!("{}", export.write(&path));
    }
}
