//! E7 — concurrent-update throughput, latency and backpressure.
//!
//! The serial controller executes one compiled update at a time; the
//! concurrent runtime executes every footprint-disjoint update in
//! flight at once. This experiment quantifies the difference on the
//! simulated data plane:
//!
//! * **throughput** — updates/second (virtual time) completing `n`
//!   switch-disjoint updates submitted simultaneously, serial vs
//!   concurrent;
//! * **latency** — p50/p99 submission→completion time under the same
//!   offered load;
//! * **serialization** — the same sweep on *conflicting* updates
//!   (shared flow), where the conflict graph must forbid overlap and
//!   concurrency can buy nothing;
//! * **backpressure** — rejection rate vs offered load against a
//!   bounded admission queue;
//! * **straggler** — retransmissions to one slow switch, fixed
//!   timeout vs per-switch adaptive RTO.
//!
//! All timing is virtual (deterministic), so the exported records are
//! noise-free and the `bench_check` gate can hold a tight line on
//! protocol regressions. Self-asserts the PR-5 acceptance bar:
//! ≥ 2× aggregate throughput at 8 concurrent disjoint updates, and
//! fewer straggler retransmissions under the adaptive RTO.
//!
//! Flags: `--tier small` (CI smoke sizes), `--json` (write
//! `BENCH_PR5.json`), `--json-out PATH`.

use sdn_bench::stats::percentile;
use sdn_bench::table::{f2, Table};
use sdn_bench::Export;
use sdn_channel::config::ChannelConfig;
use sdn_ctrl::compile::{compile_schedule, initial_flowmods, CompiledUpdate, FlowSpec};
use sdn_ctrl::executor::ExecConfig;
use sdn_ctrl::runtime::{
    AdmissionPolicy, ConcurrentRuntime, RetransMode, RuntimeConfig, RuntimeHandle, SubmitRequest,
};
use sdn_sim::report::SimReport;
use sdn_sim::world::{World, WorldConfig};
use sdn_topo::gen::{self, UpdatePair};
use sdn_types::{DpId, SimDuration, SimTime};
use update_core::algorithms::{SlfGreedy, UpdateScheduler};
use update_core::model::UpdateInstance;

const FLOW_LEN: u64 = 8;

/// `n` switch-disjoint reversal flows.
fn disjoint_flows(n: usize) -> Vec<UpdatePair> {
    (0..n)
        .map(|i| gen::shift(&gen::reversal(FLOW_LEN), (i as u64) * (FLOW_LEN + 2)))
        .collect()
}

/// `n` updates of the *same* flow: forward, back, forward, ... — every
/// pair conflicts, so they must serialize.
fn overlapping_flows(n: usize) -> Vec<UpdatePair> {
    let fwd = gen::reversal(FLOW_LEN);
    let back = UpdatePair {
        old: fwd.new.clone(),
        new: fwd.old.clone(),
        waypoint: None,
    };
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                fwd.clone()
            } else {
                back.clone()
            }
        })
        .collect()
}

struct RunOutcome {
    report: SimReport,
    stats: sdn_ctrl::runtime::RuntimeStats,
    accepted: usize,
    rejected: usize,
}

/// Submit every compiled update at t=0 and run to quiescence.
fn run_load(
    pairs: &[UpdatePair],
    distinct_hosts: bool,
    runtime: Box<dyn RuntimeHandle>,
) -> RunOutcome {
    let topo = if distinct_hosts {
        gen::materialize_batch(pairs)
    } else {
        gen::materialize_batch(&pairs[..1])
    };
    let cfg = WorldConfig {
        channel: ChannelConfig::lan(),
        seed: 2711,
        ..WorldConfig::default()
    };
    let mut world = World::builder(topo.clone())
        .config(cfg)
        .runtime_handle(runtime)
        .build();
    let mut compiled: Vec<CompiledUpdate> = Vec::new();
    for (i, pair) in pairs.iter().enumerate() {
        let (src, dst) = gen::batch_hosts(if distinct_hosts { i } else { 0 });
        let spec = FlowSpec { src, dst };
        let inst = UpdateInstance::new(pair.old.clone(), pair.new.clone(), pair.waypoint).unwrap();
        let sched = SlfGreedy::default().schedule(&inst).expect("schedulable");
        if distinct_hosts || i == 0 {
            world.install_initial(&initial_flowmods(&topo, &pair.old, &spec).unwrap());
        }
        compiled.push(compile_schedule(&topo, &inst, &sched, &spec).unwrap());
    }
    let mut accepted = 0;
    let mut rejected = 0;
    for c in compiled {
        if world.submit(SubmitRequest::new(c)).is_ok() {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    let report = world.run(SimTime::ZERO + SimDuration::from_secs(3600));
    RunOutcome {
        report,
        stats: world.runtime().stats(),
        accepted,
        rejected,
    }
}

/// Makespan (first submission → last completion) in virtual ms.
fn makespan_ms(r: &SimReport) -> f64 {
    r.updates
        .iter()
        .filter_map(|u| u.completed)
        .map(|t| t.as_millis_f64())
        .fold(0.0, f64::max)
}

/// Percentile (0..=100) of submission→completion latency in ms.
fn latency_percentile(r: &SimReport, p: f64) -> f64 {
    let lats: Vec<f64> = r
        .updates
        .iter()
        .filter_map(|u| u.latency())
        .map(|d| d.as_millis_f64())
        .collect();
    percentile(&lats, p)
}

fn concurrent_runtime() -> Box<dyn RuntimeHandle> {
    Box::new(ConcurrentRuntime::new(RuntimeConfig {
        queue_capacity: 256,
        max_active: 64,
        ..RuntimeConfig::default()
    }))
}

fn serial_runtime() -> Box<dyn RuntimeHandle> {
    Box::new(sdn_ctrl::Controller::new(
        sdn_ctrl::ControllerConfig::default(),
    ))
}

struct Record {
    workload: &'static str,
    algo: &'static str,
    n: u64,
    ms: f64,
}

fn main() {
    let mut tier_small = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tier" => {
                let t = args.next().expect("--tier needs small|full");
                tier_small = t == "small";
            }
            "--json" => json_path = Some("BENCH_PR5.json".to_string()),
            "--json-out" => json_path = Some(args.next().expect("--json-out needs a path")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: exp_concurrent_updates [--tier small|full] [--json | --json-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    println!("E7: concurrent-update runtime vs the serial controller");
    println!("    n switch-disjoint 8-hop reversal flows submitted at t=0; virtual time\n");

    let sizes: &[usize] = if tier_small {
        &[2, 4, 8]
    } else {
        &[2, 4, 8, 16, 32]
    };
    let mut records: Vec<Record> = Vec::new();

    // --- disjoint load: serial vs concurrent ---------------------------
    let mut t = Table::new(
        "disjoint updates: makespan / throughput / latency",
        &[
            "n",
            "serial ms",
            "conc ms",
            "speedup",
            "conc upd/s",
            "p50 ms",
            "p99 ms",
            "peak act",
        ],
    );
    let mut speedup_at_8 = 0.0;
    for &n in sizes {
        let pairs = disjoint_flows(n);
        let serial = run_load(&pairs, true, serial_runtime());
        let conc = run_load(&pairs, true, concurrent_runtime());
        for (label, out) in [("serial", &serial), ("concurrent", &conc)] {
            assert_eq!(
                out.report
                    .updates
                    .iter()
                    .filter(|u| u.completed.is_some())
                    .count(),
                n,
                "{label} must complete all {n} disjoint updates"
            );
        }
        let s_ms = makespan_ms(&serial.report);
        let c_ms = makespan_ms(&conc.report);
        let speedup = s_ms / c_ms;
        if n == 8 {
            speedup_at_8 = speedup;
        }
        assert_eq!(
            conc.stats.peak_active as usize, n,
            "all {n} disjoint updates must run at once"
        );
        t.row(vec![
            n.to_string(),
            f2(s_ms),
            f2(c_ms),
            f2(speedup),
            f2(n as f64 / (c_ms / 1e3)),
            f2(latency_percentile(&conc.report, 50.0)),
            f2(latency_percentile(&conc.report, 99.0)),
            conc.stats.peak_active.to_string(),
        ]);
        records.push(Record {
            workload: "disjoint",
            algo: "serial",
            n: n as u64,
            ms: s_ms,
        });
        records.push(Record {
            workload: "disjoint",
            algo: "concurrent",
            n: n as u64,
            ms: c_ms,
        });
        records.push(Record {
            workload: "disjoint_p99",
            algo: "concurrent",
            n: n as u64,
            ms: latency_percentile(&conc.report, 99.0),
        });
    }
    println!("{t}");

    // --- overlapping load: conflicts must serialize --------------------
    let mut to = Table::new(
        "overlapping updates (same flow): concurrency buys nothing",
        &["n", "serial ms", "conc ms", "peak act"],
    );
    for &n in &[2usize, 4] {
        let pairs = overlapping_flows(n);
        let serial = run_load(&pairs, false, serial_runtime());
        let conc = run_load(&pairs, false, concurrent_runtime());
        let s_ms = makespan_ms(&serial.report);
        let c_ms = makespan_ms(&conc.report);
        assert_eq!(
            conc.stats.peak_active, 1,
            "conflicting updates must never overlap"
        );
        // serialized windows: each next start >= previous completion
        let ups = &conc.report.updates;
        for w in ups.windows(2) {
            assert!(
                w[1].started >= w[0].completed.expect("completes"),
                "overlap between serialized updates"
            );
        }
        to.row(vec![
            n.to_string(),
            f2(s_ms),
            f2(c_ms),
            conc.stats.peak_active.to_string(),
        ]);
        records.push(Record {
            workload: "overlapping",
            algo: "concurrent",
            n: n as u64,
            ms: c_ms,
        });
    }
    println!("{to}");

    // --- backpressure: rejection rate vs offered load ------------------
    let capacity = 8usize;
    let mut tb = Table::new(
        "bounded admission (queue capacity 8, reject-new): rejection vs offered load",
        &[
            "offered",
            "accepted",
            "rejected",
            "reject rate",
            "makespan ms",
        ],
    );
    let offered_sizes: &[usize] = if tier_small {
        &[8, 16]
    } else {
        &[8, 16, 32, 64]
    };
    for &n in offered_sizes {
        let pairs = disjoint_flows(n);
        let runtime = Box::new(ConcurrentRuntime::new(RuntimeConfig {
            queue_capacity: capacity,
            max_active: 4,
            policy: AdmissionPolicy::RejectNew,
            ..RuntimeConfig::default()
        }));
        let out = run_load(&pairs, true, runtime);
        assert_eq!(out.accepted, capacity.min(n));
        assert_eq!(out.rejected, n.saturating_sub(capacity));
        let rate = out.stats.rejection_rate();
        tb.row(vec![
            n.to_string(),
            out.accepted.to_string(),
            out.rejected.to_string(),
            f2(rate),
            f2(makespan_ms(&out.report)),
        ]);
        records.push(Record {
            workload: "rejection_rate_pct",
            algo: "capacity8",
            n: n as u64,
            ms: rate * 100.0,
        });
    }
    println!("{tb}");

    // --- straggler: fixed timeout vs adaptive RTO ----------------------
    let straggler_run = |retrans: RetransMode| {
        let pairs = disjoint_flows(1);
        let topo = gen::materialize_batch(&pairs);
        let (src, dst) = gen::batch_hosts(0);
        let spec = FlowSpec { src, dst };
        let runtime = Box::new(ConcurrentRuntime::new(RuntimeConfig {
            exec: ExecConfig {
                barrier_timeout: SimDuration::from_millis(10),
                max_attempts: 40,
                flowmod_acks: false,
            },
            retrans,
            ..RuntimeConfig::default()
        }));
        let cfg = WorldConfig {
            channel: ChannelConfig::ideal(SimDuration::from_millis(1)),
            seed: 7,
            ..WorldConfig::default()
        };
        let mut world = World::builder(topo.clone())
            .config(cfg)
            .runtime_handle(runtime)
            .build();
        world.set_link_profile(
            DpId(4),
            Some(ChannelConfig::ideal(SimDuration::from_millis(45))),
        );
        world.install_initial(&initial_flowmods(&topo, &pairs[0].old, &spec).unwrap());
        let inst = UpdateInstance::new(pairs[0].old.clone(), pairs[0].new.clone(), None).unwrap();
        let sched = SlfGreedy::default().schedule(&inst).unwrap();
        world.enqueue_update(compile_schedule(&topo, &inst, &sched, &spec).unwrap());
        let r = world.run(SimTime::ZERO + SimDuration::from_secs(3600));
        assert!(
            r.updates[0].completed.is_some(),
            "straggler run must finish"
        );
        (world.runtime().stats().retransmissions, makespan_ms(&r))
    };
    let (fixed_rtx, fixed_ms) = straggler_run(RetransMode::Fixed);
    let (adaptive_rtx, adaptive_ms) = straggler_run(RetransMode::default());
    let mut ts = Table::new(
        "slow-switch straggler (s4 at 45 ms vs 1 ms peers; 10 ms fixed timeout)",
        &["policy", "retransmissions", "makespan ms"],
    );
    ts.row(vec!["fixed".into(), fixed_rtx.to_string(), f2(fixed_ms)]);
    ts.row(vec![
        "adaptive".into(),
        adaptive_rtx.to_string(),
        f2(adaptive_ms),
    ]);
    println!("{ts}");
    records.push(Record {
        workload: "straggler_retransmissions",
        algo: "fixed",
        n: 8,
        ms: fixed_rtx as f64,
    });
    records.push(Record {
        workload: "straggler_retransmissions",
        algo: "adaptive",
        n: 8,
        ms: adaptive_rtx as f64,
    });

    // --- acceptance bars ------------------------------------------------
    assert!(
        speedup_at_8 >= 2.0,
        "concurrent runtime must be >= 2x serial at 8 disjoint updates, got {speedup_at_8:.2}x"
    );
    assert!(
        adaptive_rtx < fixed_rtx,
        "adaptive RTO must retransmit less than fixed on a straggler \
         ({adaptive_rtx} vs {fixed_rtx})"
    );
    println!(
        "acceptance: {speedup_at_8:.2}x throughput at 8 disjoint updates (>= 2x required); \
         straggler retransmissions {adaptive_rtx} adaptive vs {fixed_rtx} fixed"
    );

    if let Some(path) = json_path {
        let mut export = Export::new("concurrent_updates");
        for r in &records {
            export.push(sdn_bench::Record::new(r.workload, r.algo, r.n, r.ms));
        }
        println!("{}", export.write(&path));
    }
}
