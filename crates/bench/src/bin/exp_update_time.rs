//! E2 — update time of flow tables vs control-channel latency.
//!
//! The demo's stated evaluation: *"running our evaluations with respect
//! to the update time of flow tables in OpenFlow switches."* We sweep
//! the control channel's mean one-way delay and measure the virtual
//! time from first FlowMod dispatch to the last barrier reply, per
//! algorithm, on the Figure-1 workload. More rounds ⇒ more barrier
//! round-trips ⇒ slower updates; one-shot is fastest and unsafe —
//! that is the trade-off the paper's schedulers navigate.

use sdn_bench::stats::{percentile, Summary};
use sdn_bench::table::{f2, Table};
use sdn_channel::config::ChannelConfig;
use sdn_sim::scenario::{run_scenario, AlgoChoice, Scenario, ScenarioOutcome};
use sdn_topo::gen::UpdatePair;
use sdn_types::SimDuration;
use update_core::schedule::RuleOp;

/// Virtual time until the *policy switch-over*: completion of the last
/// round containing anything other than old-rule removals. The trailing
/// cleanup (drain grace + deletes) no longer affects where packets go.
fn switch_over_ms(out: &ScenarioOutcome) -> Option<f64> {
    let last_effective = out
        .schedule
        .rounds
        .iter()
        .rposition(|r| r.ops.iter().any(|op| !matches!(op, RuleOp::RemoveOld(_))))?;
    let u = out.sim.updates.first()?;
    let t = u.rounds.get(last_effective)?.completed?;
    Some(t.saturating_since(u.started).as_millis_f64())
}

fn fig1_pair() -> UpdatePair {
    let f = sdn_topo::builders::figure1();
    UpdatePair {
        old: f.old_route,
        new: f.new_route,
        waypoint: Some(f.waypoint),
    }
}

fn main() {
    println!("E2: flow-table update time vs control-channel latency (Figure-1 workload)");
    println!("    cells: mean update time over 5 seeds [ms]; exponential one-way delays\n");

    let latencies_ms = [0.1f64, 0.5, 1.0, 5.0, 10.0, 20.0, 50.0];
    let algos = [
        AlgoChoice::OneShot,
        AlgoChoice::TwoPhase,
        AlgoChoice::Peacock,
        AlgoChoice::WayUp,
        AlgoChoice::SlfGreedy,
    ];

    let mut headers: Vec<String> = vec!["algorithm".into(), "rounds".into()];
    headers.extend(latencies_ms.iter().map(|l| format!("{l} ms")));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut switch_table = Table::new(
        "policy switch-over time [ms] (until last effective round)",
        &hdr_refs,
    );
    let mut total_table = Table::new(
        "total update time [ms] (incl. drain grace + cleanup round)",
        &hdr_refs,
    );

    for algo in algos {
        let mut switch_cells = Vec::new();
        let mut total_cells = Vec::new();
        let mut rounds = 0usize;
        for &lat in &latencies_ms {
            let mut switch_samples = Vec::new();
            let mut total_samples = Vec::new();
            for seed in 0..5u64 {
                let mut sc = Scenario::new(format!("{algo}@{lat}ms"), fig1_pair(), algo)
                    .with_channel(ChannelConfig::jittery(SimDuration::from_millis_f64(lat)))
                    .with_seed(1000 + seed);
                sc.inject_count = 0; // pure update-time measurement
                sc.verify = false;
                let out = run_scenario(&sc).expect("scenario runs");
                rounds = out.schedule.round_count();
                if let Some(ms) = switch_over_ms(&out) {
                    switch_samples.push(ms);
                }
                if let Some(d) = out.update_time() {
                    total_samples.push(d.as_millis_f64());
                }
            }
            switch_cells.push(f2(Summary::of(&switch_samples).mean));
            total_cells.push(f2(Summary::of(&total_samples).mean));
        }
        let mut row = vec![algo.name().to_string(), rounds.to_string()];
        row.extend(switch_cells);
        switch_table.row(row);
        let mut row = vec![algo.name().to_string(), rounds.to_string()];
        row.extend(total_cells);
        total_table.row(row);
    }
    println!("{switch_table}");
    println!("{total_table}");
    println!("note: switch-over excludes the trailing cleanup (drain grace +");
    println!("      old-rule deletion), which is identical machinery for every");
    println!("      algorithm; the per-round barrier cost is what separates them.\n");

    // -- second sweep: update time vs path length ------------------------
    // Reversal workloads make the round counts diverge (SLF needs ~n
    // rounds), so the *practical* price of strong loop freedom shows up
    // as wall-clock: each extra round pays a barrier RTT.
    let sizes = [8u64, 16, 32, 64];
    let mut headers2: Vec<String> = vec!["algorithm".into()];
    headers2.extend(sizes.iter().map(|n| format!("n={n}")));
    let hdr2: Vec<&str> = headers2.iter().map(|s| s.as_str()).collect();
    let mut t2 = Table::new(
        "switch-over time [ms] vs path length (reversal, 5 ms jitter, 5 seeds)",
        &hdr2,
    );
    let mut r2 = Table::new("rounds vs path length (same runs)", &hdr2);
    for algo in [
        AlgoChoice::Peacock,
        AlgoChoice::SlfGreedy,
        AlgoChoice::TwoPhase,
    ] {
        let mut time_cells = Vec::new();
        let mut round_cells = Vec::new();
        for &n in &sizes {
            let mut samples = Vec::new();
            let mut rounds = 0usize;
            for seed in 0..5u64 {
                let pair = sdn_topo::gen::reversal(n);
                let mut sc = Scenario::new(format!("{algo}@n{n}"), pair, algo)
                    .with_channel(ChannelConfig::jittery(SimDuration::from_millis(5)))
                    .with_seed(2000 + seed);
                sc.inject_count = 0;
                sc.verify = false;
                let out = run_scenario(&sc).expect("scenario runs");
                rounds = out.schedule.round_count();
                if let Some(ms) = switch_over_ms(&out) {
                    samples.push(ms);
                }
            }
            time_cells.push(f2(Summary::of(&samples).mean));
            round_cells.push(rounds.to_string());
        }
        let mut row = vec![algo.name().to_string()];
        row.extend(time_cells);
        t2.row(row);
        let mut row = vec![algo.name().to_string()];
        row.extend(round_cells);
        r2.row(row);
    }
    println!("{t2}");
    println!("{r2}");

    // -- third sweep: datacenter-scale fat-tree batches ------------------
    // Per-flow update time on k=8 fat-tree inter-pod re-routes against
    // the simulated data plane — the latency distribution a tenant
    // would see, not just the Figure-1 anecdote. Policies: strong loop
    // freedom everywhere (slf-greedy), the per-flow safe mix
    // (WayUp where waypointed, Peacock elsewhere), and two-phase.
    // (Aggregate throughput of *concurrent* batches is E7,
    // `exp_concurrent_updates`.)
    let mut rng = sdn_types::DetRng::new(0xd00d);
    let flows = sdn_topo::gen::fat_tree_flows(8, 32, &mut rng);
    let mut t3 = Table::new(
        "fat-tree batch (k=8, 32 flows, 5 ms jitter): switch-over time [ms]",
        &["policy", "mean", "p50", "p99", "mean rounds"],
    );
    for policy in ["slf-greedy", "wayup/peacock", "two-phase"] {
        let mut samples = Vec::new();
        let mut rounds = Vec::new();
        for (i, pair) in flows.iter().cloned().enumerate() {
            let algo = match policy {
                "slf-greedy" => AlgoChoice::SlfGreedy,
                "two-phase" => AlgoChoice::TwoPhase,
                _ if pair.waypoint.is_some() => AlgoChoice::WayUp,
                _ => AlgoChoice::Peacock,
            };
            let mut sc = Scenario::new(format!("ft-{policy}-{i}"), pair, algo)
                .with_channel(ChannelConfig::jittery(SimDuration::from_millis(5)))
                .with_seed(3000 + i as u64);
            sc.inject_count = 0;
            sc.verify = false;
            let out = run_scenario(&sc).expect("scenario runs");
            rounds.push(out.schedule.round_count() as f64);
            if let Some(ms) = switch_over_ms(&out) {
                samples.push(ms);
            }
        }
        t3.row(vec![
            policy.to_string(),
            f2(Summary::of(&samples).mean),
            f2(percentile(&samples, 50.0)),
            f2(percentile(&samples, 99.0)),
            f2(Summary::of(&rounds).mean),
        ]);
    }
    println!("{t3}");
    println!("note: fat-tree re-routes are 5-hop paths, so every policy needs");
    println!("      few rounds; the spread comes from barrier RTTs under jitter.");
}
