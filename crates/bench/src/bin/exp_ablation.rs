//! E6 — ablations of the design choices called out in DESIGN.md.
//!
//! (a) Peacock candidate orderings — how much the off-path-first order
//!     buys over naive orders;
//! (b) conservative vs exact safety oracle — rounds and admission;
//! (c) per-connection FIFO vs datagram channel — barriers are
//!     meaningless without FIFO ordering, and violations return;
//! (d) WayUp's loop-freedom strength — relaxed (the demo's pairing)
//!     vs strong sub-scheduling;
//! (e) crossing switches — WayUp's fallback rate on crossing workloads.

use sdn_bench::stats::Summary;
use sdn_bench::table::{f2, Table};
use sdn_channel::config::ChannelConfig;
use sdn_sim::scenario::{run_scenario, AlgoChoice, Scenario};
use sdn_types::{DetRng, SimDuration};
use update_core::algorithms::{CandidateOrdering, Peacock, UpdateScheduler, WayUp};
use update_core::model::UpdateInstance;

fn main() {
    println!("E6: ablations\n");

    // (a) orderings ------------------------------------------------------
    let mut ta = Table::new(
        "(a) Peacock candidate ordering: rounds (mean over 10 random n=64 permutations)",
        &["ordering", "reversal n=64", "random n=64"],
    );
    for (name, ord) in [
        ("off-path-first", CandidateOrdering::OffPathFirst),
        (
            "alternating-backward",
            CandidateOrdering::AlternatingBackward,
        ),
        ("new-route-reverse", CandidateOrdering::NewRouteReverse),
        ("old-route-position", CandidateOrdering::OldRoutePosition),
    ] {
        let pea = Peacock {
            ordering: ord,
            ..Peacock::default()
        };
        let rev = {
            let p = sdn_topo::gen::reversal(64);
            let inst = UpdateInstance::new(p.old, p.new, None).unwrap();
            pea.schedule(&inst).unwrap().round_count()
        };
        let mut rnd = Vec::new();
        for seed in 0..10u64 {
            let mut rng = DetRng::new(seed + 1);
            let p = sdn_topo::gen::random_permutation(64, &mut rng);
            let inst = UpdateInstance::new(p.old, p.new, None).unwrap();
            rnd.push(pea.schedule(&inst).unwrap().round_count() as f64);
        }
        ta.row(vec![
            name.to_string(),
            rev.to_string(),
            f2(Summary::of(&rnd).mean),
        ]);
    }
    println!("{ta}");

    // (b) oracle ---------------------------------------------------------
    let mut tb = Table::new(
        "(b) safety oracle: rounds (mean over 10 random n=32 permutations)",
        &["oracle", "rounds"],
    );
    for (name, conservative) in [("conservative-first", true), ("exact-only", false)] {
        let pea = Peacock {
            prefer_conservative: conservative,
            ..Peacock::default()
        };
        let mut rounds = Vec::new();
        for seed in 0..10u64 {
            let mut rng = DetRng::new(seed + 100);
            let p = sdn_topo::gen::random_permutation(32, &mut rng);
            let inst = UpdateInstance::new(p.old, p.new, None).unwrap();
            rounds.push(pea.schedule(&inst).unwrap().round_count() as f64);
        }
        tb.row(vec![name.to_string(), f2(Summary::of(&rounds).mean)]);
    }
    println!("{tb}");

    // (c) FIFO vs datagram channel ----------------------------------------
    let mut tc = Table::new(
        "(c) channel ordering: WayUp on Figure 1, 2000 probes, 8 seeds",
        &["channel", "bypassed wp", "blackholed", "looped"],
    );
    for (name, fifo) in [("FIFO (TCP-like)", true), ("non-FIFO (datagram)", false)] {
        let mut bypass = 0u64;
        let mut bh = 0u64;
        let mut lp = 0u64;
        for seed in 0..8u64 {
            let f = sdn_topo::builders::figure1();
            let pair = sdn_topo::gen::UpdatePair {
                old: f.old_route,
                new: f.new_route,
                waypoint: Some(f.waypoint),
            };
            let ch = ChannelConfig::jittery(SimDuration::from_millis(10));
            let ch = if fifo { ch } else { ch.without_fifo() };
            let mut sc = Scenario::new("fifo-ablation", pair, AlgoChoice::WayUp)
                .with_channel(ch)
                .with_seed(7000 + seed);
            sc.inject_interval = SimDuration::from_micros(100);
            sc.inject_count = 2000;
            sc.verify = false;
            let out = run_scenario(&sc).expect("runs");
            bypass += out.sim.violations.waypoint_bypasses;
            bh += out.sim.violations.blackholes;
            lp += out.sim.violations.loops;
        }
        tc.row(vec![
            name.to_string(),
            bypass.to_string(),
            bh.to_string(),
            lp.to_string(),
        ]);
    }
    println!("{tc}");

    // (d) WayUp loop-freedom strength -------------------------------------
    let mut td = Table::new(
        "(d) WayUp sub-scheduling: rounds (mean over 10 waypointed n=24 workloads)",
        &["loop freedom", "rounds"],
    );
    for (name, strong) in [("relaxed (demo)", false), ("strong", true)] {
        let wu = WayUp {
            strong_loop_freedom: strong,
            ..WayUp::default()
        };
        let mut rounds = Vec::new();
        for seed in 0..10u64 {
            let mut rng = DetRng::new(seed + 300);
            let p = sdn_topo::gen::waypointed(24, false, &mut rng);
            let inst = UpdateInstance::new(p.old, p.new, p.waypoint).unwrap();
            rounds.push(wu.schedule(&inst).unwrap().round_count() as f64);
        }
        td.row(vec![name.to_string(), f2(Summary::of(&rounds).mean)]);
    }
    println!("{td}");

    // (e) crossing fallback rate -------------------------------------------
    let mut te = Table::new(
        "(e) WayUp fallback rate (20 workloads each, n=12)",
        &["workload", "replacement", "2pc fallback"],
    );
    for (name, crossing) in [("crossing-free", false), ("with crossing", true)] {
        let mut repl = 0;
        let mut fall = 0;
        for seed in 0..20u64 {
            let mut rng = DetRng::new(seed + 400);
            let p = sdn_topo::gen::waypointed(12, crossing, &mut rng);
            let inst = UpdateInstance::new(p.old, p.new, p.waypoint).unwrap();
            let s = WayUp::default().schedule(&inst).unwrap();
            if s.fallback {
                fall += 1;
            } else {
                repl += 1;
            }
        }
        te.row(vec![name.to_string(), repl.to_string(), fall.to_string()]);
    }
    println!("{te}");
}
