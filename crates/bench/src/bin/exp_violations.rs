//! E4 — transient security violations under asynchrony.
//!
//! The demo's motivation: asynchronous FlowMod delivery "may lead to
//! transient inconsistencies, such as loops or bypassed waypoints".
//! We inject probe traffic while the update executes and count, per
//! algorithm and channel-jitter level, how many probes bypassed the
//! waypoint, blackholed or looped. Round-based schedules (WayUp,
//! two-phase) must show zeros; one-shot must not.

use sdn_bench::table::{f3, Table};
use sdn_channel::config::ChannelConfig;
use sdn_sim::scenario::{run_scenario, AlgoChoice, Scenario};
use sdn_topo::gen::UpdatePair;
use sdn_types::SimDuration;

fn fig1_pair() -> UpdatePair {
    let f = sdn_topo::builders::figure1();
    UpdatePair {
        old: f.old_route,
        new: f.new_route,
        waypoint: Some(f.waypoint),
    }
}

fn main() {
    println!("E4: transient violations during the Figure-1 update");
    println!("    2000 probes per run, probe interval 100 µs, 8 seeds aggregated\n");

    let jitters_ms = [1.0f64, 5.0, 20.0];
    let algos = [AlgoChoice::OneShot, AlgoChoice::WayUp, AlgoChoice::TwoPhase];

    let mut t = Table::new(
        "aggregated probe verdicts",
        &[
            "algorithm",
            "jitter ms",
            "probes",
            "bypassed wp",
            "blackholed",
            "looped",
            "violation rate",
        ],
    );

    for algo in algos {
        for &jit in &jitters_ms {
            let mut total = 0u64;
            let mut bypass = 0u64;
            let mut bh = 0u64;
            let mut lp = 0u64;
            for seed in 0..8u64 {
                let mut sc = Scenario::new(format!("{algo}"), fig1_pair(), algo)
                    .with_channel(ChannelConfig::jittery(SimDuration::from_millis_f64(jit)))
                    .with_seed(31 * seed + 7);
                sc.inject_interval = SimDuration::from_micros(100);
                sc.inject_count = 2000;
                sc.verify = false;
                let out = run_scenario(&sc).expect("runs");
                let v = out.sim.violations;
                total += v.total;
                bypass += v.waypoint_bypasses;
                bh += v.blackholes;
                lp += v.loops;
            }
            let rate = (bypass + bh + lp) as f64 / total as f64;
            t.row(vec![
                algo.name().to_string(),
                format!("{jit}"),
                total.to_string(),
                bypass.to_string(),
                bh.to_string(),
                lp.to_string(),
                f3(rate),
            ]);
        }
    }
    println!("{t}");
    println!("expected shape: wayup and two-phase rows are all-zero; one-shot");
    println!("violations grow with jitter (wider reorder windows).");
}
