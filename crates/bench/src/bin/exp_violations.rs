//! E4 — transient security violations under asynchrony.
//!
//! The demo's motivation: asynchronous FlowMod delivery "may lead to
//! transient inconsistencies, such as loops or bypassed waypoints".
//! We inject probe traffic while the update executes and count, per
//! algorithm and channel-jitter level, how many probes bypassed the
//! waypoint, blackholed or looped. Round-based schedules (WayUp,
//! two-phase) must show zeros; one-shot must not.

use sdn_bench::table::{f3, Table};
use sdn_channel::config::ChannelConfig;
use sdn_sim::scenario::{run_scenario, AlgoChoice, Scenario};
use sdn_topo::gen::{self, UpdatePair};
use sdn_types::{DetRng, SimDuration};

fn fig1_pair() -> UpdatePair {
    let f = sdn_topo::builders::figure1();
    UpdatePair {
        old: f.old_route,
        new: f.new_route,
        waypoint: Some(f.waypoint),
    }
}

fn main() {
    println!("E4: transient violations during the Figure-1 update");
    println!("    2000 probes per run, probe interval 100 µs, 8 seeds aggregated\n");

    let jitters_ms = [1.0f64, 5.0, 20.0];
    let algos = [AlgoChoice::OneShot, AlgoChoice::WayUp, AlgoChoice::TwoPhase];

    let mut t = Table::new(
        "aggregated probe verdicts",
        &[
            "algorithm",
            "jitter ms",
            "probes",
            "bypassed wp",
            "blackholed",
            "looped",
            "violation rate",
        ],
    );

    for algo in algos {
        for &jit in &jitters_ms {
            let mut total = 0u64;
            let mut bypass = 0u64;
            let mut bh = 0u64;
            let mut lp = 0u64;
            for seed in 0..8u64 {
                let mut sc = Scenario::new(format!("{algo}"), fig1_pair(), algo)
                    .with_channel(ChannelConfig::jittery(SimDuration::from_millis_f64(jit)))
                    .with_seed(31 * seed + 7);
                sc.inject_interval = SimDuration::from_micros(100);
                sc.inject_count = 2000;
                sc.verify = false;
                let out = run_scenario(&sc).expect("runs");
                let v = out.sim.violations;
                total += v.total;
                bypass += v.waypoint_bypasses;
                bh += v.blackholes;
                lp += v.loops;
            }
            let rate = (bypass + bh + lp) as f64 / total as f64;
            t.row(vec![
                algo.name().to_string(),
                format!("{jit}"),
                total.to_string(),
                bypass.to_string(),
                bh.to_string(),
                lp.to_string(),
                f3(rate),
            ]);
        }
    }
    println!("{t}");
    println!("expected shape: wayup and two-phase rows are all-zero; one-shot");
    println!("violations grow with jitter (wider reorder windows).\n");

    // -- datacenter scale: fat-tree flow batches ------------------------
    // The same measurement against the simulated data plane on k=8
    // fat-tree inter-pod re-routes (mixed core/uplink, some
    // waypointed), not just the Figure-1 topology. The "safe" policy
    // picks per flow: WayUp where a waypoint must hold, slf-greedy
    // (strong loop freedom) elsewhere — all-zero is the expected row.
    let k = 8u64;
    let n_flows = 24usize;
    let mut tf = Table::new(
        "fat-tree batch (k=8, 24 inter-pod re-routes, 5 ms jitter, 2 seeds)",
        &[
            "policy",
            "probes",
            "bypassed wp",
            "blackholed",
            "looped",
            "violation rate",
        ],
    );
    for policy in ["safe (wayup/slf)", "one-shot"] {
        let mut total = 0u64;
        let mut bypass = 0u64;
        let mut bh = 0u64;
        let mut lp = 0u64;
        for seed in 0..2u64 {
            let mut rng = DetRng::new(0xfa7 + seed);
            for (i, pair) in gen::fat_tree_flows(k, n_flows, &mut rng)
                .into_iter()
                .enumerate()
            {
                let algo = match policy {
                    "one-shot" => AlgoChoice::OneShot,
                    _ if pair.waypoint.is_some() => AlgoChoice::WayUp,
                    _ => AlgoChoice::SlfGreedy,
                };
                let mut sc = Scenario::new(format!("ft-{i}"), pair, algo)
                    .with_channel(ChannelConfig::jittery(SimDuration::from_millis(5)))
                    .with_seed(97 * seed + i as u64);
                sc.inject_interval = SimDuration::from_micros(200);
                sc.inject_count = 400;
                sc.verify = false;
                let out = run_scenario(&sc).expect("runs");
                let v = out.sim.violations;
                total += v.total;
                bypass += v.waypoint_bypasses;
                bh += v.blackholes;
                lp += v.loops;
            }
        }
        let rate = (bypass + bh + lp) as f64 / total as f64;
        tf.row(vec![
            policy.to_string(),
            total.to_string(),
            bypass.to_string(),
            bh.to_string(),
            lp.to_string(),
            f3(rate),
        ]);
        if policy != "one-shot" {
            assert_eq!(
                bypass + bh + lp,
                0,
                "safe policy must be violation-free at datacenter scale"
            );
        }
    }
    println!("{tf}");
    println!("expected shape: the safe per-flow policy stays all-zero at fat-tree");
    println!("scale; one-shot races blackhole on uplink re-routes (disjoint");
    println!("detours) and bypass waypoints on core re-routes.");
}
