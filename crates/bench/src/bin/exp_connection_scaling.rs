//! E8 — live-transport connection scaling.
//!
//! The thread-per-connection loopback transport topped out where the
//! OS stopped handing out threads; the readiness-driven
//! [`EventLoopTransport`] multiplexes every switch connection over one
//! poller and a small worker pool. This experiment sweeps the number
//! of concurrent switch connections (100 → 4096) and measures, per
//! tier, wall-clock barrier round-trip latency through the full stack:
//! OpenFlow 1.0 wire encoding, per-connection frame reassembly, fault
//! planning, switch processing, and reply decode.
//!
//! Two phases per tier:
//!
//! * **waves** — one FlowMod + one barrier to *every* connection at
//!   once, waiting for every reply: aggregate throughput under a full
//!   burst (`wave_makespan`). Burst latency necessarily grows with
//!   the burst, so this is a throughput record, not the latency bar.
//! * **probes** — a fixed window of [`WINDOW`] in-flight barriers
//!   round-robined across all `n` connections: per-connection latency
//!   at constant offered load while the connection *count* grows.
//!   This is where idle-connection overhead (codec state, timer heap,
//!   routing maps) would show up, and the p50/p99 records come from.
//!
//! Self-asserts the PR-6 acceptance bar: the transport sustains the
//! largest tier (every wave barrier answered), and its probe-phase
//! p99 barrier RTT stays within 3× of the 128-connection tier (plus
//! a small floor — these are wall-clock microseconds on shared
//! runners).
//!
//! Flags: `--tier small` (CI smoke sizes), `--json` (write
//! `BENCH_PR6.json`), `--json-out PATH`.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use sdn_bench::stats::percentile;
use sdn_bench::table::{f2, Table};
use sdn_bench::Export;
use sdn_channel::config::ChannelConfig;
use sdn_channel::{EventLoopConfig, EventLoopTransport, LiveTransport};
use sdn_openflow::flow::FlowMatch;
use sdn_openflow::messages::{Envelope, FlowMod, FlowModCommand, OfMessage};
use sdn_switch::SoftSwitch;
use sdn_types::{DpId, HostId, SimDuration, Xid};

const WAVES: usize = 3; // first is warm-up, discarded
const WINDOW: usize = 64; // in-flight barriers during the probe phase
const PROBES: usize = 4096; // probe-phase samples per tier
const BASELINE_TIER: usize = 128;

/// Event-loop worker count: `SDN_BENCH_WORKERS` if set, else sized to
/// the machine (half the cores, clamped to [2, 8] so a 128-core runner
/// doesn't drown the poller and a 1-core box still overlaps I/O).
fn worker_count() -> usize {
    if let Ok(v) = std::env::var("SDN_BENCH_WORKERS") {
        return v
            .parse()
            .ok()
            .filter(|&w| w >= 1)
            .unwrap_or_else(|| panic!("SDN_BENCH_WORKERS must be a positive integer, got {v:?}"));
    }
    let cores = std::thread::available_parallelism().map_or(4, usize::from);
    (cores / 2).clamp(2, 8)
}

fn flowmod() -> OfMessage {
    OfMessage::FlowMod(FlowMod {
        command: FlowModCommand::Add,
        priority: 100,
        matcher: FlowMatch::dst_host(HostId(2)),
        actions: vec![],
        cookie: 8,
    })
}

struct TierResult {
    p50_ms: f64,
    p99_ms: f64,
    wave_ms: f64,
}

/// One tier: `n` connections, `WAVES` full waves, every barrier
/// answered or panic (the transport failed to sustain the tier).
fn run_tier(n: usize) -> TierResult {
    let switches: Vec<SoftSwitch> = (1..=n as u64)
        .map(|i| SoftSwitch::new(DpId(i), 4))
        .collect();
    // Zero simulated delay and no sleeping: the measurement is the
    // transport's own overhead, not the fault model's.
    let transport = EventLoopTransport::spawn_with(
        switches,
        ChannelConfig::ideal(SimDuration::ZERO),
        42,
        EventLoopConfig {
            workers: worker_count(),
            time_scale: 0.0,
        },
    );
    let mut xid = 0u32;

    // -- wave phase: full burst to every connection ---------------------
    let mut wave_ms: Vec<f64> = Vec::new();
    for wave in 0..WAVES {
        let mut outstanding: BTreeMap<(DpId, Xid), ()> = BTreeMap::new();
        let wave_start = Instant::now();
        for i in 1..=n as u64 {
            let dp = DpId(i);
            xid += 1;
            transport
                .send(dp, &Envelope::new(Xid(xid), flowmod()))
                .unwrap();
            xid += 1;
            outstanding.insert((dp, Xid(xid)), ());
            transport
                .send(dp, &Envelope::new(Xid(xid), OfMessage::BarrierRequest))
                .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        while !outstanding.is_empty() {
            assert!(
                Instant::now() < deadline,
                "tier {n}: {} barriers unanswered after 60 s",
                outstanding.len()
            );
            let Some(reply) = transport.recv_timeout(Duration::from_millis(5)) else {
                continue;
            };
            if reply.env.msg == OfMessage::BarrierReply {
                outstanding.remove(&(reply.dpid, reply.env.xid));
            }
        }
        if wave > 0 {
            wave_ms.push(wave_start.elapsed().as_secs_f64() * 1_000.0);
        }
    }

    // -- probe phase: fixed in-flight window over all connections -------
    let mut rtts_ms: Vec<f64> = Vec::new();
    let mut pending: BTreeMap<(DpId, Xid), Instant> = BTreeMap::new();
    let mut sent = 0usize;
    let mut next_dp = 0u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while rtts_ms.len() < PROBES {
        assert!(
            Instant::now() < deadline,
            "tier {n}: probe phase stalled at {}/{PROBES}",
            rtts_ms.len()
        );
        while sent < PROBES && pending.len() < WINDOW {
            next_dp = next_dp % n as u64 + 1;
            xid += 1;
            let key = (DpId(next_dp), Xid(xid));
            pending.insert(key, Instant::now());
            transport
                .send(key.0, &Envelope::new(key.1, OfMessage::BarrierRequest))
                .unwrap();
            sent += 1;
        }
        let Some(reply) = transport.recv_timeout(Duration::from_millis(5)) else {
            continue;
        };
        if reply.env.msg != OfMessage::BarrierReply {
            continue;
        }
        if let Some(at) = pending.remove(&(reply.dpid, reply.env.xid)) {
            rtts_ms.push(at.elapsed().as_secs_f64() * 1_000.0);
        }
    }
    transport.shutdown();
    TierResult {
        p50_ms: percentile(&rtts_ms, 50.0),
        p99_ms: percentile(&rtts_ms, 99.0),
        wave_ms: wave_ms.iter().sum::<f64>() / wave_ms.len() as f64,
    }
}

struct Record {
    workload: &'static str,
    n: u64,
    ms: f64,
}

fn main() {
    let mut tier_small = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tier" => {
                let t = args.next().expect("--tier needs small|full");
                tier_small = t == "small";
            }
            "--json" => json_path = Some("BENCH_PR6.json".to_string()),
            "--json-out" => json_path = Some(args.next().expect("--json-out needs a path")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: exp_connection_scaling [--tier small|full] [--json | --json-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    println!("E8: connection scaling over the readiness-driven live transport");
    println!("    FlowMod + barrier to every connection per wave; wall-clock RTT\n");

    let sizes: &[usize] = if tier_small {
        &[100, BASELINE_TIER, 256]
    } else {
        &[100, BASELINE_TIER, 256, 512, 1024, 2048, 4096]
    };

    let mut t = Table::new(
        "barrier RTT vs concurrent connections",
        &["conns", "p50 ms", "p99 ms", "wave ms"],
    );
    let mut records: Vec<Record> = Vec::new();
    let mut by_tier: BTreeMap<usize, TierResult> = BTreeMap::new();
    for &n in sizes {
        let r = run_tier(n);
        t.row(vec![
            n.to_string(),
            f2(r.p50_ms),
            f2(r.p99_ms),
            f2(r.wave_ms),
        ]);
        records.push(Record {
            workload: "barrier_rtt_p50",
            n: n as u64,
            ms: r.p50_ms,
        });
        records.push(Record {
            workload: "barrier_rtt_p99",
            n: n as u64,
            ms: r.p99_ms,
        });
        records.push(Record {
            workload: "wave_makespan",
            n: n as u64,
            ms: r.wave_ms,
        });
        by_tier.insert(n, r);
    }
    println!("{t}");

    // --- acceptance bar -------------------------------------------------
    // p99 at the largest tier within 3x of the 128-connection tier,
    // with a 2 ms floor: at µs-scale RTTs a single scheduler hiccup on
    // a shared runner would otherwise dominate the ratio.
    let base = &by_tier[&BASELINE_TIER];
    let (&top_n, top) = by_tier.iter().next_back().expect("at least one tier");
    let budget = (3.0 * base.p99_ms).max(base.p99_ms + 2.0);
    assert!(
        top.p99_ms <= budget,
        "p99 at {top_n} connections ({:.3} ms) exceeds 3x the \
         {BASELINE_TIER}-connection tier ({:.3} ms)",
        top.p99_ms,
        base.p99_ms
    );
    println!(
        "acceptance: sustained {top_n} connections; p99 {:.3} ms vs {:.3} ms \
         at {BASELINE_TIER} (<= 3x + floor required)",
        top.p99_ms, base.p99_ms
    );

    if let Some(path) = json_path {
        let mut export = Export::new("connection_scaling");
        for r in &records {
            export.push(sdn_bench::Record::new(r.workload, "event_loop", r.n, r.ms));
        }
        println!("{}", export.write(&path));
    }
}
