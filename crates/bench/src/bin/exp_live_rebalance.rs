//! E11 — live shard rebalancing under load.
//!
//! PR 9's migration protocol claims a switch seat can move between
//! shards while updates execute, at no observable cost to the data
//! plane: work touching the migrating switch parks behind the fence,
//! the seat (resync shadow, RTO entries, touch counters, quarantine,
//! journal baseline) carries over, and parked work releases against
//! the new owner. This experiment prices that claim on the simulated
//! data plane:
//!
//! * **pause** — per-migration time from the operator's request
//!   ([`FaultKind::MigrateSeat`]) to the seat landing on the
//!   destination shard, observed by stepping the world in 50 µs
//!   slices and watching the `migrating` list in the status report
//!   drain (p50/p99 over the batch of moves);
//! * **makespan delta** — workload completion time with the
//!   migrations vs the identical run without them: the end-to-end tax
//!   of rebalancing mid-flight.
//!
//! All timing is virtual (deterministic), so the exported records are
//! noise-free. Self-asserts the PR-9 acceptance bar: every requested
//! migration commits (no aborts), zero transient violations and a
//! rule-for-rule clean audit in both runs, the final `migrating` list
//! is empty, and every pause is bounded by one second of virtual
//! time.
//!
//! Flags: `--tier small` (CI smoke sizes), `--json` (write
//! `BENCH_PR9.json`), `--json-out PATH`.

use std::collections::BTreeMap;

use sdn_bench::stats::percentile;
use sdn_bench::table::{f2, f3, Table};
use sdn_bench::Export;
use sdn_channel::config::ChannelConfig;
use sdn_ctrl::compile::{compile_schedule, initial_flowmods, CompiledUpdate, FlowSpec};
use sdn_ctrl::executor::ExecConfig;
use sdn_ctrl::runtime::{FabricConfig, RuntimeConfig, SubmitRequest};
use sdn_sim::chaos::FaultKind;
use sdn_sim::report::SimReport;
use sdn_sim::world::{World, WorldConfig};
use sdn_topo::gen::{self, UpdatePair};
use sdn_types::{DpId, SimDuration, SimTime};
use update_core::algorithms::{SlfGreedy, UpdateScheduler};
use update_core::model::UpdateInstance;

const FLOW_LEN: u64 = 8;
const SLICE_US: u64 = 50;

/// `n` switch-disjoint reversal flows.
fn disjoint_flows(n: usize) -> Vec<UpdatePair> {
    (0..n)
        .map(|i| gen::shift(&gen::reversal(FLOW_LEN), (i as u64) * (FLOW_LEN + 2)))
        .collect()
}

/// Outage-tolerant runtime tuning (mirrors the chaos experiments).
fn patient_runtime() -> RuntimeConfig {
    RuntimeConfig {
        exec: ExecConfig {
            barrier_timeout: SimDuration::from_millis(20),
            max_attempts: 60,
            flowmod_acks: false,
        },
        max_active: 32,
        queue_capacity: 64,
        ..RuntimeConfig::default()
    }
}

/// Build the world, submit the whole batch at t=0 and start probes.
fn loaded_world(pairs: &[UpdatePair], shards: u32) -> World {
    let topo = gen::materialize_batch(pairs);
    let cfg = WorldConfig {
        channel: ChannelConfig::lan(),
        seed: 2916,
        ..WorldConfig::default()
    };
    let mut world = World::builder(topo.clone())
        .config(cfg)
        .fabric(FabricConfig {
            shards,
            runtime: patient_runtime(),
            journal: true,
            ..FabricConfig::default()
        })
        .build();
    let mut compiled: Vec<CompiledUpdate> = Vec::new();
    for (i, pair) in pairs.iter().enumerate() {
        let (src, dst) = gen::batch_hosts(i);
        let spec = FlowSpec { src, dst };
        let inst = UpdateInstance::new(pair.old.clone(), pair.new.clone(), pair.waypoint).unwrap();
        let sched = SlfGreedy::default().schedule(&inst).expect("schedulable");
        world.install_initial(&initial_flowmods(&topo, &pair.old, &spec).unwrap());
        compiled.push(compile_schedule(&topo, &inst, &sched, &spec).unwrap());
    }
    for c in compiled {
        world
            .submit(SubmitRequest::new(c))
            .expect("fabric admits the batch");
    }
    for (i, _) in pairs.iter().enumerate() {
        let (src, dst) = gen::batch_hosts(i);
        world.plan_injection(src, dst, SimDuration::from_micros(500), 100, SimTime::ZERO);
    }
    world
}

/// The middle hop of each of the first `k` flows — busy switches, so
/// each migration genuinely contends with in-flight work.
fn migration_targets(pairs: &[UpdatePair], k: usize, shards: u32) -> Vec<(SimTime, DpId, u32)> {
    pairs
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, p)| {
            let hops = p.old.hops();
            let dp = hops[hops.len() / 2];
            let to = (dp.0 as u32 % shards + 1) % shards;
            let at = SimTime::ZERO + SimDuration::from_micros(500 + 400 * i as u64);
            (at, dp, to)
        })
        .collect()
}

/// Makespan (t=0 submission → last completion) in virtual ms.
fn makespan_ms(r: &SimReport) -> f64 {
    r.updates
        .iter()
        .filter_map(|u| u.completed)
        .map(|t| t.as_millis_f64())
        .fold(0.0, f64::max)
}

struct RebalanceOutcome {
    report: SimReport,
    /// Per-migration request → seat-landed latency, virtual ms, in
    /// request order.
    pauses_ms: Vec<f64>,
    migrations: u64,
    migration_aborts: u64,
    left_migrating: usize,
    audit_clean: bool,
}

/// Run the workload with `migs` scheduled, stepping the world in
/// [`SLICE_US`] slices to observe each seat landing, then draining to
/// quiescence.
fn run_rebalance(
    pairs: &[UpdatePair],
    shards: u32,
    migs: &[(SimTime, DpId, u32)],
) -> RebalanceOutcome {
    let mut world = loaded_world(pairs, shards);
    for &(at, dp, to) in migs {
        world.schedule_fault(at, FaultKind::MigrateSeat { dp, to });
    }
    let slice = SimDuration::from_micros(SLICE_US);
    let guard = SimTime::ZERO + SimDuration::from_secs(10);
    let horizon = SimTime::ZERO + SimDuration::from_secs(3600);
    let mut landed: BTreeMap<DpId, SimTime> = BTreeMap::new();
    let mut t = SimTime::ZERO;
    // step while any migration is requested-but-unobserved as landed
    while landed.len() < migs.len() && t < guard {
        t += slice;
        world.run(t);
        let migrating = world.status().migrating;
        for &(at, dp, _) in migs {
            if t >= at && !migrating.contains(&dp) {
                landed.entry(dp).or_insert(t);
            }
        }
    }
    let report = world.run(horizon);
    let pauses_ms = migs
        .iter()
        .map(|&(at, dp, _)| {
            let end = landed.get(&dp).copied().unwrap_or(guard);
            (end - at).as_millis_f64()
        })
        .collect();
    let stats = world.runtime().stats();
    RebalanceOutcome {
        report,
        pauses_ms,
        migrations: stats.migrations,
        migration_aborts: stats.migration_aborts,
        left_migrating: world.status().migrating.len(),
        audit_clean: world.audit().is_clean(),
    }
}

struct Record {
    workload: &'static str,
    algo: String,
    n: u64,
    ms: f64,
}

fn main() {
    let mut tier_small = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tier" => {
                let t = args.next().expect("--tier needs small|full");
                tier_small = t == "small";
            }
            "--json" => json_path = Some("BENCH_PR9.json".to_string()),
            "--json-out" => json_path = Some(args.next().expect("--json-out needs a path")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: exp_live_rebalance [--tier small|full] [--json | --json-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let (n, k): (usize, usize) = if tier_small { (8, 4) } else { (16, 8) };
    let shards = 4u32;
    let pairs = disjoint_flows(n);
    let migs = migration_targets(&pairs, k, shards);

    println!("E11: live shard rebalancing under load");
    println!(
        "    {n} switch-disjoint {FLOW_LEN}-hop flows over {shards} shards; \
         {k} seat migrations of mid-path switches starting 0.5 ms in; \
         virtual time, {SLICE_US} µs observation slices\n"
    );

    // identical workload, no migrations — the makespan baseline
    let base = run_rebalance(&pairs, shards, &[]);
    let live = run_rebalance(&pairs, shards, &migs);

    for (name, out, expect_migrations) in
        [("baseline", &base, 0u64), ("rebalance", &live, k as u64)]
    {
        let done = out
            .report
            .updates
            .iter()
            .filter(|u| u.completed.is_some())
            .count();
        assert_eq!(done, n, "{name}: every update must commit");
        assert!(
            !out.report.violations.any(),
            "{name}: transient violations: {}",
            out.report.violations
        );
        assert!(out.audit_clean, "{name}: dirty audit");
        assert_eq!(
            out.migrations, expect_migrations,
            "{name}: every requested migration must commit"
        );
        assert_eq!(out.migration_aborts, 0, "{name}: no migration may abort");
        assert_eq!(out.left_migrating, 0, "{name}: no migration may hang");
    }

    let base_ms = makespan_ms(&base.report);
    let live_ms = makespan_ms(&live.report);
    let p50 = percentile(&live.pauses_ms, 50.0);
    let p99 = percentile(&live.pauses_ms, 99.0);
    let worst = live.pauses_ms.iter().copied().fold(0.0, f64::max);
    assert!(
        worst < 1000.0,
        "every pause must be bounded (worst {worst:.2} ms)"
    );

    let mut t = Table::new(
        "seat-migration pause and workload cost",
        &[
            "migrations",
            "pause p50 ms",
            "pause p99 ms",
            "makespan ms",
            "delta ms",
        ],
    );
    t.row(vec![
        format!("{}", live.migrations),
        f3(p50),
        f3(p99),
        f2(live_ms),
        f2(live_ms - base_ms),
    ]);
    println!("{t}");
    println!(
        "acceptance: {k}/{k} migrations committed, 0 aborted, pauses bounded \
         (worst {worst:.2} ms); both runs violation-free with clean audits"
    );

    if let Some(path) = json_path {
        let records = [
            Record {
                workload: "live_rebalance",
                algo: "pause_p50".into(),
                n: shards as u64,
                ms: p50,
            },
            Record {
                workload: "live_rebalance",
                algo: "pause_p99".into(),
                n: shards as u64,
                ms: p99,
            },
            Record {
                workload: "live_rebalance",
                algo: "makespan_base".into(),
                n: shards as u64,
                ms: base_ms,
            },
            Record {
                workload: "live_rebalance",
                algo: "makespan_live".into(),
                n: shards as u64,
                ms: live_ms,
            },
        ];
        let mut export = Export::new("live_rebalance");
        for r in &records {
            export.push(sdn_bench::Record::new(
                r.workload,
                r.algo.clone(),
                r.n,
                r.ms,
            ));
        }
        println!("{}", export.write(&path));
    }
}
