//! E5 — what barrier-based rounds cost.
//!
//! The demo's mechanism: each round ends with barrier request/reply
//! ("the barrier messages are utilized to ensure reliable network
//! updates"). This experiment decomposes the update time into
//! per-round durations, shows how total time scales with the number of
//! rounds (same channel, different schedulers), and how loss-driven
//! barrier retransmissions stretch rounds without breaking them.

use sdn_bench::stats::Summary;
use sdn_bench::table::{f2, Table};
use sdn_channel::config::ChannelConfig;
use sdn_sim::scenario::{run_scenario, AlgoChoice, Scenario};
use sdn_topo::gen::UpdatePair;
use sdn_types::SimDuration;

fn fig1_pair() -> UpdatePair {
    let f = sdn_topo::builders::figure1();
    UpdatePair {
        old: f.old_route,
        new: f.new_route,
        waypoint: Some(f.waypoint),
    }
}

fn main() {
    println!("E5: barrier round overhead (Figure-1 workload)\n");

    // --- per-round decomposition for WayUp ----------------------------
    let mut sc = Scenario::new("wayup", fig1_pair(), AlgoChoice::WayUp)
        .with_channel(ChannelConfig::jittery(SimDuration::from_millis(5)))
        .with_seed(99);
    sc.inject_count = 0;
    sc.verify = false;
    let out = run_scenario(&sc).expect("runs");
    let update = &out.sim.updates[0];
    let mut t1 = Table::new(
        "WayUp round decomposition (mean 5 ms exponential jitter)",
        &["round", "switches", "duration ms", "share %"],
    );
    let total = update.duration().unwrap().as_millis_f64();
    for (i, rt) in update.rounds.iter().enumerate() {
        let d = rt
            .completed
            .unwrap()
            .saturating_since(rt.started)
            .as_millis_f64();
        t1.row(vec![
            (i + 1).to_string(),
            out.schedule.rounds[i].len().to_string(),
            f2(d),
            f2(100.0 * d / total),
        ]);
    }
    println!("{t1}");

    // --- time vs number of rounds across schedulers -------------------
    let mut t2 = Table::new(
        "update time vs rounds (same channel, mean over 10 seeds)",
        &["algorithm", "rounds", "update ms", "ms per round"],
    );
    for algo in [
        AlgoChoice::OneShot,
        AlgoChoice::Peacock,
        AlgoChoice::WayUp,
        AlgoChoice::TwoPhase,
        AlgoChoice::SlfGreedy,
    ] {
        let mut times = Vec::new();
        let mut rounds = 0;
        for seed in 0..10u64 {
            let mut sc = Scenario::new(format!("{algo}"), fig1_pair(), algo)
                .with_channel(ChannelConfig::jittery(SimDuration::from_millis(5)))
                .with_seed(500 + seed);
            sc.inject_count = 0;
            sc.verify = false;
            let out = run_scenario(&sc).expect("runs");
            rounds = out.schedule.round_count();
            if let Some(d) = out.update_time() {
                times.push(d.as_millis_f64());
            }
        }
        let mean = Summary::of(&times).mean;
        t2.row(vec![
            algo.name().to_string(),
            rounds.to_string(),
            f2(mean),
            f2(mean / rounds as f64),
        ]);
    }
    println!("{t2}");

    // --- loss sensitivity: retransmissions keep rounds reliable -------
    let mut t3 = Table::new(
        "loss sensitivity (WayUp, LAN delays, mean over 10 seeds)",
        &["drop %", "update ms", "max attempts/round", "completed"],
    );
    for drop in [0.0f64, 0.05, 0.10, 0.20, 0.30] {
        let mut times = Vec::new();
        let mut max_attempts = 0u32;
        let mut completed = 0u32;
        for seed in 0..10u64 {
            let mut sc = Scenario::new("loss", fig1_pair(), AlgoChoice::WayUp)
                .with_channel(ChannelConfig::lossy(drop))
                .with_seed(900 + seed);
            sc.inject_count = 0;
            sc.verify = false;
            let out = run_scenario(&sc).expect("runs");
            let u = &out.sim.updates[0];
            if let Some(d) = u.duration() {
                times.push(d.as_millis_f64());
                completed += 1;
            }
            max_attempts = max_attempts.max(u.rounds.iter().map(|r| r.attempts).max().unwrap_or(1));
        }
        t3.row(vec![
            format!("{:.0}", drop * 100.0),
            f2(Summary::of(&times).mean),
            max_attempts.to_string(),
            format!("{completed}/10"),
        ]);
    }
    println!("{t3}");
    println!("expected shape: time grows with rounds (each round pays ≥ one");
    println!("barrier RTT) and with loss (timeout-driven retransmissions),");
    println!("but every update completes — the demo's 'reliable updates'.");
}
