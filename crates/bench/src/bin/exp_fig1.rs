//! E1 — the paper's Figure 1, end to end.
//!
//! Builds the 12-switch topology (h1@s1, h2@s12, waypoint s3), computes
//! the WayUp schedule for the solid→dashed policy change, verifies
//! every transient state, executes the update over the asynchronous
//! channel with probe traffic flowing, and prints the round schedule,
//! per-round barrier timings and the per-packet verdicts. A one-shot
//! run on the same scenario shows what the scheduling prevents.

use sdn_bench::table::{f2, Table};
use sdn_channel::config::ChannelConfig;
use sdn_ctrl::compile::{compile_schedule, initial_flowmods, FlowSpec};
use sdn_sim::world::{World, WorldConfig};
use sdn_topo::builders::figure1;
use sdn_topo::dot::{render, DotStyle};
use sdn_types::{SimDuration, SimTime};
use update_core::algorithms::{OneShot, UpdateScheduler, WayUp};
use update_core::checker::verify_schedule;
use update_core::metrics::ScheduleStats;
use update_core::model::UpdateInstance;
use update_core::properties::PropertySet;

fn main() {
    let f = figure1();
    println!("E1: Figure 1 — 12 OVS switches, h1@s1, h2@s12, waypoint s3");
    println!("  old (solid):  {}", f.old_route);
    println!("  new (dashed): {}", f.new_route);
    println!();

    let inst = UpdateInstance::new(f.old_route.clone(), f.new_route.clone(), Some(f.waypoint))
        .expect("figure 1 is a valid instance");
    println!(
        "  crossing switches: {:?} (crossing-free ⇒ rule-replacement WayUp applies)",
        inst.crossing_nodes()
    );

    // --- the WayUp schedule + static verification --------------------
    let schedule = WayUp::default().schedule(&inst).expect("schedulable");
    println!("\n{schedule}");
    println!("  stats: {}", ScheduleStats::of(&schedule));
    let report = verify_schedule(&inst, &schedule, PropertySet::transiently_secure());
    println!("  static transient verification: {report}");
    assert!(report.is_ok(), "Figure 1 schedule must verify");

    // --- execute over the asynchronous channel with live traffic -----
    let spec = FlowSpec {
        src: f.h1,
        dst: f.h2,
    };
    let mut results = Table::new(
        "Figure-1 execution under exponential control-channel jitter (mean 5 ms)",
        &[
            "algorithm",
            "rounds",
            "update ms",
            "probes",
            "delivered",
            "bypassed wp",
            "blackholed",
            "looped",
        ],
    );

    for (name, schedule) in [
        ("wayup", WayUp::default().schedule(&inst).unwrap()),
        ("one-shot", OneShot.schedule(&inst).unwrap()),
    ] {
        let cfg = WorldConfig {
            channel: ChannelConfig::jittery(SimDuration::from_millis(5)),
            seed: 2016,
            ..WorldConfig::default()
        };
        let mut world = World::new(f.topo.clone(), cfg);
        world.set_waypoint(Some(f.waypoint));
        world.install_initial(&initial_flowmods(&f.topo, &f.old_route, &spec).unwrap());
        let compiled = compile_schedule(&f.topo, &inst, &schedule, &spec).unwrap();
        let rounds = compiled.round_count();
        world.enqueue_update(compiled);
        // the demo's REST "interval": probes every 100 µs during the update
        world.plan_injection(
            f.h1,
            f.h2,
            SimDuration::from_micros(100),
            2000,
            SimTime::ZERO,
        );
        let sim = world.run(SimTime::ZERO + SimDuration::from_secs(600));
        let update = &sim.updates[0];
        let v = sim.violations;
        results.row(vec![
            name.to_string(),
            rounds.to_string(),
            update
                .duration()
                .map(|d| f2(d.as_millis_f64()))
                .unwrap_or_else(|| "failed".into()),
            v.total.to_string(),
            v.delivered.to_string(),
            v.waypoint_bypasses.to_string(),
            v.blackholes.to_string(),
            v.loops.to_string(),
        ]);

        if name == "wayup" {
            let mut per_round = Table::new(
                "WayUp per-round barrier timings",
                &[
                    "round",
                    "dispatched ms",
                    "completed ms",
                    "duration ms",
                    "attempts",
                ],
            );
            for t in &update.rounds {
                let done = t.completed.expect("completed");
                per_round.row(vec![
                    (t.round + 1).to_string(),
                    f2(t.started.as_millis_f64()),
                    f2(done.as_millis_f64()),
                    f2(done.saturating_since(t.started).as_millis_f64()),
                    t.attempts.to_string(),
                ]);
            }
            println!("{per_round}");
        }
    }
    println!("{results}");

    println!("Graphviz rendering (solid = old, dashed = new, filled = waypoint):\n");
    println!(
        "{}",
        render(
            &f.topo,
            &DotStyle {
                old_route: Some(&f.old_route),
                new_route: Some(&f.new_route),
                waypoint: Some(f.waypoint),
            }
        )
    );
}
