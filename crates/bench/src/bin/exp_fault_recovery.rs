//! E9 — fault recovery: convergence under control-plane failure.
//!
//! PR-7's acceptance drill, measured. Four chaos scenarios run against
//! the concurrent runtime (adaptive RTO, resync audits, write-ahead
//! journal) in deterministic virtual time:
//!
//! * **blip** — one switch's control connection drops mid-round for a
//!   varying outage; convergence cost vs outage length;
//! * **reboot** — a switch reboots under a barrier (table wiped); the
//!   digest audit replays exactly what was lost;
//! * **crash** — the controller dies mid-flight and rebuilds itself
//!   from the journal, resuming from the last committed round;
//! * **churn** — rolling connection churn across the whole fleet
//!   (208 switches at the full tier) while every flow updates.
//!
//! Every scenario self-asserts the acceptance bar: all updates
//! complete, zero transient violations on the probe trace, zero
//! quarantines, and a rule-for-rule clean [`World::audit`]. All
//! timing is virtual, so exported records are noise-free and the
//! `bench_check` gate holds a tight line.
//!
//! Flags: `--tier small` (CI smoke sizes), `--json` (write
//! `BENCH_PR7.json`), `--json-out PATH`.

use sdn_bench::table::{f2, Table};
use sdn_bench::Export;
use sdn_channel::config::ChannelConfig;
use sdn_ctrl::compile::{compile_schedule, initial_flowmods, CompiledUpdate, FlowSpec};
use sdn_ctrl::executor::ExecConfig;
use sdn_ctrl::runtime::{ConcurrentRuntime, Journal, RuntimeConfig};
use sdn_sim::chaos::{ChaosPlan, FaultKind};
use sdn_sim::report::SimReport;
use sdn_sim::world::{World, WorldConfig};
use sdn_topo::gen::{self, UpdatePair};
use sdn_types::{DpId, SimDuration, SimTime};
use update_core::algorithms::{SlfGreedy, UpdateScheduler};
use update_core::model::UpdateInstance;

const FLOW_LEN: u64 = 8;

fn disjoint_flows(n: usize) -> Vec<UpdatePair> {
    (0..n)
        .map(|i| gen::shift(&gen::reversal(FLOW_LEN), (i as u64) * (FLOW_LEN + 2)))
        .collect()
}

/// Outage-tolerant runtime: generous attempt budget, quarantine armed.
fn runtime(journal: Journal) -> ConcurrentRuntime {
    ConcurrentRuntime::with_journal(
        RuntimeConfig {
            exec: ExecConfig {
                barrier_timeout: SimDuration::from_millis(20),
                max_attempts: 60,
                flowmod_acks: false,
            },
            max_active: 32,
            ..RuntimeConfig::default()
        },
        journal,
    )
}

/// World over `pairs` with old routes installed, all updates submitted
/// at t=0, probes planned on every flow.
fn world_for(pairs: &[UpdatePair], seed: u64, journal: Journal, probes: u64) -> World {
    let topo = gen::materialize_batch(pairs);
    let cfg = WorldConfig {
        channel: ChannelConfig::lan(),
        seed,
        ..WorldConfig::default()
    };
    let mut world = World::builder(topo.clone())
        .config(cfg)
        .runtime_handle(Box::new(runtime(journal)))
        .build();
    let mut compiled: Vec<CompiledUpdate> = Vec::new();
    for (i, pair) in pairs.iter().enumerate() {
        let (src, dst) = gen::batch_hosts(i);
        let spec = FlowSpec { src, dst };
        let inst = UpdateInstance::new(pair.old.clone(), pair.new.clone(), pair.waypoint).unwrap();
        let sched = SlfGreedy::default().schedule(&inst).unwrap();
        world.install_initial(&initial_flowmods(&topo, &pair.old, &spec).unwrap());
        compiled.push(compile_schedule(&topo, &inst, &sched, &spec).unwrap());
    }
    for c in compiled {
        world.enqueue_update(c);
    }
    for (i, _) in pairs.iter().enumerate() {
        let (src, dst) = gen::batch_hosts(i);
        world.plan_injection(
            src,
            dst,
            SimDuration::from_micros(500),
            probes,
            SimTime::ZERO,
        );
    }
    world
}

fn makespan_ms(r: &SimReport) -> f64 {
    r.updates
        .iter()
        .filter_map(|u| u.completed)
        .map(|t| t.as_millis_f64())
        .fold(0.0, f64::max)
}

/// The acceptance bar every scenario must clear.
fn accept(label: &str, w: &World, r: &SimReport) {
    assert!(
        r.updates.iter().all(|u| u.completed.is_some()),
        "{label}: every update must complete"
    );
    assert!(!r.violations.any(), "{label}: {}", r.violations);
    assert_eq!(
        r.violations.delivered, r.violations.total,
        "{label}: every probe must be delivered"
    );
    let stats = w.runtime().stats();
    assert_eq!(stats.failed, 0, "{label}: no job may fail");
    assert_eq!(
        stats.quarantined, 0,
        "{label}: no switch may be quarantined"
    );
    let audit = w.audit();
    assert!(audit.is_clean(), "{label}: audit {audit}");
    assert_eq!(audit.untracked, 0, "{label}: shadow must cover the fleet");
}

struct Record {
    workload: &'static str,
    algo: &'static str,
    n: u64,
    ms: f64,
}

fn main() {
    let mut tier_small = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tier" => {
                let t = args.next().expect("--tier needs small|full");
                tier_small = t == "small";
            }
            "--json" => json_path = Some("BENCH_PR7.json".to_string()),
            "--json-out" => json_path = Some(args.next().expect("--json-out needs a path")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: exp_fault_recovery [--tier small|full] [--json | --json-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    println!("E9: convergence under control-plane failure (virtual time)");
    println!("    8-hop reversal flows, SLF-greedy schedules, LAN channel\n");

    let mut records: Vec<Record> = Vec::new();

    // --- blip: one connection drops mid-round, varying outage --------
    let outages_ms: &[u64] = if tier_small {
        &[5, 40]
    } else {
        &[5, 20, 40, 80]
    };
    let mut t = Table::new(
        "mid-round disconnect of s4 at t=2 ms (single flow)",
        &["outage ms", "makespan ms", "retransmissions", "resyncs"],
    );
    for &outage in outages_ms {
        let pairs = disjoint_flows(1);
        let mut w = world_for(&pairs, 21, Journal::Disabled, 200);
        let down = SimTime::ZERO + SimDuration::from_millis(2);
        ChaosPlan::new()
            .with(down, FaultKind::LinkDown(DpId(4)))
            .with(
                down + SimDuration::from_millis(outage),
                FaultKind::LinkUp(DpId(4)),
            )
            .apply(&mut w);
        let r = w.run(SimTime::ZERO + SimDuration::from_secs(3600));
        accept("blip", &w, &r);
        let stats = w.runtime().stats();
        assert!(stats.resyncs >= 1, "reconnect must run an audit");
        let ms = makespan_ms(&r);
        t.row(vec![
            outage.to_string(),
            f2(ms),
            stats.retransmissions.to_string(),
            stats.resyncs.to_string(),
        ]);
        records.push(Record {
            workload: "blip",
            algo: "concurrent",
            n: outage,
            ms,
        });
    }
    println!("{t}");

    // --- reboot under a barrier --------------------------------------
    let mut tr = Table::new(
        "switch reboot at t=3 ms (table wiped; digest audit repairs)",
        &["makespan ms", "resynced rules", "resyncs"],
    );
    {
        let pairs = disjoint_flows(1);
        let mut w = world_for(&pairs, 33, Journal::Disabled, 0);
        w.schedule_fault(
            SimTime::ZERO + SimDuration::from_millis(3),
            FaultKind::Reboot(DpId(4)),
        );
        let r = w.run(SimTime::ZERO + SimDuration::from_secs(3600));
        accept("reboot", &w, &r);
        let stats = w.runtime().stats();
        assert!(
            stats.resynced_rules > 0,
            "a wiped table means replayed rules"
        );
        let ms = makespan_ms(&r);
        tr.row(vec![
            f2(ms),
            stats.resynced_rules.to_string(),
            stats.resyncs.to_string(),
        ]);
        records.push(Record {
            workload: "reboot",
            algo: "concurrent",
            n: 1,
            ms,
        });
    }
    println!("{tr}");

    // --- controller crash + journal recovery -------------------------
    let crash_flows: &[usize] = if tier_small { &[2] } else { &[2, 8] };
    let mut tc = Table::new(
        "controller crash at t=3 ms, rebuilt from the write-ahead journal",
        &["flows", "makespan ms", "recoveries", "retransmissions"],
    );
    for &n in crash_flows {
        let pairs = disjoint_flows(n);
        let mut w = world_for(&pairs, 44, Journal::mem(), 100);
        w.schedule_fault(
            SimTime::ZERO + SimDuration::from_millis(3),
            FaultKind::CrashController,
        );
        let r = w.run(SimTime::ZERO + SimDuration::from_secs(3600));
        accept("crash", &w, &r);
        let stats = w.runtime().stats();
        assert_eq!(stats.recoveries, 1, "journal must rebuild the runtime");
        let ms = makespan_ms(&r);
        tc.row(vec![
            n.to_string(),
            f2(ms),
            stats.recoveries.to_string(),
            stats.retransmissions.to_string(),
        ]);
        records.push(Record {
            workload: "crash",
            algo: "concurrent",
            n: n as u64,
            ms,
        });
    }
    println!("{tc}");

    // --- rolling churn across the fleet ------------------------------
    let churn_flows: &[usize] = if tier_small { &[8] } else { &[8, 26] };
    let mut tf = Table::new(
        "rolling churn: every switch bounces once (2 ms outage) under load",
        &["flows", "switches", "makespan ms", "reconnects", "resyncs"],
    );
    for &n in churn_flows {
        let pairs = disjoint_flows(n);
        let mut w = world_for(&pairs, 77, Journal::Disabled, 40);
        let dps: Vec<DpId> = (0..n as u64)
            .flat_map(|i| (1..=FLOW_LEN).map(move |s| DpId(i * (FLOW_LEN + 2) + s)))
            .collect();
        ChaosPlan::rolling_churn(
            &dps,
            SimTime::ZERO + SimDuration::from_millis(1),
            SimDuration::from_micros(300),
            SimDuration::from_millis(2),
            7,
        )
        .apply(&mut w);
        let r = w.run(SimTime::ZERO + SimDuration::from_secs(3600));
        accept("churn", &w, &r);
        let stats = w.runtime().stats();
        assert!(
            stats.reconnects >= dps.len() as u64,
            "every switch must bounce"
        );
        assert!(
            stats.resyncs >= dps.len() as u64,
            "every reconnect must complete its audit"
        );
        if !tier_small && n == 26 {
            assert!(dps.len() >= 200, "full tier must churn >= 200 switches");
        }
        let ms = makespan_ms(&r);
        tf.row(vec![
            n.to_string(),
            dps.len().to_string(),
            f2(ms),
            stats.reconnects.to_string(),
            stats.resyncs.to_string(),
        ]);
        records.push(Record {
            workload: "churn",
            algo: "concurrent",
            n: dps.len() as u64,
            ms,
        });
    }
    println!("{tf}");

    println!(
        "acceptance: all scenarios converged to 100% intended-rule installation \
         with zero transient violations and zero quarantines"
    );

    if let Some(path) = json_path {
        let mut export = Export::new("fault_recovery");
        for r in &records {
            export.push(sdn_bench::Record::new(r.workload, r.algo, r.n, r.ms));
        }
        println!("{}", export.write(&path));
    }
}
