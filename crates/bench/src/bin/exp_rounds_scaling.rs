//! E3 — rounds vs path length: relaxed beats strong loop freedom.
//!
//! The claim the demo inherits from PODC'15 \[4\]: strong loop freedom
//! needs Θ(n) rounds in the worst case, relaxed ("weak") loop freedom
//! needs only O(log n) — Peacock's raison d'être. We scale the
//! old-route length on the reversal workload (the known SLF worst
//! case) and on random permutations, counting scheduler rounds.

use sdn_bench::stats::Summary;
use sdn_bench::table::{f2, Table};
use sdn_types::DetRng;
use update_core::algorithms::{Peacock, SlfGreedy, TwoPhaseCommit, UpdateScheduler};
use update_core::contract::Contracted;
use update_core::model::UpdateInstance;

fn main() {
    println!("E3: scheduler rounds vs old-route length n\n");

    let sizes = [4u64, 8, 16, 32, 64, 128, 256];

    // --- reversal (SLF worst case) ------------------------------------
    let mut t = Table::new(
        "reversal workload (new route = old route reversed)",
        &["n", "slf-greedy", "peacock", "two-phase", "log2(n)"],
    );
    for &n in &sizes {
        let pair = sdn_topo::gen::reversal(n);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let slf = SlfGreedy::default().schedule(&inst).unwrap().round_count();
        let pea = Peacock::default().schedule(&inst).unwrap().round_count();
        let tpc = TwoPhaseCommit.schedule(&inst).unwrap().round_count();
        t.row(vec![
            n.to_string(),
            slf.to_string(),
            pea.to_string(),
            tpc.to_string(),
            f2((n as f64).log2()),
        ]);
    }
    println!("{t}");

    // --- comb interleave (overlapping backward spans) -------------------
    let mut tc = Table::new(
        "comb workload (interleaved halves; overlapping backward jumps)",
        &["n", "slf-greedy", "peacock", "two-phase"],
    );
    for &n in &sizes {
        if n < 6 {
            continue;
        }
        let pair = sdn_topo::gen::comb(n);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let slf = SlfGreedy::default().schedule(&inst).unwrap().round_count();
        let pea = Peacock::default().schedule(&inst).unwrap().round_count();
        let tpc = TwoPhaseCommit.schedule(&inst).unwrap().round_count();
        tc.row(vec![
            n.to_string(),
            slf.to_string(),
            pea.to_string(),
            tpc.to_string(),
        ]);
    }
    println!("{tc}");

    // --- random permutations ------------------------------------------
    let mut t2 = Table::new(
        "random interior permutations (mean over 10 seeds)",
        &["n", "slf-greedy", "peacock", "backward jumps"],
    );
    for &n in &sizes {
        let mut slf_rounds = Vec::new();
        let mut pea_rounds = Vec::new();
        let mut backs = Vec::new();
        for seed in 0..10u64 {
            let mut rng = DetRng::new(seed * 7919 + n);
            let pair = sdn_topo::gen::random_permutation(n, &mut rng);
            let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
            backs.push(Contracted::of(&inst).backward_count() as f64);
            slf_rounds.push(SlfGreedy::default().schedule(&inst).unwrap().round_count() as f64);
            pea_rounds.push(Peacock::default().schedule(&inst).unwrap().round_count() as f64);
        }
        t2.row(vec![
            n.to_string(),
            f2(Summary::of(&slf_rounds).mean),
            f2(Summary::of(&pea_rounds).mean),
            f2(Summary::of(&backs).mean),
        ]);
    }
    println!("{t2}");
    println!("expected shape: slf-greedy grows ~linearly on reversals while");
    println!("peacock stays flat (relaxed loop freedom updates off-path");
    println!("switches for free); two-phase is constant but doubles rules.");
}
