//! E3 — rounds vs path length: relaxed beats strong loop freedom.
//!
//! The claim the demo inherits from PODC'15 \[4\]: strong loop freedom
//! needs Θ(n) rounds in the worst case, relaxed ("weak") loop freedom
//! needs only O(log n) — Peacock's raison d'être. We scale the
//! old-route length on the reversal workload (the known SLF worst
//! case), on rotations (tunable backward-jump overlap), on the comb
//! interleave, on random permutations and on fat-tree multi-flow
//! batches, counting scheduler rounds *and* wall-clock time — both for
//! computing each schedule (the cross-round
//! [`AdmissionProbe`](update_core::checker::AdmissionProbe) session)
//! and for re-verifying it ([`verify_schedule_incremental`]).
//! The session carries its choice graph, topological order and walk
//! caches **across rounds**, which is what makes n = 4096 reversal
//! schedules complete and verify well under a second each.
//!
//! Every record self-asserts a **scale-aware budget** ([`budget_ms`]):
//! per-n thresholds, widened (not skipped) in debug builds, so the CI
//! smoke at n = 256 and the local n = 4096 run exercise the same
//! assertion path.
//!
//! Flags:
//!
//! * `--max-n <N>` — cap the workload sizes (CI smoke uses 256, the
//!   CI regression gate 512; default 4096).
//! * `--json` — additionally write machine-readable records to
//!   `BENCH_PR3.json` so the perf trajectory is tracked across PRs;
//!   `--json-out <PATH>` writes them to PATH instead. CI's
//!   `bench-regression` job compares these records against the
//!   committed baseline via the `bench_check` binary.

use std::time::Instant;

use sdn_bench::json::Json;
use sdn_bench::stats::Summary;
use sdn_bench::table::{f2, Table};
use sdn_bench::Export;
use sdn_types::DetRng;
use update_core::algorithms::{Peacock, SlfGreedy, TwoPhaseCommit, UpdateScheduler, WayUp};
use update_core::checker::verify_schedule_incremental;
use update_core::contract::Contracted;
use update_core::model::UpdateInstance;
use update_core::properties::PropertySet;
use update_core::schedule::Schedule;

/// Per-schedule time budget in milliseconds, asserted on every record.
///
/// Scale-aware: small instances must stay fast (a blow-up at n = 256
/// fails the CI smoke), large ones get the full 1 s bar the paper-
/// scale claim is about. Debug builds are 10–40× slower and exist for
/// exploration, so the budget widens instead of the assertion
/// disappearing — one code path for every build and size.
fn budget_ms(n: u64) -> f64 {
    let release = (n as f64 / 4.0).clamp(250.0, 1000.0);
    if cfg!(debug_assertions) {
        release * 40.0
    } else {
        release
    }
}

/// One machine-readable measurement.
struct Record {
    workload: &'static str,
    algo: &'static str,
    n: u64,
    rounds: f64,
    ms: f64,
}

/// Schedule once, returning the schedule and milliseconds.
fn timed(sched: &dyn UpdateScheduler, inst: &UpdateInstance) -> (Schedule, f64) {
    let start = Instant::now();
    let s = sched.schedule(inst).expect("schedulable workload");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (s, ms)
}

/// Incrementally verify a schedule, returning milliseconds; panics on
/// a violation (every scheduler output here must verify).
fn verified(inst: &UpdateInstance, s: &Schedule, props: PropertySet) -> f64 {
    let start = Instant::now();
    let rep = verify_schedule_incremental(inst, s, props);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(rep.is_ok(), "schedule failed verification: {rep}");
    ms
}

fn main() {
    let mut max_n = 4096u64;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-n" => {
                max_n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-n needs a number");
            }
            "--json" => {
                json_path = Some("BENCH_PR3.json".to_string());
            }
            "--json-out" => {
                json_path = Some(args.next().expect("--json-out needs a path"));
            }
            other => {
                eprintln!("unknown flag {other}; usage: exp_rounds_scaling [--max-n N] [--json | --json-out PATH]");
                std::process::exit(2);
            }
        }
    }

    println!("E3: scheduler rounds, schedule time and verify time vs old-route length n\n");

    let sizes: Vec<u64> = [4u64, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    let mut records: Vec<Record> = Vec::new();

    // --- reversal (SLF worst case) ------------------------------------
    let mut t = Table::new(
        "reversal workload (new route = old route reversed)",
        &[
            "n",
            "slf-greedy",
            "slf ms",
            "verify ms",
            "peacock",
            "peacock ms",
            "verify ms",
            "two-phase",
        ],
    );
    for &n in &sizes {
        let pair = sdn_topo::gen::reversal(n);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let (slf_sched, slf_ms) = timed(&SlfGreedy::default(), &inst);
        let slf_verify_ms = verified(&inst, &slf_sched, PropertySet::loop_free_strong());
        let (pea_sched, pea_ms) = timed(&Peacock::default(), &inst);
        let pea_verify_ms = verified(&inst, &pea_sched, PropertySet::loop_free_relaxed());
        let (tpc_sched, _) = timed(&TwoPhaseCommit, &inst);
        t.row(vec![
            n.to_string(),
            slf_sched.round_count().to_string(),
            f2(slf_ms),
            f2(slf_verify_ms),
            pea_sched.round_count().to_string(),
            f2(pea_ms),
            f2(pea_verify_ms),
            tpc_sched.round_count().to_string(),
        ]);
        for (algo, rounds, ms) in [
            ("slf-greedy", slf_sched.round_count(), slf_ms),
            ("verify-slf-greedy", slf_sched.round_count(), slf_verify_ms),
            ("peacock", pea_sched.round_count(), pea_ms),
            ("verify-peacock", pea_sched.round_count(), pea_verify_ms),
        ] {
            records.push(Record {
                workload: "reversal",
                algo,
                n,
                rounds: rounds as f64,
                ms,
            });
        }
    }
    println!("{t}");

    // --- interior rotation (overlapping backward spans, tunable) -------
    let mut tr = Table::new(
        "rotation workload (interior rotated by half, k=(n-2)/2)",
        &["n", "slf-greedy", "slf ms", "peacock", "peacock ms"],
    );
    for &n in &sizes {
        if n < 8 {
            continue;
        }
        let pair = sdn_topo::gen::rotation(n, (n - 2) / 2);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let (slf_sched, slf_ms) = timed(&SlfGreedy::default(), &inst);
        let (pea_sched, pea_ms) = timed(&Peacock::default(), &inst);
        tr.row(vec![
            n.to_string(),
            slf_sched.round_count().to_string(),
            f2(slf_ms),
            pea_sched.round_count().to_string(),
            f2(pea_ms),
        ]);
        for (algo, rounds, ms) in [
            ("slf-greedy", slf_sched.round_count(), slf_ms),
            ("peacock", pea_sched.round_count(), pea_ms),
        ] {
            records.push(Record {
                workload: "rotation",
                algo,
                n,
                rounds: rounds as f64,
                ms,
            });
        }
    }
    println!("{tr}");

    // --- comb interleave (overlapping backward spans) -------------------
    let mut tc = Table::new(
        "comb workload (interleaved halves; overlapping backward jumps)",
        &[
            "n",
            "slf-greedy",
            "slf ms",
            "peacock",
            "peacock ms",
            "two-phase",
        ],
    );
    for &n in &sizes {
        if n < 6 {
            continue;
        }
        let pair = sdn_topo::gen::comb(n);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let (slf_sched, slf_ms) = timed(&SlfGreedy::default(), &inst);
        let (pea_sched, pea_ms) = timed(&Peacock::default(), &inst);
        let (tpc_sched, _) = timed(&TwoPhaseCommit, &inst);
        tc.row(vec![
            n.to_string(),
            slf_sched.round_count().to_string(),
            f2(slf_ms),
            pea_sched.round_count().to_string(),
            f2(pea_ms),
            tpc_sched.round_count().to_string(),
        ]);
        for (algo, rounds, ms) in [
            ("slf-greedy", slf_sched.round_count(), slf_ms),
            ("peacock", pea_sched.round_count(), pea_ms),
        ] {
            records.push(Record {
                workload: "comb",
                algo,
                n,
                rounds: rounds as f64,
                ms,
            });
        }
    }
    println!("{tc}");

    // --- random permutations ------------------------------------------
    let mut t2 = Table::new(
        "random interior permutations (mean over 10 seeds; 3 at n >= 2048)",
        &[
            "n",
            "slf-greedy",
            "slf ms",
            "peacock",
            "peacock ms",
            "backward jumps",
        ],
    );
    for &n in &sizes {
        let seeds = if n >= 2048 { 3 } else { 10 };
        let mut slf_rounds = Vec::new();
        let mut pea_rounds = Vec::new();
        let mut slf_ms = Vec::new();
        let mut pea_ms = Vec::new();
        let mut backs = Vec::new();
        for seed in 0..seeds {
            let mut rng = DetRng::new(seed * 7919 + n);
            let pair = sdn_topo::gen::random_permutation(n, &mut rng);
            let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
            backs.push(Contracted::of(&inst).backward_count() as f64);
            let (s, ms) = timed(&SlfGreedy::default(), &inst);
            slf_rounds.push(s.round_count() as f64);
            slf_ms.push(ms);
            let (s, ms) = timed(&Peacock::default(), &inst);
            pea_rounds.push(s.round_count() as f64);
            pea_ms.push(ms);
        }
        t2.row(vec![
            n.to_string(),
            f2(Summary::of(&slf_rounds).mean),
            f2(Summary::of(&slf_ms).mean),
            f2(Summary::of(&pea_rounds).mean),
            f2(Summary::of(&pea_ms).mean),
            f2(Summary::of(&backs).mean),
        ]);
        for (algo, rounds, ms) in [
            ("slf-greedy", &slf_rounds, &slf_ms),
            ("peacock", &pea_rounds, &pea_ms),
        ] {
            records.push(Record {
                workload: "random_permutation",
                algo,
                n,
                rounds: Summary::of(rounds).mean,
                ms: Summary::of(ms).mean,
            });
        }
    }
    println!("{t2}");

    // --- fat-tree multi-flow batches -----------------------------------
    // Datacenter-shaped throughput: n short (5-hop) inter-pod
    // re-routes through a 16-ary fat tree, mixed core re-routes
    // (shared interior, some waypointed) and uplink re-routes
    // (disjoint detours). Waypointed flows go through WayUp, the rest
    // through Peacock; the whole batch is re-verified incrementally.
    let mut tf = Table::new(
        "fat-tree multi-flow batches (k=16, inter-pod re-routes; ms per batch)",
        &["flows", "slf-greedy ms", "peacock+wayup ms", "verify ms"],
    );
    for &n in &sizes {
        if n < 64 {
            continue;
        }
        let mut rng = DetRng::new(n ^ 0xf47);
        let flows = sdn_topo::gen::fat_tree_flows(16, n as usize, &mut rng);
        let insts: Vec<UpdateInstance> = flows
            .iter()
            .map(|p| UpdateInstance::new(p.old.clone(), p.new.clone(), p.waypoint).unwrap())
            .collect();

        let start = Instant::now();
        let mut slf_rounds = 0usize;
        for inst in &insts {
            let s = SlfGreedy::default().schedule(inst).expect("schedulable");
            slf_rounds += s.round_count();
        }
        let slf_batch_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let mut mixed: Vec<Schedule> = Vec::with_capacity(insts.len());
        for inst in &insts {
            let s = if inst.waypoint().is_some() {
                WayUp::default().schedule(inst).expect("schedulable")
            } else {
                Peacock::default().schedule(inst).expect("schedulable")
            };
            mixed.push(s);
        }
        let mixed_batch_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        for (inst, s) in insts.iter().zip(&mixed) {
            let props = if inst.waypoint().is_some() {
                PropertySet::transiently_secure()
            } else {
                PropertySet::loop_free_relaxed()
            };
            let rep = verify_schedule_incremental(inst, s, props);
            assert!(rep.is_ok(), "fat-tree schedule failed verification: {rep}");
        }
        let verify_batch_ms = start.elapsed().as_secs_f64() * 1e3;

        tf.row(vec![
            n.to_string(),
            f2(slf_batch_ms),
            f2(mixed_batch_ms),
            f2(verify_batch_ms),
        ]);
        let mean_mixed_rounds =
            mixed.iter().map(|s| s.round_count()).sum::<usize>() as f64 / insts.len() as f64;
        for (algo, rounds, ms) in [
            (
                "slf-greedy",
                slf_rounds as f64 / insts.len() as f64,
                slf_batch_ms,
            ),
            ("peacock-wayup", mean_mixed_rounds, mixed_batch_ms),
            ("verify-incremental", mean_mixed_rounds, verify_batch_ms),
        ] {
            records.push(Record {
                workload: "fat_tree",
                algo,
                n,
                rounds,
                ms,
            });
        }
    }
    println!("{tf}");
    println!("expected shape: slf-greedy grows ~linearly on reversals while");
    println!("peacock stays flat (relaxed loop freedom updates off-path");
    println!("switches for free); two-phase is constant but doubles rules.");
    println!("schedule AND verify time must meet the per-n budget everywhere");
    println!("— the cross-round session (AdmissionProbe::commit_round) and the");
    println!("incremental verifier are what make n=4096 tractable.");

    // The acceptance bar this experiment guards: every schedule — and
    // every whole-schedule verification — within its scale-aware
    // budget, including the full n=4096 reversal. The CI bench smoke
    // and the bench-regression gate run this binary in release mode,
    // so a scaling regression in the cross-round session or the
    // incremental verifier fails the build; debug builds assert the
    // same budgets, widened 40×.
    for r in &records {
        let budget = budget_ms(r.n);
        assert!(
            r.ms < budget,
            "{} {} n={} took {:.1} ms (budget {budget:.0} ms)",
            r.workload,
            r.algo,
            r.n,
            r.ms
        );
    }
    for (algo, what) in [("slf-greedy", "schedule"), ("verify-slf-greedy", "verify")] {
        if let Some(r) = records
            .iter()
            .find(|r| r.workload == "reversal" && r.algo == algo && r.n == max_n.min(4096))
        {
            println!(
                "\nn={} reversal slf-greedy {what}: {:.1} ms (< {:.0} ms budget)",
                r.n,
                r.ms,
                budget_ms(r.n)
            );
        }
    }

    if let Some(path) = json_path {
        let mut export = Export::new("rounds_scaling").header("max_n", Json::Int(max_n as i64));
        for r in &records {
            export.push(
                sdn_bench::Record::new(r.workload, r.algo, r.n, r.ms)
                    .with("rounds", Json::Num(r.rounds))
                    .with("budget_ms", Json::Num(budget_ms(r.n))),
            );
        }
        println!("{}", export.write(&path));
    }
}
