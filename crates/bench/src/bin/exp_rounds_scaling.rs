//! E3 — rounds vs path length: relaxed beats strong loop freedom.
//!
//! The claim the demo inherits from PODC'15 \[4\]: strong loop freedom
//! needs Θ(n) rounds in the worst case, relaxed ("weak") loop freedom
//! needs only O(log n) — Peacock's raison d'être. We scale the
//! old-route length on the reversal workload (the known SLF worst
//! case), on rotations (tunable backward-jump overlap), on the comb
//! interleave and on random permutations, counting scheduler rounds
//! *and* wall-clock schedule time — the incremental
//! [`AdmissionProbe`](update_core::checker::AdmissionProbe) session
//! keeps the greedy schedulers tractable at n = 1024 (a reversal
//! schedule must complete well under a second).
//!
//! Flags:
//!
//! * `--max-n <N>` — cap the workload sizes (CI smoke uses 256).
//! * `--json` — additionally write machine-readable records to
//!   `BENCH_PR2.json` so the perf trajectory is tracked across PRs;
//!   `--json-out <PATH>` writes them to PATH instead.

use std::time::Instant;

use sdn_bench::json::Json;
use sdn_bench::stats::Summary;
use sdn_bench::table::{f2, Table};
use sdn_types::DetRng;
use update_core::algorithms::{Peacock, SlfGreedy, TwoPhaseCommit, UpdateScheduler};
use update_core::contract::Contracted;
use update_core::model::UpdateInstance;

/// One machine-readable measurement.
struct Record {
    workload: &'static str,
    algo: &'static str,
    n: u64,
    rounds: f64,
    ms: f64,
}

impl Record {
    fn json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::str(self.workload)),
            ("algo", Json::str(self.algo)),
            ("n", Json::Int(self.n as i64)),
            ("rounds", Json::Num(self.rounds)),
            ("ms", Json::Num(self.ms)),
        ])
    }
}

/// Schedule once, returning (rounds, milliseconds).
fn timed(sched: &dyn UpdateScheduler, inst: &UpdateInstance) -> (usize, f64) {
    let start = Instant::now();
    let s = sched.schedule(inst).expect("schedulable workload");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (s.round_count(), ms)
}

fn main() {
    let mut max_n = 1024u64;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-n" => {
                max_n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-n needs a number");
            }
            "--json" => {
                json_path = Some("BENCH_PR2.json".to_string());
            }
            "--json-out" => {
                json_path = Some(args.next().expect("--json-out needs a path"));
            }
            other => {
                eprintln!("unknown flag {other}; usage: exp_rounds_scaling [--max-n N] [--json | --json-out PATH]");
                std::process::exit(2);
            }
        }
    }

    println!("E3: scheduler rounds and schedule time vs old-route length n\n");

    let sizes: Vec<u64> = [4u64, 8, 16, 32, 64, 128, 256, 512, 1024]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    let mut records: Vec<Record> = Vec::new();

    // --- reversal (SLF worst case) ------------------------------------
    let mut t = Table::new(
        "reversal workload (new route = old route reversed)",
        &[
            "n",
            "slf-greedy",
            "slf ms",
            "peacock",
            "peacock ms",
            "two-phase",
            "log2(n)",
        ],
    );
    for &n in &sizes {
        let pair = sdn_topo::gen::reversal(n);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let (slf, slf_ms) = timed(&SlfGreedy::default(), &inst);
        let (pea, pea_ms) = timed(&Peacock::default(), &inst);
        let (tpc, _) = timed(&TwoPhaseCommit, &inst);
        t.row(vec![
            n.to_string(),
            slf.to_string(),
            f2(slf_ms),
            pea.to_string(),
            f2(pea_ms),
            tpc.to_string(),
            f2((n as f64).log2()),
        ]);
        for (algo, rounds, ms) in [("slf-greedy", slf, slf_ms), ("peacock", pea, pea_ms)] {
            records.push(Record {
                workload: "reversal",
                algo,
                n,
                rounds: rounds as f64,
                ms,
            });
        }
    }
    println!("{t}");

    // --- interior rotation (overlapping backward spans, tunable) -------
    let mut tr = Table::new(
        "rotation workload (interior rotated by half, k=(n-2)/2)",
        &["n", "slf-greedy", "slf ms", "peacock", "peacock ms"],
    );
    for &n in &sizes {
        if n < 8 {
            continue;
        }
        let pair = sdn_topo::gen::rotation(n, (n - 2) / 2);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let (slf, slf_ms) = timed(&SlfGreedy::default(), &inst);
        let (pea, pea_ms) = timed(&Peacock::default(), &inst);
        tr.row(vec![
            n.to_string(),
            slf.to_string(),
            f2(slf_ms),
            pea.to_string(),
            f2(pea_ms),
        ]);
        for (algo, rounds, ms) in [("slf-greedy", slf, slf_ms), ("peacock", pea, pea_ms)] {
            records.push(Record {
                workload: "rotation",
                algo,
                n,
                rounds: rounds as f64,
                ms,
            });
        }
    }
    println!("{tr}");

    // --- comb interleave (overlapping backward spans) -------------------
    let mut tc = Table::new(
        "comb workload (interleaved halves; overlapping backward jumps)",
        &[
            "n",
            "slf-greedy",
            "slf ms",
            "peacock",
            "peacock ms",
            "two-phase",
        ],
    );
    for &n in &sizes {
        if n < 6 {
            continue;
        }
        let pair = sdn_topo::gen::comb(n);
        let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
        let (slf, slf_ms) = timed(&SlfGreedy::default(), &inst);
        let (pea, pea_ms) = timed(&Peacock::default(), &inst);
        let (tpc, _) = timed(&TwoPhaseCommit, &inst);
        tc.row(vec![
            n.to_string(),
            slf.to_string(),
            f2(slf_ms),
            pea.to_string(),
            f2(pea_ms),
            tpc.to_string(),
        ]);
        for (algo, rounds, ms) in [("slf-greedy", slf, slf_ms), ("peacock", pea, pea_ms)] {
            records.push(Record {
                workload: "comb",
                algo,
                n,
                rounds: rounds as f64,
                ms,
            });
        }
    }
    println!("{tc}");

    // --- random permutations ------------------------------------------
    let mut t2 = Table::new(
        "random interior permutations (mean over 10 seeds)",
        &[
            "n",
            "slf-greedy",
            "slf ms",
            "peacock",
            "peacock ms",
            "backward jumps",
        ],
    );
    for &n in &sizes {
        let mut slf_rounds = Vec::new();
        let mut pea_rounds = Vec::new();
        let mut slf_ms = Vec::new();
        let mut pea_ms = Vec::new();
        let mut backs = Vec::new();
        for seed in 0..10u64 {
            let mut rng = DetRng::new(seed * 7919 + n);
            let pair = sdn_topo::gen::random_permutation(n, &mut rng);
            let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
            backs.push(Contracted::of(&inst).backward_count() as f64);
            let (r, ms) = timed(&SlfGreedy::default(), &inst);
            slf_rounds.push(r as f64);
            slf_ms.push(ms);
            let (r, ms) = timed(&Peacock::default(), &inst);
            pea_rounds.push(r as f64);
            pea_ms.push(ms);
        }
        t2.row(vec![
            n.to_string(),
            f2(Summary::of(&slf_rounds).mean),
            f2(Summary::of(&slf_ms).mean),
            f2(Summary::of(&pea_rounds).mean),
            f2(Summary::of(&pea_ms).mean),
            f2(Summary::of(&backs).mean),
        ]);
        for (algo, rounds, ms) in [
            ("slf-greedy", &slf_rounds, &slf_ms),
            ("peacock", &pea_rounds, &pea_ms),
        ] {
            records.push(Record {
                workload: "random_permutation",
                algo,
                n,
                rounds: Summary::of(rounds).mean,
                ms: Summary::of(ms).mean,
            });
        }
    }
    println!("{t2}");
    println!("expected shape: slf-greedy grows ~linearly on reversals while");
    println!("peacock stays flat (relaxed loop freedom updates off-path");
    println!("switches for free); two-phase is constant but doubles rules.");
    println!("schedule time must stay sub-second everywhere — the session");
    println!("oracle (AdmissionProbe) is what makes n=1024 tractable.");

    // The acceptance bar this experiment guards: every schedule —
    // including a full n=1024 reversal — in well under a second. The
    // CI bench smoke runs this binary in release mode, so a scaling
    // regression in the admission-probe session fails the build. Debug
    // builds are 10–40× slower and exist for exploration, not timing,
    // so the budget only binds under optimization.
    if !cfg!(debug_assertions) {
        for r in &records {
            assert!(
                r.ms < 1000.0,
                "{} {} n={} took {:.1} ms (budget 1000 ms)",
                r.workload,
                r.algo,
                r.n,
                r.ms
            );
        }
    }
    if let Some(r) = records
        .iter()
        .find(|r| r.workload == "reversal" && r.algo == "slf-greedy" && r.n == 1024)
    {
        println!(
            "\nn=1024 reversal slf-greedy: {:.1} ms (< 1 s budget)",
            r.ms
        );
    }

    if let Some(path) = json_path {
        let doc = Json::obj(vec![
            ("experiment", Json::str("rounds_scaling")),
            ("source", Json::str("exp_rounds_scaling --json")),
            ("max_n", Json::Int(max_n as i64)),
            (
                "records",
                Json::Arr(records.iter().map(Record::json).collect()),
            ),
        ]);
        std::fs::write(&path, format!("{doc}\n")).expect("write json export");
        println!("wrote {} records to {path}", records.len());
    }
}
