//! Cross-validation of the checker engines on randomized instances
//! and rounds: the exact engines must agree with brute force, the
//! conservative oracle must never accept what brute force rejects
//! (soundness), the stateful [`AdmissionProbe`] session must make
//! exactly the decisions of the stateless [`round_admissible`] oracle
//! in both oracle modes — per round *and* carried across rounds
//! through `commit_round`/`advance` along full greedy trajectories —
//! and the incremental and parallel whole-schedule verifiers must
//! report exactly the stateless [`verify_schedule`]'s violations on
//! permutation, reversal, waypointed and fat-tree workloads,
//! violating schedules included.

use proptest::prelude::*;

use sdn_topo::route::RoutePath;
use sdn_types::{DetRng, DpId};
use update_core::algorithms::{
    OneShot, Peacock, SlfGreedy, TwoPhaseCommit, UpdateScheduler, WayUp,
};
use update_core::checker::choice_graph::{check_round_slf, round_safe_conservative};
use update_core::checker::decision_walk::check_round;
use update_core::checker::exhaustive::check_round_exhaustive;
use update_core::checker::sampling::check_round_sampled;
use update_core::checker::{
    round_admissible, verify_schedule, verify_schedule_incremental, verify_schedule_parallel,
    AdmissionProbe, OracleMode,
};
use update_core::config::ConfigState;
use update_core::model::{NodeRole, UpdateInstance};
use update_core::properties::{Property, PropertySet};
use update_core::schedule::{RuleOp, Schedule};

/// Build a random instance plus a random (base, round) split of its
/// shared activations, with optional waypoint.
fn random_setup(
    seed: u64,
    n: u64,
    with_waypoint: bool,
) -> (UpdateInstance, Vec<RuleOp>, Vec<RuleOp>) {
    let mut rng = DetRng::new(seed);
    let pair = if with_waypoint {
        sdn_topo::gen::waypointed(n.max(5), rng.chance(0.5), &mut rng)
    } else {
        sdn_topo::gen::random_permutation(n, &mut rng)
    };
    let inst = UpdateInstance::new(pair.old, pair.new, pair.waypoint).unwrap();
    let mut base_ops = Vec::new();
    let mut round_ops = Vec::new();
    for (v, role) in inst.nodes() {
        if v == inst.dst() {
            continue;
        }
        match role {
            NodeRole::Shared | NodeRole::NewOnly => match rng.index(3) {
                0 => base_ops.push(RuleOp::Activate(v)),
                1 => round_ops.push(RuleOp::Activate(v)),
                _ => {}
            },
            NodeRole::OldOnly => {}
        }
    }
    (inst, base_ops, round_ops)
}

fn apply_base<'a>(inst: &'a UpdateInstance, base_ops: &[RuleOp]) -> ConfigState<'a> {
    let mut c = ConfigState::initial(inst);
    c.apply_all(base_ops);
    c
}

/// Build an instance from one of the three workload families plus a
/// random (committed base, candidate sequence) split — the candidate
/// sequence mixes activations with removals, tagged installs and the
/// occasional ingress flip, so every session code path is exercised.
fn probe_setup(seed: u64, n: u64, family: u8) -> (UpdateInstance, Vec<RuleOp>, Vec<RuleOp>) {
    let mut rng = DetRng::new(seed);
    let pair = match family {
        0 => sdn_topo::gen::random_permutation(n, &mut rng),
        1 => sdn_topo::gen::reversal(n),
        _ => sdn_topo::gen::waypointed(n.max(5), rng.chance(0.5), &mut rng),
    };
    let inst = UpdateInstance::new(pair.old, pair.new, pair.waypoint).unwrap();
    let mut base_ops = Vec::new();
    let mut candidates = Vec::new();
    for (v, role) in inst.nodes() {
        if v == inst.dst() {
            continue;
        }
        match role {
            NodeRole::Shared | NodeRole::NewOnly => match rng.index(4) {
                0 => base_ops.push(RuleOp::Activate(v)),
                1 | 2 => candidates.push(RuleOp::Activate(v)),
                _ => {}
            },
            NodeRole::OldOnly => {
                if rng.chance(0.25) {
                    candidates.push(RuleOp::RemoveOld(v));
                }
            }
        }
        if role == NodeRole::Shared && rng.chance(0.15) {
            candidates.push(RuleOp::InstallTagged(v));
        }
        // Occasionally start from a base that already carries tagged
        // rules, so sessions open onto non-trivial NEW-class state.
        if role == NodeRole::Shared && rng.chance(0.1) {
            base_ops.push(RuleOp::InstallTagged(v));
        }
    }
    if rng.chance(0.25) {
        candidates.push(RuleOp::FlipIngress);
    }
    // Occasionally the base is already flipped: the session must then
    // open with the NEW tag class only (and treat further flips as
    // no-ops), matching the stateless oracle.
    if rng.chance(0.15) {
        base_ops.push(RuleOp::FlipIngress);
    }
    rng.shuffle(&mut candidates);
    (inst, base_ops, candidates)
}

/// One instance from each of the four workload families, paired with
/// the property set its schedulers target.
fn instance_of_family(family: u8, n: u64, rng: &mut DetRng) -> (UpdateInstance, PropertySet) {
    match family {
        0 => {
            let pair = sdn_topo::gen::random_permutation(n, rng);
            (
                UpdateInstance::new(pair.old, pair.new, None).unwrap(),
                PropertySet::loop_free_relaxed(),
            )
        }
        1 => {
            let pair = sdn_topo::gen::reversal(n);
            (
                UpdateInstance::new(pair.old, pair.new, None).unwrap(),
                PropertySet::loop_free_strong(),
            )
        }
        2 => {
            let crossing = rng.chance(0.5);
            let pair = sdn_topo::gen::waypointed(n.max(5), crossing, rng);
            (
                UpdateInstance::new(pair.old, pair.new, pair.waypoint).unwrap(),
                PropertySet::transiently_secure(),
            )
        }
        _ => {
            let pair = sdn_topo::gen::fat_tree_flows(4, 1, rng)
                .pop()
                .expect("one flow");
            let props = if pair.waypoint.is_some() {
                PropertySet::transiently_secure()
            } else {
                PropertySet::loop_free_relaxed()
            };
            (
                UpdateInstance::new(pair.old, pair.new, pair.waypoint).unwrap(),
                props,
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decision-walk == exhaustive for the walk properties.
    #[test]
    fn decision_walk_matches_exhaustive(seed in 0u64..1_000_000, n in 4u64..9, wp: bool) {
        let (inst, base_ops, round_ops) = random_setup(seed, n, wp);
        prop_assume!(!round_ops.is_empty() && round_ops.len() <= 12);
        let base = apply_base(&inst, &base_ops);
        let props = if inst.waypoint().is_some() {
            PropertySet::transiently_secure()
        } else {
            PropertySet::loop_free_relaxed()
        };
        let exact = check_round(&inst, &base, &round_ops, &props).is_ok();
        let brute = check_round_exhaustive(&inst, &base, &round_ops, &props).is_ok();
        prop_assert_eq!(exact, brute, "{} base={:?} round={:?}", inst, base_ops, round_ops);
    }

    /// Choice-graph SLF == exhaustive SLF.
    #[test]
    fn choice_graph_slf_matches_exhaustive(seed in 0u64..1_000_000, n in 4u64..9) {
        let (inst, base_ops, round_ops) = random_setup(seed, n, false);
        prop_assume!(!round_ops.is_empty() && round_ops.len() <= 12);
        let base = apply_base(&inst, &base_ops);
        let slf = PropertySet::none().with(Property::StrongLoopFreedom);
        let exact = check_round_slf(&inst, &base, &round_ops).is_ok();
        let brute = check_round_exhaustive(&inst, &base, &round_ops, &slf).is_ok();
        prop_assert_eq!(exact, brute, "{} base={:?} round={:?}", inst, base_ops, round_ops);
    }

    /// The conservative oracle never accepts a round brute force
    /// rejects (soundness; it may reject safe rounds).
    #[test]
    fn conservative_oracle_is_sound(seed in 0u64..1_000_000, n in 4u64..9, wp: bool) {
        let (inst, base_ops, round_ops) = random_setup(seed, n, wp);
        prop_assume!(!round_ops.is_empty() && round_ops.len() <= 12);
        let base = apply_base(&inst, &base_ops);
        let props = if inst.waypoint().is_some() {
            PropertySet::transiently_secure()
        } else {
            PropertySet::loop_free_relaxed()
        };
        if round_safe_conservative(&inst, &base, &round_ops, &props) {
            let brute = check_round_exhaustive(&inst, &base, &round_ops, &props);
            prop_assert!(
                brute.is_ok(),
                "conservative accepted an unsafe round: {} base={:?} round={:?}\n{}",
                inst, base_ops, round_ops, brute
            );
        }
    }

    /// The stateful session oracle makes exactly the stateless
    /// decisions, in both oracle modes, across the three workload
    /// families (random permutation, reversal, waypointed).
    #[test]
    fn admission_probe_matches_stateless_oracle(
        seed in 0u64..1_000_000,
        n in 4u64..9,
        family in 0u8..3,
    ) {
        let (inst, base_ops, candidates) = probe_setup(seed, n, family);
        prop_assume!(!candidates.is_empty());
        let base = apply_base(&inst, &base_ops);
        let mut prop_sets = vec![
            PropertySet::loop_free_relaxed(),
            PropertySet::loop_free_strong(),
        ];
        if inst.waypoint().is_some() {
            prop_sets.push(PropertySet::transiently_secure());
            prop_sets.push(PropertySet::all());
        }
        for props in prop_sets {
            for mode in [OracleMode::Conservative, OracleMode::Exact] {
                let mut probe = AdmissionProbe::open(&inst, &base, props, mode);
                let mut accepted: Vec<RuleOp> = Vec::new();
                for &op in &candidates {
                    let mut trial = accepted.clone();
                    trial.push(op);
                    let expect = round_admissible(&inst, &base, &trial, &props, mode);
                    let got = probe.try_push(op);
                    prop_assert_eq!(
                        got, expect,
                        "mode {:?} props {:?}: {} base={:?} accepted={:?} op={:?}",
                        mode, props, inst, base_ops, accepted, op
                    );
                    if got {
                        accepted.push(op);
                    }
                }
                prop_assert_eq!(probe.ops(), accepted.as_slice());
                // The admitted set must itself be admissible.
                if !accepted.is_empty() {
                    prop_assert!(round_admissible(&inst, &base, &accepted, &props, mode));
                }
            }
        }
    }

    /// The cross-round session must make exactly the decisions of a
    /// session freshly opened on the advanced base, round after round,
    /// along full greedy trajectories over all four workload families
    /// (random permutation, reversal, waypointed, fat-tree).
    #[test]
    fn cross_round_session_matches_fresh_sessions(
        seed in 0u64..1_000_000,
        n in 5u64..11,
        family in 0u8..4,
        exact: bool,
    ) {
        let mut rng = DetRng::new(seed);
        let (inst, props) = instance_of_family(family, n, &mut rng);
        let mode = if exact { OracleMode::Exact } else { OracleMode::Conservative };
        let mut base = ConfigState::initial(&inst);
        let mut session = AdmissionProbe::open(&inst, &base, props, mode);
        let mut pending: Vec<DpId> = inst
            .nodes_with_role(NodeRole::Shared)
            .into_iter()
            .chain(inst.nodes_with_role(NodeRole::NewOnly))
            .filter(|&v| v != inst.dst())
            .collect();
        pending.sort_by_key(|&v| std::cmp::Reverse(inst.new_position(v).unwrap_or(0)));
        let mut guard = 0;
        while !pending.is_empty() {
            guard += 1;
            prop_assert!(guard <= 64, "trajectory did not converge");
            let mut fresh = AdmissionProbe::open(&inst, &base, props, mode);
            for &v in &pending {
                let op = RuleOp::Activate(v);
                let got = session.try_push(op);
                let expect = fresh.try_push(op);
                prop_assert_eq!(
                    got, expect,
                    "mode {:?} family {} round {} candidate {}: cross-round vs fresh",
                    mode, family, guard, v
                );
            }
            let ops = session.commit_round();
            prop_assert_eq!(&ops, &fresh.into_ops(), "round {} admitted sets", guard);
            if ops.is_empty() {
                // Conservative over-rejection can stall a trajectory
                // (the greedy engine would fall back to the exact
                // oracle here); equality is all this test asserts.
                break;
            }
            base.apply_all(&ops);
            pending.retain(|&v| !ops.contains(&RuleOp::Activate(v)));
        }
    }

    /// The incremental and parallel whole-schedule verifiers must
    /// report exactly the stateless verifier's verdict and violations
    /// on real scheduler output — including violating schedules
    /// (one-shot; Peacock audited under strong loop freedom).
    #[test]
    fn incremental_verifier_matches_stateless(
        seed in 0u64..1_000_000,
        n in 4u64..10,
        family in 0u8..4,
    ) {
        let mut rng = DetRng::new(seed ^ 0x5eed);
        let (inst, props) = instance_of_family(family, n, &mut rng);
        let mut cases: Vec<(Schedule, PropertySet)> = Vec::new();
        cases.push((OneShot.schedule(&inst).unwrap(), props));
        cases.push((TwoPhaseCommit.schedule(&inst).unwrap(), props));
        cases.push((SlfGreedy::default().schedule(&inst).unwrap(), PropertySet::loop_free_strong()));
        let peacock = Peacock::default().schedule(&inst).unwrap();
        // Auditing a relaxed schedule under SLF props yields rule-cycle
        // violations: the fallback witness path must match too.
        cases.push((peacock.clone(), PropertySet::loop_free_strong()));
        cases.push((peacock, PropertySet::loop_free_relaxed()));
        if inst.waypoint().is_some() {
            cases.push((WayUp::default().schedule(&inst).unwrap(), PropertySet::transiently_secure()));
        }
        for (schedule, props) in cases {
            let reference = verify_schedule(&inst, &schedule, props);
            let incremental = verify_schedule_incremental(&inst, &schedule, props);
            prop_assert_eq!(
                incremental.is_ok(), reference.is_ok(),
                "{} schedule {} props {:?}", inst, schedule.algorithm, props
            );
            prop_assert_eq!(
                &incremental.violations, &reference.violations,
                "{} schedule {} props {:?}", inst, schedule.algorithm, props
            );
            prop_assert_eq!(incremental.rounds_checked, reference.rounds_checked);
            let parallel = verify_schedule_parallel(&inst, &schedule, props, 3);
            prop_assert_eq!(
                &parallel.violations, &reference.violations,
                "parallel: {} schedule {} props {:?}", inst, schedule.algorithm, props
            );
            prop_assert_eq!(parallel.rounds_checked, reference.rounds_checked);
        }
    }

    /// Sampling finds only violations brute force also finds.
    #[test]
    fn sampling_is_a_subset_of_exhaustive(seed in 0u64..1_000_000, n in 4u64..8) {
        let (inst, base_ops, round_ops) = random_setup(seed, n, false);
        prop_assume!(!round_ops.is_empty() && round_ops.len() <= 10);
        let base = apply_base(&inst, &base_ops);
        let props = PropertySet::loop_free_relaxed();
        let mut rng = DetRng::new(seed ^ 0xdead);
        let sampled = check_round_sampled(&inst, &base, &round_ops, &props, 32, &mut rng);
        if !sampled.is_ok() {
            let brute = check_round_exhaustive(&inst, &base, &round_ops, &props);
            prop_assert!(!brute.is_ok());
        }
    }
}

/// Deterministic session-vs-stateless audit along a realistic greedy
/// trajectory: schedule a reversal instance round by round exactly as
/// the greedy engine would (reverse new-route candidate order,
/// committed base advancing each round), asserting every single probe
/// decision against the stateless oracle in both modes.
#[test]
fn admission_probe_matches_along_greedy_reversal_schedule() {
    let pair = sdn_topo::gen::reversal(24);
    let inst = UpdateInstance::new(pair.old, pair.new, None).unwrap();
    let props = PropertySet::loop_free_strong();
    for mode in [OracleMode::Conservative, OracleMode::Exact] {
        let mut base = ConfigState::initial(&inst);
        let mut pending: Vec<DpId> = inst
            .nodes_with_role(NodeRole::Shared)
            .into_iter()
            .filter(|&v| v != inst.dst())
            .collect();
        pending.sort_by_key(|&v| std::cmp::Reverse(inst.new_position(v).unwrap_or(0)));
        let mut guard = 0;
        while !pending.is_empty() {
            guard += 1;
            assert!(guard <= 64, "schedule did not converge");
            let mut probe = AdmissionProbe::open(&inst, &base, props, mode);
            let mut accepted: Vec<RuleOp> = Vec::new();
            for &v in &pending {
                let op = RuleOp::Activate(v);
                let mut trial = accepted.clone();
                trial.push(op);
                let expect = round_admissible(&inst, &base, &trial, &props, mode);
                let got = probe.try_push(op);
                assert_eq!(got, expect, "round {guard} mode {mode:?} candidate {v}");
                if got {
                    accepted.push(op);
                }
            }
            assert!(!accepted.is_empty(), "greedy must make progress");
            base.apply_all(&accepted);
            pending.retain(|&v| !accepted.contains(&RuleOp::Activate(v)));
        }
    }
}

/// Exhaustive-enumeration soundness audit on a fixed reversal
/// instance: over *every* (committed base, candidate round) split of
/// the shared switches, the conservative oracle never accepts a round
/// the exact engine rejects. (On some instances the two coincide
/// exactly; the proptests above cover the randomized space.)
#[test]
fn conservative_oracle_sound_on_full_enumeration() {
    let inst = UpdateInstance::new(
        RoutePath::from_raw(&[1, 2, 3, 4, 5]).unwrap(),
        RoutePath::from_raw(&[1, 4, 3, 2, 5]).unwrap(),
        None,
    )
    .unwrap();
    let props = PropertySet::loop_free_relaxed();
    let shared: Vec<DpId> = inst
        .nodes_with_role(NodeRole::Shared)
        .into_iter()
        .filter(|&v| v != inst.dst())
        .collect();
    let k = shared.len();
    let mut agreements = 0u32;
    let mut over_rejections = 0u32;
    for base_mask in 0u32..(1 << k) {
        for round_mask in 0u32..(1 << k) {
            if base_mask & round_mask != 0 || round_mask == 0 {
                continue;
            }
            let base_ops: Vec<RuleOp> = (0..k)
                .filter(|i| base_mask & (1 << i) != 0)
                .map(|i| RuleOp::Activate(shared[i]))
                .collect();
            let round_ops: Vec<RuleOp> = (0..k)
                .filter(|i| round_mask & (1 << i) != 0)
                .map(|i| RuleOp::Activate(shared[i]))
                .collect();
            let base = apply_base(&inst, &base_ops);
            let conservative = round_safe_conservative(&inst, &base, &round_ops, &props);
            let exact = check_round(&inst, &base, &round_ops, &props).is_ok();
            assert!(
                exact || !conservative,
                "UNSOUND: conservative accepted unsafe round at base={base_ops:?} round={round_ops:?}"
            );
            if conservative == exact {
                agreements += 1;
            } else {
                over_rejections += 1;
            }
        }
    }
    // every split audited; report shape for the record
    assert!(agreements > 0);
    // over-rejection is permitted but must not be the common case
    assert!(
        over_rejections <= agreements,
        "oracle over-rejects {over_rejections} vs {agreements} agreements"
    );
}
