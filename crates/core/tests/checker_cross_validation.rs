//! Cross-validation of the three checker engines on randomized
//! instances and rounds: the exact engines must agree with brute
//! force, and the conservative oracle must never accept what brute
//! force rejects (soundness).

use proptest::prelude::*;

use sdn_topo::route::RoutePath;
use sdn_types::{DetRng, DpId};
use update_core::checker::choice_graph::{check_round_slf, round_safe_conservative};
use update_core::checker::decision_walk::check_round;
use update_core::checker::exhaustive::check_round_exhaustive;
use update_core::checker::sampling::check_round_sampled;
use update_core::config::ConfigState;
use update_core::model::{NodeRole, UpdateInstance};
use update_core::properties::{Property, PropertySet};
use update_core::schedule::RuleOp;

/// Build a random instance plus a random (base, round) split of its
/// shared activations, with optional waypoint.
fn random_setup(
    seed: u64,
    n: u64,
    with_waypoint: bool,
) -> (UpdateInstance, Vec<RuleOp>, Vec<RuleOp>) {
    let mut rng = DetRng::new(seed);
    let pair = if with_waypoint {
        sdn_topo::gen::waypointed(n.max(5), rng.chance(0.5), &mut rng)
    } else {
        sdn_topo::gen::random_permutation(n, &mut rng)
    };
    let inst = UpdateInstance::new(pair.old, pair.new, pair.waypoint).unwrap();
    let mut base_ops = Vec::new();
    let mut round_ops = Vec::new();
    for (v, role) in inst.nodes() {
        if v == inst.dst() {
            continue;
        }
        match role {
            NodeRole::Shared | NodeRole::NewOnly => match rng.index(3) {
                0 => base_ops.push(RuleOp::Activate(v)),
                1 => round_ops.push(RuleOp::Activate(v)),
                _ => {}
            },
            NodeRole::OldOnly => {}
        }
    }
    (inst, base_ops, round_ops)
}

fn apply_base<'a>(inst: &'a UpdateInstance, base_ops: &[RuleOp]) -> ConfigState<'a> {
    let mut c = ConfigState::initial(inst);
    c.apply_all(base_ops);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decision-walk == exhaustive for the walk properties.
    #[test]
    fn decision_walk_matches_exhaustive(seed in 0u64..1_000_000, n in 4u64..9, wp: bool) {
        let (inst, base_ops, round_ops) = random_setup(seed, n, wp);
        prop_assume!(!round_ops.is_empty() && round_ops.len() <= 12);
        let base = apply_base(&inst, &base_ops);
        let props = if inst.waypoint().is_some() {
            PropertySet::transiently_secure()
        } else {
            PropertySet::loop_free_relaxed()
        };
        let exact = check_round(&inst, &base, &round_ops, &props).is_ok();
        let brute = check_round_exhaustive(&inst, &base, &round_ops, &props).is_ok();
        prop_assert_eq!(exact, brute, "{} base={:?} round={:?}", inst, base_ops, round_ops);
    }

    /// Choice-graph SLF == exhaustive SLF.
    #[test]
    fn choice_graph_slf_matches_exhaustive(seed in 0u64..1_000_000, n in 4u64..9) {
        let (inst, base_ops, round_ops) = random_setup(seed, n, false);
        prop_assume!(!round_ops.is_empty() && round_ops.len() <= 12);
        let base = apply_base(&inst, &base_ops);
        let slf = PropertySet::none().with(Property::StrongLoopFreedom);
        let exact = check_round_slf(&inst, &base, &round_ops).is_ok();
        let brute = check_round_exhaustive(&inst, &base, &round_ops, &slf).is_ok();
        prop_assert_eq!(exact, brute, "{} base={:?} round={:?}", inst, base_ops, round_ops);
    }

    /// The conservative oracle never accepts a round brute force
    /// rejects (soundness; it may reject safe rounds).
    #[test]
    fn conservative_oracle_is_sound(seed in 0u64..1_000_000, n in 4u64..9, wp: bool) {
        let (inst, base_ops, round_ops) = random_setup(seed, n, wp);
        prop_assume!(!round_ops.is_empty() && round_ops.len() <= 12);
        let base = apply_base(&inst, &base_ops);
        let props = if inst.waypoint().is_some() {
            PropertySet::transiently_secure()
        } else {
            PropertySet::loop_free_relaxed()
        };
        if round_safe_conservative(&inst, &base, &round_ops, &props) {
            let brute = check_round_exhaustive(&inst, &base, &round_ops, &props);
            prop_assert!(
                brute.is_ok(),
                "conservative accepted an unsafe round: {} base={:?} round={:?}\n{}",
                inst, base_ops, round_ops, brute
            );
        }
    }

    /// Sampling finds only violations brute force also finds.
    #[test]
    fn sampling_is_a_subset_of_exhaustive(seed in 0u64..1_000_000, n in 4u64..8) {
        let (inst, base_ops, round_ops) = random_setup(seed, n, false);
        prop_assume!(!round_ops.is_empty() && round_ops.len() <= 10);
        let base = apply_base(&inst, &base_ops);
        let props = PropertySet::loop_free_relaxed();
        let mut rng = DetRng::new(seed ^ 0xdead);
        let sampled = check_round_sampled(&inst, &base, &round_ops, &props, 32, &mut rng);
        if !sampled.is_ok() {
            let brute = check_round_exhaustive(&inst, &base, &round_ops, &props);
            prop_assert!(!brute.is_ok());
        }
    }
}

/// Exhaustive-enumeration soundness audit on a fixed reversal
/// instance: over *every* (committed base, candidate round) split of
/// the shared switches, the conservative oracle never accepts a round
/// the exact engine rejects. (On some instances the two coincide
/// exactly; the proptests above cover the randomized space.)
#[test]
fn conservative_oracle_sound_on_full_enumeration() {
    let inst = UpdateInstance::new(
        RoutePath::from_raw(&[1, 2, 3, 4, 5]).unwrap(),
        RoutePath::from_raw(&[1, 4, 3, 2, 5]).unwrap(),
        None,
    )
    .unwrap();
    let props = PropertySet::loop_free_relaxed();
    let shared: Vec<DpId> = inst
        .nodes_with_role(NodeRole::Shared)
        .into_iter()
        .filter(|&v| v != inst.dst())
        .collect();
    let k = shared.len();
    let mut agreements = 0u32;
    let mut over_rejections = 0u32;
    for base_mask in 0u32..(1 << k) {
        for round_mask in 0u32..(1 << k) {
            if base_mask & round_mask != 0 || round_mask == 0 {
                continue;
            }
            let base_ops: Vec<RuleOp> = (0..k)
                .filter(|i| base_mask & (1 << i) != 0)
                .map(|i| RuleOp::Activate(shared[i]))
                .collect();
            let round_ops: Vec<RuleOp> = (0..k)
                .filter(|i| round_mask & (1 << i) != 0)
                .map(|i| RuleOp::Activate(shared[i]))
                .collect();
            let base = apply_base(&inst, &base_ops);
            let conservative = round_safe_conservative(&inst, &base, &round_ops, &props);
            let exact = check_round(&inst, &base, &round_ops, &props).is_ok();
            assert!(
                exact || !conservative,
                "UNSOUND: conservative accepted unsafe round at base={base_ops:?} round={round_ops:?}"
            );
            if conservative == exact {
                agreements += 1;
            } else {
                over_rejections += 1;
            }
        }
    }
    // every split audited; report shape for the record
    assert!(agreements > 0);
    // over-rejection is permitted but must not be the common case
    assert!(
        over_rejections <= agreements,
        "oracle over-rejects {over_rejections} vs {agreements} agreements"
    );
}
