//! Transient configuration semantics.
//!
//! A [`ConfigState`] captures which [`RuleOp`]s have taken effect on
//! the data plane and answers the only question that matters for
//! transient consistency: *where does a packet entering at the source
//! go?* The walk semantics cover both schedule kinds:
//!
//! * **Replacement**: a switch forwards per its new rule once
//!   activated, else per its old rule (if it still has one).
//! * **Tagged** (two-phase commit): the ingress stamps packets with a
//!   version tag once flipped. A NEW-tagged packet matches a switch's
//!   tagged rule when installed, falling back to the untagged rule
//!   otherwise (tagged rules have higher priority, as in Reitblatt et
//!   al.). Untagged packets use untagged rules only.

use std::collections::BTreeSet;
use std::fmt;

use sdn_types::{DpId, VersionTag};

use crate::model::UpdateInstance;
use crate::schedule::RuleOp;

/// Result of walking a packet from the source under a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalkOutcome {
    /// The packet reached the destination.
    Delivered {
        /// Whether it traversed the waypoint (always `true` when the
        /// instance has no waypoint).
        via_waypoint: bool,
    },
    /// The packet revisited a switch: a forwarding loop.
    Looped {
        /// The first switch visited twice.
        at: DpId,
    },
    /// The packet reached a switch with no matching rule.
    Blackhole {
        /// The ruleless switch.
        at: DpId,
    },
}

impl WalkOutcome {
    /// Whether the packet was delivered (regardless of waypoint).
    pub fn delivered(&self) -> bool {
        matches!(self, WalkOutcome::Delivered { .. })
    }
}

/// A packet walk: the visited switches and the outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// Switches in visit order, starting at the source.
    pub visited: Vec<DpId>,
    /// How the walk ended.
    pub outcome: WalkOutcome,
}

impl fmt::Display for Walk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.visited.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{v}")?;
        }
        match &self.outcome {
            WalkOutcome::Delivered { via_waypoint } => {
                write!(
                    f,
                    " [delivered{}]",
                    if *via_waypoint {
                        ", via wp"
                    } else {
                        ", BYPASSED WP"
                    }
                )
            }
            WalkOutcome::Looped { at } => write!(f, " [LOOP at {at}]"),
            WalkOutcome::Blackhole { at } => write!(f, " [BLACKHOLE at {at}]"),
        }
    }
}

/// The data-plane state reached after some set of operations applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigState<'a> {
    inst: &'a UpdateInstance,
    activated: BTreeSet<DpId>,
    old_removed: BTreeSet<DpId>,
    tagged_installed: BTreeSet<DpId>,
    ingress_flipped: bool,
}

impl<'a> ConfigState<'a> {
    /// The initial configuration: pure old policy.
    pub fn initial(inst: &'a UpdateInstance) -> Self {
        ConfigState {
            inst,
            activated: BTreeSet::new(),
            old_removed: BTreeSet::new(),
            tagged_installed: BTreeSet::new(),
            ingress_flipped: false,
        }
    }

    /// The instance this state belongs to.
    pub fn instance(&self) -> &'a UpdateInstance {
        self.inst
    }

    /// Apply one operation.
    pub fn apply(&mut self, op: &RuleOp) {
        match op {
            RuleOp::Activate(v) => {
                self.activated.insert(*v);
            }
            RuleOp::RemoveOld(v) => {
                self.old_removed.insert(*v);
            }
            RuleOp::InstallTagged(v) => {
                self.tagged_installed.insert(*v);
            }
            RuleOp::FlipIngress => {
                self.ingress_flipped = true;
            }
        }
    }

    /// Apply every operation of an iterator.
    pub fn apply_all<'b>(&mut self, ops: impl IntoIterator<Item = &'b RuleOp>) {
        for op in ops {
            self.apply(op);
        }
    }

    /// Whether a switch has been activated (replacement semantics).
    pub fn is_activated(&self, v: DpId) -> bool {
        self.activated.contains(&v)
    }

    /// Whether a switch's old rule has been removed.
    pub fn is_old_removed(&self, v: DpId) -> bool {
        self.old_removed.contains(&v)
    }

    /// Whether a switch has its NEW-tagged rule installed.
    pub fn is_tagged_installed(&self, v: DpId) -> bool {
        self.tagged_installed.contains(&v)
    }

    /// Whether the ingress has flipped to the new tagged policy.
    pub fn is_flipped(&self) -> bool {
        self.ingress_flipped
    }

    /// The *untagged* rule at `v`: new rule if activated, else the old
    /// rule if present and not removed.
    fn untagged_next(&self, v: DpId) -> Option<DpId> {
        if self.activated.contains(&v) {
            self.inst.new_next(v)
        } else if self.old_removed.contains(&v) {
            None
        } else {
            self.inst.old_next(v)
        }
    }

    /// Where a packet with tag `tag` is forwarded at `v`, or `None`
    /// when no rule matches (blackhole). The destination never
    /// forwards.
    pub fn next_hop(&self, v: DpId, tag: VersionTag) -> Option<DpId> {
        if v == self.inst.dst() {
            return None;
        }
        if tag == VersionTag::NEW && self.tagged_installed.contains(&v) {
            return self.inst.new_next(v);
        }
        self.untagged_next(v)
    }

    /// The tag stamped on packets entering at the source, and the
    /// source's forwarding decision.
    fn ingress(&self) -> (VersionTag, Option<DpId>) {
        let src = self.inst.src();
        if self.ingress_flipped {
            (VersionTag::NEW, self.inst.new_next(src))
        } else {
            (VersionTag::OLD, self.untagged_next(src))
        }
    }

    /// Walk a packet from the source until delivery, loop or blackhole.
    pub fn walk(&self) -> Walk {
        let src = self.inst.src();
        let dst = self.inst.dst();
        let wp = self.inst.waypoint();
        let mut visited = vec![src];
        let mut seen: BTreeSet<DpId> = BTreeSet::new();
        seen.insert(src);
        let mut via_waypoint = wp.is_none_or(|w| w == src);

        let (tag, mut next) = self.ingress();
        let mut current = src;
        loop {
            match next {
                None => {
                    return Walk {
                        visited,
                        outcome: WalkOutcome::Blackhole { at: current },
                    }
                }
                Some(v) => {
                    visited.push(v);
                    if wp == Some(v) {
                        via_waypoint = true;
                    }
                    if v == dst {
                        return Walk {
                            visited,
                            outcome: WalkOutcome::Delivered { via_waypoint },
                        };
                    }
                    if !seen.insert(v) {
                        return Walk {
                            visited,
                            outcome: WalkOutcome::Looped { at: v },
                        };
                    }
                    current = v;
                    next = self.next_hop(v, tag);
                }
            }
        }
    }

    /// The tag classes packets can actually carry under this
    /// configuration: NEW once the ingress has flipped, OLD otherwise.
    /// (During the flip round both arise, but the checker enumerates
    /// the flipped and unflipped configurations separately, each with
    /// its own class; packets are assumed to drain between rounds —
    /// barriers dominate path latency, which the simulator validates.)
    pub fn relevant_classes(&self) -> &'static [VersionTag] {
        if self.ingress_flipped {
            &[VersionTag::NEW]
        } else {
            &[VersionTag::OLD]
        }
    }

    /// Directed rule edges traversable by a packet of the given tag
    /// class — the graph on which strong loop freedom is defined.
    ///
    /// For [`VersionTag::OLD`], each switch contributes its untagged
    /// rule. For [`VersionTag::NEW`], a switch contributes its tagged
    /// rule when installed, else its untagged rule (the fall-through a
    /// NEW-tagged packet would take).
    pub fn class_edges(&self, tag: VersionTag) -> Vec<(DpId, DpId)> {
        let mut edges = Vec::new();
        for (v, _) in self.inst.nodes() {
            if v == self.inst.dst() {
                continue;
            }
            if let Some(t) = self.next_hop(v, tag) {
                edges.push((v, t));
            }
        }
        edges
    }

    /// Whether the per-class rule graph contains a directed cycle
    /// (strong-loop-freedom violation for that class).
    pub fn class_has_cycle(&self, tag: VersionTag) -> Option<Vec<DpId>> {
        // Functional graph: each node has at most one out-edge, so
        // cycle detection is pointer chasing with three colors.
        use std::collections::BTreeMap;
        let mut next: BTreeMap<DpId, DpId> = BTreeMap::new();
        for (a, b) in self.class_edges(tag) {
            next.insert(a, b);
        }
        let mut color: BTreeMap<DpId, u8> = BTreeMap::new(); // 0 white 1 gray 2 black
        for &start in next.keys() {
            if color.get(&start).copied().unwrap_or(0) != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut v = start;
            loop {
                match color.get(&v).copied().unwrap_or(0) {
                    1 => {
                        // found a cycle: the portion of `path` from v
                        let pos = path.iter().position(|&x| x == v).expect("on path");
                        for &n in &path {
                            color.insert(n, 2);
                        }
                        return Some(path[pos..].to_vec());
                    }
                    2 => break,
                    _ => {
                        color.insert(v, 1);
                        path.push(v);
                        match next.get(&v) {
                            Some(&t) => v = t,
                            None => break,
                        }
                    }
                }
            }
            for n in path {
                color.insert(n, 2);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_topo::route::RoutePath;

    fn inst(old: &[u64], new: &[u64], wp: Option<u64>) -> UpdateInstance {
        UpdateInstance::new(
            RoutePath::from_raw(old).unwrap(),
            RoutePath::from_raw(new).unwrap(),
            wp.map(DpId),
        )
        .unwrap()
    }

    #[test]
    fn initial_walk_follows_old_route() {
        let i = inst(&[1, 2, 3, 4], &[1, 5, 3, 4], Some(3));
        let c = ConfigState::initial(&i);
        let w = c.walk();
        assert_eq!(w.visited, vec![DpId(1), DpId(2), DpId(3), DpId(4)]);
        assert_eq!(w.outcome, WalkOutcome::Delivered { via_waypoint: true });
    }

    #[test]
    fn fully_activated_walk_follows_new_route() {
        let i = inst(&[1, 2, 3, 4], &[1, 5, 3, 4], Some(3));
        let mut c = ConfigState::initial(&i);
        for v in [1u64, 5, 3] {
            c.apply(&RuleOp::Activate(DpId(v)));
        }
        let w = c.walk();
        assert_eq!(w.visited, vec![DpId(1), DpId(5), DpId(3), DpId(4)]);
        assert!(w.outcome.delivered());
    }

    #[test]
    fn blackhole_on_uninstalled_new_only() {
        let i = inst(&[1, 2, 3, 4], &[1, 5, 3, 4], None);
        let mut c = ConfigState::initial(&i);
        // activate src only: packet goes to 5 which has no rule yet
        c.apply(&RuleOp::Activate(DpId(1)));
        let w = c.walk();
        assert_eq!(w.outcome, WalkOutcome::Blackhole { at: DpId(5) });
        assert_eq!(w.visited, vec![DpId(1), DpId(5)]);
    }

    #[test]
    fn loop_detected() {
        // old 1-2-3-4, new 1-3-2-4: activating only 3 creates
        // 3 -> 2 (new) while 2 -> 3 (old): a 2-cycle.
        let i = inst(&[1, 2, 3, 4], &[1, 3, 2, 4], None);
        let mut c = ConfigState::initial(&i);
        c.apply(&RuleOp::Activate(DpId(3)));
        let w = c.walk();
        assert!(matches!(w.outcome, WalkOutcome::Looped { .. }));
        // walk: 1 -> 2 -> 3 -> 2(revisit)
        assert_eq!(w.visited, vec![DpId(1), DpId(2), DpId(3), DpId(2)]);
    }

    #[test]
    fn waypoint_bypass_detected() {
        // old 1-2-3-4 wp 2; new 1-3-2-4... wp must be on both: it is
        // (2 on both). Activating 1 only: 1 -> 3 (new), 3 -> 4 (old):
        // delivered but bypassing waypoint 2.
        let i = inst(&[1, 2, 3, 4], &[1, 3, 2, 4], Some(2));
        let mut c = ConfigState::initial(&i);
        c.apply(&RuleOp::Activate(DpId(1)));
        let w = c.walk();
        assert_eq!(
            w.outcome,
            WalkOutcome::Delivered {
                via_waypoint: false
            }
        );
    }

    #[test]
    fn remove_old_creates_blackhole_if_reachable() {
        let i = inst(&[1, 2, 3, 4], &[1, 5, 3, 4], None);
        let mut c = ConfigState::initial(&i);
        c.apply(&RuleOp::RemoveOld(DpId(2)));
        let w = c.walk();
        assert_eq!(w.outcome, WalkOutcome::Blackhole { at: DpId(2) });
    }

    #[test]
    fn tagged_walk_before_flip_uses_old_path() {
        let i = inst(&[1, 2, 3, 4], &[1, 5, 3, 4], None);
        let mut c = ConfigState::initial(&i);
        for v in [5u64, 3] {
            c.apply(&RuleOp::InstallTagged(DpId(v)));
        }
        let w = c.walk();
        assert_eq!(w.visited, vec![DpId(1), DpId(2), DpId(3), DpId(4)]);
    }

    #[test]
    fn tagged_walk_after_flip_uses_new_path() {
        let i = inst(&[1, 2, 3, 4], &[1, 5, 3, 4], None);
        let mut c = ConfigState::initial(&i);
        for v in [5u64, 3] {
            c.apply(&RuleOp::InstallTagged(DpId(v)));
        }
        c.apply(&RuleOp::FlipIngress);
        let w = c.walk();
        assert_eq!(w.visited, vec![DpId(1), DpId(5), DpId(3), DpId(4)]);
        assert!(w.outcome.delivered());
    }

    #[test]
    fn tagged_fallthrough_on_missing_install() {
        // Flip without installing tagged rules: NEW packet at 5 has no
        // rule at all -> blackhole at 5.
        let i = inst(&[1, 2, 3, 4], &[1, 5, 3, 4], None);
        let mut c = ConfigState::initial(&i);
        c.apply(&RuleOp::FlipIngress);
        let w = c.walk();
        assert_eq!(w.outcome, WalkOutcome::Blackhole { at: DpId(5) });
    }

    #[test]
    fn tagged_fallthrough_uses_untagged_rule_on_shared() {
        // old 1-2-3-4, new 1-3-2-4 (shared interior, reordered).
        // Flip + install tagged at 3 only: packet 1-(new)->3,
        // 3 tagged -> 2, 2 falls through to old rule -> 3: loop.
        let i = inst(&[1, 2, 3, 4], &[1, 3, 2, 4], None);
        let mut c = ConfigState::initial(&i);
        c.apply(&RuleOp::FlipIngress);
        c.apply(&RuleOp::InstallTagged(DpId(3)));
        let w = c.walk();
        assert!(matches!(w.outcome, WalkOutcome::Looped { at } if at == DpId(3)));
    }

    #[test]
    fn class_edges_distinguish_tags() {
        let i = inst(&[1, 2, 3, 4], &[1, 5, 3, 4], None);
        let mut c = ConfigState::initial(&i);
        c.apply(&RuleOp::InstallTagged(DpId(3)));
        let old_edges = c.class_edges(VersionTag::OLD);
        let new_edges = c.class_edges(VersionTag::NEW);
        assert!(old_edges.contains(&(DpId(3), DpId(4)))); // old rule 3->4
        assert!(new_edges.contains(&(DpId(3), DpId(4)))); // new rule 3->4 too
                                                          // 2's rule identical in both classes (no tagged install)
        assert!(old_edges.contains(&(DpId(2), DpId(3))));
        assert!(new_edges.contains(&(DpId(2), DpId(3))));
    }

    #[test]
    fn class_cycle_detection() {
        let i = inst(&[1, 2, 3, 4], &[1, 3, 2, 4], None);
        let mut c = ConfigState::initial(&i);
        assert!(c.class_has_cycle(VersionTag::OLD).is_none());
        c.apply(&RuleOp::Activate(DpId(3)));
        let cyc = c.class_has_cycle(VersionTag::OLD).expect("2-3 cycle");
        let mut cyc_sorted = cyc.clone();
        cyc_sorted.sort();
        assert_eq!(cyc_sorted, vec![DpId(2), DpId(3)]);
    }

    #[test]
    fn destination_never_forwards() {
        let i = inst(&[1, 2, 3], &[1, 2, 3], None);
        let mut c = ConfigState::initial(&i);
        c.apply(&RuleOp::Activate(DpId(1)));
        c.apply(&RuleOp::Activate(DpId(2)));
        assert_eq!(c.next_hop(DpId(3), VersionTag::OLD), None);
        assert_eq!(c.next_hop(DpId(3), VersionTag::NEW), None);
    }

    #[test]
    fn walk_display_readable() {
        let i = inst(&[1, 2, 3], &[1, 2, 3], None);
        let c = ConfigState::initial(&i);
        let s = c.walk().to_string();
        assert!(s.contains("s1 -> s2 -> s3"));
        assert!(s.contains("delivered"));
    }
}
